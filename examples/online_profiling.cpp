/**
 * @file
 * Online profiling example (the Section 4.4 deployment model).
 *
 * Instead of writing a trace to disk and post-processing it, an
 * instrumented program calls ProfileCollector::onRun for every
 * execution run; profiles are harvested live and a new layout can be
 * produced at any point. Here the "instrumented program" is the
 * synthetic workload walker feeding the collector run by run.
 */

#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/popularity.hh"
#include "topo/profile/collector.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

int
main()
{
    using namespace topo;

    // The application being profiled.
    SyntheticSpec spec;
    spec.name = "service";
    spec.proc_count = 80;
    spec.total_bytes = 160 * 1024;
    spec.popular_count = 24;
    spec.popular_bytes = 40 * 1024;
    spec.phase_count = 3;
    spec.ranks = 3;
    spec.seed = 2024;
    const WorkloadModel model = buildSyntheticWorkload(spec);

    const CacheConfig cache = CacheConfig::paperDefault();
    CollectorOptions copts;
    copts.byte_budget = 2 * cache.size_bytes;
    ProfileCollector collector(model.program, copts);

    // "Run" the program; every run goes straight into the collector
    // (in a real deployment this is the instrumentation callback; the
    // paper reports ~25x slowdown for the instrumented binaries).
    WorkloadInput input;
    input.seed = 7;
    input.target_runs = 200000;
    const Trace execution = synthesizeTrace(model, input);
    for (const TraceEvent &ev : execution.events())
        collector.onRun(ev.proc, ev.offset, ev.length);

    std::cout << "collected " << collector.runCount()
              << " runs without storing a trace\n";
    CollectedProfile profile = collector.take();
    std::cout << "WCG edges: " << profile.wcg.edgeCount()
              << ", TRG_select edges: "
              << profile.trg_select.edgeCount()
              << ", TRG_place edges: " << profile.trg_place.edgeCount()
              << ", avg Q size: " << profile.avg_queue_procs << "\n";

    // Derive the popular set from the collected statistics and place.
    const PopularSet popular =
        selectPopular(model.program, profile.stats);
    PlacementContext ctx;
    ctx.program = &model.program;
    ctx.cache = cache;
    ctx.chunks = &collector.chunks();
    ctx.wcg = &profile.wcg;
    ctx.trg_select = &profile.trg_select;
    ctx.trg_place = &profile.trg_place;
    ctx.popular = popular.mask;
    ctx.heat.assign(model.program.procCount(), 0.0);
    for (std::size_t i = 0; i < ctx.heat.size(); ++i)
        ctx.heat[i] =
            static_cast<double>(profile.stats.bytes_fetched[i]);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);

    // Evaluate on a second, different execution of the service.
    WorkloadInput next;
    next.seed = 8;
    next.target_runs = 200000;
    const Trace rerun = synthesizeTrace(model, next);
    const FetchStream stream(model.program, rerun, cache.line_bytes);
    const Layout default_layout =
        Layout::defaultOrder(model.program, cache.line_bytes);
    std::cout << "next execution, default layout: "
              << layoutMissRate(model.program, default_layout, stream,
                                cache) *
                     100.0
              << "% miss rate\n";
    std::cout << "next execution, GBSC layout:    "
              << layoutMissRate(model.program, layout, stream, cache) *
                     100.0
              << "% miss rate\n";
    return 0;
}
