/**
 * @file
 * Quickstart: the minimal end-to-end use of libtopo's public API.
 *
 *   1. Describe a program (procedures and sizes).
 *   2. Provide a profiling trace (here: hand-written runs).
 *   3. Build the temporal relationship graphs.
 *   4. Run GBSC to get a cache-conscious layout.
 *   5. Compare miss rates against the default layout.
 */

#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/placement/gbsc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/program/layout_script.hh"

int
main()
{
    using namespace topo;

    // 1. A toy program: two hot procedures that alternate (and fit in
    //    the cache together — if they do not overlap), a dead legacy
    //    blob sitting between them in source order, one hot procedure
    //    used in a different phase, and cold helpers. With the default
    //    source-order layout, legacy_code pushes eval onto the same
    //    cache lines as parse.
    Program program("quickstart");
    const ProcId parse = program.addProcedure("parse", 1800);
    const ProcId legacy = program.addProcedure("legacy_code", 2240);
    const ProcId eval = program.addProcedure("eval", 1600);
    const ProcId report = program.addProcedure("report", 2500);
    const ProcId init = program.addProcedure("init", 4000);
    const ProcId cleanup = program.addProcedure("cleanup", 1500);

    // 2. A trace: init once; parse/eval alternate; then a report
    //    phase; cleanup once. (Real users feed measured traces, e.g.
    //    through topo::readTrace.)
    Trace trace(program.procCount());
    trace.appendWhole(init, 4000);
    for (int i = 0; i < 2000; ++i) {
        trace.appendWhole(parse, 1800);
        trace.appendWhole(eval, 1600);
    }
    for (int i = 0; i < 800; ++i)
        trace.appendWhole(report, 2500);
    trace.appendWhole(cleanup, 1500);
    (void)legacy; // never executed; it only occupies address space

    // 3. Profile: chunk map + both TRGs (Q budget = 2x cache size).
    const CacheConfig cache{4096, 32, 1}; // deliberately small: 4KB
    const ChunkMap chunks(program, 256);
    TrgBuildOptions trg_opts;
    trg_opts.byte_budget = 2 * cache.size_bytes;
    const TrgBuildResult trgs =
        buildTrgs(program, chunks, trace, trg_opts);

    // 4. Place with GBSC.
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    const Gbsc gbsc;
    const Layout optimized = gbsc.place(ctx);

    // 5. Measure.
    const FetchStream stream(program, trace, cache.line_bytes);
    const Layout default_layout =
        Layout::defaultOrder(program, cache.line_bytes);
    const double default_mr =
        layoutMissRate(program, default_layout, stream, cache);
    const double gbsc_mr =
        layoutMissRate(program, optimized, stream, cache);

    std::cout << "Cache: " << cache.describe() << "\n";
    std::cout << "Default layout miss rate: " << default_mr * 100.0
              << "%\n";
    std::cout << "GBSC layout miss rate:    " << gbsc_mr * 100.0
              << "%\n\n";
    std::cout << "GBSC placement map:\n";
    writePlacementMap(std::cout, program, optimized, cache.line_bytes,
                      cache.lineCount());
    return 0;
}
