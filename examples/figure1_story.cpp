/**
 * @file
 * A narrated walk through the paper's Section 1 motivating example,
 * aimed at readers new to the library: why call counts are not enough
 * and what temporal ordering information adds. Uses only the public
 * API; see bench/figure1_wcg_ambiguity.cpp for the raw numbers.
 */

#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/placement/gbsc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/workload/figure1.hh"

int
main()
{
    using namespace topo;
    const Figure1Example ex = makeFigure1Example();
    const char *names = "MXYZ";

    std::cout <<
        "The Figure 1 program: M repeatedly calls X (when cond holds)\n"
        "or Y (otherwise), and every fourth iteration also calls Z.\n"
        "All four procedures are one cache line; the cache has three\n"
        "lines. Two runs produce the same call counts:\n"
        "  trace #1: cond alternates true/false each iteration\n"
        "  trace #2: cond true for 40 iterations, then false for 40\n\n";

    const Trace t1 = ex.trace1();
    const Trace t2 = ex.trace2();
    const WeightedGraph wcg = buildWcg(ex.program, t1);
    std::cout << "Call-transition (WCG) weights, identical for both:\n";
    for (ProcId a = 0; a < 4; ++a) {
        for (ProcId b = a + 1; b < 4; ++b) {
            if (wcg.weight(a, b) > 0.0) {
                std::cout << "  " << names[a] << "-" << names[b]
                          << ": " << wcg.weight(a, b) << "\n";
            }
        }
    }

    const ChunkMap chunks(ex.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 2 * ex.cache.size_bytes;
    const TrgBuildResult trg1 = buildTrgs(ex.program, chunks, t1, opts);
    const TrgBuildResult trg2 = buildTrgs(ex.program, chunks, t2, opts);
    std::cout << "\nTemporal (TRG) weight of the sibling pair X-Y:\n"
              << "  trace #1 (alternating): "
              << trg1.select.weight(ex.x, ex.y) << "\n"
              << "  trace #2 (phased):      "
              << trg2.select.weight(ex.x, ex.y) << "\n";
    std::cout << "Only the TRG sees that trace #1 interleaves X and Y\n"
                 "while trace #2 never does.\n\n";

    auto place_and_measure = [&](const Trace &trace, const char *label) {
        const TrgBuildResult trg =
            buildTrgs(ex.program, chunks, trace, opts);
        PlacementContext ctx;
        ctx.program = &ex.program;
        ctx.cache = ex.cache;
        ctx.chunks = &chunks;
        ctx.trg_select = &trg.select;
        ctx.trg_place = &trg.place;
        const Gbsc gbsc;
        const Layout layout = gbsc.place(ctx);
        const FetchStream stream(ex.program, trace,
                                 ex.cache.line_bytes);
        const SimResult result =
            simulateLayout(ex.program, layout, stream, ex.cache);
        std::cout << "GBSC layout for " << label << ": cache lines ";
        for (ProcId p = 0; p < 4; ++p) {
            std::cout << names[p] << "="
                      << layout.startLine(p, ex.cache.line_bytes) % 3
                      << (p == 3 ? "" : ", ");
        }
        std::cout << " -> " << result.misses << " misses / "
                  << result.accesses << " accesses\n";
    };
    place_and_measure(t1, "trace #1");
    place_and_measure(t2, "trace #2");
    std::cout << "\nGBSC adapts the layout to the interleaving; a\n"
                 "WCG-driven placement cannot tell the traces apart.\n";
    return 0;
}
