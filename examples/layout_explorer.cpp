/**
 * @file
 * Layout explorer: compare default, PH, HKC and GBSC layouts on one
 * of the paper-suite benchmarks, with per-procedure miss attribution
 * for the worst offenders and an optional linker-script dump.
 *
 * Usage: layout_explorer [--benchmark=go] [--trace-scale=0.3]
 *                        [--cache-kb=8] [--emit-script=PATH]
 */

#include <fstream>
#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/program/layout_script.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "layout_explorer --benchmark=NAME "
                     "--trace-scale=F --cache-kb=N "
                     "--emit-script=PATH\n";
        return 0;
    }
    const std::string name = opts.getString("benchmark", "go");
    const double scale = opts.getDouble("trace-scale", 0.3);
    const EvalOptions eval = evalOptionsFrom(opts);

    std::cerr << "profiling " << name << " (trace scale " << scale
              << ") ...\n";
    const BenchmarkCase bench = paperBenchmark(name, scale);
    const ProfileBundle bundle(bench, eval);
    const PlacementContext ctx = bundle.makeContext();

    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;

    TextTable table({"algorithm", "test MR", "train MR",
                     "text extent"});
    Layout best = def.place(ctx);
    double best_mr = bundle.testMissRate(best);
    for (const PlacementAlgorithm *algo :
         std::initializer_list<const PlacementAlgorithm *>{&def, &ph,
                                                           &hkc, &gbsc}) {
        const Layout layout = algo->place(ctx);
        const double mr = bundle.testMissRate(layout);
        table.addRow({algo->name(), fmtPercent(mr),
                      fmtPercent(bundle.trainMissRate(layout)),
                      fmtBytes(layout.extent(bundle.program()))});
        if (mr < best_mr) {
            best_mr = mr;
            best = layout;
        }
    }
    table.render(std::cout, "Layouts for " + name + " on " +
                                eval.cache.describe());

    // Per-procedure misses of the winning layout.
    const SimResult detail = simulateLayout(
        bundle.program(), best, bundle.testStream(), eval.cache, true);
    std::vector<std::pair<std::uint64_t, ProcId>> offenders;
    for (ProcId i = 0; i < bundle.program().procCount(); ++i)
        offenders.emplace_back(detail.misses_by_proc[i], i);
    std::sort(offenders.rbegin(), offenders.rend());
    TextTable worst({"procedure", "misses", "share of all misses"});
    for (int i = 0; i < 8 && offenders[i].first > 0; ++i) {
        worst.addRow(
            {bundle.program().proc(offenders[i].second).name,
             std::to_string(offenders[i].first),
             fmtPercent(static_cast<double>(offenders[i].first) /
                        static_cast<double>(detail.misses))});
    }
    std::cout << '\n';
    worst.render(std::cout, "Top miss contributors (best layout)");

    const std::string script_path = opts.getString("emit-script", "");
    if (!script_path.empty()) {
        std::ofstream os(script_path);
        writeLinkerScript(os, bundle.program(), best,
                          eval.cache.line_bytes);
        std::cout << "\nwrote linker script to " << script_path << "\n";
    }
    return 0;
}
