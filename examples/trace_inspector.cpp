/**
 * @file
 * Trace inspector: profile-side diagnostics for a benchmark's
 * training trace — reference histogram, popular-set composition,
 * TRG/WCG edge statistics, and Q occupancy — the numbers a user would
 * check before trusting a placement.
 *
 * Usage: trace_inspector [--benchmark=perl] [--trace-scale=0.3]
 */

#include <algorithm>
#include <iostream>

#include "topo/eval/reports.hh"
#include "topo/util/table.hh"

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested()) {
        std::cout << "trace_inspector --benchmark=NAME "
                     "--trace-scale=F\n";
        return 0;
    }
    const std::string name = opts.getString("benchmark", "perl");
    const double scale = opts.getDouble("trace-scale", 0.3);
    const EvalOptions eval = evalOptionsFrom(opts);

    std::cerr << "profiling " << name << " ...\n";
    const BenchmarkCase bench = paperBenchmark(name, scale);
    const ProfileBundle bundle(bench, eval);
    const TraceStats &stats = bundle.trainStats();

    std::cout << "Benchmark " << name << ": "
              << bundle.program().procCount() << " procedures, "
              << fmtBytes(bundle.program().totalSize())
              << " of text.\n";
    std::cout << "Training input '" << bench.train.name << "': "
              << fmtCount(stats.total_runs) << " runs, "
              << fmtCount(stats.total_bytes) << " bytes fetched, "
              << stats.procs_touched << " procedures touched.\n";
    std::cout << "Popular set: " << bundle.popular().count
              << " procedures, " << fmtBytes(bundle.popular().bytes)
              << " (" << fmtPercent(bundle.popular().covered)
              << " of dynamic bytes).\n";
    std::cout << "Average procedures resident in Q: "
              << fmtDouble(bundle.avgQueueProcs(), 1) << " (Q budget "
              << eval.q_budget_factor << "x " << eval.cache.size_bytes
              << " B).\n\n";

    // Hottest procedures.
    std::vector<ProcId> order(bundle.program().procCount());
    for (ProcId i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
        return stats.bytes_fetched[a] > stats.bytes_fetched[b];
    });
    TextTable hot({"procedure", "size", "bytes fetched",
                   "share of trace"});
    for (int i = 0; i < 10; ++i) {
        const ProcId p = order[i];
        hot.addRow({bundle.program().proc(p).name,
                    fmtBytes(bundle.program().proc(p).size_bytes),
                    fmtCount(stats.bytes_fetched[p]),
                    fmtPercent(static_cast<double>(
                                   stats.bytes_fetched[p]) /
                               static_cast<double>(stats.total_bytes))});
    }
    hot.render(std::cout, "Hottest procedures");

    // Graph statistics: the TRG's extra information over the WCG.
    std::size_t wcg_popular_edges = 0;
    for (const auto &e : bundle.wcg().edges()) {
        if (bundle.popular().mask[e.u] && bundle.popular().mask[e.v])
            ++wcg_popular_edges;
    }
    TextTable graphs({"graph", "nodes", "edges", "total weight"});
    graphs.addRow({"WCG (popular-popular edges)",
                   std::to_string(bundle.popular().count),
                   std::to_string(wcg_popular_edges), "-"});
    graphs.addRow({"TRG_select",
                   std::to_string(bundle.popular().count),
                   std::to_string(bundle.trgSelect().edgeCount()),
                   fmtCount(static_cast<std::uint64_t>(
                       bundle.trgSelect().totalWeight()))});
    graphs.addRow({"TRG_place (chunks)",
                   std::to_string(bundle.chunks().chunkCount()),
                   std::to_string(bundle.trgPlace().edgeCount()),
                   fmtCount(static_cast<std::uint64_t>(
                       bundle.trgPlace().totalWeight()))});
    std::cout << '\n';
    graphs.render(std::cout, "Relationship graphs (training trace)");
    std::cout << "\nThe TRG's additional edges are exactly the "
                 "sibling/distant interleavings the WCG cannot see "
                 "(Section 3).\n";
    return 0;
}
