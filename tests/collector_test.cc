/**
 * @file
 * Tests for the streaming profiling path (Section 4.4): the
 * TrgAccumulator and ProfileCollector must produce byte-identical
 * results to the batch builders.
 */

#include <gtest/gtest.h>

#include "topo/profile/collector.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/error.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{
namespace
{

struct Scenario
{
    WorkloadModel model;
    Trace trace{0};

    Scenario()
    {
        SyntheticSpec spec;
        spec.name = "stream";
        spec.proc_count = 40;
        spec.total_bytes = 80 * 1024;
        spec.popular_count = 14;
        spec.popular_bytes = 24 * 1024;
        spec.phase_count = 3;
        spec.ranks = 3;
        spec.seed = 31;
        model = buildSyntheticWorkload(spec);
        WorkloadInput input;
        input.seed = 32;
        input.target_runs = 15000;
        trace = synthesizeTrace(model, input);
    }
};

void
expectSameGraph(const WeightedGraph &a, const WeightedGraph &b)
{
    ASSERT_EQ(a.nodeCount(), b.nodeCount());
    ASSERT_EQ(a.edgeCount(), b.edgeCount());
    for (const auto &e : a.edges())
        EXPECT_DOUBLE_EQ(e.weight, b.weight(e.u, e.v));
}

TEST(TrgAccumulator, MatchesBatchBuilder)
{
    const Scenario s;
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;

    const TrgBuildResult batch =
        buildTrgs(s.model.program, chunks, s.trace, opts);

    TrgAccumulator acc(s.model.program, chunks, opts);
    for (const TraceEvent &ev : s.trace.events())
        acc.onRun(ev.proc, ev.offset, ev.length);
    const TrgBuildResult streamed = acc.take();

    expectSameGraph(batch.select, streamed.select);
    expectSameGraph(batch.place, streamed.place);
    EXPECT_EQ(batch.proc_steps, streamed.proc_steps);
    EXPECT_DOUBLE_EQ(batch.avg_queue_procs, streamed.avg_queue_procs);
}

TEST(TrgAccumulator, TakeResetsSession)
{
    const Scenario s;
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 16 * 1024;
    TrgAccumulator acc(s.model.program, chunks, opts);
    acc.onTrace(s.trace);
    const TrgBuildResult first = acc.take();
    // Second identical session must reproduce the first exactly.
    acc.onTrace(s.trace);
    const TrgBuildResult second = acc.take();
    expectSameGraph(first.select, second.select);
    EXPECT_EQ(first.proc_steps, second.proc_steps);
    // An empty session yields empty graphs.
    const TrgBuildResult empty = acc.take();
    EXPECT_EQ(empty.proc_steps, 0u);
    EXPECT_EQ(empty.select.edgeCount(), 0u);
}

TEST(TrgAccumulator, RejectsBadRuns)
{
    const Scenario s;
    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 4096;
    TrgAccumulator acc(s.model.program, chunks, opts);
    EXPECT_THROW(acc.onRun(9999, 0, 8), TopoError);
    EXPECT_THROW(acc.onRun(0, 0, 0), TopoError);
    const std::uint32_t size = s.model.program.proc(0).size_bytes;
    EXPECT_THROW(acc.onRun(0, size - 1, 2), TopoError);
}

TEST(ProfileCollector, MatchesBatchPipeline)
{
    const Scenario s;
    CollectorOptions opts;
    opts.byte_budget = 16 * 1024;
    opts.chunk_bytes = 256;
    ProfileCollector collector(s.model.program, opts);
    collector.onTrace(s.trace);
    EXPECT_EQ(collector.runCount(), s.trace.size());
    const CollectedProfile profile = collector.take();

    const WeightedGraph wcg = buildWcg(s.model.program, s.trace);
    expectSameGraph(profile.wcg, wcg);

    const ChunkMap chunks(s.model.program, 256);
    TrgBuildOptions trg_opts;
    trg_opts.byte_budget = 16 * 1024;
    const TrgBuildResult batch =
        buildTrgs(s.model.program, chunks, s.trace, trg_opts);
    expectSameGraph(profile.trg_select, batch.select);
    expectSameGraph(profile.trg_place, batch.place);
    EXPECT_DOUBLE_EQ(profile.avg_queue_procs, batch.avg_queue_procs);

    const TraceStats stats = computeTraceStats(s.model.program, s.trace);
    EXPECT_EQ(profile.stats.total_runs, stats.total_runs);
    EXPECT_EQ(profile.stats.total_bytes, stats.total_bytes);
    EXPECT_EQ(profile.stats.procs_touched, stats.procs_touched);
    for (std::size_t i = 0; i < stats.bytes_fetched.size(); ++i)
        EXPECT_EQ(profile.stats.bytes_fetched[i],
                  stats.bytes_fetched[i]);
}

TEST(ProfileCollector, OnProcedureIsWholeRun)
{
    Program program("p");
    const ProcId f = program.addProcedure("f", 300);
    CollectorOptions opts;
    opts.byte_budget = 4096;
    ProfileCollector collector(program, opts);
    collector.onProcedure(f);
    const CollectedProfile profile = collector.take();
    EXPECT_EQ(profile.stats.bytes_fetched[f], 300u);
    EXPECT_EQ(profile.stats.total_runs, 1u);
}

TEST(ProfileCollector, GraphSelectionFlags)
{
    const Scenario s;
    CollectorOptions opts;
    opts.byte_budget = 8192;
    opts.build_wcg = false;
    opts.build_place = false;
    ProfileCollector collector(s.model.program, opts);
    collector.onTrace(s.trace);
    const CollectedProfile profile = collector.take();
    EXPECT_EQ(profile.wcg.nodeCount(), 0u);
    EXPECT_EQ(profile.trg_place.nodeCount(), 0u);
    EXPECT_GT(profile.trg_select.edgeCount(), 0u);
}

TEST(ProfileCollector, PopularFilterOnlyAffectsTrgs)
{
    const Scenario s;
    std::vector<bool> nobody(s.model.program.procCount(), false);
    CollectorOptions opts;
    opts.byte_budget = 8192;
    opts.popular = &nobody;
    ProfileCollector collector(s.model.program, opts);
    collector.onTrace(s.trace);
    const CollectedProfile profile = collector.take();
    EXPECT_EQ(profile.trg_select.edgeCount(), 0u);
    EXPECT_GT(profile.wcg.edgeCount(), 0u);       // unfiltered
    EXPECT_GT(profile.stats.total_runs, 0u);      // unfiltered
}

} // namespace
} // namespace topo
