/**
 * @file
 * Round-trip and error-handling tests for the interchange formats:
 * program descriptions and layouts (the CLI tool formats).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Program
sampleProgram()
{
    Program p("sample");
    p.addProcedure("main", 400);
    p.addProcedure("helper", 96);
    p.addProcedure("big_one", 10000);
    return p;
}

TEST(ProgramIo, RoundTrip)
{
    const Program p = sampleProgram();
    std::stringstream ss;
    writeProgram(ss, p);
    const Program back = readProgram(ss, "back");
    ASSERT_EQ(back.procCount(), p.procCount());
    for (ProcId i = 0; i < p.procCount(); ++i) {
        EXPECT_EQ(back.proc(i).name, p.proc(i).name);
        EXPECT_EQ(back.proc(i).size_bytes, p.proc(i).size_bytes);
    }
    EXPECT_EQ(back.totalSize(), p.totalSize());
}

TEST(ProgramIo, CommentsAndBlanksIgnored)
{
    std::stringstream ss("topo-program v1\n# hi\n\nf 100\n");
    const Program p = readProgram(ss);
    EXPECT_EQ(p.procCount(), 1u);
    EXPECT_EQ(p.findProc("f"), 0u);
}

TEST(ProgramIo, RejectsMalformedInput)
{
    {
        std::stringstream ss("not-a-program\n");
        EXPECT_THROW(readProgram(ss), TopoError);
    }
    {
        std::stringstream ss("topo-program v1\nf\n");
        EXPECT_THROW(readProgram(ss), TopoError); // missing size
    }
    {
        std::stringstream ss("topo-program v1\nf 0\n");
        EXPECT_THROW(readProgram(ss), TopoError); // zero size
    }
    {
        std::stringstream ss("topo-program v1\nf 10\nf 20\n");
        EXPECT_THROW(readProgram(ss), TopoError); // duplicate
    }
}

TEST(ProgramIo, FileRoundTrip)
{
    const Program p = sampleProgram();
    const std::string path = "/tmp/topo_program_io_test.prog";
    saveProgram(path, p);
    const Program back = loadProgram(path);
    EXPECT_EQ(back.procCount(), p.procCount());
    std::remove(path.c_str());
    EXPECT_THROW(loadProgram("/nonexistent/nope.prog"), TopoError);
}

TEST(LayoutIo, RoundTrip)
{
    const Program p = sampleProgram();
    const Layout layout =
        Layout::fromCacheOffsets(p, {2, 0, 1}, {5, 0, 3}, 32, 8);
    std::stringstream ss;
    writeLayout(ss, p, layout);
    const Layout back = readLayout(ss, p);
    for (ProcId i = 0; i < p.procCount(); ++i)
        EXPECT_EQ(back.address(i), layout.address(i));
}

TEST(LayoutIo, V2RoundTripCarriesProvenance)
{
    const Program p = sampleProgram();
    const Layout layout =
        Layout::fromCacheOffsets(p, {2, 0, 1}, {5, 0, 3}, 32, 8);
    LayoutProvenance prov;
    prov.algorithm = "gbsc";
    prov.cache = "8KB direct-mapped, 32B lines";
    prov.git_sha = "0123abcd";
    prov.seed = "42";
    std::stringstream ss;
    writeLayout(ss, p, layout, prov);
    EXPECT_EQ(ss.str().substr(0, 14), "topo-layout v2");
    LayoutProvenance back_prov;
    const Layout back = readLayout(ss, p, &back_prov);
    for (ProcId i = 0; i < p.procCount(); ++i)
        EXPECT_EQ(back.address(i), layout.address(i));
    EXPECT_EQ(back_prov.algorithm, prov.algorithm);
    EXPECT_EQ(back_prov.cache, prov.cache);
    EXPECT_EQ(back_prov.git_sha, prov.git_sha);
    EXPECT_EQ(back_prov.seed, prov.seed);
    EXPECT_FALSE(back_prov.empty());
    EXPECT_EQ(back_prov.describe(),
              "algorithm=gbsc cache=8KB direct-mapped, 32B lines "
              "sha=0123abcd seed=42");
}

TEST(LayoutIo, V2OmitsEmptyFieldsAndV1StillReads)
{
    const Program p = sampleProgram();
    const Layout layout =
        Layout::fromCacheOffsets(p, {0, 1, 2}, {0, 0, 0}, 32, 8);
    // Partially-filled provenance: unset keys must not be written.
    LayoutProvenance prov;
    prov.algorithm = "ph";
    std::stringstream ss;
    writeLayout(ss, p, layout, prov);
    EXPECT_EQ(ss.str().find("!cache"), std::string::npos);
    EXPECT_EQ(ss.str().find("!seed"), std::string::npos);
    LayoutProvenance back_prov;
    readLayout(ss, p, &back_prov);
    EXPECT_EQ(back_prov.algorithm, "ph");
    EXPECT_TRUE(back_prov.cache.empty());

    // A v1 file keeps reading, and parses to empty provenance.
    std::stringstream v1;
    writeLayout(v1, p, layout);
    EXPECT_EQ(v1.str().substr(0, 14), "topo-layout v1");
    LayoutProvenance none;
    none.algorithm = "stale"; // must be overwritten
    const Layout back = readLayout(v1, p, &none);
    EXPECT_TRUE(none.empty());
    for (ProcId i = 0; i < p.procCount(); ++i)
        EXPECT_EQ(back.address(i), layout.address(i));
}

TEST(LayoutIo, V2RejectsUnknownKeysAndV1RejectsMetadata)
{
    const Program p = sampleProgram();
    {
        // Unknown metadata key: corrupt, not silently dropped.
        std::stringstream ss("topo-layout v2\n!flavor vanilla\n");
        try {
            readLayout(ss, p);
            FAIL() << "unknown key accepted";
        } catch (const TopoError &err) {
            EXPECT_EQ(err.code(), ErrCode::kCorrupt);
        }
    }
    {
        // Metadata line in a v1 file: corrupt.
        std::stringstream ss(
            "topo-layout v1\n!algorithm gbsc\nmain 0\n");
        EXPECT_THROW(readLayout(ss, p), TopoError);
    }
}

TEST(LayoutIo, FileRoundTripWithProvenance)
{
    const Program p = sampleProgram();
    const Layout layout =
        Layout::fromCacheOffsets(p, {0, 1, 2}, {0, 0, 0}, 32, 8);
    LayoutProvenance prov;
    prov.algorithm = "hkc";
    prov.git_sha = "feedbead";
    const std::string path = "/tmp/topo_layout_io_v2_test.layout";
    saveLayout(path, p, layout, prov);
    LayoutProvenance back_prov;
    const Layout back = loadLayout(path, p, &back_prov);
    std::remove(path.c_str());
    EXPECT_EQ(back_prov.algorithm, "hkc");
    EXPECT_EQ(back_prov.git_sha, "feedbead");
    for (ProcId i = 0; i < p.procCount(); ++i)
        EXPECT_EQ(back.address(i), layout.address(i));
}

TEST(LayoutIo, RejectsBadInput)
{
    const Program p = sampleProgram();
    {
        std::stringstream ss("nope\n");
        EXPECT_THROW(readLayout(ss, p), TopoError);
    }
    {
        // Unknown procedure.
        std::stringstream ss("topo-layout v1\nmystery 0\n");
        EXPECT_THROW(readLayout(ss, p), TopoError);
    }
    {
        // Duplicate procedure.
        std::stringstream ss(
            "topo-layout v1\nmain 0\nmain 512\nhelper 1024\n"
            "big_one 2048\n");
        EXPECT_THROW(readLayout(ss, p), TopoError);
    }
    {
        // Incomplete layout.
        std::stringstream ss("topo-layout v1\nmain 0\n");
        EXPECT_THROW(readLayout(ss, p), TopoError);
    }
}

TEST(ProgramIo, MalformedInputCarriesTheCorruptCode)
{
    // Damaged interchange files must map to exit code 2, not a generic
    // failure: the CLI layer relies on the code to tell "your file is
    // broken" apart from "you passed the wrong flags".
    std::stringstream ss("not-a-program\n");
    try {
        readProgram(ss);
        FAIL() << "expected a TopoError";
    } catch (const TopoError &err) {
        EXPECT_EQ(err.code(), ErrCode::kCorrupt);
        EXPECT_EQ(err.exitCode(), 2);
    }
}

TEST(LayoutIo, MalformedInputCarriesTheCorruptCode)
{
    const Program p = sampleProgram();
    std::stringstream ss("topo-layout v1\nmystery 0\n");
    try {
        readLayout(ss, p);
        FAIL() << "expected a TopoError";
    } catch (const TopoError &err) {
        EXPECT_EQ(err.code(), ErrCode::kCorrupt);
    }
}

TEST(LayoutIo, PreservesGaps)
{
    const Program p = sampleProgram();
    Layout layout(p.procCount());
    layout.setAddress(0, 0);
    layout.setAddress(1, 4096); // large deliberate gap
    layout.setAddress(2, 65536);
    std::stringstream ss;
    writeLayout(ss, p, layout);
    const Layout back = readLayout(ss, p);
    EXPECT_EQ(back.address(1), 4096u);
    EXPECT_EQ(back.address(2), 65536u);
}

} // namespace
} // namespace topo
