/**
 * @file
 * Tests for the WCG builder (Section 2 semantics), the WeightedGraph
 * container, and the Section 6 pair database.
 */

#include <gtest/gtest.h>

#include "topo/profile/pair_database.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/profile/weighted_graph.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

TEST(WeightedGraph, AddAndQuery)
{
    WeightedGraph g(4);
    g.addWeight(0, 1, 2.0);
    g.addWeight(1, 0, 3.0);
    EXPECT_DOUBLE_EQ(g.weight(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 0), 5.0);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_FALSE(g.hasEdge(0, 2));
    EXPECT_EQ(g.edgeCount(), 1u);
    EXPECT_DOUBLE_EQ(g.totalWeight(), 5.0);
}

TEST(WeightedGraph, SelfEdgeRejected)
{
    WeightedGraph g(2);
    EXPECT_THROW(g.addWeight(1, 1, 1.0), TopoError);
}

TEST(WeightedGraph, SetWeightRequiresExistingEdge)
{
    WeightedGraph g(3);
    EXPECT_THROW(g.setWeight(0, 1, 2.0), TopoError);
    g.addWeight(0, 1, 1.0);
    g.setWeight(0, 1, 9.0);
    EXPECT_DOUBLE_EQ(g.weight(1, 0), 9.0);
}

TEST(WeightedGraph, EdgesEnumeratedOnce)
{
    WeightedGraph g(5);
    g.addWeight(0, 1, 1.0);
    g.addWeight(2, 3, 2.0);
    g.addWeight(1, 4, 3.0);
    const auto edges = g.edges();
    EXPECT_EQ(edges.size(), 3u);
    for (const auto &e : edges)
        EXPECT_LT(e.u, e.v);
}

TEST(WeightedGraph, AddGraphMergesProfiles)
{
    WeightedGraph a(4), b(4);
    a.addWeight(0, 1, 3.0);
    a.addWeight(1, 2, 2.0);
    b.addWeight(0, 1, 4.0); // overlaps
    b.addWeight(2, 3, 5.0); // new edge
    a.addGraph(b);
    EXPECT_DOUBLE_EQ(a.weight(0, 1), 7.0);
    EXPECT_DOUBLE_EQ(a.weight(1, 2), 2.0);
    EXPECT_DOUBLE_EQ(a.weight(2, 3), 5.0);
    EXPECT_EQ(a.edgeCount(), 3u);
}

TEST(WeightedGraph, AddGraphScalesAndChecks)
{
    WeightedGraph a(3), b(3), wrong(5);
    b.addWeight(0, 2, 10.0);
    a.addGraph(b, 0.5);
    EXPECT_DOUBLE_EQ(a.weight(0, 2), 5.0);
    EXPECT_THROW(a.addGraph(wrong), TopoError);
}

TEST(WeightedGraph, OutOfRangeChecked)
{
    WeightedGraph g(2);
    EXPECT_THROW(g.addWeight(0, 2, 1.0), TopoError);
    EXPECT_THROW(g.weight(5, 0), TopoError);
}

TEST(Wcg, CountsTransitionsBothWays)
{
    // Trace f g f g: transitions f->g, g->f, f->g = weight 3; this is
    // the paper's "twice the call count" convention (calls + returns).
    Program p("t");
    const ProcId f = p.addProcedure("f", 32);
    const ProcId g = p.addProcedure("g", 32);
    Trace t(2);
    t.append(f, 0, 32);
    t.append(g, 0, 32);
    t.append(f, 0, 32);
    t.append(g, 0, 32);
    const WeightedGraph wcg = buildWcg(p, t);
    EXPECT_DOUBLE_EQ(wcg.weight(f, g), 3.0);
}

TEST(Wcg, ConsecutiveRunsOfSameProcNotTransitions)
{
    Program p("t");
    const ProcId f = p.addProcedure("f", 64);
    const ProcId g = p.addProcedure("g", 32);
    Trace t(2);
    t.append(f, 0, 32);
    t.append(f, 32, 32); // same procedure: not a transition
    t.append(g, 0, 32);
    const WeightedGraph wcg = buildWcg(p, t);
    EXPECT_DOUBLE_EQ(wcg.weight(f, g), 1.0);
}

TEST(Wcg, NoCrossEdgesForSiblings)
{
    // M X M Y M X M Y: siblings X and Y never get a WCG edge — the
    // limitation the TRG fixes.
    Program p("t");
    const ProcId m = p.addProcedure("M", 32);
    const ProcId x = p.addProcedure("X", 32);
    const ProcId y = p.addProcedure("Y", 32);
    Trace t(3);
    for (int i = 0; i < 4; ++i) {
        t.append(m, 0, 32);
        t.append(i % 2 ? y : x, 0, 32);
    }
    const WeightedGraph wcg = buildWcg(p, t);
    EXPECT_DOUBLE_EQ(wcg.weight(x, y), 0.0);
    EXPECT_GT(wcg.weight(m, x), 0.0);
    EXPECT_GT(wcg.weight(m, y), 0.0);
}

TEST(PairDatabase, AddGetUnordered)
{
    PairDatabase db;
    db.add(1, 2, 3, 2.0);
    db.add(1, 3, 2, 1.0); // same unordered pair
    EXPECT_DOUBLE_EQ(db.get(1, 2, 3), 3.0);
    EXPECT_DOUBLE_EQ(db.get(1, 3, 2), 3.0);
    EXPECT_DOUBLE_EQ(db.get(2, 1, 3), 0.0);
    EXPECT_EQ(db.size(), 1u);
}

TEST(PairDatabase, DistinctIdsRequired)
{
    PairDatabase db;
    EXPECT_THROW(db.add(1, 1, 2, 1.0), TopoError);
    EXPECT_THROW(db.add(1, 2, 2, 1.0), TopoError);
}

TEST(PairDatabase, PruneDropsLightEntries)
{
    PairDatabase db;
    db.add(1, 2, 3, 5.0);
    db.add(1, 2, 4, 1.0);
    db.prune(2.0);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_DOUBLE_EQ(db.get(1, 2, 3), 5.0);
    EXPECT_DOUBLE_EQ(db.get(1, 2, 4), 0.0);
}

TEST(PairDatabase, EntriesRoundTrip)
{
    PairDatabase db;
    db.add(7, 9, 8, 4.0);
    const auto entries = db.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].p, 7u);
    EXPECT_EQ(entries[0].r, 8u); // stored lo/hi
    EXPECT_EQ(entries[0].s, 9u);
    EXPECT_DOUBLE_EQ(entries[0].weight, 4.0);
}

TEST(PairDatabase, BuildRecordsTriples)
{
    // Trace p r s p: the pair {r,s} appears between the two p's.
    Program prog("t");
    const ProcId p = prog.addProcedure("p", 32);
    const ProcId r = prog.addProcedure("r", 32);
    const ProcId s = prog.addProcedure("s", 32);
    Trace t(3);
    t.append(p, 0, 32);
    t.append(r, 0, 32);
    t.append(s, 0, 32);
    t.append(p, 0, 32);
    PairBuildOptions opts;
    opts.byte_budget = 1024;
    const PairDatabase db = buildPairDatabase(prog, t, opts);
    EXPECT_DOUBLE_EQ(db.get(p, r, s), 1.0);
}

TEST(PairDatabase, SingleInterveningBlockRecordsNothing)
{
    // One block between two p references: no displacing *pair* exists.
    Program prog("t");
    const ProcId p = prog.addProcedure("p", 32);
    const ProcId r = prog.addProcedure("r", 32);
    Trace t(2);
    t.append(p, 0, 32);
    t.append(r, 0, 32);
    t.append(p, 0, 32);
    PairBuildOptions opts;
    opts.byte_budget = 1024;
    const PairDatabase db = buildPairDatabase(prog, t, opts);
    EXPECT_EQ(db.size(), 0u);
}

TEST(PairDatabase, WindowCapsEnumeration)
{
    // Six blocks between two p references with window 2: only the pair
    // of the two most recent intervening blocks is recorded.
    Program prog("t");
    const ProcId p = prog.addProcedure("p", 32);
    std::vector<ProcId> mids;
    for (int i = 0; i < 6; ++i)
        mids.push_back(prog.addProcedure("m" + std::to_string(i), 32));
    Trace t(prog.procCount());
    t.append(p, 0, 32);
    for (ProcId m : mids)
        t.append(m, 0, 32);
    t.append(p, 0, 32);
    PairBuildOptions opts;
    opts.byte_budget = 4096;
    opts.pair_window = 2;
    const PairDatabase db = buildPairDatabase(prog, t, opts);
    EXPECT_EQ(db.size(), 1u);
    EXPECT_DOUBLE_EQ(db.get(p, mids[4], mids[5]), 1.0);
}

TEST(PairDatabase, PopularMaskFilters)
{
    Program prog("t");
    const ProcId p = prog.addProcedure("p", 32);
    const ProcId r = prog.addProcedure("r", 32);
    const ProcId s = prog.addProcedure("s", 32);
    const ProcId cold = prog.addProcedure("cold", 32);
    Trace t(4);
    t.append(p, 0, 32);
    t.append(r, 0, 32);
    t.append(cold, 0, 32);
    t.append(s, 0, 32);
    t.append(p, 0, 32);
    PairBuildOptions opts;
    opts.byte_budget = 1024;
    std::vector<bool> popular{true, true, true, false};
    opts.popular = &popular;
    const PairDatabase db = buildPairDatabase(prog, t, opts);
    EXPECT_DOUBLE_EQ(db.get(p, r, s), 1.0);
    EXPECT_DOUBLE_EQ(db.get(p, r, cold), 0.0);
}

} // namespace
} // namespace topo
