/**
 * @file
 * Tests for the evaluation harness: ProfileBundle, runComparison,
 * conflict metrics, layout offsets, and the Table 1 reporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "topo/eval/conflict_metric.hh"
#include "topo/eval/experiment.hh"
#include "topo/eval/reports.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/util/error.hh"
#include "topo/workload/synthetic_program.hh"

namespace topo
{
namespace
{

/** A small, fast benchmark case for harness tests. */
BenchmarkCase
miniCase()
{
    SyntheticSpec spec;
    spec.name = "mini";
    spec.proc_count = 50;
    spec.total_bytes = 100 * 1024;
    spec.popular_count = 16;
    spec.popular_bytes = 30 * 1024;
    spec.phase_count = 3;
    spec.ranks = 3;
    spec.seed = 99;
    BenchmarkCase bench;
    bench.name = spec.name;
    bench.model = buildSyntheticWorkload(spec);
    bench.train.name = "train";
    bench.train.seed = 1;
    bench.train.target_runs = 30000;
    bench.test.name = "test";
    bench.test.seed = 2;
    bench.test.target_runs = 30000;
    return bench;
}

EvalOptions
miniOptions()
{
    EvalOptions opts;
    opts.cache = CacheConfig{4096, 32, 1};
    return opts;
}

class EvalFixture : public ::testing::Test
{
  protected:
    EvalFixture() : bundle_(miniCase(), miniOptions()) {}
    ProfileBundle bundle_;
};

TEST_F(EvalFixture, BundlePipelineConsistency)
{
    EXPECT_EQ(bundle_.name(), "mini");
    EXPECT_EQ(bundle_.program().procCount(), 50u);
    EXPECT_GE(bundle_.trainTrace().size(), 30000u);
    EXPECT_GE(bundle_.testTrace().size(), 30000u);
    EXPECT_GT(bundle_.popular().count, 0u);
    EXPECT_LE(bundle_.popular().count, 50u);
    EXPECT_GT(bundle_.wcg().edgeCount(), 0u);
    EXPECT_GT(bundle_.trgSelect().edgeCount(), 0u);
    EXPECT_GT(bundle_.trgPlace().edgeCount(), 0u);
    EXPECT_GT(bundle_.avgQueueProcs(), 1.0);
    // The TRG has at least the popular-popular interleavings the WCG
    // lacks: typically strictly more edges than popular WCG pairs.
    EXPECT_GT(bundle_.trgSelect().edgeCount(), 0u);
}

TEST_F(EvalFixture, ContextPointsIntoBundle)
{
    const PlacementContext ctx = bundle_.makeContext();
    EXPECT_EQ(ctx.program, &bundle_.program());
    EXPECT_EQ(ctx.wcg, &bundle_.wcg());
    EXPECT_EQ(ctx.trg_select, &bundle_.trgSelect());
    EXPECT_EQ(ctx.popular.size(), 50u);
    EXPECT_EQ(ctx.heat.size(), 50u);
    // Overrides replace the stored graphs.
    WeightedGraph other(50);
    const PlacementContext ctx2 = bundle_.makeContext(&other);
    EXPECT_EQ(ctx2.wcg, &other);
}

TEST_F(EvalFixture, MissRatesAreSane)
{
    const DefaultPlacement def;
    const Layout layout = def.place(bundle_.makeContext());
    const double test_mr = bundle_.testMissRate(layout);
    const double train_mr = bundle_.trainMissRate(layout);
    EXPECT_GT(test_mr, 0.0);
    EXPECT_LT(test_mr, 0.9);
    EXPECT_GT(train_mr, 0.0);
}

TEST_F(EvalFixture, GbscBeatsDefaultOnTrain)
{
    // On its own training trace, GBSC must do no worse than the
    // arbitrary default layout (the fundamental sanity requirement).
    const DefaultPlacement def;
    const Gbsc gbsc;
    const PlacementContext ctx = bundle_.makeContext();
    const double default_mr = bundle_.trainMissRate(def.place(ctx));
    const double gbsc_mr = bundle_.trainMissRate(gbsc.place(ctx));
    EXPECT_LT(gbsc_mr, default_mr);
}

TEST_F(EvalFixture, RunComparisonShapes)
{
    const PettisHansen ph;
    const Gbsc gbsc;
    ComparisonOptions opts;
    opts.repetitions = 3;
    opts.scale = 0.1;
    const auto results = runComparison(bundle_, {&ph, &gbsc}, opts);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].algorithm, "PH");
    EXPECT_EQ(results[1].algorithm, "GBSC");
    for (const AlgorithmResult &res : results) {
        EXPECT_EQ(res.perturbed.size(), 3u);
        EXPECT_GT(res.unperturbed, 0.0);
        for (double mr : res.perturbed) {
            EXPECT_GT(mr, 0.0);
            EXPECT_LT(mr, 1.0);
        }
    }
}

TEST_F(EvalFixture, ComparisonDeterministicInSeed)
{
    const Gbsc gbsc;
    ComparisonOptions opts;
    opts.repetitions = 2;
    const auto a = runComparison(bundle_, {&gbsc}, opts);
    const auto b = runComparison(bundle_, {&gbsc}, opts);
    ASSERT_EQ(a[0].perturbed.size(), b[0].perturbed.size());
    for (std::size_t i = 0; i < a[0].perturbed.size(); ++i)
        EXPECT_DOUBLE_EQ(a[0].perturbed[i], b[0].perturbed[i]);
}

TEST_F(EvalFixture, LayoutOffsetsModuloCache)
{
    const DefaultPlacement def;
    const Layout layout = def.place(bundle_.makeContext());
    const auto offsets = layoutOffsets(bundle_.program(), layout,
                                       bundle_.options().cache);
    ASSERT_EQ(offsets.size(), 50u);
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        EXPECT_LT(offsets[i], bundle_.options().cache.lineCount());
        EXPECT_EQ(offsets[i],
                  layout.startLine(static_cast<ProcId>(i), 32) % 128);
    }
}

TEST_F(EvalFixture, ConflictMetricsDiscriminateLayouts)
{
    // A GBSC layout must have a lower TRG conflict metric than the
    // default layout (that is exactly what it minimises greedily).
    const PlacementContext ctx = bundle_.makeContext();
    const DefaultPlacement def;
    const Gbsc gbsc;
    const Layout l_def = def.place(ctx);
    const Layout l_gbsc = gbsc.place(ctx);
    EXPECT_LT(trgConflictMetric(ctx, l_gbsc),
              trgConflictMetric(ctx, l_def));
    EXPECT_GE(wcgConflictMetric(ctx, l_def), 0.0);
}

TEST_F(EvalFixture, Table1RowAndPrinting)
{
    const BenchmarkCase bench = miniCase();
    const Table1Row row = computeTable1Row(bench, bundle_);
    EXPECT_EQ(row.name, "mini");
    EXPECT_EQ(row.all_count, 50u);
    EXPECT_GT(row.popular_count, 0u);
    EXPECT_GT(row.default_miss_rate, 0.0);
    EXPECT_GT(row.avg_queue_size, 0.0);
    std::ostringstream oss;
    printTable1(oss, {row});
    EXPECT_NE(oss.str().find("mini"), std::string::npos);
    EXPECT_NE(oss.str().find("Table 1"), std::string::npos);
}

TEST_F(EvalFixture, Figure5PanelPrinting)
{
    const Gbsc gbsc;
    ComparisonOptions opts;
    opts.repetitions = 2;
    const auto results = runComparison(bundle_, {&gbsc}, opts);
    std::ostringstream oss;
    printFigure5Panel(oss, "mini", 0.05, results);
    EXPECT_NE(oss.str().find("GBSC"), std::string::npos);
    EXPECT_NE(oss.str().find("default"), std::string::npos);
    EXPECT_NE(oss.str().find("fraction"), std::string::npos);
}

TEST(EvalOptionsParsing, ReadsKnobs)
{
    Options opts;
    opts.set("cache-kb", "16");
    opts.set("assoc", "2");
    opts.set("chunk-bytes", "128");
    opts.set("coverage", "0.9");
    const EvalOptions eval = evalOptionsFrom(opts);
    EXPECT_EQ(eval.cache.size_bytes, 16u * 1024u);
    EXPECT_EQ(eval.cache.associativity, 2u);
    EXPECT_EQ(eval.chunk_bytes, 128u);
    EXPECT_DOUBLE_EQ(eval.popularity.coverage, 0.9);
    EXPECT_DOUBLE_EQ(traceScaleFrom(opts), 1.0);
}

TEST(RunComparisonErrors, EmptyAlgorithmListRejected)
{
    const ProfileBundle bundle(miniCase(), miniOptions());
    EXPECT_THROW(runComparison(bundle, {}, {}), TopoError);
}

} // namespace
} // namespace topo
