/**
 * @file
 * Tests for trace burst sampling: exact window selection, fraction
 * arithmetic, interleaving preservation, and end-to-end profile
 * quality.
 */

#include <gtest/gtest.h>

#include "topo/profile/trg_builder.hh"
#include "topo/trace/sampling.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Trace
numberedTrace(std::size_t runs)
{
    // Procedure id encodes the run index (mod 100) so tests can see
    // exactly which runs survived.
    Trace t(100);
    for (std::size_t i = 0; i < runs; ++i)
        t.append(static_cast<ProcId>(i % 100), 0, 8);
    return t;
}

TEST(BurstSample, KeepsExactWindows)
{
    const Trace t = numberedTrace(100);
    BurstSamplingOptions opts;
    opts.burst_runs = 3;
    opts.period_runs = 10;
    const Trace sampled = burstSample(t, opts);
    ASSERT_EQ(sampled.size(), 30u);
    // First window is runs 0,1,2; second window runs 10,11,12.
    EXPECT_EQ(sampled.events()[0].proc, 0u);
    EXPECT_EQ(sampled.events()[2].proc, 2u);
    EXPECT_EQ(sampled.events()[3].proc, 10u);
    EXPECT_EQ(sampled.events()[5].proc, 12u);
}

TEST(BurstSample, PhaseShiftsWindows)
{
    const Trace t = numberedTrace(40);
    BurstSamplingOptions opts;
    opts.burst_runs = 2;
    opts.period_runs = 10;
    opts.phase = 4;
    const Trace sampled = burstSample(t, opts);
    ASSERT_EQ(sampled.size(), 8u);
    EXPECT_EQ(sampled.events()[0].proc, 4u);
    EXPECT_EQ(sampled.events()[1].proc, 5u);
    EXPECT_EQ(sampled.events()[2].proc, 14u);
}

TEST(BurstSample, RejectsBadOptions)
{
    const Trace t = numberedTrace(10);
    BurstSamplingOptions zero;
    zero.burst_runs = 0;
    EXPECT_THROW(burstSample(t, zero), TopoError);
    BurstSamplingOptions inverted;
    inverted.burst_runs = 10;
    inverted.period_runs = 5;
    EXPECT_THROW(burstSample(t, inverted), TopoError);
    BurstSamplingOptions bad_phase;
    bad_phase.burst_runs = 5;
    bad_phase.period_runs = 8;
    bad_phase.phase = 4; // 4 + 5 > 8
    EXPECT_THROW(burstSample(t, bad_phase), TopoError);
}

TEST(BurstWindows, MatchesSampledRuns)
{
    BurstSamplingOptions opts;
    opts.burst_runs = 3;
    opts.period_runs = 10;
    const auto windows = burstWindows(100, opts);
    ASSERT_EQ(windows.size(), 10u);
    EXPECT_EQ(windows[0], RunWindow(0, 3));
    EXPECT_EQ(windows[1], RunWindow(10, 13));
    EXPECT_EQ(windows[9], RunWindow(90, 93));
    // The flattened sample is exactly the concatenation of the
    // windows.
    const Trace t = numberedTrace(100);
    const Trace sampled = burstSample(t, opts);
    std::size_t cursor = 0;
    for (const RunWindow &w : windows)
        for (std::uint64_t run = w.first; run < w.second; ++run, ++cursor)
            EXPECT_EQ(sampled.events()[cursor].proc, t.events()[run].proc);
    EXPECT_EQ(cursor, sampled.size());
}

TEST(BurstWindows, ClipsFinalWindowAndValidates)
{
    BurstSamplingOptions opts;
    opts.burst_runs = 4;
    opts.period_runs = 10;
    // Last period starts at run 20 of 22: window clipped to [20, 22).
    const auto windows = burstWindows(22, opts);
    ASSERT_EQ(windows.size(), 3u);
    EXPECT_EQ(windows[2], RunWindow(20, 22));
    // Same validation as burstSample.
    BurstSamplingOptions inverted;
    inverted.burst_runs = 10;
    inverted.period_runs = 5;
    EXPECT_THROW(burstWindows(100, inverted), TopoError);
    BurstSamplingOptions zero;
    zero.burst_runs = 0;
    EXPECT_THROW(burstWindows(100, zero), TopoError);
}

TEST(BurstSampleFraction, ApproximatesRequestedFraction)
{
    const Trace t = numberedTrace(200000);
    for (double fraction : {1.0, 0.5, 0.1, 0.01}) {
        const Trace sampled = burstSampleFraction(t, fraction);
        const double achieved = static_cast<double>(sampled.size()) /
                                static_cast<double>(t.size());
        EXPECT_NEAR(achieved, fraction, fraction * 0.1)
            << "fraction " << fraction;
    }
    EXPECT_THROW(burstSampleFraction(t, 0.0), TopoError);
    EXPECT_THROW(burstSampleFraction(t, 1.5), TopoError);
}

TEST(BurstSample, PreservesLocalInterleaving)
{
    // A strict f/g alternation sampled in bursts must still show the
    // f-g TRG edge at roughly the sampled fraction of its full
    // weight; that is the property per-run sampling would destroy.
    Program p("s");
    const ProcId f = p.addProcedure("f", 64);
    const ProcId g = p.addProcedure("g", 64);
    Trace t(2);
    for (int i = 0; i < 20000; ++i) {
        t.append(f, 0, 64);
        t.append(g, 0, 64);
    }
    const ChunkMap chunks(p, 256);
    TrgBuildOptions topts;
    topts.byte_budget = 4096;
    const double full_weight =
        buildTrgs(p, chunks, t, topts).select.weight(f, g);
    const Trace sampled = burstSampleFraction(t, 0.1);
    const double sampled_weight =
        buildTrgs(p, chunks, sampled, topts).select.weight(f, g);
    EXPECT_NEAR(sampled_weight / full_weight, 0.1, 0.02);
}

} // namespace
} // namespace topo
