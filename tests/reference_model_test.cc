/**
 * @file
 * Differential tests: the production cache simulators and the
 * TemporalQueue are checked step-by-step against deliberately naive
 * reference models under randomised traffic. These catch subtle state
 * bugs (LRU ordering, eviction accounting) that example-based tests
 * miss.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/profile/temporal_queue.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

/** Naive set-associative LRU model: per-set vector scanned linearly. */
class NaiveLruCache
{
  public:
    NaiveLruCache(std::uint32_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways), content_(sets)
    {
    }

    bool
    access(std::uint64_t addr)
    {
        auto &set = content_[addr % sets_];
        auto it = std::find(set.begin(), set.end(), addr);
        if (it != set.end()) {
            set.erase(it);
            set.push_back(addr); // most recent at the back
            return true;
        }
        if (set.size() == ways_)
            set.erase(set.begin()); // evict least recent
        set.push_back(addr);
        return false;
    }

  private:
    std::uint32_t sets_;
    std::uint32_t ways_;
    std::vector<std::vector<std::uint64_t>> content_;
};

struct CacheCase
{
    CacheConfig config;
    std::uint64_t addr_space;
};

class CacheDifferentialTest : public ::testing::TestWithParam<CacheCase>
{
};

TEST_P(CacheDifferentialTest, MatchesNaiveModelStepByStep)
{
    const CacheCase param = GetParam();
    SetAssociativeCache fast(param.config);
    NaiveLruCache naive(param.config.setCount(),
                        param.config.associativity);
    Rng rng(param.addr_space * 31 + param.config.associativity);
    for (int step = 0; step < 20000; ++step) {
        // Mix of uniform and looping traffic for realistic reuse.
        std::uint64_t addr;
        if (rng.nextBool(0.5))
            addr = rng.nextBelow(param.addr_space);
        else
            addr = step % (param.addr_space / 2 + 1);
        EXPECT_EQ(fast.access(addr), naive.access(addr))
            << "step " << step << " addr " << addr;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferentialTest,
    ::testing::Values(CacheCase{{1024, 32, 1}, 64},
                      CacheCase{{1024, 32, 2}, 64},
                      CacheCase{{2048, 32, 4}, 256},
                      CacheCase{{4096, 64, 8}, 128},
                      CacheCase{{96, 32, 1}, 10},
                      CacheCase{{192, 32, 2}, 13}));

TEST(CacheDifferential, DirectMappedAgainstNaive)
{
    const CacheConfig config{512, 32, 1};
    DirectMappedCache fast(config);
    NaiveLruCache naive(config.lineCount(), 1);
    Rng rng(99);
    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t addr = rng.nextBelow(60);
        EXPECT_EQ(fast.access(addr), naive.access(addr)) << step;
    }
}

/**
 * Naive model of the Section 3 ordered set: a deque of (id) with
 * linear scans, mirroring the paper's prose directly.
 */
class NaiveQueue
{
  public:
    NaiveQueue(std::vector<std::uint32_t> sizes, std::uint64_t budget)
        : sizes_(std::move(sizes)), budget_(budget)
    {
    }

    bool
    reference(BlockId id, std::vector<BlockId> &between)
    {
        between.clear();
        auto it = std::find(entries_.begin(), entries_.end(), id);
        if (it != entries_.end()) {
            for (auto walk = it + 1; walk != entries_.end(); ++walk)
                between.push_back(*walk);
            entries_.erase(it);
            entries_.push_back(id);
            return true;
        }
        entries_.push_back(id);
        // Trim: drop the oldest while the remainder stays >= budget.
        while (!entries_.empty() &&
               totalBytes() - sizes_[entries_.front()] >= budget_) {
            entries_.erase(entries_.begin());
        }
        return false;
    }

    std::vector<BlockId>
    contents() const
    {
        return {entries_.begin(), entries_.end()};
    }

  private:
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (BlockId id : entries_)
            total += sizes_[id];
        return total;
    }

    std::vector<std::uint32_t> sizes_;
    std::uint64_t budget_;
    std::deque<BlockId> entries_;
};

class QueueDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueueDifferentialTest, MatchesNaiveModelStepByStep)
{
    const std::uint64_t budget = GetParam();
    const std::size_t blocks = 24;
    std::vector<std::uint32_t> sizes;
    Rng size_rng(budget);
    for (std::size_t i = 0; i < blocks; ++i) {
        sizes.push_back(
            8 + static_cast<std::uint32_t>(size_rng.nextBelow(64)));
    }
    TemporalQueue fast(sizes, budget);
    NaiveQueue naive(sizes, budget);
    Rng rng(budget * 7919 + 3);
    std::vector<BlockId> fast_between, naive_between;
    for (int step = 0; step < 20000; ++step) {
        const BlockId id = static_cast<BlockId>(rng.nextBelow(blocks));
        const bool fast_prev = fast.reference(id, fast_between);
        const bool naive_prev = naive.reference(id, naive_between);
        ASSERT_EQ(fast_prev, naive_prev) << "step " << step;
        ASSERT_EQ(fast_between, naive_between) << "step " << step;
        ASSERT_EQ(fast.contents(), naive.contents()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, QueueDifferentialTest,
                         ::testing::Values(32u, 100u, 300u, 1000u,
                                           100000u));

} // namespace
} // namespace topo
