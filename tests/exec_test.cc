/**
 * @file
 * Tests for the topo::exec execution layer: ThreadPool batch
 * semantics, deterministic parallelMap ordering, exception
 * propagation, nested-call degradation, --jobs validation, and the
 * metrics scoping/merge machinery the determinism contract
 * (DESIGN.md §9) rests on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/util/error.hh"
#include "topo/util/stats.hh"

namespace topo
{
namespace
{

/** Restore the process-wide jobs setting when a test exits. */
struct JobsGuard
{
    explicit JobsGuard(int jobs) { setExecJobs(jobs); }
    ~JobsGuard() { setExecJobs(1); }
};

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SerialPoolRunsInlineInIndexOrder)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(
            17, [&](std::size_t i) { sum += static_cast<int>(i); });
        EXPECT_EQ(sum.load(), 17 * 16 / 2);
    }
}

TEST(ThreadPool, NestedCallsDegradeToInlineOnEveryLane)
{
    // A nested parallelFor from any lane of an active batch — pool
    // worker or the participating caller — must run inline rather
    // than re-entering the pool (that corrupted the shared batch
    // state once; this is a regression test).
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallelFor(8, [&](std::size_t) {
        EXPECT_TRUE(ThreadPool::onWorkerThread());
        pool.parallelFor(8, [&](std::size_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 64);
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(64, [&](std::size_t i) {
            if (i == 7 || i == 40)
                throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "task 7");
    }
    // The pool survives a failed batch.
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](std::size_t) { ++sum; });
    EXPECT_EQ(sum.load(), 10);
}

TEST(Exec, ParallelMapOrdersResultsByTaskIndex)
{
    const JobsGuard guard(4);
    const std::vector<std::size_t> mapped =
        parallelMap(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(mapped.size(), 100u);
    for (std::size_t i = 0; i < mapped.size(); ++i)
        EXPECT_EQ(mapped[i], i * i);
}

TEST(Exec, ParallelMapSupportsMoveOnlyResults)
{
    const JobsGuard guard(2);
    const auto mapped = parallelMap(8, [](std::size_t i) {
        return std::make_unique<std::size_t>(i);
    });
    ASSERT_EQ(mapped.size(), 8u);
    for (std::size_t i = 0; i < mapped.size(); ++i)
        EXPECT_EQ(*mapped[i], i);
}

TEST(Exec, InitExecValidatesJobs)
{
    const JobsGuard guard(1);
    Options opts;
    opts.set("jobs", "0");
    EXPECT_THROW(initExec(opts, 0), TopoError);
    opts.set("jobs", "-3");
    EXPECT_THROW(initExec(opts, 0), TopoError);
    opts.set("jobs", "abc");
    EXPECT_THROW(initExec(opts, 0), TopoError);
    opts.set("jobs", "5000");
    EXPECT_THROW(initExec(opts, 0), TopoError);
    opts.set("jobs", "3");
    initExec(opts, 0);
    EXPECT_EQ(execJobs(), 3);
}

TEST(Exec, InitExecFallbackZeroKeepsCurrentSetting)
{
    const JobsGuard guard(2);
    const Options opts; // no --jobs anywhere
    initExec(opts, 0);
    EXPECT_EQ(execJobs(), 2);
    initExec(opts, 4); // tools pass hardwareJobs() as the fallback
    EXPECT_EQ(execJobs(), 4);
}

TEST(Exec, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1);
}

TEST(Metrics, ScopeRedirectsCurrentRegistry)
{
    MetricsRegistry local;
    EXPECT_EQ(&MetricsRegistry::current(), &MetricsRegistry::global());
    {
        MetricsScope scope(local);
        EXPECT_EQ(&MetricsRegistry::current(), &local);
        MetricsRegistry inner;
        {
            MetricsScope nested(inner);
            EXPECT_EQ(&MetricsRegistry::current(), &inner);
        }
        EXPECT_EQ(&MetricsRegistry::current(), &local);
    }
    EXPECT_EQ(&MetricsRegistry::current(), &MetricsRegistry::global());
}

TEST(Metrics, ScopeIsPerThread)
{
    MetricsRegistry local;
    MetricsScope scope(local);
    MetricsRegistry *seen = nullptr;
    std::thread other([&] { seen = &MetricsRegistry::current(); });
    other.join();
    // Another thread without a scope of its own sees the global.
    EXPECT_EQ(seen, &MetricsRegistry::global());
}

TEST(Metrics, MergeFromCombinesAllKinds)
{
    MetricsRegistry a, b;
    a.counter("shared").add(3);
    b.counter("shared").add(4);
    b.counter("only_b").add(7);
    a.gauge("g").set(1.0);
    b.gauge("g").set(2.0);
    for (int i = 1; i <= 10; ++i)
        a.histogram("h").observe(i);
    for (int i = 11; i <= 30; ++i)
        b.histogram("h").observe(i);

    a.mergeFrom(b);
    EXPECT_EQ(a.counter("shared").value(), 7u);
    EXPECT_EQ(a.counter("only_b").value(), 7u);
    EXPECT_DOUBLE_EQ(a.gauge("g").value(), 2.0);
    const RunningStats stats = a.histogram("h").stats();
    EXPECT_EQ(stats.count(), 30u);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 30.0);
    EXPECT_NEAR(stats.mean(), 15.5, 1e-9);
}

TEST(Metrics, FixedOrderMergeIsReproducible)
{
    // The determinism contract: per-task registries merged in task
    // order produce a snapshot that depends only on the per-task
    // streams, never on scheduling. Emulate two identical parallel
    // runs and require byte-identical JSON.
    const auto run = [] {
        MetricsRegistry parent;
        MetricsRegistry tasks[3];
        for (int t = 0; t < 3; ++t) {
            for (int i = 0; i < 500; ++i)
                tasks[t].histogram("h").observe(t * 1000 + i);
            tasks[t].counter("c").add(static_cast<std::uint64_t>(t));
        }
        for (int t = 0; t < 3; ++t)
            parent.mergeFrom(tasks[t]);
        return parent.toJson().toString();
    };
    EXPECT_EQ(run(), run());
}

TEST(Stats, RunningStatsMergeMatchesSerialAccumulation)
{
    RunningStats serial, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = 0.25 * i - 100.0;
        serial.add(v);
        (i < 400 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), serial.count());
    EXPECT_DOUBLE_EQ(left.min(), serial.min());
    EXPECT_DOUBLE_EQ(left.max(), serial.max());
    EXPECT_NEAR(left.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(left.stddev(), serial.stddev(), 1e-9);

    RunningStats empty;
    left.merge(empty); // merging an empty side is a no-op
    EXPECT_EQ(left.count(), serial.count());
}

} // namespace
} // namespace topo
