/**
 * @file
 * Tests of the placement decision log: bounded recording with dropped
 * accounting, top-k alternative extraction, JSON round-trip through
 * readDecisionFile, the per-algorithm coverage invariant (every placed
 * procedure appears in at least one record), the guarantee that an
 * attached log never changes the layout, and an allocation bound on
 * the recording hot path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "topo/eval/experiment.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/gbsc_setassoc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/splitting.hh"
#include "topo/util/error.hh"
#include "topo/workload/paper_suite.hh"

namespace
{

/** Global allocation counter for the allocation-bound test. */
std::atomic<std::uint64_t> g_allocs{0};

} // namespace

// Full replacement set (array and nothrow forms included) so every
// allocation and deallocation pairs up on malloc/free — a partial set
// trips ASan's alloc-dealloc-mismatch checker in the sanitized build.
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &tag) noexcept
{
    return operator new(size, tag);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

namespace topo
{
namespace
{

TEST(DecisionLog, StepNumberingAndDroppedAccounting)
{
    DecisionLog::Options options;
    options.max_records = 4;
    DecisionLog log(options);
    for (int i = 0; i < 10; ++i) {
        DecisionRecord rec;
        rec.kind = DecisionKind::kMerge;
        rec.stage = "test.stage";
        rec.a = 0;
        log.record(rec);
    }
    EXPECT_EQ(log.kept(), 4u);
    EXPECT_EQ(log.dropped(), 6u);
    // Steps stay monotone and 0-based over the kept prefix.
    for (std::size_t i = 0; i < log.records().size(); ++i)
        EXPECT_EQ(log.records()[i].step, i);
    log.clear();
    EXPECT_EQ(log.kept(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
}

TEST(DecisionLog, RecordChoiceExtractsTopKAlternatives)
{
    DecisionLog log;
    // Costs: chosen=3 (cost 1.0); runner-ups must be 0 (2.0), 4 (2.0)
    // — tie broken by smaller choice — then 1 (5.0).
    const std::vector<double> cost = {2.0, 5.0, 9.0, 1.0, 2.0};
    log.recordChoice(DecisionKind::kColor, "test.align", 7, 8, 3.5, 3,
                     cost, "test-rule");
    ASSERT_EQ(log.kept(), 1u);
    const DecisionRecord &rec = log.records()[0];
    EXPECT_EQ(rec.kind, DecisionKind::kColor);
    EXPECT_EQ(rec.a, 7u);
    EXPECT_EQ(rec.b, 8u);
    EXPECT_DOUBLE_EQ(rec.weight, 3.5);
    EXPECT_EQ(rec.chosen, 3u);
    EXPECT_DOUBLE_EQ(rec.chosen_cost, 1.0);
    ASSERT_EQ(rec.alternative_count, 3u);
    EXPECT_EQ(rec.alternatives[0].choice, 0u);
    EXPECT_DOUBLE_EQ(rec.alternatives[0].cost, 2.0);
    EXPECT_EQ(rec.alternatives[1].choice, 4u);
    EXPECT_DOUBLE_EQ(rec.alternatives[1].cost, 2.0);
    EXPECT_EQ(rec.alternatives[2].choice, 1u);
    EXPECT_DOUBLE_EQ(rec.alternatives[2].cost, 5.0);
}

TEST(DecisionLog, KindNamesRoundTrip)
{
    const DecisionKind kinds[] = {
        DecisionKind::kMerge, DecisionKind::kPlace, DecisionKind::kColor,
        DecisionKind::kSplit, DecisionKind::kReject};
    for (DecisionKind kind : kinds)
        EXPECT_EQ(decisionKindFromName(decisionKindName(kind)), kind);
    EXPECT_THROW(decisionKindFromName("promote"), TopoError);
}

/** Shared profile over the small paper benchmark. */
class DecisionCoverage : public ::testing::Test
{
  protected:
    static const ProfileBundle &
    bundle()
    {
        static const ProfileBundle instance(paperBenchmark("gcc", 0.01),
                                            EvalOptions{});
        return instance;
    }
};

TEST_F(DecisionCoverage, EveryAlgorithmCoversEveryProcedure)
{
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const DefaultPlacement def;
    const PlacementAlgorithm *algorithms[] = {&ph, &hkc, &gbsc, &def};
    for (const PlacementAlgorithm *algorithm : algorithms) {
        DecisionLog log;
        log.setAlgorithm(algorithm->name());
        PlacementContext ctx = bundle().makeContext();
        ctx.decisions = &log;
        const Layout layout = algorithm->place(ctx);
        EXPECT_TRUE(layout.complete()) << algorithm->name();
        EXPECT_GT(log.kept(), 0u) << algorithm->name();
        EXPECT_EQ(log.dropped(), 0u) << algorithm->name();
        // The coverage invariant: every placed procedure appears in at
        // least one decision record (each algorithm emits a kPlace per
        // procedure at emission time).
        EXPECT_DOUBLE_EQ(log.coverage(bundle().program()), 1.0)
            << algorithm->name();
        bool any_place = false;
        for (const DecisionRecord &rec : log.records())
            any_place = any_place || rec.kind == DecisionKind::kPlace;
        EXPECT_TRUE(any_place) << algorithm->name();
    }
}

TEST(DecisionCoverageSetAssoc, SetAssociativeGbscCoversEveryProcedure)
{
    // GbscSetAssoc demands an associative geometry; give it a 2-way
    // cache of the same size and check the same coverage invariant.
    EvalOptions eval;
    eval.cache.associativity = 2;
    const ProfileBundle bundle(paperBenchmark("gcc", 0.01), eval);
    const GbscSetAssoc gbsc_sa;
    DecisionLog log;
    log.setAlgorithm(gbsc_sa.name());
    PlacementContext ctx = bundle.makeContext();
    ctx.decisions = &log;
    const Layout layout = gbsc_sa.place(ctx);
    EXPECT_TRUE(layout.complete());
    EXPECT_GT(log.kept(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    EXPECT_DOUBLE_EQ(log.coverage(bundle.program()), 1.0);
    bool any_align = false;
    for (const DecisionRecord &rec : log.records())
        any_align = any_align ||
                    std::string(rec.stage) == "gbsc_sa.align";
    EXPECT_TRUE(any_align);
}

TEST_F(DecisionCoverage, AttachedLogNeverChangesTheLayout)
{
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const PlacementAlgorithm *algorithms[] = {&ph, &hkc, &gbsc};
    for (const PlacementAlgorithm *algorithm : algorithms) {
        PlacementContext plain = bundle().makeContext();
        const Layout without = algorithm->place(plain);
        DecisionLog log;
        PlacementContext logged = bundle().makeContext();
        logged.decisions = &log;
        const Layout with = algorithm->place(logged);
        for (ProcId p = 0; p < bundle().program().procCount(); ++p) {
            ASSERT_EQ(without.address(p), with.address(p))
                << algorithm->name() << ": procedure "
                << bundle().program().proc(p).name;
        }
    }
}

TEST_F(DecisionCoverage, JsonRoundTripThroughDecisionFile)
{
    const Gbsc gbsc;
    DecisionLog log;
    log.setAlgorithm("gbsc");
    log.setCache(bundle().options().cache);
    PlacementContext ctx = bundle().makeContext();
    ctx.decisions = &log;
    gbsc.place(ctx);

    const std::string path = "/tmp/topo_decision_log_test.json";
    {
        std::ofstream os(path);
        log.toJson(bundle().program()).write(os);
        os << "\n";
    }
    const LoadedDecisions loaded = readDecisionFile(path);
    std::remove(path.c_str());
    EXPECT_EQ(loaded.algorithm, "gbsc");
    EXPECT_EQ(loaded.kept, log.kept());
    EXPECT_EQ(loaded.dropped, log.dropped());
    ASSERT_EQ(loaded.rows.size(), log.records().size());

    // The in-memory snapshot must equal the file round-trip.
    const LoadedDecisions snap =
        snapshotDecisions(log, bundle().program());
    ASSERT_EQ(snap.rows.size(), loaded.rows.size());
    for (std::size_t i = 0; i < snap.rows.size(); ++i) {
        EXPECT_EQ(snap.rows[i].step, loaded.rows[i].step) << i;
        EXPECT_EQ(snap.rows[i].kind, loaded.rows[i].kind) << i;
        EXPECT_EQ(snap.rows[i].stage, loaded.rows[i].stage) << i;
        EXPECT_EQ(snap.rows[i].proc_a, loaded.rows[i].proc_a) << i;
        EXPECT_EQ(snap.rows[i].proc_b, loaded.rows[i].proc_b) << i;
        EXPECT_EQ(snap.rows[i].chosen, loaded.rows[i].chosen) << i;
        EXPECT_EQ(snap.rows[i].tie_break, loaded.rows[i].tie_break)
            << i;
    }

    // rowsFor finds records mentioning a procedure in either role.
    const std::string first = bundle().program().proc(0).name;
    for (std::size_t idx : loaded.rowsFor(first)) {
        EXPECT_TRUE(loaded.rows[idx].proc_a == first ||
                    loaded.rows[idx].proc_b == first);
    }
}

TEST(DecisionLogErrors, CorruptDecisionFilesCarryTheCorruptCode)
{
    const std::string path = "/tmp/topo_decision_log_corrupt.json";
    const char *bodies[] = {
        "{ not json",
        "{\"kept\": 1}",
        "{\"topo_decisions\": 1, \"algorithm\": \"x\", \"kept\": 2,"
        " \"dropped\": 0, \"records\": []}",
        "{\"topo_decisions\": 1, \"algorithm\": \"x\", \"kept\": 1,"
        " \"dropped\": 0, \"records\": [{\"step\": 0, \"kind\":"
        " \"promote\", \"stage\": \"s\", \"proc_a\": \"a\","
        " \"proc_b\": \"\", \"weight\": 0, \"chosen\": 0,"
        " \"chosen_cost\": 0, \"tie_break\": \"t\"}]}",
    };
    for (const char *body : bodies) {
        {
            std::ofstream os(path);
            os << body;
        }
        try {
            readDecisionFile(path);
            FAIL() << "accepted: " << body;
        } catch (const TopoError &err) {
            EXPECT_EQ(err.code(), ErrCode::kCorrupt) << body;
        }
    }
    std::remove(path.c_str());
}

TEST(DecisionSplitting, SplitClassificationIsRecorded)
{
    // A procedure with one hot and three cold 256-byte chunks splits;
    // the split must leave a kSplit record naming the original and
    // carrying hot bytes as weight / cold bytes as the chosen value.
    Program program("split");
    const ProcId f = program.addProcedure("f", 1024);
    program.addProcedure("g", 512);
    Trace trace(2);
    for (int i = 0; i < 10; ++i) {
        trace.append(f, 0, 256);
        trace.append(1, 0, 512);
    }
    DecisionLog log;
    SplitOptions options;
    options.decisions = &log;
    const SplitProgram split =
        splitProcedures(program, trace, options);
    ASSERT_EQ(split.splitCount(), 1u);
    ASSERT_EQ(log.kept(), 1u);
    const DecisionRecord &rec = log.records()[0];
    EXPECT_EQ(rec.kind, DecisionKind::kSplit);
    EXPECT_EQ(std::string(rec.stage), "split.classify");
    EXPECT_EQ(rec.a, f);
    EXPECT_DOUBLE_EQ(rec.weight, 256.0); // hot bytes kept
    EXPECT_EQ(rec.chosen, 768u);         // cold bytes carved off
}

TEST(DecisionLogAllocation, RecordingWithinTheBoundIsAllocationFree)
{
    DecisionLog::Options options;
    options.max_records = 4096;
    DecisionLog log(options); // reserves capacity up front
    const std::vector<double> cost = {3.0, 1.0, 2.0, 4.0};

    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < 8192; ++i) {
        // Half land within the bound, half are dropped; neither path
        // may allocate — records past the bound are counted, not kept.
        log.recordChoice(DecisionKind::kMerge, "test.stage", i % 7,
                         (i + 1) % 7, 1.0, 1, cost, "test-rule");
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
    EXPECT_EQ(log.kept(), 4096u);
    EXPECT_EQ(log.dropped(), 4096u);
}

} // namespace
} // namespace topo
