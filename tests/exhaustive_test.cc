/**
 * @file
 * Tests for the exhaustive placement oracle, including optimality
 * checks of the greedy algorithms on small instances.
 */

#include <gtest/gtest.h>

#include "topo/eval/experiment.hh"
#include "topo/util/rng.hh"
#include "topo/placement/exhaustive.hh"
#include "topo/placement/gbsc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/util/error.hh"
#include "topo/workload/figure1.hh"

namespace topo
{
namespace
{

TEST(Exhaustive, FindsZeroConflictLayoutWhenOneExists)
{
    // Three one-line procedures, 4-line cache: a zero-metric layout
    // exists and the oracle must find one.
    Program p("e");
    p.addProcedure("a", 32);
    p.addProcedure("b", 32);
    p.addProcedure("c", 32);
    const ChunkMap chunks(p, 32);
    WeightedGraph place(chunks.chunkCount());
    place.addWeight(0, 1, 5.0);
    place.addWeight(1, 2, 4.0);
    place.addWeight(0, 2, 3.0);
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{128, 32, 1};
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::TrgMetric);
    const Layout layout = oracle.place(ctx);
    layout.validate(p, 32);
    EXPECT_DOUBLE_EQ(oracle.bestObjective(), 0.0);
}

TEST(Exhaustive, MinimisesForcedOverlapWeight)
{
    // Two-line cache, three one-line procedures: some overlap is
    // inevitable; the oracle must pay only the lightest edge.
    Program p("e");
    p.addProcedure("a", 32);
    p.addProcedure("b", 32);
    p.addProcedure("c", 32);
    const ChunkMap chunks(p, 32);
    WeightedGraph place(chunks.chunkCount());
    place.addWeight(0, 1, 50.0);
    place.addWeight(1, 2, 40.0);
    place.addWeight(0, 2, 3.0);
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{64, 32, 1};
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::TrgMetric);
    oracle.place(ctx);
    EXPECT_DOUBLE_EQ(oracle.bestObjective(), 3.0);
}

TEST(Exhaustive, SimulatedObjectiveMatchesCacheGroundTruth)
{
    // The Figure 1 example: the simulated-misses oracle on trace #2
    // must reach the 4-miss layout (X,Y share; Z alone).
    const Figure1Example ex = makeFigure1Example();
    const Trace t2 = ex.trace2();
    const FetchStream stream(ex.program, t2, ex.cache.line_bytes);
    PlacementContext ctx;
    ctx.program = &ex.program;
    ctx.cache = ex.cache;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::SimulatedMisses, &stream);
    const Layout layout = oracle.place(ctx);
    layout.validate(ex.program, ex.cache.line_bytes);
    EXPECT_DOUBLE_EQ(oracle.bestObjective(), 4.0);
}

TEST(Exhaustive, GbscMatchesOracleOnFigure1)
{
    // GBSC's greedy result must equal the oracle's miss count on both
    // Figure 1 traces — the strongest small-case quality statement.
    const Figure1Example ex = makeFigure1Example();
    const ChunkMap chunks(ex.program, 32);
    TrgBuildOptions topts;
    topts.byte_budget = 2 * ex.cache.size_bytes;
    for (const Trace &trace : {ex.trace1(), ex.trace2()}) {
        const FetchStream stream(ex.program, trace,
                                 ex.cache.line_bytes);
        const ExhaustivePlacement oracle(
            ExhaustivePlacement::Objective::SimulatedMisses, &stream);
        PlacementContext octx;
        octx.program = &ex.program;
        octx.cache = ex.cache;
        oracle.place(octx);

        const TrgBuildResult trg =
            buildTrgs(ex.program, chunks, trace, topts);
        PlacementContext gctx;
        gctx.program = &ex.program;
        gctx.cache = ex.cache;
        gctx.chunks = &chunks;
        gctx.trg_select = &trg.select;
        gctx.trg_place = &trg.place;
        const Gbsc gbsc;
        const Layout layout = gbsc.place(gctx);
        const double gbsc_misses = static_cast<double>(
            simulateLayout(ex.program, layout, stream, ex.cache)
                .misses);
        EXPECT_DOUBLE_EQ(gbsc_misses, oracle.bestObjective());
    }
}

/**
 * Property: GBSC lands within a small factor of the metric-optimal
 * layout on random tiny instances (and at 0 whenever 0 is reachable).
 */
class GbscVsOracleTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GbscVsOracleTest, GreedyNearOptimalOnTinyInstances)
{
    Rng rng(GetParam());
    Program p("tiny");
    const int procs = 5;
    for (int i = 0; i < procs; ++i) {
        p.addProcedure("p" + std::to_string(i),
                       32 + 32 * static_cast<std::uint32_t>(
                                     rng.nextBelow(3)));
    }
    const CacheConfig cache{
        static_cast<std::uint32_t>(32 * (6 + rng.nextBelow(5))), 32, 1};
    const ChunkMap chunks(p, 32);
    WeightedGraph select(procs);
    WeightedGraph place(chunks.chunkCount());
    for (int e = 0; e < 8; ++e) {
        const BlockId u = static_cast<BlockId>(rng.nextBelow(procs));
        const BlockId v = static_cast<BlockId>(rng.nextBelow(procs));
        if (u == v)
            continue;
        const double w = 1.0 + rng.nextBelow(50);
        select.addWeight(u, v, w);
        place.addWeight(
            chunks.chunkId(u, rng.nextBelow(chunks.chunksOf(u))),
            chunks.chunkId(v, rng.nextBelow(chunks.chunksOf(v))), w);
    }
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = cache;
    ctx.chunks = &chunks;
    ctx.trg_select = &select;
    ctx.trg_place = &place;

    ExhaustiveOptions limits;
    limits.max_combinations = 200000000;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::TrgMetric, nullptr, limits);
    oracle.place(ctx);
    const double optimal = oracle.bestObjective();

    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);
    const double greedy = Gbsc::conflictMetric(
        ctx, layoutOffsets(p, layout, cache));
    if (optimal == 0.0) {
        EXPECT_DOUBLE_EQ(greedy, 0.0) << "seed " << GetParam();
    } else {
        EXPECT_LE(greedy, optimal * 2.0) << "seed " << GetParam();
    }
    EXPECT_GE(greedy, optimal); // the oracle is a true lower bound
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbscVsOracleTest,
                         ::testing::Values(101u, 102u, 103u, 104u,
                                           105u, 106u));

TEST(Exhaustive, GuardsRejectLargeSearches)
{
    Program p("big");
    for (int i = 0; i < 12; ++i)
        p.addProcedure("p" + std::to_string(i), 32);
    const ChunkMap chunks(p, 32);
    WeightedGraph place(chunks.chunkCount());
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig::paperDefault();
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::TrgMetric);
    EXPECT_THROW(oracle.place(ctx), TopoError); // max_procs exceeded

    ExhaustiveOptions narrow;
    narrow.max_procs = 8;
    narrow.max_combinations = 100;
    Program small("s");
    for (int i = 0; i < 4; ++i)
        small.addProcedure("p" + std::to_string(i), 32);
    const ChunkMap small_chunks(small, 32);
    WeightedGraph small_place(small_chunks.chunkCount());
    PlacementContext sctx;
    sctx.program = &small;
    sctx.cache = CacheConfig::paperDefault(); // 256^3 combinations
    sctx.chunks = &small_chunks;
    sctx.trg_place = &small_place;
    const ExhaustivePlacement guarded(
        ExhaustivePlacement::Objective::TrgMetric, nullptr, narrow);
    EXPECT_THROW(guarded.place(sctx), TopoError);
}

TEST(Exhaustive, SimulatedNeedsStream)
{
    EXPECT_THROW(ExhaustivePlacement(
                     ExhaustivePlacement::Objective::SimulatedMisses),
                 TopoError);
}

TEST(Exhaustive, SingleProcedureTrivial)
{
    Program p("one");
    p.addProcedure("only", 100);
    const ChunkMap chunks(p, 256);
    WeightedGraph place(chunks.chunkCount());
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{128, 32, 1};
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    const ExhaustivePlacement oracle(
        ExhaustivePlacement::Objective::TrgMetric);
    const Layout layout = oracle.place(ctx);
    layout.validate(p, 32);
    EXPECT_DOUBLE_EQ(oracle.bestObjective(), 0.0);
}

} // namespace
} // namespace topo
