/**
 * @file
 * Tests of the observability layer: logging, metrics, phase timers,
 * and the JSON snapshot round-trip.
 */

#include <gtest/gtest.h>

#include "topo/obs/obs.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

/** Sink capturing every record for inspection. */
class CaptureSink : public LogSink
{
  public:
    void
    write(const LogRecord &record) override
    {
        levels.push_back(record.level);
        lines.push_back(formatLogLine(record));
    }

    std::vector<LogLevel> levels;
    std::vector<std::string> lines;
};

TEST(LogTest, ParseLevelNames)
{
    EXPECT_EQ(parseLogLevel("trace"), LogLevel::kTrace);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::kDebug);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::kInfo);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::kWarn);
    EXPECT_EQ(parseLogLevel("warning"), LogLevel::kWarn);
    EXPECT_EQ(parseLogLevel("error"), LogLevel::kError);
    EXPECT_EQ(parseLogLevel("off"), LogLevel::kOff);
    EXPECT_THROW(parseLogLevel("loud"), TopoError);
}

TEST(LogTest, LevelFiltering)
{
    Logger logger(LogLevel::kWarn);
    auto sink = std::make_shared<CaptureSink>();
    logger.addSink(sink);

    logger.log(LogLevel::kDebug, "test", "dropped");
    logger.log(LogLevel::kInfo, "test", "dropped too");
    logger.log(LogLevel::kWarn, "test", "kept");
    logger.log(LogLevel::kError, "test", "kept too");
    ASSERT_EQ(sink->levels.size(), 2u);
    EXPECT_EQ(sink->levels[0], LogLevel::kWarn);
    EXPECT_EQ(sink->levels[1], LogLevel::kError);

    EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
    EXPECT_TRUE(logger.enabled(LogLevel::kError));

    logger.setLevel(LogLevel::kOff);
    logger.log(LogLevel::kError, "test", "silenced");
    EXPECT_EQ(sink->levels.size(), 2u);
    EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST(LogTest, FormatsFields)
{
    Logger logger(LogLevel::kTrace);
    auto sink = std::make_shared<CaptureSink>();
    logger.addSink(sink);
    logger.log(LogLevel::kInfo, "gbsc", "merge pass",
               {{"step", std::uint64_t{7}},
                {"name", "two words"},
                {"ok", true}});
    ASSERT_EQ(sink->lines.size(), 1u);
    const std::string &line = sink->lines[0];
    EXPECT_NE(line.find("info"), std::string::npos);
    EXPECT_NE(line.find("gbsc"), std::string::npos);
    EXPECT_NE(line.find("merge pass"), std::string::npos);
    EXPECT_NE(line.find("step=7"), std::string::npos);
    EXPECT_NE(line.find("name=\"two words\""), std::string::npos);
    EXPECT_NE(line.find("ok=true"), std::string::npos);
}

TEST(MetricsTest, CounterAccumulates)
{
    MetricsRegistry registry;
    Counter &c = registry.counter("test.count");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    // Find-or-create returns the same metric.
    EXPECT_EQ(&registry.counter("test.count"), &c);
    EXPECT_TRUE(registry.has("test.count"));
    EXPECT_FALSE(registry.has("test.other"));
}

TEST(MetricsTest, HistogramAccumulates)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("test.ms");
    h.observe(1.0);
    h.observe(3.0);
    h.observe(5.0);
    const RunningStats stats = h.stats();
    EXPECT_EQ(stats.count(), 3u);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(MetricsTest, KindCollisionThrows)
{
    MetricsRegistry registry;
    registry.counter("metric");
    EXPECT_THROW(registry.gauge("metric"), TopoError);
    EXPECT_THROW(registry.histogram("metric"), TopoError);
}

TEST(MetricsTest, ClearDropsEverything)
{
    MetricsRegistry registry;
    registry.counter("a").add(5);
    registry.gauge("b").set(1.5);
    registry.clear();
    EXPECT_FALSE(registry.has("a"));
    EXPECT_FALSE(registry.has("b"));
    EXPECT_EQ(registry.counter("a").value(), 0u);
}

TEST(PhaseTimerTest, NestedPathsAndHistograms)
{
    MetricsRegistry registry;
    EXPECT_EQ(PhaseTimer::currentPath(), "");
    {
        PhaseTimer outer("outer", &registry);
        EXPECT_EQ(PhaseTimer::currentPath(), "outer");
        {
            PhaseTimer inner("inner", &registry);
            EXPECT_EQ(inner.path(), "outer.inner");
            EXPECT_EQ(PhaseTimer::currentPath(), "outer.inner");
        }
        EXPECT_EQ(PhaseTimer::currentPath(), "outer");
    }
    EXPECT_EQ(PhaseTimer::currentPath(), "");
    EXPECT_TRUE(registry.has("phase.outer.ms"));
    EXPECT_TRUE(registry.has("phase.outer.inner.ms"));
    EXPECT_EQ(registry.histogram("phase.outer.ms").stats().count(), 1u);
    EXPECT_EQ(registry.histogram("phase.outer.inner.ms").stats().count(),
              1u);
}

TEST(PhaseTimerTest, StopIsIdempotent)
{
    MetricsRegistry registry;
    PhaseTimer timer("phase", &registry);
    timer.stop();
    const double ms = timer.elapsedMs();
    timer.stop();
    EXPECT_EQ(timer.elapsedMs(), ms);
    EXPECT_EQ(registry.histogram("phase.phase.ms").stats().count(), 1u);
}

TEST(JsonTest, RoundTrip)
{
    JsonValue root = JsonValue::object();
    root.set("name", JsonValue::string("quote \" and \\ slash"));
    root.set("count", JsonValue::number(42));
    root.set("rate", JsonValue::number(0.25));
    root.set("on", JsonValue::boolean(true));
    root.set("none", JsonValue());
    JsonValue list = JsonValue::array();
    list.push(JsonValue::number(1));
    list.push(JsonValue::string("two"));
    root.set("list", std::move(list));

    const JsonValue parsed = JsonValue::parse(root.toString());
    ASSERT_TRUE(parsed.isObject());
    EXPECT_EQ(parsed.at("name").asString(), "quote \" and \\ slash");
    EXPECT_DOUBLE_EQ(parsed.at("count").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parsed.at("rate").asNumber(), 0.25);
    EXPECT_TRUE(parsed.at("on").asBool());
    EXPECT_TRUE(parsed.at("none").isNull());
    ASSERT_EQ(parsed.at("list").size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.at("list").at(std::size_t{0}).asNumber(),
                     1.0);
    EXPECT_EQ(parsed.at("list").at(std::size_t{1}).asString(), "two");
    // Insertion order survives the round trip.
    EXPECT_EQ(parsed.members()[0].first, "name");
    EXPECT_EQ(parsed.members()[5].first, "list");
}

TEST(JsonTest, ParseRejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), TopoError);
    EXPECT_THROW(JsonValue::parse("{"), TopoError);
    EXPECT_THROW(JsonValue::parse("[1,]"), TopoError);
    EXPECT_THROW(JsonValue::parse("{\"a\":1} extra"), TopoError);
    EXPECT_THROW(JsonValue::parse("nul"), TopoError);
}

TEST(MetricsTest, SnapshotRoundTrip)
{
    MetricsRegistry registry;
    registry.counter("cache.misses").add(7);
    registry.gauge("trg.avg_queue_procs").set(12.5);
    registry.histogram("phase.simulate.ms").observe(2.0);
    registry.histogram("phase.simulate.ms").observe(4.0);

    const JsonValue snapshot =
        JsonValue::parse(registry.toJson().toString());
    EXPECT_DOUBLE_EQ(snapshot.at("topo_metrics").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(
        snapshot.at("counters").at("cache.misses").asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(
        snapshot.at("gauges").at("trg.avg_queue_procs").asNumber(),
        12.5);
    const JsonValue &hist =
        snapshot.at("histograms").at("phase.simulate.ms");
    EXPECT_DOUBLE_EQ(hist.at("count").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("sum").asNumber(), 6.0);
    EXPECT_DOUBLE_EQ(hist.at("mean").asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(hist.at("min").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(hist.at("max").asNumber(), 4.0);
}

TEST(MetricsTest, HistogramQuantilesExactUnderReservoirCapacity)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("test.q");
    for (int i = 1; i <= 100; ++i)
        h.observe(static_cast<double>(i));
    // 100 <= kReservoirSize, so quantiles are exact order statistics
    // with linear interpolation.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(100.0), 100.0);
    EXPECT_NEAR(h.quantile(50.0), 50.5, 1e-9);
    EXPECT_NEAR(h.quantile(90.0), 90.1, 1e-9);
    EXPECT_NEAR(h.quantile(99.0), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(registry.histogram("test.empty").quantile(50.0),
                     0.0);
}

TEST(MetricsTest, HistogramReservoirStaysBounded)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("test.big");
    for (int i = 0; i < 10000; ++i)
        h.observe(static_cast<double>(i % 97));
    const std::vector<double> reservoir = h.reservoirSnapshot();
    EXPECT_EQ(reservoir.size(), Histogram::kReservoirSize);
    EXPECT_EQ(h.stats().count(), 10000u);
    // Samples are in-range and the estimate is sane for a uniform-ish
    // distribution over [0, 96].
    for (double v : reservoir) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 96.0);
    }
    EXPECT_GT(h.quantile(90.0), h.quantile(50.0));
}

TEST(MetricsTest, SnapshotCarriesQuantiles)
{
    MetricsRegistry registry;
    Histogram &h = registry.histogram("phase.x.ms");
    for (int i = 1; i <= 4; ++i)
        h.observe(static_cast<double>(i));
    const JsonValue snapshot =
        JsonValue::parse(registry.toJson().toString());
    const JsonValue &hist = snapshot.at("histograms").at("phase.x.ms");
    EXPECT_NEAR(hist.at("p50").asNumber(), 2.5, 1e-9);
    EXPECT_NEAR(hist.at("p90").asNumber(), 3.7, 1e-9);
    EXPECT_NEAR(hist.at("p99").asNumber(), 3.97, 1e-9);
}

TEST(TimelineTest, WindowsAndWorkingSet)
{
    TimelineRecorder recorder(4, 3);
    // Window 1: procs {0, 1}, 1 miss.  Window 2: proc {2}, 4 misses.
    // Trailing partial window: proc {0}, 0 misses.
    recorder.record(0, true);
    recorder.record(0, false);
    recorder.record(1, false);
    recorder.record(1, false);
    for (int i = 0; i < 4; ++i)
        recorder.record(2, true);
    recorder.record(0, false);
    recorder.finish();
    recorder.finish(); // idempotent

    const std::vector<TimelineSample> &samples = recorder.samples();
    ASSERT_EQ(samples.size(), 3u);
    EXPECT_EQ(samples[0].start, 0u);
    EXPECT_EQ(samples[0].accesses, 4u);
    EXPECT_EQ(samples[0].misses, 1u);
    EXPECT_EQ(samples[0].distinct_procs, 2u);
    EXPECT_DOUBLE_EQ(samples[0].missRate(), 0.25);
    EXPECT_EQ(samples[1].start, 4u);
    EXPECT_EQ(samples[1].distinct_procs, 1u);
    EXPECT_DOUBLE_EQ(samples[1].missRate(), 1.0);
    EXPECT_EQ(samples[2].start, 8u);
    EXPECT_EQ(samples[2].accesses, 1u);

    const JsonValue json = JsonValue::parse(recorder.toJson().toString());
    EXPECT_DOUBLE_EQ(json.at("window_blocks").asNumber(), 4.0);
    EXPECT_EQ(json.at("samples").size(), 3u);

    EXPECT_THROW(TimelineRecorder(0, 1), TopoError);
}

TEST(TraceEventsTest, SpansCountersAndJson)
{
    ChromeTraceLog &log = ChromeTraceLog::global();
    log.clear();
    log.addSpan("simulate", 100.0, 250.0);
    log.addCounter("timeline:gbsc", "miss_rate", 0.0, 0.5);
    log.addCounter("timeline:gbsc", "miss_rate", 8.0, 0.25);

    // 1 thread-name metadata + 1 span + 1 track-name metadata +
    // 2 counters.
    EXPECT_EQ(log.size(), 5u);
    const JsonValue json = JsonValue::parse(log.toJson().toString());
    EXPECT_EQ(json.at("displayTimeUnit").asString(), "ms");
    const JsonValue &events = json.at("traceEvents");
    ASSERT_EQ(events.size(), 5u);
    // The first span from a thread announces the thread's name so the
    // viewer labels the per-worker lane.
    const JsonValue &thread_meta = events.at(std::size_t{0});
    EXPECT_EQ(thread_meta.at("ph").asString(), "M");
    EXPECT_EQ(thread_meta.at("name").asString(), "thread_name");
    EXPECT_GE(thread_meta.at("tid").asNumber(), 1.0);
    const JsonValue &span = events.at(std::size_t{1});
    EXPECT_EQ(span.at("ph").asString(), "X");
    EXPECT_EQ(span.at("name").asString(), "simulate");
    EXPECT_DOUBLE_EQ(span.at("dur").asNumber(), 250.0);
    EXPECT_EQ(span.at("tid").asNumber(),
              thread_meta.at("tid").asNumber());
    EXPECT_EQ(events.at(std::size_t{2}).at("ph").asString(), "M");
    const JsonValue &counter = events.at(std::size_t{3});
    EXPECT_EQ(counter.at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(counter.at("args").at("miss_rate").asNumber(), 0.5);
    // Counter tracks live on their own pid, apart from wall spans.
    EXPECT_GE(counter.at("pid").asNumber(),
              static_cast<double>(ChromeTraceLog::kFirstCounterPid));
    log.clear();
    EXPECT_EQ(log.size(), 0u);
}

TEST(TraceEventsTest, TimelineExportsCounters)
{
    ChromeTraceLog &log = ChromeTraceLog::global();
    log.clear();
    TimelineRecorder recorder(2, 2);
    recorder.record(0, true);
    recorder.record(1, false);
    recorder.finish();
    recorder.exportCounters(log, "timeline:test");
    // 1 metadata + 2 counter series samples for the single window.
    EXPECT_EQ(log.size(), 3u);
    log.clear();
}

} // namespace
} // namespace topo
