/**
 * @file
 * Tests for GBSC (Section 4): merge_nodes semantics, the PH
 * equivalence in the small case, the final linear list, the conflict
 * metric, the Figure 1 end-to-end claims, and the set-associative
 * variant.
 */

#include <gtest/gtest.h>

#include "topo/cache/simulate.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/gbsc_setassoc.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"
#include "topo/workload/figure1.hh"

namespace topo
{
namespace
{

/** Self-owning context for hand-built graphs. */
struct GbscFixture
{
    Program program{"gbsc"};
    CacheConfig cache;
    std::unique_ptr<ChunkMap> chunks;
    WeightedGraph trg_select{0};
    WeightedGraph trg_place{0};
    PlacementContext ctx;

    GbscFixture(std::vector<std::uint32_t> sizes,
                CacheConfig cache_config = CacheConfig::paperDefault(),
                std::uint32_t chunk_bytes = 256)
        : cache(cache_config)
    {
        for (std::size_t i = 0; i < sizes.size(); ++i)
            program.addProcedure("p" + std::to_string(i), sizes[i]);
        chunks = std::make_unique<ChunkMap>(program, chunk_bytes);
        trg_select = WeightedGraph(program.procCount());
        trg_place = WeightedGraph(chunks->chunkCount());
        ctx.program = &program;
        ctx.cache = cache;
        ctx.chunks = chunks.get();
        ctx.trg_select = &trg_select;
        ctx.trg_place = &trg_place;
    }

    /** Convenience: weight between whole procedures' first chunks. */
    void
    placeWeight(ProcId a, ProcId b, double w)
    {
        trg_place.addWeight(chunks->chunkId(a, 0), chunks->chunkId(b, 0),
                            w);
    }
};

TEST(GbscMergeNodes, PhEquivalenceInSmallCase)
{
    // Section 4.2: merging two single-procedure nodes whose total size
    // is below the cache size must start q at the first line after p —
    // the chain PH would have built.
    GbscFixture fx({100, 200});
    fx.placeWeight(0, 1, 50.0);
    GbscNode n1, n2;
    n1.procs = {{0, 0}};
    n2.procs = {{1, 0}};
    double metric = -1.0;
    const GbscNode merged = Gbsc::mergeNodes(fx.ctx, n1, n2, &metric);
    ASSERT_EQ(merged.procs.size(), 2u);
    EXPECT_EQ(merged.procs[0].first, 0u);
    EXPECT_EQ(merged.procs[0].second, 0u);
    EXPECT_EQ(merged.procs[1].first, 1u);
    // p is 100 bytes = 4 lines: q starts at line 4 (first zero-cost).
    EXPECT_EQ(merged.procs[1].second, 4u);
    EXPECT_DOUBLE_EQ(metric, 0.0);
}

TEST(GbscMergeNodes, AvoidsConflictingOffset)
{
    // A tiny 4-line cache: p (2 lines) at offset 0, q (2 lines) with a
    // strong edge must land at offset 2, not wrap onto p.
    GbscFixture fx({64, 64}, CacheConfig{128, 32, 1}, 64);
    fx.placeWeight(0, 1, 10.0);
    GbscNode n1{{{0, 0}}}, n2{{{1, 0}}};
    const GbscNode merged = Gbsc::mergeNodes(fx.ctx, n1, n2);
    EXPECT_EQ(merged.procs[1].second, 2u);
}

TEST(GbscMergeNodes, PicksLeastWeightOverlapWhenForced)
{
    // Cache of 2 lines, three 1-line procedures: r must overlap p or
    // q; it must choose the lighter edge.
    GbscFixture fx({32, 32, 32}, CacheConfig{64, 32, 1}, 32);
    fx.placeWeight(0, 2, 100.0); // p-r heavy
    fx.placeWeight(1, 2, 1.0);   // q-r light
    GbscNode n1{{{0, 0}, {1, 1}}}; // p at line 0, q at line 1
    GbscNode n2{{{2, 0}}};
    double metric = -1.0;
    const GbscNode merged = Gbsc::mergeNodes(fx.ctx, n1, n2, &metric);
    EXPECT_EQ(merged.procs[2].second, 1u); // overlap q, not p
    EXPECT_DOUBLE_EQ(metric, 1.0);
}

TEST(GbscMergeNodes, ChunkInfoDisambiguatesLargeProcedures)
{
    // Two procedures, each exactly the cache size. Whole-procedure
    // information cannot prefer any offset, but if only the first
    // chunk of each is hot, the merge must shift the second procedure
    // so the hot chunks do not collide.
    const CacheConfig cache{1024, 32, 1}; // 32 lines
    GbscFixture fx({1024, 1024}, cache, 256);
    // Hot first chunks (8 lines each).
    fx.trg_place.addWeight(fx.chunks->chunkId(0, 0),
                           fx.chunks->chunkId(1, 0), 100.0);
    GbscNode n1{{{0, 0}}}, n2{{{1, 0}}};
    double metric = -1.0;
    const GbscNode merged = Gbsc::mergeNodes(fx.ctx, n1, n2, &metric);
    const std::uint32_t offset = merged.procs[1].second;
    // Any offset in [8, 24] separates the two 8-line hot chunks; the
    // smallest (8) wins the tie.
    EXPECT_EQ(offset, 8u);
    EXPECT_DOUBLE_EQ(metric, 0.0);
}

TEST(GbscMergeNodes, CostCountsPerLinePairs)
{
    // Full overlap of two 2-line hot chunks costs weight per line pair
    // (2 collisions), matching the Figure 4 double loop.
    GbscFixture fx({64, 64}, CacheConfig{64, 32, 1}, 64);
    fx.placeWeight(0, 1, 7.0);
    GbscNode n1{{{0, 0}}}, n2{{{1, 0}}};
    double metric = -1.0;
    Gbsc::mergeNodes(fx.ctx, n1, n2, &metric);
    // The cache has 2 lines and both procedures span both lines: every
    // offset collides on both lines: cost = 2 * 7.
    EXPECT_DOUBLE_EQ(metric, 14.0);
}

TEST(GbscConflictMetric, CountsSharedLines)
{
    GbscFixture fx({32, 32}, CacheConfig{128, 32, 1}, 32);
    fx.placeWeight(0, 1, 3.0);
    // Same offset: conflict; different offsets: none.
    EXPECT_DOUBLE_EQ(Gbsc::conflictMetric(fx.ctx, {0, 0}), 3.0);
    EXPECT_DOUBLE_EQ(Gbsc::conflictMetric(fx.ctx, {0, 1}), 0.0);
}

TEST(Gbsc, PlaceProducesValidLayout)
{
    GbscFixture fx({100, 200, 300, 64, 1000});
    fx.trg_select.addWeight(0, 1, 10.0);
    fx.trg_select.addWeight(1, 2, 8.0);
    fx.placeWeight(0, 1, 10.0);
    fx.placeWeight(1, 2, 8.0);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(fx.ctx);
    layout.validate(fx.program, 32);
    EXPECT_EQ(gbsc.name(), "GBSC");
}

TEST(Gbsc, UnpopularFillGapsAndAppend)
{
    // One popular pair forced to a non-zero offset, leaving a gap that
    // a small unpopular procedure must fill.
    GbscFixture fx({64, 64, 32, 4096}, CacheConfig{256, 32, 1}, 32);
    fx.ctx.popular = {true, true, false, false};
    fx.ctx.heat = {100.0, 90.0, 1.0, 1.0};
    fx.trg_select.addWeight(0, 1, 10.0);
    // Force q's best offset away from adjacency: make chunk of p1
    // conflict with chunk p0 everywhere except offset 4.
    fx.placeWeight(0, 1, 10.0);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(fx.ctx);
    layout.validate(fx.program, 32);
    // Everything assigned; unpopular 3 (large) appended after populars.
    EXPECT_GT(layout.address(3), layout.address(0));
    EXPECT_GT(layout.address(3), layout.address(1));
}

TEST(Gbsc, Figure1TraceDependentLayouts)
{
    // The core end-to-end claim of the paper's Section 1: with a
    // 3-line cache, GBSC driven by the TRG of trace #1 must separate
    // X and Y, while for trace #2 it may overlap X and Y but must give
    // Z a line free of whichever leaf shares its phase. We verify by
    // measuring: the GBSC layout for each trace must be at least as
    // good on that trace as the layout derived from the other trace.
    const Figure1Example ex = makeFigure1Example();
    const ChunkMap chunks(ex.program, 32);
    TrgBuildOptions opts;
    opts.byte_budget = 2 * ex.cache.size_bytes;

    auto layout_for = [&](const Trace &trace) {
        const TrgBuildResult trg =
            buildTrgs(ex.program, chunks, trace, opts);
        PlacementContext ctx;
        ctx.program = &ex.program;
        ctx.cache = ex.cache;
        ctx.chunks = &chunks;
        ctx.trg_select = &trg.select;
        ctx.trg_place = &trg.place;
        const Gbsc gbsc;
        return gbsc.place(ctx);
    };
    auto miss_rate = [&](const Layout &layout, const Trace &trace) {
        const FetchStream stream(ex.program, trace,
                                 ex.cache.line_bytes);
        return layoutMissRate(ex.program, layout, stream, ex.cache);
    };

    const Trace t1 = ex.trace1();
    const Trace t2 = ex.trace2();
    const Layout l1 = layout_for(t1);
    const Layout l2 = layout_for(t2);
    // Each layout must win (or tie) on its own trace.
    EXPECT_LE(miss_rate(l1, t1), miss_rate(l2, t1));
    EXPECT_LE(miss_rate(l2, t2), miss_rate(l1, t2));
    // And the layouts must differ in their conflict structure: under
    // trace #1's layout X and Y get distinct lines.
    auto color = [&](const Layout &l, ProcId p) {
        return l.startLine(p, ex.cache.line_bytes) % 3;
    };
    EXPECT_NE(color(l1, ex.x), color(l1, ex.y));
}

TEST(GbscSetAssoc, RequiresPairsAndAssociativity)
{
    GbscFixture fx({64, 64}, CacheConfig::paperTwoWay());
    const GbscSetAssoc sa;
    EXPECT_THROW(sa.place(fx.ctx), TopoError); // no pair database

    PairDatabase pairs;
    fx.ctx.pairs = &pairs;
    fx.ctx.cache.associativity = 1;
    EXPECT_THROW(sa.place(fx.ctx), TopoError); // not set-associative
}

TEST(GbscSetAssoc, SeparatesTripleConflicts)
{
    // p, r, s each one line; D(p,{r,s}) heavy. In a 2-line 2-way cache
    // (1 set... use 4 lines 2-way = 2 sets), the merge must not put
    // all three in the same set.
    const CacheConfig cache{128, 32, 2}; // 4 lines, 2 sets
    GbscFixture fx({32, 32, 32}, cache, 32);
    fx.trg_select.addWeight(0, 1, 10.0);
    fx.trg_select.addWeight(0, 2, 5.0);
    PairDatabase pairs;
    pairs.add(0, 1, 2, 100.0);
    fx.ctx.pairs = &pairs;
    const GbscSetAssoc sa;
    const Layout layout = sa.place(fx.ctx);
    layout.validate(fx.program, 32);
    auto set_of = [&](ProcId p) {
        return layout.startLine(p, 32) % cache.setCount();
    };
    const bool all_same =
        set_of(0) == set_of(1) && set_of(1) == set_of(2);
    EXPECT_FALSE(all_same);
    EXPECT_EQ(sa.name(), "GBSC-SA");
}

/** Property: GBSC layouts are always valid across random TRGs. */
class GbscPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GbscPropertyTest, RandomTrgsYieldValidLayouts)
{
    Rng rng(GetParam());
    std::vector<std::uint32_t> sizes;
    for (int i = 0; i < 18; ++i) {
        sizes.push_back(
            32 + static_cast<std::uint32_t>(rng.nextBelow(2500)));
    }
    GbscFixture fx(sizes);
    for (int e = 0; e < 60; ++e) {
        const BlockId u = static_cast<BlockId>(rng.nextBelow(18));
        const BlockId v = static_cast<BlockId>(rng.nextBelow(18));
        if (u == v)
            continue;
        const double w = 1.0 + rng.nextBelow(100);
        fx.trg_select.addWeight(u, v, w);
        fx.trg_place.addWeight(
            fx.chunks->chunkId(u, rng.nextBelow(fx.chunks->chunksOf(u))),
            fx.chunks->chunkId(v, rng.nextBelow(fx.chunks->chunksOf(v))),
            w);
    }
    fx.ctx.heat.assign(18, 1.0);
    const Gbsc gbsc;
    const Layout layout = gbsc.place(fx.ctx);
    layout.validate(fx.program, 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbscPropertyTest,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

} // namespace
} // namespace topo
