/**
 * @file
 * Expected-winner tests on the adversarial microsuite: each case has
 * a known structure and the algorithms must behave accordingly.
 */

#include <gtest/gtest.h>

#include "topo/cache/simulate.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/popularity.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/error.hh"
#include "topo/workload/microsuite.hh"

namespace topo
{
namespace
{

/** Self-contained pipeline for one micro case. */
struct MicroPipeline
{
    MicroCase mc;
    ChunkMap chunks;
    TraceStats stats;
    PopularSet popular;
    WeightedGraph wcg;
    TrgBuildResult trgs;
    FetchStream stream;

    explicit MicroPipeline(MicroCase micro)
        : mc(std::move(micro)),
          chunks(mc.program, 256),
          stats(computeTraceStats(mc.program, mc.trace)),
          popular(selectPopular(mc.program, stats)),
          wcg(buildWcg(mc.program, mc.trace)),
          stream(mc.program, mc.trace, mc.cache.line_bytes)
    {
        TrgBuildOptions opts;
        opts.byte_budget = 2 * mc.cache.size_bytes;
        opts.popular = &popular.mask;
        trgs = buildTrgs(mc.program, chunks, mc.trace, opts);
    }

    PlacementContext
    context()
    {
        PlacementContext ctx;
        ctx.program = &mc.program;
        ctx.cache = mc.cache;
        ctx.chunks = &chunks;
        ctx.wcg = &wcg;
        ctx.trg_select = &trgs.select;
        ctx.trg_place = &trgs.place;
        ctx.popular = popular.mask;
        ctx.heat.assign(mc.program.procCount(), 0.0);
        for (std::size_t i = 0; i < ctx.heat.size(); ++i)
            ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);
        return ctx;
    }

    double
    missRate(const Layout &layout) const
    {
        return layoutMissRate(mc.program, layout, stream, mc.cache);
    }
};

TEST(Microsuite, HasAllCases)
{
    const auto cases = microsuite();
    ASSERT_EQ(cases.size(), 5u);
    for (const MicroCase &mc : cases) {
        EXPECT_FALSE(mc.trace.empty()) << mc.name;
        mc.trace.validate(mc.program);
        mc.cache.validate();
        EXPECT_FALSE(mc.lesson.empty()) << mc.name;
    }
    EXPECT_THROW(microCase("unknown"), TopoError);
    EXPECT_EQ(microCase("thrash_pair").name, "thrash_pair");
}

TEST(Microsuite, ThrashPairSolvedByEveryProfileDrivenAlgorithm)
{
    MicroPipeline pipe(microCase("thrash_pair"));
    const PlacementContext ctx = pipe.context();
    const DefaultPlacement def;
    const double default_mr = pipe.missRate(def.place(ctx));
    // Both procedures fit together: a good layout is near-zero misses.
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    EXPECT_LT(pipe.missRate(ph.place(ctx)), 0.01);
    EXPECT_LT(pipe.missRate(hkc.place(ctx)), 0.01);
    EXPECT_LT(pipe.missRate(gbsc.place(ctx)), 0.01);
    EXPECT_GT(default_mr, 0.4); // the default layout thrashes
}

TEST(Microsuite, SiblingFanoutNeedsTemporalInformation)
{
    // Six 1KB siblings + 1KB dispatcher around a 4KB cache: someone
    // must share lines with someone. GBSC sees which siblings
    // interleave (round-robin neighbours) and must do at least as
    // well as the WCG-driven baselines, which cannot tell siblings
    // apart at all.
    MicroPipeline pipe(microCase("sibling_fanout"));
    const PlacementContext ctx = pipe.context();
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const double gbsc_mr = pipe.missRate(gbsc.place(ctx));
    EXPECT_LE(gbsc_mr, pipe.missRate(ph.place(ctx)));
    EXPECT_LE(gbsc_mr, pipe.missRate(hkc.place(ctx)));
}

TEST(Microsuite, PhaseFlipOverlapsAcrossPhasesOnly)
{
    // Each phase's three 2KB procedures (6KB) fit the 8KB cache; the
    // other phase may overlap them freely. GBSC must reach the
    // near-cold-only regime.
    MicroPipeline pipe(microCase("phase_flip"));
    const PlacementContext ctx = pipe.context();
    const Gbsc gbsc;
    const double gbsc_mr = pipe.missRate(gbsc.place(ctx));
    EXPECT_LT(gbsc_mr, 0.02);
}

TEST(Microsuite, GiantProcNeedsChunkInformation)
{
    // The helper must dodge the giant's two hot windows; whole-
    // procedure information cannot distinguish any alignment. GBSC
    // must reach near-zero conflict.
    MicroPipeline pipe(microCase("giant_proc"));
    const PlacementContext ctx = pipe.context();
    const Gbsc gbsc;
    const PettisHansen ph;
    const double gbsc_mr = pipe.missRate(gbsc.place(ctx));
    EXPECT_LT(gbsc_mr, 0.01);
    EXPECT_LE(gbsc_mr, pipe.missRate(ph.place(ctx)));
}

TEST(Microsuite, ColdSandwichFixedByPlacement)
{
    MicroPipeline pipe(microCase("cold_sandwich"));
    const PlacementContext ctx = pipe.context();
    const DefaultPlacement def;
    const Gbsc gbsc;
    EXPECT_GT(pipe.missRate(def.place(ctx)), 0.3);
    EXPECT_LT(pipe.missRate(gbsc.place(ctx)), 0.01);
}

} // namespace
} // namespace topo
