/**
 * @file
 * Tests for the synthetic workload substrate: model validation, the
 * generator's guarantees, trace synthesis, and the paper suite shapes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "topo/trace/trace_stats.hh"
#include "topo/util/error.hh"
#include "topo/workload/paper_suite.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{
namespace
{

SyntheticSpec
smallSpec()
{
    SyntheticSpec spec;
    spec.name = "small";
    spec.proc_count = 60;
    spec.total_bytes = 120 * 1024;
    spec.popular_count = 20;
    spec.popular_bytes = 40 * 1024;
    spec.phase_count = 3;
    spec.ranks = 3;
    spec.seed = 7;
    return spec;
}

TEST(SyntheticProgram, MatchesSpecShape)
{
    const SyntheticSpec spec = smallSpec();
    const WorkloadModel model = buildSyntheticWorkload(spec);
    model.validate();
    EXPECT_EQ(model.program.procCount(), spec.proc_count);
    // Totals land close to the target (rounding slack allowed).
    const double total = static_cast<double>(model.program.totalSize());
    EXPECT_NEAR(total, static_cast<double>(spec.total_bytes),
                0.1 * static_cast<double>(spec.total_bytes));
    EXPECT_EQ(model.phases.size(), spec.phase_count);
    for (const Phase &phase : model.phases)
        EXPECT_FALSE(phase.roots.empty());
}

TEST(SyntheticProgram, DeterministicInSeed)
{
    const WorkloadModel a = buildSyntheticWorkload(smallSpec());
    const WorkloadModel b = buildSyntheticWorkload(smallSpec());
    ASSERT_EQ(a.program.procCount(), b.program.procCount());
    for (ProcId i = 0; i < a.program.procCount(); ++i) {
        EXPECT_EQ(a.program.proc(i).name, b.program.proc(i).name);
        EXPECT_EQ(a.program.proc(i).size_bytes,
                  b.program.proc(i).size_bytes);
    }
}

TEST(SyntheticProgram, DifferentSeedsDiffer)
{
    SyntheticSpec other = smallSpec();
    other.seed = 8;
    const WorkloadModel a = buildSyntheticWorkload(smallSpec());
    const WorkloadModel b = buildSyntheticWorkload(other);
    bool any_difference = false;
    for (ProcId i = 0; i < a.program.procCount(); ++i) {
        any_difference |= a.program.proc(i).size_bytes !=
                          b.program.proc(i).size_bytes;
    }
    EXPECT_TRUE(any_difference);
}

TEST(SyntheticProgram, CallGraphIsAcyclic)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    // DFS over body call edges looking for a back edge.
    const std::size_t n = model.program.procCount();
    std::vector<int> state(n, 0); // 0=new 1=active 2=done
    std::function<void(ProcId)> dfs = [&](ProcId p) {
        state[p] = 1;
        for (const BodyItem &item : model.bodies[p].items) {
            if (item.callee == kInvalidProc)
                continue;
            ASSERT_NE(state[item.callee], 1) << "cycle through "
                                             << item.callee;
            if (state[item.callee] == 0)
                dfs(item.callee);
        }
        state[p] = 2;
    };
    for (ProcId p = 0; p < n; ++p) {
        if (state[p] == 0)
            dfs(p);
    }
}

TEST(SyntheticProgram, RejectsBadSpecs)
{
    SyntheticSpec spec = smallSpec();
    spec.popular_count = spec.proc_count + 1;
    EXPECT_THROW(buildSyntheticWorkload(spec), TopoError);
    spec = smallSpec();
    spec.popular_bytes = spec.total_bytes;
    EXPECT_THROW(buildSyntheticWorkload(spec), TopoError);
    spec = smallSpec();
    spec.ranks = 1;
    EXPECT_THROW(buildSyntheticWorkload(spec), TopoError);
}

TEST(TraceSynthesizer, ReachesTargetAndValidates)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    WorkloadInput input;
    input.seed = 3;
    input.target_runs = 20000;
    const Trace trace = synthesizeTrace(model, input);
    EXPECT_GE(trace.size(), input.target_runs);
    trace.validate(model.program);
}

TEST(TraceSynthesizer, DeterministicInSeed)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    WorkloadInput input;
    input.seed = 5;
    input.target_runs = 5000;
    const Trace a = synthesizeTrace(model, input);
    const Trace b = synthesizeTrace(model, input);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 97)
        EXPECT_EQ(a.events()[i], b.events()[i]);
}

TEST(TraceSynthesizer, SeedChangesTrace)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    WorkloadInput in1, in2;
    in1.seed = 1;
    in2.seed = 2;
    in1.target_runs = in2.target_runs = 5000;
    const Trace a = synthesizeTrace(model, in1);
    const Trace b = synthesizeTrace(model, in2);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < std::min(a.size(), b.size());
         ++i)
        differs = !(a.events()[i] == b.events()[i]);
    EXPECT_TRUE(differs);
}

TEST(TraceSynthesizer, PhaseEmphasisShiftsFootprint)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    WorkloadInput heavy0, heavy2;
    heavy0.seed = heavy2.seed = 9;
    heavy0.target_runs = heavy2.target_runs = 30000;
    heavy0.phase_emphasis = {1.0, 0.02, 0.02};
    heavy2.phase_emphasis = {0.02, 0.02, 1.0};
    const TraceStats s0 = computeTraceStats(
        model.program, synthesizeTrace(model, heavy0));
    const TraceStats s2 = computeTraceStats(
        model.program, synthesizeTrace(model, heavy2));
    // The two emphases must produce meaningfully different hot sets.
    double l1 = 0.0;
    for (std::size_t i = 0; i < s0.bytes_fetched.size(); ++i) {
        const double f0 = static_cast<double>(s0.bytes_fetched[i]) /
                          static_cast<double>(s0.total_bytes);
        const double f2 = static_cast<double>(s2.bytes_fetched[i]) /
                          static_cast<double>(s2.total_bytes);
        l1 += std::abs(f0 - f2);
    }
    EXPECT_GT(l1, 0.3);
}

TEST(TraceSynthesizer, HotProceduresDominate)
{
    const WorkloadModel model = buildSyntheticWorkload(smallSpec());
    WorkloadInput input;
    input.seed = 11;
    input.target_runs = 40000;
    const Trace trace = synthesizeTrace(model, input);
    const TraceStats stats = computeTraceStats(model.program, trace);
    std::uint64_t hot_bytes = 0;
    for (ProcId i = 0; i < model.program.procCount(); ++i) {
        if (model.program.proc(i).name.rfind("hot_", 0) == 0)
            hot_bytes += stats.bytes_fetched[i];
    }
    EXPECT_GT(static_cast<double>(hot_bytes),
              0.9 * static_cast<double>(stats.total_bytes));
}

TEST(PaperSuite, HasSixBenchmarksWithTable1Shapes)
{
    const auto &names = paperBenchmarkNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "gcc");
    EXPECT_EQ(names[3], "m88ksim");
    const BenchmarkCase perl = paperBenchmark("perl", 0.01);
    EXPECT_EQ(perl.model.program.procCount(), 271u);
    EXPECT_NEAR(static_cast<double>(perl.model.program.totalSize()),
                664.0 * 1024.0, 0.1 * 664.0 * 1024.0);
    EXPECT_NE(perl.train.name, perl.test.name);
    EXPECT_NE(perl.train.seed, perl.test.seed);
}

TEST(PaperSuite, UnknownNameRejected)
{
    EXPECT_THROW(paperBenchmark("compress", 1.0), TopoError);
}

TEST(PaperSuite, TraceScaleControlsLength)
{
    const BenchmarkCase small = paperBenchmark("m88ksim", 0.01);
    const BenchmarkCase bigger = paperBenchmark("m88ksim", 0.02);
    EXPECT_NEAR(static_cast<double>(bigger.train.target_runs),
                2.0 * static_cast<double>(small.train.target_runs),
                4.0);
}

TEST(PaperSuite, M88ksimTrainTestDiverge)
{
    // The paper's "dcrand is a poor training set for dhry": train and
    // test emphasise nearly disjoint phases.
    const BenchmarkCase m88 = paperBenchmark("m88ksim", 0.02);
    double dot = 0.0, n1 = 0.0, n2 = 0.0;
    for (std::size_t i = 0; i < m88.train.phase_emphasis.size(); ++i) {
        dot += m88.train.phase_emphasis[i] * m88.test.phase_emphasis[i];
        n1 += m88.train.phase_emphasis[i] * m88.train.phase_emphasis[i];
        n2 += m88.test.phase_emphasis[i] * m88.test.phase_emphasis[i];
    }
    EXPECT_LT(dot / std::sqrt(n1 * n2), 0.2);
}

} // namespace
} // namespace topo
