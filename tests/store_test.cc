/**
 * @file
 * Crash-consistency matrix and durability tests of the persistent
 * profile store (DESIGN.md §12).
 *
 * The central invariant: for EVERY injected crash point, reopening the
 * store yields either the pre-operation or the post-operation profile
 * bit-exactly (serializeProfile comparison) — never a third state.
 * On top of that: reopened == fresh in-memory fold of the same shards,
 * placements from a reopened store equal placements from a fresh fold,
 * torn journal tails and corrupt snapshots are salvaged per the
 * valid-prefix / older-generation rules, and the write_short fault
 * leaves a store that retries cleanly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "topo/obs/metrics.hh"
#include "topo/resilience/fault.hh"
#include "topo/store/profile_store.hh"
#include "topo/store/store_codec.hh"
#include "topo/util/error.hh"
#include "topo/workload/microsuite.hh"

namespace topo
{
namespace
{

/** Fresh temp directory for one test. */
std::string
tempDir(const std::string &name)
{
    const std::string dir = "/tmp/topo_store_test_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

/** Store config over the phase_flip microsuite case. */
StoreConfig
microConfig()
{
    const MicroCase micro = microCase("phase_flip");
    StoreConfig config;
    config.program = micro.program;
    config.cache = micro.cache;
    config.chunk_bytes = 256;
    config.byte_budget = 2ULL * micro.cache.size_bytes;
    return config;
}

/** Split a case's trace into @p parts contiguous shard traces. */
std::vector<Trace>
splitTrace(const Trace &trace, std::size_t parts)
{
    std::vector<Trace> shards;
    const std::size_t per = trace.size() / parts;
    std::size_t next = 0;
    for (std::size_t p = 0; p < parts; ++p) {
        Trace shard(trace.procCount());
        const std::size_t end =
            p + 1 == parts ? trace.size() : next + per;
        for (; next < end; ++next) {
            const TraceEvent &e = trace.events()[next];
            shard.append(e.proc, e.offset, e.length);
        }
        shards.push_back(std::move(shard));
    }
    return shards;
}

/** The phase_flip trace split into three ingest shards. */
std::vector<ShardDelta>
microDeltas(const StoreConfig &config)
{
    const MicroCase micro = microCase("phase_flip");
    std::vector<ShardDelta> deltas;
    std::size_t index = 0;
    for (const Trace &shard : splitTrace(micro.trace, 3)) {
        deltas.push_back(buildShardDelta(
            config, "shard" + std::to_string(index++), shard));
    }
    return deltas;
}

/** In-memory fold of a delta prefix (the ground-truth state). */
std::string
foldedState(const StoreConfig &config,
            const std::vector<ShardDelta> &deltas, std::size_t count)
{
    StoredProfile profile = emptyProfile(config);
    for (std::size_t i = 0; i < count; ++i) {
        ShardDelta numbered = deltas[i];
        numbered.info.seq = i + 1;
        applyShardDelta(profile, numbered);
    }
    return serializeProfile(profile);
}

std::string
stateOf(const ProfileStore &store)
{
    return serializeProfile(store.profile());
}

std::string
reopenState(const std::string &dir)
{
    return stateOf(ProfileStore::open(dir));
}

class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        clearFaultPlan();
        clearCrashPoint();
    }
    void
    TearDown() override
    {
        clearFaultPlan();
        clearCrashPoint();
    }
};

TEST_F(StoreTest, ReopenEqualsFreshFoldBitExactly)
{
    const std::string dir = tempDir("reopen_fold");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        for (const ShardDelta &delta : deltas)
            store.ingest(delta);
        EXPECT_EQ(stateOf(store), foldedState(config, deltas, 3));
    }
    // A reopened store replays the journal to the identical bytes.
    EXPECT_EQ(reopenState(dir), foldedState(config, deltas, 3));

    // And survives a compaction round trip bit-exactly too.
    {
        ProfileStore store = ProfileStore::open(dir);
        store.compact();
        EXPECT_EQ(store.generation(), 1u);
    }
    EXPECT_EQ(reopenState(dir), foldedState(config, deltas, 3));
}

TEST_F(StoreTest, PlacementFromReopenedStoreEqualsFreshPlacement)
{
    const std::string dir = tempDir("place_equality");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        for (const ShardDelta &delta : deltas)
            store.ingest(delta);
    }

    // Fresh single-shot profile of the same shards.
    StoredProfile fresh = emptyProfile(config);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
        ShardDelta numbered = deltas[i];
        numbered.info.seq = i + 1;
        applyShardDelta(fresh, numbered);
    }
    const StorePlaceResult expect =
        placeProfile(config, fresh, "gbsc");

    ProfileStore store = ProfileStore::open(dir);
    const StorePlaceResult got = store.place("gbsc", 0.0, true);
    ASSERT_TRUE(got.placed);
    ASSERT_EQ(got.layout.procCount(), expect.layout.procCount());
    for (std::size_t i = 0; i < expect.layout.procCount(); ++i) {
        EXPECT_EQ(got.layout.address(static_cast<ProcId>(i)),
                  expect.layout.address(static_cast<ProcId>(i)));
    }

    // The journaled placement survives a reopen.
    const ProfileStore reopened = ProfileStore::open(dir);
    ASSERT_EQ(reopened.profile().layout_addresses.size(),
              expect.layout.procCount());
    for (std::size_t i = 0; i < expect.layout.procCount(); ++i) {
        EXPECT_EQ(reopened.profile().layout_addresses[i],
                  expect.layout.address(static_cast<ProcId>(i)));
    }
    EXPECT_EQ(reopened.profile().layout_algorithm, "gbsc");
}

/**
 * The crash matrix: ingest crashes at every journal-path site, reopen
 * must observe pre XOR post, with pinned outcomes where the protocol
 * dictates one.
 */
TEST_F(StoreTest, IngestCrashMatrixYieldsPreOrPostExactly)
{
    struct Row
    {
        const char *site;
        /** -1 = pre required, +1 = post required, 0 = either. */
        int expect;
    };
    const Row rows[] = {
        // Torn mid-record: the tail fails its CRC, the record is lost.
        {"store.journal.mid_record", -1},
        // Record fully written but not yet fsynced: an in-process
        // crash leaves the bytes in the page cache, so either outcome
        // is legal — what is forbidden is a third state.
        {"store.journal.pre_fsync", 0},
        // Durable record: the ingest must be visible after reopen.
        {"store.journal.post_fsync", +1},
    };
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    for (const Row &row : rows) {
        const std::string dir =
            tempDir(std::string("crash_") + row.site);
        ProfileStore::init(dir, config);
        {
            ProfileStore store = ProfileStore::open(dir);
            store.ingest(deltas[0]);
        }
        const std::string pre = foldedState(config, deltas, 1);
        const std::string post = foldedState(config, deltas, 2);

        ProfileStore store = ProfileStore::open(dir);
        installCrashPoint(row.site, 1, CrashMode::kThrow);
        EXPECT_THROW(store.ingest(deltas[1]), CrashPointHit)
            << row.site;
        clearCrashPoint();

        const std::string state = reopenState(dir);
        EXPECT_TRUE(state == pre || state == post)
            << "third state after crash at " << row.site;
        if (row.expect < 0) {
            EXPECT_EQ(state, pre) << row.site;
        }
        if (row.expect > 0) {
            EXPECT_EQ(state, post) << row.site;
        }

        // The store must accept work after the crash: re-ingest the
        // (possibly lost) shard and land on the post state.
        if (state == pre) {
            ProfileStore retry = ProfileStore::open(dir);
            retry.ingest(deltas[1]);
            EXPECT_EQ(stateOf(retry), post) << row.site;
            EXPECT_EQ(reopenState(dir), post) << row.site;
        }
    }
}

/**
 * Compaction crash matrix: a crash at any snapshot/journal-rewrite
 * site must leave a store that reopens to the same logical state.
 */
TEST_F(StoreTest, CompactionCrashSitesPreserveTheState)
{
    const char *sites[] = {
        "store.snapshot.pre_rename", "store.snapshot.post_rename",
        "store.compact.pre_journal", "store.compact.pre_rename",
        "store.compact.post_rename"};
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    for (const char *site : sites) {
        const std::string dir = tempDir(std::string("compact_") + site);
        ProfileStore::init(dir, config);
        {
            ProfileStore store = ProfileStore::open(dir);
            store.ingest(deltas[0]);
            store.ingest(deltas[1]);
        }
        const std::string expect = foldedState(config, deltas, 2);

        ProfileStore store = ProfileStore::open(dir);
        installCrashPoint(site, 1, CrashMode::kThrow);
        EXPECT_THROW(store.compact(), CrashPointHit) << site;
        clearCrashPoint();

        EXPECT_EQ(reopenState(dir), expect)
            << "state changed by crashed compaction at " << site;

        // And the interrupted store still ingests + compacts.
        ProfileStore retry = ProfileStore::open(dir);
        retry.ingest(deltas[2]);
        retry.compact();
        EXPECT_EQ(reopenState(dir), foldedState(config, deltas, 3))
            << site;
    }
}

TEST_F(StoreTest, TornJournalTailIsDroppedAndOverwritten)
{
    const std::string dir = tempDir("torn_tail");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        store.ingest(deltas[0]);
        store.ingest(deltas[1]);
    }
    // Tear 5 bytes off the journal: record 2 loses its CRC.
    const std::string journal = dir + "/journal.tpj";
    std::string bytes;
    {
        std::ifstream is(journal, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
    }
    std::filesystem::resize_file(journal, bytes.size() - 5);

    {
        const ProfileStore store = ProfileStore::open(dir);
        EXPECT_EQ(stateOf(store), foldedState(config, deltas, 1));
        EXPECT_GT(store.openStats().dropped_bytes, 0u);
    }
    // The trim made the prefix the whole file; appends extend it.
    ProfileStore store = ProfileStore::open(dir);
    EXPECT_EQ(store.openStats().dropped_bytes, 0u);
    store.ingest(deltas[1]);
    EXPECT_EQ(reopenState(dir), foldedState(config, deltas, 2));
}

TEST_F(StoreTest, CorruptNewestSnapshotSalvagesLosslessly)
{
    const std::string dir = tempDir("salvage");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        store.ingest(deltas[0]);
        store.ingest(deltas[1]);
        store.compact(); // generation 1, journal keeps seq > 0
        store.ingest(deltas[2]);
    }
    // Flip one payload bit of the newest snapshot (generation 1).
    const std::string snap = dir + "/snapshot-1.tps";
    {
        std::fstream f(snap, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(100);
        char c = 0;
        f.get(c);
        f.seekp(100);
        f.put(static_cast<char>(c ^ 0x10));
    }
    const ProfileStore store = ProfileStore::open(dir);
    EXPECT_TRUE(store.openStats().salvaged);
    EXPECT_EQ(store.generation(), 0u);
    // Lossless: generation 0 + full journal replay == all 3 shards.
    EXPECT_EQ(stateOf(store), foldedState(config, deltas, 3));
}

TEST_F(StoreTest, DroppedMiddleRecordEndsTheValidPrefix)
{
    const std::string dir = tempDir("seq_gap");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        for (const ShardDelta &delta : deltas)
            store.ingest(delta);
    }
    // Excise record 2 (seq 2): the prefix ends after seq 1, and the
    // (intact) record 3 must NOT be applied across the gap.
    const std::string journal = dir + "/journal.tpj";
    std::string bytes;
    {
        std::ifstream is(journal, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
    }
    const JournalScan scan = scanJournal(bytes, journal);
    ASSERT_EQ(scan.records.size(), 3u);
    bytes.erase(scan.extents[1].begin,
                scan.extents[1].end - scan.extents[1].begin);
    {
        std::ofstream os(journal,
                         std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    const ProfileStore store = ProfileStore::open(dir);
    EXPECT_EQ(stateOf(store), foldedState(config, deltas, 1));
}

TEST_F(StoreTest, WriteShortFaultLeavesPreStateAndRetries)
{
    const std::string dir = tempDir("write_short");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    {
        ProfileStore store = ProfileStore::open(dir);
        store.ingest(deltas[0]);
    }
    const std::string pre = foldedState(config, deltas, 1);

    FaultPlan plan;
    plan.arm(FaultKind::kWriteShort, 1.0, 7);
    installFaultPlan(plan);
    {
        ProfileStore store = ProfileStore::open(dir);
        EXPECT_THROW(store.ingest(deltas[1]), TopoError);
    }
    clearFaultPlan();

    // Torn write -> the reopened store salvages the pre state and the
    // retry lands exactly on the post state.
    EXPECT_EQ(reopenState(dir), pre);
    ProfileStore store = ProfileStore::open(dir);
    store.ingest(deltas[1]);
    EXPECT_EQ(reopenState(dir), foldedState(config, deltas, 2));
}

TEST_F(StoreTest, DriftGatesIncrementalReplacement)
{
    const std::string dir = tempDir("drift");
    const StoreConfig config = microConfig();
    const std::vector<ShardDelta> deltas = microDeltas(config);
    ProfileStore::init(dir, config);
    ProfileStore store = ProfileStore::open(dir);
    store.ingest(deltas[0]);

    // Never placed: any threshold places.
    const StorePlaceResult first = store.place("gbsc", 1e9);
    EXPECT_TRUE(first.placed);
    EXPECT_EQ(store.drift(), 0.0);

    // No new data: the stored layout is retained bit-for-bit.
    const StorePlaceResult retained = store.place("gbsc", 0.5);
    EXPECT_FALSE(retained.placed);
    for (std::size_t i = 0; i < first.layout.procCount(); ++i) {
        EXPECT_EQ(retained.layout.address(static_cast<ProcId>(i)),
                  first.layout.address(static_cast<ProcId>(i)));
    }

    // New shards move the TRG; a generous threshold still retains,
    // a tight one replaces and resets the baseline.
    store.ingest(deltas[1]);
    store.ingest(deltas[2]);
    const double drift = store.drift();
    EXPECT_GT(drift, 0.0);
    EXPECT_FALSE(store.place("gbsc", drift * 2).placed);
    EXPECT_TRUE(store.place("gbsc", drift / 2).placed);
    EXPECT_EQ(store.drift(), 0.0);
}

TEST_F(StoreTest, AtomicReplaceFsyncsTheParentDirectory)
{
    const std::string dir = tempDir("dir_fsync");
    const StoreConfig config = microConfig();
    Counter &dir_fsyncs =
        MetricsRegistry::global().counter("store.dir_fsyncs");
    const std::uint64_t before = dir_fsyncs.value();
    ProfileStore::init(dir, config);
    // init atomically replaces snapshot, journal, and meta — each one
    // must fsync the store directory or the rename is not durable.
    EXPECT_GE(dir_fsyncs.value(), before + 3);
}

TEST_F(StoreTest, JournalScanRejectsDamagedHeadersOnly)
{
    // A valid header with garbage records: scan succeeds, prefix empty.
    std::string bytes = journalHeader(77);
    bytes += "garbage that is not a record";
    const JournalScan scan = scanJournal(bytes, "test");
    EXPECT_EQ(scan.store_id, 77u);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_GT(scan.dropped_bytes, 0u);

    // A truncated header is corrupt input.
    EXPECT_THROW(scanJournal("TOPJ", "test"), TopoError);
}

} // namespace
} // namespace topo
