/**
 * @file
 * End-to-end integration tests across the whole pipeline: synthetic
 * workload -> traces -> profiles -> all placement algorithms -> cache
 * simulation. These encode the paper's qualitative expectations at a
 * laptop-test scale.
 */

#include <gtest/gtest.h>

#include "topo/eval/experiment.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/gbsc_setassoc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/program/layout_script.hh"
#include "topo/workload/synthetic_program.hh"

#include <sstream>

namespace topo
{
namespace
{

BenchmarkCase
mediumCase(std::uint64_t seed = 1234)
{
    SyntheticSpec spec;
    spec.name = "medium";
    spec.proc_count = 120;
    spec.total_bytes = 260 * 1024;
    spec.popular_count = 40;
    spec.popular_bytes = 60 * 1024;
    spec.phase_count = 4;
    spec.ranks = 4;
    spec.seed = seed;
    BenchmarkCase bench;
    bench.name = spec.name;
    bench.model = buildSyntheticWorkload(spec);
    bench.train.name = "train";
    bench.train.seed = seed + 1;
    bench.train.target_runs = 60000;
    bench.train.phase_emphasis = {1.1, 0.9, 1.0, 1.0};
    bench.test.name = "test";
    bench.test.seed = seed + 2;
    bench.test.target_runs = 60000;
    bench.test.phase_emphasis = {0.9, 1.1, 1.0, 1.0};
    return bench;
}

class IntegrationFixture : public ::testing::Test
{
  protected:
    IntegrationFixture() : bundle_(mediumCase(), EvalOptions{}) {}
    ProfileBundle bundle_;
};

TEST_F(IntegrationFixture, AllAlgorithmsProduceValidLayouts)
{
    const PlacementContext ctx = bundle_.makeContext();
    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    for (const PlacementAlgorithm *algo :
         std::initializer_list<const PlacementAlgorithm *>{&def, &ph,
                                                           &hkc, &gbsc}) {
        const Layout layout = algo->place(ctx);
        layout.validate(bundle_.program(),
                        bundle_.options().cache.line_bytes);
        const double mr = bundle_.testMissRate(layout);
        EXPECT_GT(mr, 0.0) << algo->name();
        EXPECT_LT(mr, 0.5) << algo->name();
    }
}

TEST_F(IntegrationFixture, OptimizedLayoutsBeatDefaultOnTest)
{
    // The paper's headline: profile-driven placement beats the default
    // layout even on a different input. GBSC must win outright; the
    // WCG-driven baselines are only required never to be meaningfully
    // worse (the paper's own m88ksim panel shows PH losing to the
    // default under train/test drift).
    const PlacementContext ctx = bundle_.makeContext();
    const DefaultPlacement def;
    const double default_mr = bundle_.testMissRate(def.place(ctx));
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    EXPECT_LT(bundle_.testMissRate(ph.place(ctx)), default_mr * 1.05);
    EXPECT_LT(bundle_.testMissRate(hkc.place(ctx)), default_mr * 1.05);
    EXPECT_LT(bundle_.testMissRate(gbsc.place(ctx)), default_mr);
}

TEST_F(IntegrationFixture, GbscCompetitiveWithBaselinesOnTrain)
{
    // On the training input (no train/test drift), GBSC's extra
    // information must make it at least competitive with PH: allow a
    // small tolerance for greedy-tie noise on this small workload.
    const PlacementContext ctx = bundle_.makeContext();
    const PettisHansen ph;
    const Gbsc gbsc;
    const double ph_mr = bundle_.trainMissRate(ph.place(ctx));
    const double gbsc_mr = bundle_.trainMissRate(gbsc.place(ctx));
    EXPECT_LT(gbsc_mr, ph_mr * 1.10);
}

TEST_F(IntegrationFixture, LayoutsDifferAcrossAlgorithms)
{
    const PlacementContext ctx = bundle_.makeContext();
    const PettisHansen ph;
    const Gbsc gbsc;
    const Layout a = ph.place(ctx);
    const Layout b = gbsc.place(ctx);
    bool differs = false;
    for (ProcId i = 0; i < bundle_.program().procCount(); ++i)
        differs |= a.address(i) != b.address(i);
    EXPECT_TRUE(differs);
}

TEST_F(IntegrationFixture, LinkerScriptForRealLayout)
{
    const PlacementContext ctx = bundle_.makeContext();
    const Gbsc gbsc;
    const Layout layout = gbsc.place(ctx);
    std::ostringstream oss;
    writeLinkerScript(oss, bundle_.program(), layout, 32);
    EXPECT_NE(oss.str().find("SECTIONS"), std::string::npos);
}

TEST(IntegrationSetAssoc, PairDrivenPlacementOnTwoWayCache)
{
    BenchmarkCase bench = mediumCase(777);
    bench.train.target_runs = 80000;
    bench.test.target_runs = 80000;
    EvalOptions opts;
    opts.cache = CacheConfig::paperTwoWay();
    opts.build_pairs = true;
    opts.pair_window = 16;
    opts.pair_prune = 1.5;
    const ProfileBundle bundle(bench, opts);
    EXPECT_GT(bundle.pairs().size(), 0u);

    const PlacementContext ctx = bundle.makeContext();
    const GbscSetAssoc sa;
    const Layout layout = sa.place(ctx);
    layout.validate(bundle.program(), 32);
    const double sa_mr = bundle.testMissRate(layout);
    const DefaultPlacement def;
    const double def_mr = bundle.testMissRate(def.place(ctx));
    EXPECT_GT(sa_mr, 0.0);
    // This workload has little placement-recoverable conflict on a
    // 2-way cache; the requirement is "never meaningfully worse".
    EXPECT_LT(sa_mr, def_mr * 1.05);
}

TEST(IntegrationSetAssoc, BeatsDefaultOnPhasedWorkload)
{
    // m88ksim's phased model leaves a large conflict surface even on
    // a 2-way cache; here the pair database must pay off clearly.
    EvalOptions opts;
    opts.cache = CacheConfig::paperTwoWay();
    opts.build_pairs = true;
    opts.pair_window = 12;
    opts.pair_prune = 2.0;
    const BenchmarkCase bench = paperBenchmark("m88ksim", 0.05);
    const ProfileBundle bundle(bench, opts);
    const PlacementContext ctx = bundle.makeContext();
    const GbscSetAssoc sa;
    const DefaultPlacement def;
    const double sa_mr = bundle.testMissRate(sa.place(ctx));
    const double def_mr = bundle.testMissRate(def.place(ctx));
    EXPECT_LT(sa_mr, def_mr * 0.8);
}

TEST(IntegrationPadding, OneLinePaddingShiftsMissRate)
{
    // Section 5.1's observation: padding every procedure by one cache
    // line produces a *different* (usually worse for an optimised
    // layout) miss rate — layouts are a discontinuous optimisation
    // target.
    const ProfileBundle bundle(mediumCase(4321), EvalOptions{});
    const PlacementContext ctx = bundle.makeContext();
    const Gbsc gbsc;
    const Layout base = gbsc.place(ctx);
    const Layout padded =
        Layout::withPadding(base, bundle.program(), 32, 32);
    const double base_mr = bundle.testMissRate(base);
    const double padded_mr = bundle.testMissRate(padded);
    EXPECT_NE(base_mr, padded_mr);
}

TEST(IntegrationStability, DistinctTrainingSeedsStillBeatDefault)
{
    for (std::uint64_t seed : {11ULL, 22ULL}) {
        const ProfileBundle bundle(mediumCase(seed), EvalOptions{});
        const PlacementContext ctx = bundle.makeContext();
        const Gbsc gbsc;
        const DefaultPlacement def;
        EXPECT_LT(bundle.testMissRate(gbsc.place(ctx)),
                  bundle.testMissRate(def.place(ctx)))
            << "seed " << seed;
    }
}

} // namespace
} // namespace topo
