/**
 * @file
 * Unit tests for the util module: Rng, stats, tables, options, strings.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "topo/util/error.hh"
#include "topo/util/options.hh"
#include "topo/util/rng.hh"
#include "topo/util/stats.hh"
#include "topo/util/string_utils.hh"
#include "topo/util/table.hh"

namespace topo
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowZeroThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBelow(0), TopoError);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const std::int64_t v = rng.nextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.nextGaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.03);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.nextLogNormal(0.0, 2.0), 0.0);
}

TEST(Rng, BoolExtremes)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BoolProbability)
{
    Rng rng(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic)
{
    Rng base(31);
    Rng c1 = base.split(0);
    Rng c2 = base.split(1);
    Rng c1_again = Rng(31).split(0);
    EXPECT_EQ(c1.next(), c1_again.next());
    EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, ShufflePermutes)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, orig);
}

TEST(Stats, RunningBasics)
{
    RunningStats s;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Stats, PercentileRejectsBadInput)
{
    EXPECT_THROW(percentile({}, 50.0), TopoError);
    EXPECT_THROW(percentile({1.0}, 101.0), TopoError);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVariance)
{
    std::vector<double> xs{1, 1, 1};
    std::vector<double> ys{1, 2, 3};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, LeastSquaresRecoversLine)
{
    std::vector<double> xs{0, 1, 2, 3};
    std::vector<double> ys{1, 3, 5, 7}; // y = 2x + 1
    const LinearFit fit = leastSquares(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.offset, 1.0, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, EmpiricalCdfSortedAndNormalised)
{
    const auto cdf = empiricalCdf({3.0, 1.0, 2.0});
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
    EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
    EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
    EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
}

TEST(Table, RendersAlignedText)
{
    TextTable t({"a", "bb"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.render(oss, "title");
    const std::string out = oss.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("bb"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, RowWidthChecked)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), TopoError);
}

TEST(Table, CsvQuoting)
{
    TextTable t({"x"});
    t.addRow({"a,b\"c"});
    std::ostringstream oss;
    t.renderCsv(oss);
    EXPECT_NE(oss.str().find("\"a,b\"\"c\""), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtPercent(0.0486), "4.86%");
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtBytes(2048), "2 K");
    EXPECT_EQ(fmtCount(1500), "1.5 K");
    EXPECT_EQ(fmtCount(33000000), "33.0 M");
}

TEST(Options, ParsesFlagsAndValues)
{
    const char *argv[] = {"prog", "--alpha=3", "--flag", "--name=x"};
    const Options opts = Options::parse(4, argv);
    EXPECT_EQ(opts.getInt("alpha", 0), 3);
    EXPECT_TRUE(opts.getBool("flag", false));
    EXPECT_EQ(opts.getString("name", ""), "x");
    EXPECT_EQ(opts.getInt("missing", 7), 7);
}

TEST(Options, RejectsPositional)
{
    const char *argv[] = {"prog", "oops"};
    EXPECT_THROW(Options::parse(2, argv), TopoError);
}

TEST(Options, HelpDetected)
{
    const char *argv[] = {"prog", "--help"};
    EXPECT_TRUE(Options::parse(2, argv).helpRequested());
}

TEST(Options, BadNumbersThrow)
{
    Options opts;
    opts.set("n", "abc");
    EXPECT_THROW(opts.getInt("n", 0), TopoError);
    EXPECT_THROW(opts.getDouble("n", 0.0), TopoError);
    opts.set("b", "maybe");
    EXPECT_THROW(opts.getBool("b", false), TopoError);
}

TEST(Strings, SplitAndTrim)
{
    const auto fields = split("a,,b", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(trim("  x \t"), "x");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseIntSuffixes)
{
    EXPECT_EQ(parseInt("2K", "t"), 2000);
    EXPECT_EQ(parseInt("3M", "t"), 3000000);
    EXPECT_EQ(parseInt("-5", "t"), -5);
    EXPECT_THROW(parseInt("1.5", "t"), TopoError);
    EXPECT_THROW(parseInt("", "t"), TopoError);
}

TEST(Strings, ParseDouble)
{
    EXPECT_DOUBLE_EQ(parseDouble("0.25", "t"), 0.25);
    EXPECT_THROW(parseDouble("x", "t"), TopoError);
}

} // namespace
} // namespace topo
