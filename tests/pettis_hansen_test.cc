/**
 * @file
 * Tests for the Pettis-Hansen implementation (Section 2).
 */

#include <gtest/gtest.h>

#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

struct PhFixture
{
    Program program{"ph"};
    WeightedGraph wcg{0};
    PlacementContext ctx;

    explicit PhFixture(std::size_t procs, std::uint32_t size = 64)
    {
        for (std::size_t i = 0; i < procs; ++i)
            program.addProcedure("p" + std::to_string(i), size);
        wcg = WeightedGraph(procs);
        ctx.program = &program;
        ctx.cache = CacheConfig::paperDefault();
        ctx.wcg = &wcg;
    }
};

TEST(PettisHansen, HeaviestPairBecomesAdjacent)
{
    PhFixture fx(4);
    fx.wcg.addWeight(0, 1, 100.0);
    fx.wcg.addWeight(2, 3, 1.0);
    const PettisHansen ph;
    const Layout layout = ph.place(fx.ctx);
    layout.validate(fx.program, 32);
    const std::uint64_t a0 = layout.address(0);
    const std::uint64_t a1 = layout.address(1);
    // 64-byte procedures, line-aligned: adjacency means 64 bytes apart.
    EXPECT_EQ(a0 < a1 ? a1 - a0 : a0 - a1, 64u);
}

TEST(PettisHansen, ChainOrientationMinimisesDistance)
{
    // Chain A = [0 1 2] built by weights 0-1 and 1-2; then procedure 3
    // attaches via an edge to 0. The merged chain must place 3 next to
    // 0, which requires reversing A (or prepending), not appending.
    PhFixture fx(4);
    fx.wcg.addWeight(0, 1, 100.0);
    fx.wcg.addWeight(1, 2, 90.0);
    fx.wcg.addWeight(0, 3, 50.0);
    const PettisHansen ph;
    const Layout layout = ph.place(fx.ctx);
    layout.validate(fx.program, 32);
    const std::uint64_t d03 =
        layout.address(0) < layout.address(3)
            ? layout.address(3) - layout.address(0)
            : layout.address(0) - layout.address(3);
    EXPECT_EQ(d03, 64u) << "3 must end up adjacent to 0";
}

TEST(PettisHansen, TransitiveMergeKeepsHeavyNeighbourhoodsClose)
{
    PhFixture fx(6);
    fx.wcg.addWeight(0, 1, 100.0);
    fx.wcg.addWeight(2, 3, 80.0);
    fx.wcg.addWeight(1, 2, 60.0);
    const PettisHansen ph;
    const Layout layout = ph.place(fx.ctx);
    layout.validate(fx.program, 32);
    // The four connected procedures form one chain; 1 and 2 adjacent.
    const std::uint64_t d12 =
        layout.address(1) < layout.address(2)
            ? layout.address(2) - layout.address(1)
            : layout.address(1) - layout.address(2);
    EXPECT_EQ(d12, 64u);
}

TEST(PettisHansen, IsolatedProceduresStillPlaced)
{
    PhFixture fx(5);
    fx.wcg.addWeight(0, 1, 10.0);
    const PettisHansen ph;
    const Layout layout = ph.place(fx.ctx);
    layout.validate(fx.program, 32); // validate checks completeness
}

TEST(PettisHansen, RequiresWcg)
{
    PhFixture fx(2);
    fx.ctx.wcg = nullptr;
    const PettisHansen ph;
    EXPECT_THROW(ph.place(fx.ctx), TopoError);
}

TEST(PettisHansen, EndToEndFromTrace)
{
    // f alternates with g heavily and with h rarely: PH must place
    // f adjacent to g.
    Program p("ph");
    const ProcId f = p.addProcedure("f", 64);
    const ProcId g = p.addProcedure("g", 64);
    const ProcId filler = p.addProcedure("filler", 64);
    const ProcId h = p.addProcedure("h", 64);
    Trace t(p.procCount());
    for (int i = 0; i < 100; ++i) {
        t.append(f, 0, 64);
        t.append(g, 0, 64);
    }
    t.append(filler, 0, 64);
    t.append(f, 0, 64);
    t.append(h, 0, 64);
    const WeightedGraph wcg = buildWcg(p, t);
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig::paperDefault();
    ctx.wcg = &wcg;
    const PettisHansen ph;
    const Layout layout = ph.place(ctx);
    layout.validate(p, 32);
    const std::uint64_t dfg = layout.address(f) < layout.address(g)
                                  ? layout.address(g) - layout.address(f)
                                  : layout.address(f) - layout.address(g);
    EXPECT_EQ(dfg, 64u);
}

/** Property: PH always yields complete, overlap-free layouts. */
class PhPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PhPropertyTest, RandomGraphsYieldValidLayouts)
{
    Rng rng(GetParam());
    const std::size_t procs = 20;
    PhFixture fx(procs, 96);
    for (int e = 0; e < 40; ++e) {
        const BlockId u = static_cast<BlockId>(rng.nextBelow(procs));
        const BlockId v = static_cast<BlockId>(rng.nextBelow(procs));
        if (u != v)
            fx.wcg.addWeight(u, v, 1.0 + rng.nextBelow(1000));
    }
    const PettisHansen ph;
    const Layout layout = ph.place(fx.ctx);
    layout.validate(fx.program, 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

} // namespace
} // namespace topo
