/**
 * @file
 * Tests for popularity selection, the gap filler, and the baseline
 * placements.
 */

#include <gtest/gtest.h>

#include "topo/placement/gap_fill.hh"
#include "topo/placement/placement.hh"
#include "topo/placement/popularity.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Program
heatProgram()
{
    Program p("pop");
    p.addProcedure("hot1", 100);
    p.addProcedure("cold1", 100);
    p.addProcedure("hot2", 100);
    p.addProcedure("untouched", 100);
    return p;
}

TraceStats
statsFor(const Program &p, std::vector<std::uint64_t> bytes)
{
    TraceStats stats;
    stats.bytes_fetched = std::move(bytes);
    stats.run_count.assign(p.procCount(), 1);
    for (std::uint64_t b : stats.bytes_fetched)
        stats.total_bytes += b;
    stats.total_runs = p.procCount();
    return stats;
}

TEST(Popularity, CoveragePrefix)
{
    const Program p = heatProgram();
    const TraceStats stats = statsFor(p, {9000, 50, 900, 0});
    PopularityOptions opts;
    opts.coverage = 0.99; // 9000+900 = 99.4% of 9950
    const PopularSet set = selectPopular(p, stats, opts);
    EXPECT_TRUE(set.mask[0]);
    EXPECT_TRUE(set.mask[2]);
    EXPECT_FALSE(set.mask[1]);
    EXPECT_FALSE(set.mask[3]);
    EXPECT_EQ(set.count, 2u);
    EXPECT_EQ(set.bytes, 200u);
    EXPECT_NEAR(set.covered, 9900.0 / 9950.0, 1e-12);
}

TEST(Popularity, UntouchedNeverPopular)
{
    const Program p = heatProgram();
    const TraceStats stats = statsFor(p, {10, 10, 10, 0});
    PopularityOptions opts;
    opts.coverage = 1.0;
    const PopularSet set = selectPopular(p, stats, opts);
    EXPECT_EQ(set.count, 3u);
    EXPECT_FALSE(set.mask[3]);
}

TEST(Popularity, MaxProcsCaps)
{
    const Program p = heatProgram();
    const TraceStats stats = statsFor(p, {100, 90, 80, 70});
    PopularityOptions opts;
    opts.coverage = 1.0;
    opts.max_procs = 2;
    const PopularSet set = selectPopular(p, stats, opts);
    EXPECT_EQ(set.count, 2u);
    EXPECT_TRUE(set.mask[0]);
    EXPECT_TRUE(set.mask[1]);
}

TEST(Popularity, BadCoverageRejected)
{
    const Program p = heatProgram();
    const TraceStats stats = statsFor(p, {1, 1, 1, 1});
    PopularityOptions opts;
    opts.coverage = 0.0;
    EXPECT_THROW(selectPopular(p, stats, opts), TopoError);
}

TEST(GapFiller, BestFitLargestFirst)
{
    Program p("gf");
    const ProcId small = p.addProcedure("small", 32);  // 1 line
    const ProcId mid = p.addProcedure("mid", 96);      // 3 lines
    const ProcId large = p.addProcedure("large", 160); // 5 lines
    GapFiller filler(p, {small, mid, large}, 32);
    const auto placed = filler.fill(4);
    // Best fit: mid (3 lines) then small (1 line).
    ASSERT_EQ(placed.size(), 2u);
    EXPECT_EQ(placed[0].first, mid);
    EXPECT_EQ(placed[0].second, 0u);
    EXPECT_EQ(placed[1].first, small);
    EXPECT_EQ(placed[1].second, 3u);
    const auto rest = filler.remaining();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0], large);
}

TEST(GapFiller, NothingFitsLeavesGap)
{
    Program p("gf");
    const ProcId big = p.addProcedure("big", 320); // 10 lines
    GapFiller filler(p, {big}, 32);
    EXPECT_TRUE(filler.fill(4).empty());
    EXPECT_EQ(filler.remaining().size(), 1u);
}

TEST(GapFiller, ConsumesEachProcOnce)
{
    Program p("gf");
    const ProcId a = p.addProcedure("a", 32);
    GapFiller filler(p, {a}, 32);
    EXPECT_EQ(filler.fill(1).size(), 1u);
    EXPECT_TRUE(filler.fill(10).empty());
    EXPECT_TRUE(filler.remaining().empty());
}

PlacementContext
contextFor(const Program &p, const CacheConfig &cache)
{
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = cache;
    return ctx;
}

TEST(DefaultPlacement, MatchesLayoutDefaultOrder)
{
    const Program p = heatProgram();
    const CacheConfig cache = CacheConfig::paperDefault();
    const DefaultPlacement algo;
    const Layout layout = algo.place(contextFor(p, cache));
    layout.validate(p, cache.line_bytes);
    const Layout expected = Layout::defaultOrder(p, cache.line_bytes);
    for (ProcId i = 0; i < p.procCount(); ++i)
        EXPECT_EQ(layout.address(i), expected.address(i));
    EXPECT_EQ(algo.name(), "default");
}

TEST(RandomPlacement, ValidAndSeedDeterministic)
{
    const Program p = heatProgram();
    const CacheConfig cache = CacheConfig::paperDefault();
    const RandomPlacement a(7), b(7), c(8);
    const Layout la = a.place(contextFor(p, cache));
    const Layout lb = b.place(contextFor(p, cache));
    const Layout lc = c.place(contextFor(p, cache));
    la.validate(p, cache.line_bytes);
    lc.validate(p, cache.line_bytes);
    bool same_as_a = true, same_as_c = true;
    for (ProcId i = 0; i < p.procCount(); ++i) {
        same_as_a &= la.address(i) == lb.address(i);
        same_as_c &= la.address(i) == lc.address(i);
    }
    EXPECT_TRUE(same_as_a);
    EXPECT_FALSE(same_as_c);
}

TEST(PlacementContext, HelpersAndChecks)
{
    const Program p = heatProgram();
    PlacementContext ctx = contextFor(p, CacheConfig::paperDefault());
    EXPECT_TRUE(ctx.isPopular(0)); // empty mask: everything popular
    ctx.popular = {true, false, true, false};
    EXPECT_FALSE(ctx.isPopular(1));
    EXPECT_DOUBLE_EQ(ctx.heatOf(0), 0.0);
    ctx.heat = {5.0, 1.0, 3.0, 0.0};
    EXPECT_DOUBLE_EQ(ctx.heatOf(2), 3.0);
    const auto order = procsByHeat(ctx);
    EXPECT_EQ(order, (std::vector<ProcId>{0, 2, 1, 3}));

    PlacementContext broken;
    EXPECT_THROW(broken.requireBasics("test"), TopoError);
}

} // namespace
} // namespace topo
