/**
 * @file
 * Tests for the metric-driven refinement pass: monotonicity, layout
 * validity, fixed-point behaviour, and end-to-end effect.
 */

#include <gtest/gtest.h>

#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/refine.hh"
#include "topo/util/error.hh"
#include "topo/workload/microsuite.hh"
#include "topo/workload/synthetic_program.hh"

#include "topo/placement/popularity.hh"
#include "topo/profile/perturb.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

struct RefineFixture
{
    MicroCase mc;
    ChunkMap chunks;
    TraceStats stats;
    PopularSet popular;
    TrgBuildResult trgs;

    explicit RefineFixture(const std::string &name)
        : mc(microCase(name)),
          chunks(mc.program, 256),
          stats(computeTraceStats(mc.program, mc.trace)),
          popular(selectPopular(mc.program, stats))
    {
        TrgBuildOptions opts;
        opts.byte_budget = 2 * mc.cache.size_bytes;
        opts.popular = &popular.mask;
        trgs = buildTrgs(mc.program, chunks, mc.trace, opts);
    }

    PlacementContext
    context()
    {
        PlacementContext ctx;
        ctx.program = &mc.program;
        ctx.cache = mc.cache;
        ctx.chunks = &chunks;
        ctx.trg_select = &trgs.select;
        ctx.trg_place = &trgs.place;
        ctx.popular = popular.mask;
        ctx.heat.assign(mc.program.procCount(), 0.0);
        for (std::size_t i = 0; i < ctx.heat.size(); ++i)
            ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);
        return ctx;
    }
};

TEST(Refine, NeverIncreasesTheMetric)
{
    for (const char *name :
         {"thrash_pair", "sibling_fanout", "phase_flip", "giant_proc"}) {
        RefineFixture fx(name);
        const PlacementContext ctx = fx.context();
        const DefaultPlacement def;
        const Layout base = def.place(ctx);
        const RefineResult result = refineLayout(ctx, base);
        EXPECT_LE(result.final_metric, result.initial_metric) << name;
        result.layout.validate(fx.mc.program,
                               fx.mc.cache.line_bytes);
    }
}

TEST(Refine, FixesTheDefaultLayoutOnThrashPair)
{
    RefineFixture fx("thrash_pair");
    const PlacementContext ctx = fx.context();
    const DefaultPlacement def;
    const Layout base = def.place(ctx);
    const RefineResult result = refineLayout(ctx, base);
    EXPECT_GT(result.initial_metric, 0.0);
    EXPECT_DOUBLE_EQ(result.final_metric, 0.0);
    EXPECT_GT(result.moves, 0u);
    const FetchStream stream(fx.mc.program, fx.mc.trace,
                             fx.mc.cache.line_bytes);
    EXPECT_LT(layoutMissRate(fx.mc.program, result.layout, stream,
                             fx.mc.cache),
              0.01);
}

TEST(Refine, GbscLayoutIsNearFixedPoint)
{
    // GBSC already minimises the same metric greedily; refinement on
    // top must terminate quickly and never regress.
    RefineFixture fx("phase_flip");
    const PlacementContext ctx = fx.context();
    const Gbsc gbsc;
    const Layout base = gbsc.place(ctx);
    const RefineResult result = refineLayout(ctx, base);
    EXPECT_LE(result.final_metric, result.initial_metric);
    EXPECT_LE(result.passes, 4u);
}

TEST(Refine, StopsAtMaxPasses)
{
    RefineFixture fx("sibling_fanout");
    const PlacementContext ctx = fx.context();
    const DefaultPlacement def;
    RefineOptions opts;
    opts.max_passes = 1;
    const RefineResult result =
        refineLayout(ctx, def.place(ctx), opts);
    EXPECT_EQ(result.passes, 1u);
}

TEST(Refine, RequiresChunkInputs)
{
    RefineFixture fx("thrash_pair");
    PlacementContext ctx = fx.context();
    ctx.trg_place = nullptr;
    const DefaultPlacement def;
    PlacementContext def_ctx = fx.context();
    const Layout base = def.place(def_ctx);
    EXPECT_THROW(refineLayout(ctx, base), TopoError);
}

TEST(Refine, ImprovesPerturbedGbscOnSynthetic)
{
    // Build a synthetic workload, place with GBSC under a *perturbed*
    // profile (suboptimal for the true one), then refine against the
    // true TRG: the metric must improve.
    SyntheticSpec spec;
    spec.name = "refine";
    spec.proc_count = 60;
    spec.total_bytes = 120 * 1024;
    spec.popular_count = 20;
    spec.popular_bytes = 40 * 1024;
    spec.phase_count = 3;
    spec.ranks = 3;
    spec.seed = 5;
    BenchmarkCase bench;
    bench.name = spec.name;
    bench.model = buildSyntheticWorkload(spec);
    bench.train.target_runs = 25000;
    bench.train.seed = 6;
    bench.test = bench.train;
    EvalOptions eopts;
    eopts.cache = CacheConfig{4096, 32, 1};
    const ProfileBundle bundle(bench, eopts);

    Rng rng(17);
    const WeightedGraph noisy_sel =
        perturb(bundle.trgSelect(), 1.0, rng);
    const WeightedGraph noisy_plc = perturb(bundle.trgPlace(), 1.0, rng);
    const PlacementContext noisy_ctx =
        bundle.makeContext(nullptr, &noisy_sel, &noisy_plc);
    const Gbsc gbsc;
    const Layout noisy_layout = gbsc.place(noisy_ctx);

    const PlacementContext true_ctx = bundle.makeContext();
    const RefineResult result = refineLayout(true_ctx, noisy_layout);
    EXPECT_LT(result.final_metric, result.initial_metric);
}

} // namespace
} // namespace topo
