/**
 * @file
 * Tests for the greedy merge working graph shared by PH and GBSC.
 */

#include <gtest/gtest.h>

#include "topo/placement/merge_graph.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

WeightedGraph
sampleGraph()
{
    WeightedGraph g(5);
    g.addWeight(0, 1, 10.0);
    g.addWeight(1, 2, 20.0);
    g.addWeight(2, 3, 5.0);
    g.addWeight(0, 3, 1.0);
    return g;
}

TEST(MergeGraph, MaxEdgeFindsHeaviest)
{
    MergeGraph mg(sampleGraph());
    const auto e = mg.maxEdge();
    ASSERT_TRUE(e.valid);
    EXPECT_EQ(e.u, 1u);
    EXPECT_EQ(e.v, 2u);
    EXPECT_DOUBLE_EQ(e.weight, 20.0);
}

TEST(MergeGraph, TieBreaksOnSmallestPair)
{
    WeightedGraph g(4);
    g.addWeight(2, 3, 7.0);
    g.addWeight(0, 1, 7.0);
    MergeGraph mg(g);
    const auto e = mg.maxEdge();
    EXPECT_EQ(e.u, 0u);
    EXPECT_EQ(e.v, 1u);
}

TEST(MergeGraph, MergeFoldsParallelEdges)
{
    MergeGraph mg(sampleGraph());
    // Merge 2 into 1: edges (1,0)=10, and (2,3)=5 moves to (1,3),
    // folding with nothing; (0,3)=1 unchanged.
    mg.mergeInto(1, 2);
    EXPECT_FALSE(mg.alive(2));
    EXPECT_TRUE(mg.alive(1));
    EXPECT_DOUBLE_EQ(mg.weightBetween(1, 3), 5.0);
    EXPECT_DOUBLE_EQ(mg.weightBetween(1, 0), 10.0);
    EXPECT_EQ(mg.edgeCount(), 3u);

    // Now merge 3 into 0: (0,3)=1 removed; (3,1)=5 folds into (0,1).
    mg.mergeInto(0, 3);
    EXPECT_DOUBLE_EQ(mg.weightBetween(0, 1), 15.0);
    EXPECT_EQ(mg.edgeCount(), 1u);
    mg.mergeInto(0, 1);
    EXPECT_TRUE(mg.done());
}

TEST(MergeGraph, DrainsToNoEdges)
{
    MergeGraph mg(sampleGraph());
    std::size_t merges = 0;
    while (!mg.done()) {
        const auto e = mg.maxEdge();
        ASSERT_TRUE(e.valid);
        mg.mergeInto(e.u, e.v);
        ++merges;
        ASSERT_LT(merges, 10u);
    }
    EXPECT_FALSE(mg.maxEdge().valid);
    // 4 distinct nodes with a connected graph: 3 merges.
    EXPECT_EQ(merges, 3u);
}

TEST(MergeGraph, MaskFiltersNodes)
{
    std::vector<bool> mask{true, true, false, false, true};
    MergeGraph mg(sampleGraph(), &mask);
    // Only (0,1)=10 survives the mask.
    EXPECT_EQ(mg.edgeCount(), 1u);
    const auto e = mg.maxEdge();
    EXPECT_EQ(e.u, 0u);
    EXPECT_EQ(e.v, 1u);
    EXPECT_FALSE(mg.alive(2));
}

TEST(MergeGraph, RandomTieBreakerStaysWithinTieSet)
{
    WeightedGraph g(6);
    g.addWeight(0, 1, 7.0);
    g.addWeight(2, 3, 7.0);
    g.addWeight(4, 5, 7.0);
    g.addWeight(0, 5, 1.0);
    bool seen_non_first = false;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        MergeGraph mg(g);
        mg.setTieBreaker(seed);
        const auto e = mg.maxEdge();
        ASSERT_TRUE(e.valid);
        EXPECT_DOUBLE_EQ(e.weight, 7.0); // never the light edge
        seen_non_first |= !(e.u == 0 && e.v == 1);
    }
    // Across 32 seeds the breaker must have picked a different tie at
    // least once (probability of failure ~ (1/3)^32).
    EXPECT_TRUE(seen_non_first);
}

TEST(MergeGraph, TieBreakerDeterministicPerSeed)
{
    WeightedGraph g(4);
    g.addWeight(0, 1, 3.0);
    g.addWeight(2, 3, 3.0);
    for (std::uint64_t seed : {1ULL, 9ULL, 77ULL}) {
        MergeGraph a(g), b(g);
        a.setTieBreaker(seed);
        b.setTieBreaker(seed);
        const auto ea = a.maxEdge();
        const auto eb = b.maxEdge();
        EXPECT_EQ(ea.u, eb.u);
        EXPECT_EQ(ea.v, eb.v);
    }
}

TEST(MergeGraph, MisuseRejected)
{
    MergeGraph mg(sampleGraph());
    EXPECT_THROW(mg.mergeInto(0, 0), TopoError);
    mg.mergeInto(0, 1);
    EXPECT_THROW(mg.mergeInto(2, 1), TopoError); // 1 is dead
}

} // namespace
} // namespace topo
