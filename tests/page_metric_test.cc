/**
 * @file
 * Tests for the page-locality metrics (the Section 4.3 paging remark).
 */

#include <gtest/gtest.h>

#include "topo/eval/page_metric.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Program
makeProgram()
{
    Program p("pages");
    p.addProcedure("a", 4096); // exactly one page
    p.addProcedure("b", 4096);
    p.addProcedure("c", 4096);
    return p;
}

FetchStream
streamFor(const Program &p, const std::vector<ProcId> &sequence)
{
    Trace t(p.procCount());
    for (ProcId id : sequence)
        t.append(id, 0, p.proc(id).size_bytes);
    return FetchStream(p, t, 32);
}

TEST(PageMetric, CountsTouchedPagesAndSwitches)
{
    const Program p = makeProgram();
    const Layout layout = Layout::defaultOrder(p, 32);
    const FetchStream stream = streamFor(p, {0, 1, 0, 1});
    const PageStats stats = measurePageStats(p, layout, stream, 4096, 16);
    EXPECT_EQ(stats.pages_touched, 2u);
    // a->b, b->a, a->b: three switches.
    EXPECT_EQ(stats.page_switches, 3u);
    EXPECT_EQ(stats.accesses, stream.size());
    // All pages fit: only two cold faults.
    EXPECT_EQ(stats.lru_faults, 2u);
}

TEST(PageMetric, LruFaultsWhenResidencyTooSmall)
{
    const Program p = makeProgram();
    const Layout layout = Layout::defaultOrder(p, 32);
    // Cyclic a b c a b c with residency 2: classic LRU worst case,
    // every page entry is a fault.
    const FetchStream stream = streamFor(p, {0, 1, 2, 0, 1, 2});
    const PageStats stats = measurePageStats(p, layout, stream, 4096, 2);
    EXPECT_EQ(stats.lru_faults, 6u);
}

TEST(PageMetric, LayoutChangesPageBehaviour)
{
    // Two alternating procedures: adjacent placement puts them on two
    // pages; spreading them across the address space cannot reduce
    // the touched count below two, but inserting a huge gap between
    // two *small* procedures moves them onto distinct pages where a
    // compact layout shares one.
    Program p("small");
    const ProcId f = p.addProcedure("f", 1024);
    const ProcId g = p.addProcedure("g", 1024);
    Trace t(2);
    for (int i = 0; i < 10; ++i) {
        t.append(f, 0, 1024);
        t.append(g, 0, 1024);
    }
    const FetchStream stream(p, t, 32);
    const Layout compact = Layout::defaultOrder(p, 32);
    Layout spread(2);
    spread.setAddress(f, 0);
    spread.setAddress(g, 64 * 1024);
    const PageStats compact_stats =
        measurePageStats(p, compact, stream, 4096, 16);
    const PageStats spread_stats =
        measurePageStats(p, spread, stream, 4096, 16);
    EXPECT_EQ(compact_stats.pages_touched, 1u);
    EXPECT_EQ(spread_stats.pages_touched, 2u);
    EXPECT_GT(spread_stats.page_switches,
              compact_stats.page_switches);
}

TEST(PageMetric, SwitchRateHelper)
{
    PageStats stats;
    stats.page_switches = 5;
    stats.accesses = 1000;
    EXPECT_DOUBLE_EQ(stats.switchesPerKiloAccess(), 5.0);
    PageStats empty;
    EXPECT_DOUBLE_EQ(empty.switchesPerKiloAccess(), 0.0);
}

TEST(PageMetric, RejectsBadGeometry)
{
    const Program p = makeProgram();
    const Layout layout = Layout::defaultOrder(p, 32);
    const FetchStream stream = streamFor(p, {0});
    EXPECT_THROW(measurePageStats(p, layout, stream, 100, 16),
                 TopoError); // page not a multiple of line
    EXPECT_THROW(measurePageStats(p, layout, stream, 4096, 0),
                 TopoError);
}

} // namespace
} // namespace topo
