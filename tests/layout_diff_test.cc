/**
 * @file
 * Layout-diff tests: structural diffing on hand-built layouts (moved
 * sets, occupancy deltas), the exact miss-attribution sum invariant
 * (per-procedure and per-set deltas each sum to the total miss delta),
 * decision cross-referencing, and the JSON artifact's completeness.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "topo/eval/experiment.hh"
#include "topo/eval/layout_diff.hh"
#include "topo/eval/report_gen.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/util/error.hh"
#include "topo/workload/paper_suite.hh"

namespace topo
{
namespace
{

/** Three one-line procedures over a 2-frame direct-mapped cache. */
struct TinyFixture
{
    Program program{"tiny"};
    CacheConfig cache{64, 32, 1}; // 2 lines, 2 sets

    TinyFixture()
    {
        program.addProcedure("A", 32);
        program.addProcedure("B", 32);
        program.addProcedure("C", 32);
    }

    Layout
    at(std::uint64_t a, std::uint64_t b, std::uint64_t c) const
    {
        Layout layout(3);
        layout.setAddress(0, a);
        layout.setAddress(1, b);
        layout.setAddress(2, c);
        return layout;
    }
};

TEST(LayoutDiff, StructuralMovesAndOccupancy)
{
    const TinyFixture fix;
    // A: line 0 -> line 0 (unmoved). B: line 2 -> line 1 (set 0 -> 1).
    // C: line 4 -> line 2 (set 0 -> 0, address change only).
    const Layout a = fix.at(0, 64, 128);
    const Layout b = fix.at(0, 32, 64);
    const LayoutDiff diff =
        buildLayoutDiff(fix.program, fix.cache, a, b, "old", "new");
    EXPECT_EQ(diff.a.label, "old");
    EXPECT_EQ(diff.b.label, "new");
    ASSERT_EQ(diff.moves.size(), 2u);
    EXPECT_EQ(diff.unmoved, 1u);
    // Set occupancy: A {0->0}, B {0->1}, C {0->0}; set 0 loses one
    // line, set 1 gains one.
    ASSERT_EQ(diff.set_occupancy_delta.size(), 2u);
    EXPECT_EQ(diff.set_occupancy_delta[0], -1);
    EXPECT_EQ(diff.set_occupancy_delta[1], 1);
    EXPECT_EQ(std::accumulate(diff.set_occupancy_delta.begin(),
                              diff.set_occupancy_delta.end(),
                              std::int64_t{0}),
              0);
    for (const LayoutDiff::Move &move : diff.moves) {
        if (move.proc == 1) { // B
            EXPECT_EQ(move.set_a, 0u);
            EXPECT_EQ(move.set_b, 1u);
        }
        if (move.proc == 2) { // C
            EXPECT_EQ(move.set_a, 0u);
            EXPECT_EQ(move.set_b, 0u);
        }
    }
    EXPECT_FALSE(diff.attributed);
    EXPECT_EQ(diff.missDelta(), 0);
}

TEST(LayoutDiff, AttributionSumsExactlyOnTinyConflict)
{
    const TinyFixture fix;
    // Layout A: A and B share frame 0 (lines 0 and 2) and alternate —
    // every access conflicts. Layout B separates them (lines 0 and 1).
    const Layout a = fix.at(0, 64, 96);
    const Layout b = fix.at(0, 32, 96);
    Trace trace(3);
    for (int i = 0; i < 50; ++i) {
        trace.appendWhole(0, 32);
        trace.appendWhole(1, 32);
    }
    const FetchStream stream(fix.program, trace, fix.cache.line_bytes);

    LayoutDiff diff =
        buildLayoutDiff(fix.program, fix.cache, a, b, "conflict",
                        "separated");
    attributeMissDelta(diff, fix.program, a, b, stream);
    ASSERT_TRUE(diff.attributed);
    EXPECT_EQ(diff.a.accesses, diff.b.accesses);
    // A thrashes on every access after the first pair; B only takes
    // the two cold misses.
    EXPECT_EQ(diff.a.misses, 100u);
    EXPECT_EQ(diff.b.misses, 2u);
    EXPECT_EQ(diff.missDelta(), -98);

    const std::int64_t proc_sum = std::accumulate(
        diff.miss_delta_by_proc.begin(), diff.miss_delta_by_proc.end(),
        std::int64_t{0});
    const std::int64_t set_sum =
        std::accumulate(diff.set_miss_delta.begin(),
                        diff.set_miss_delta.end(), std::int64_t{0});
    EXPECT_EQ(proc_sum, diff.missDelta());
    EXPECT_EQ(set_sum, diff.missDelta());
    // The A<->B conflict pair existed only in layout A.
    EXPECT_TRUE(diff.pairs_created.empty());
    EXPECT_FALSE(diff.pairs_destroyed.empty());
}

TEST(LayoutDiff, RejectsIncompleteLayouts)
{
    const TinyFixture fix;
    Layout partial(3);
    partial.setAddress(0, 0);
    const Layout full = fix.at(0, 32, 64);
    EXPECT_THROW(buildLayoutDiff(fix.program, fix.cache, partial, full,
                                 "a", "b"),
                 TopoError);
}

/** Full-pipeline fixture: gbsc vs ph over the paper benchmark. */
class LayoutDiffPipeline : public ::testing::Test
{
  protected:
    static const ProfileBundle &
    bundle()
    {
        static const ProfileBundle instance(paperBenchmark("gcc", 0.01),
                                            EvalOptions{});
        return instance;
    }
};

TEST_F(LayoutDiffPipeline, ExactSumInvariantOnRealLayouts)
{
    const Gbsc gbsc;
    const PettisHansen ph;
    const Layout ga = gbsc.place(bundle().makeContext());
    const Layout pa = ph.place(bundle().makeContext());

    LayoutDiff diff = buildLayoutDiff(
        bundle().program(), bundle().options().cache, ga, pa, "gbsc",
        "ph");
    attributeMissDelta(diff, bundle().program(), ga, pa,
                       bundle().testStream());
    ASSERT_TRUE(diff.attributed);
    EXPECT_EQ(diff.moves.size() + diff.unmoved,
              bundle().program().procCount());

    const std::int64_t proc_sum = std::accumulate(
        diff.miss_delta_by_proc.begin(), diff.miss_delta_by_proc.end(),
        std::int64_t{0});
    const std::int64_t set_sum =
        std::accumulate(diff.set_miss_delta.begin(),
                        diff.set_miss_delta.end(), std::int64_t{0});
    EXPECT_EQ(proc_sum, diff.missDelta());
    EXPECT_EQ(set_sum, diff.missDelta());

    // Per-move deltas are a subset of the per-proc vector.
    for (const LayoutDiff::Move &move : diff.moves)
        EXPECT_EQ(move.miss_delta, diff.miss_delta_by_proc[move.proc]);

    // The JSON artifact carries the same invariant and passes the
    // shared validator.
    const JsonValue doc = diffToJson(diff, bundle().program());
    EXPECT_EQ(validateArtifactJson(doc), "topo_diff");
    std::int64_t json_sum = 0;
    for (const JsonValue &row :
         doc.at("miss_delta_by_proc").elements())
        json_sum += static_cast<std::int64_t>(row.at("delta").asNumber());
    EXPECT_EQ(json_sum, diff.missDelta());
}

TEST_F(LayoutDiffPipeline, DecisionsExplainEveryMove)
{
    const Gbsc gbsc;
    DecisionLog log;
    log.setAlgorithm("gbsc");
    PlacementContext ctx = bundle().makeContext();
    ctx.decisions = &log;
    const Layout gb = gbsc.place(ctx);
    const PettisHansen ph;
    const Layout base = ph.place(bundle().makeContext());

    LayoutDiff diff = buildLayoutDiff(
        bundle().program(), bundle().options().cache, base, gb, "ph",
        "gbsc");
    crossReferenceDecisions(diff, bundle().program(),
                            snapshotDecisions(log, bundle().program()));
    ASSERT_TRUE(diff.has_decisions);
    EXPECT_EQ(diff.decisions_algorithm, "gbsc");
    // The gbsc log covers every procedure, so every moved procedure
    // cross-references to at least one record.
    EXPECT_EQ(diff.moves_explained, diff.moves.size());
    for (const LayoutDiff::Move &move : diff.moves)
        EXPECT_FALSE(move.decision_steps.empty())
            << bundle().program().proc(move.proc).name;

    const std::string markdown =
        renderDiffMarkdown(diff, bundle().program());
    EXPECT_NE(markdown.find("Layout diff"), std::string::npos);
}

} // namespace
} // namespace topo
