/**
 * @file
 * Tests for the flat hot-path containers: util::FlatMap (open
 * addressing, filter-rebuild pruning) checked against std::map as the
 * reference implementation, and util::Arena (bump-allocator reuse).
 */

#include <cstdint>
#include <map>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "topo/util/arena.hh"
#include "topo/util/flat_map.hh"

namespace topo
{
namespace
{

using util::Arena;
using util::FlatMap;
using util::mixKey;

TEST(FlatMap, StartsEmpty)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_FALSE(map.contains(0));
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.get(0, 42), 42u);
}

TEST(FlatMap, InsertOverwriteAndLookup)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    map[7] = 70;
    map[9] = 90;
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.get(7), 70u);
    EXPECT_EQ(map.get(9), 90u);

    map[7] = 71; // overwrite, not a second entry
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.get(7), 71u);

    map[11] += 5; // operator[] value-initialises absent entries
    EXPECT_EQ(map.get(11), 5u);
    EXPECT_TRUE(map.contains(11));
    EXPECT_FALSE(map.contains(12));
}

TEST(FlatMap, MutableFindUpdatesInPlace)
{
    FlatMap<std::uint32_t, std::uint32_t> map;
    map[3] = 1;
    std::uint32_t *v = map.find(3);
    ASSERT_NE(v, nullptr);
    *v += 9;
    EXPECT_EQ(map.get(3), 10u);
    EXPECT_EQ(map.find(4), nullptr); // find never inserts
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, MatchesStdMapUnderRandomWorkload)
{
    // Reference check: identical insert-or-add sequence applied to the
    // flat map and to std::map must yield the same final contents.
    // Keys are drawn from a small range so the run exercises plenty of
    // overwrites, and the map grows through several rehashes.
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::map<std::uint64_t, std::uint64_t> ref;
    std::mt19937_64 rng(20260806);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng() % 4096;
        const std::uint64_t add = rng() % 1000;
        map[key] += add;
        ref[key] += add;
    }
    ASSERT_EQ(map.size(), ref.size());
    std::size_t visited = 0;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        ++visited;
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(visited, ref.size());
    for (const auto &[key, value] : ref)
        EXPECT_EQ(map.get(key), value);
}

TEST(FlatMap, SurvivesCollidingKeys)
{
    // Keys a fixed stride apart defeat a map that indexes by raw key
    // bits; the splitmix64 finalizer must still spread them. Also a
    // probe-chain stress: even if some cluster, linear probing has to
    // find every entry back.
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t kStride = 1u << 20;
    for (std::uint64_t i = 0; i < 3000; ++i)
        map[i * kStride] = i;
    EXPECT_EQ(map.size(), 3000u);
    for (std::uint64_t i = 0; i < 3000; ++i)
        EXPECT_EQ(map.get(i * kStride), i);
    EXPECT_FALSE(map.contains(3000 * kStride));
}

TEST(FlatMap, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    map.reserve(1000);
    const std::size_t cap = map.capacity();
    EXPECT_GE(cap * 7 / 10, 1000u); // load stays <= 0.7 after the fill
    for (std::uint64_t i = 0; i < 1000; ++i)
        map[i] = i;
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMap, FilterRebuildsWithoutTombstones)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 500; ++i)
        map[i] = i;
    map.filter([](std::uint64_t key, std::uint64_t) {
        return key % 2 == 0;
    });
    EXPECT_EQ(map.size(), 250u);
    for (std::uint64_t i = 0; i < 500; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(map.get(i), i);
        else
            EXPECT_FALSE(map.contains(i));
    }
    // The rebuilt table is a fresh map: surviving entries remain
    // findable through unbroken probe chains after more inserts.
    for (std::uint64_t i = 1000; i < 1100; ++i)
        map[i] = i;
    EXPECT_EQ(map.size(), 350u);
    EXPECT_EQ(map.get(498), 498u);
    EXPECT_EQ(map.get(1099), 1099u);
}

TEST(FlatMap, ClearKeepsCapacity)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map[i] = i;
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_FALSE(map.contains(5));
    map[5] = 55;
    EXPECT_EQ(map.get(5), 55u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, IterationOrderIsDeterministic)
{
    // Two maps built by the same insertion sequence must iterate in
    // the same slot order — this is what lets callers sort once and
    // rely on run-to-run reproducibility (determinism contract).
    auto build = [] {
        FlatMap<std::uint64_t, std::uint64_t> map;
        std::mt19937_64 rng(7);
        for (int i = 0; i < 5000; ++i)
            map[rng() % 2048] += 1;
        return map;
    };
    const auto a = build();
    const auto b = build();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order_a;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order_b;
    a.forEach([&](std::uint64_t k, std::uint64_t v) {
        order_a.emplace_back(k, v);
    });
    b.forEach([&](std::uint64_t k, std::uint64_t v) {
        order_b.emplace_back(k, v);
    });
    EXPECT_EQ(order_a, order_b);
}

TEST(FlatMap, PackedPairKeysDoNotAlias)
{
    // The pair database packs (a, b) as (a << 32) | b; swapped pairs
    // and same-word neighbours must stay distinct entries.
    FlatMap<std::uint64_t, std::uint64_t> map;
    auto pack = [](std::uint32_t a, std::uint32_t b) {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    };
    map[pack(1, 2)] = 12;
    map[pack(2, 1)] = 21;
    map[pack(0, 1)] = 1;
    map[pack(1, 0)] = 10;
    EXPECT_EQ(map.size(), 4u);
    EXPECT_EQ(map.get(pack(1, 2)), 12u);
    EXPECT_EQ(map.get(pack(2, 1)), 21u);
    EXPECT_EQ(map.get(pack(0, 1)), 1u);
    EXPECT_EQ(map.get(pack(1, 0)), 10u);
}

TEST(FlatMap, MixKeyAvalanches)
{
    // Sanity-check the finalizer: single-bit input changes flip the
    // low bits used for slot selection often enough that sequential
    // keys do not collapse onto one probe chain.
    std::map<std::uint64_t, int> low_bits;
    for (std::uint64_t i = 0; i < 1024; ++i)
        ++low_bits[mixKey(i) & 1023];
    // With 1024 keys into 1024 buckets a catastrophic mix would pile
    // everything onto a few slots; splitmix64 behaves like random
    // (max bucket ~8 with overwhelming probability).
    int worst = 0;
    for (const auto &[slot, count] : low_bits)
        worst = std::max(worst, count);
    EXPECT_LE(worst, 16);
}

TEST(Arena, ReusesBufferAcrossResets)
{
    Arena arena;
    auto first = arena.alloc<std::uint32_t>(1000);
    EXPECT_EQ(first.size(), 1000u);
    const std::size_t cap = arena.capacityBytes();
    EXPECT_GE(cap, 1000 * sizeof(std::uint32_t));

    // Same-size cycle after reset: no growth, same storage reused.
    arena.reset();
    EXPECT_EQ(arena.usedBytes(), 0u);
    auto second = arena.alloc<std::uint32_t>(1000);
    EXPECT_EQ(second.data(), first.data());
    EXPECT_EQ(arena.capacityBytes(), cap);

    // Smaller cycle still reuses without shrinking.
    arena.reset();
    auto third = arena.alloc<std::uint32_t>(10);
    EXPECT_EQ(reinterpret_cast<void *>(third.data()),
              reinterpret_cast<void *>(second.data()));
    EXPECT_EQ(arena.capacityBytes(), cap);
}

TEST(Arena, AlignsEachAllocation)
{
    Arena arena;
    auto bytes = arena.alloc<std::uint8_t>(3);
    auto words = arena.alloc<std::uint64_t>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words.data()) %
                  alignof(std::uint64_t),
              0u);
    EXPECT_EQ(bytes.size(), 3u);
    EXPECT_EQ(words.size(), 4u);
    // Padding counts toward usage: 3 bytes rounded up to 8, plus 32.
    EXPECT_EQ(arena.usedBytes(), 8u + 4 * sizeof(std::uint64_t));
}

} // namespace
} // namespace topo
