/**
 * @file
 * Tests for the resilience layer: CRC32, fault-plan determinism, the
 * hardened v2 trace format (exhaustive truncation salvage), checkpoint
 * persistence, checkpoint/resume bit-equality, and the unknown-option
 * rejection that backs the stable CLI exit codes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "topo/cache/simulate.hh"
#include "topo/obs/log.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_io.hh"
#include "topo/trace/trace_mmap.hh"
#include "topo/util/error.hh"
#include "topo/util/options.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

/** Run a statement and return the TopoError code it throws. */
template <typename Fn>
ErrCode
codeOf(Fn &&fn)
{
    try {
        fn();
    } catch (const TopoError &err) {
        return err.code();
    }
    ADD_FAILURE() << "expected a TopoError";
    return ErrCode::kInternal;
}

Trace
randomTrace(std::size_t procs, std::size_t runs, std::uint64_t seed)
{
    Trace trace(procs);
    Rng rng(seed);
    for (std::size_t i = 0; i < runs; ++i) {
        trace.append(static_cast<ProcId>(rng.nextBelow(procs)),
                     static_cast<std::uint32_t>(rng.nextBelow(4096)),
                     1 + static_cast<std::uint32_t>(rng.nextBelow(512)));
    }
    return trace;
}

TEST(Crc32, KnownVectorAndIncremental)
{
    // The canonical CRC-32 check value.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string("")), 0x00000000u);
    // Incremental updates must match the one-shot digest.
    const std::string data = "The quick brown fox jumps over the lazy dog";
    std::uint32_t running = 0;
    for (std::size_t i = 0; i < data.size(); i += 7) {
        const std::size_t n = std::min<std::size_t>(7, data.size() - i);
        running = crc32Update(running, data.data() + i, n);
    }
    EXPECT_EQ(running, crc32(data));
    // Any single-bit flip changes the digest.
    std::string flipped = data;
    flipped[5] = static_cast<char>(flipped[5] ^ 0x10);
    EXPECT_NE(crc32(flipped), crc32(data));
}

TEST(FaultPlan, ParsesTheSpecGrammar)
{
    FaultPlan plan =
        FaultPlan::parse("read_short@0.25,bitflip@1e-3:42");
    EXPECT_TRUE(plan.armed(FaultKind::kReadShort));
    EXPECT_TRUE(plan.armed(FaultKind::kBitflip));
    EXPECT_FALSE(plan.armed(FaultKind::kThrowIo));
    EXPECT_TRUE(plan.any());
    EXPECT_FALSE(FaultPlan().any());

    EXPECT_EQ(codeOf([] { FaultPlan::parse("nonsense@0.1"); }),
              ErrCode::kUser);
    EXPECT_EQ(codeOf([] { FaultPlan::parse("bitflip@1.5"); }),
              ErrCode::kUser);
    EXPECT_EQ(codeOf([] { FaultPlan::parse("bitflip"); }),
              ErrCode::kUser);
    EXPECT_EQ(codeOf([] { FaultPlan::parse("bitflip@x"); }),
              ErrCode::kUser);
}

TEST(FaultPlan, DrawsAreDeterministicPerKind)
{
    // Same seed -> same fire sequence; the streams of different kinds
    // are independent, so consuming one must not perturb the other.
    FaultPlan a, b;
    a.arm(FaultKind::kBitflip, 0.3, 77);
    b.arm(FaultKind::kBitflip, 0.3, 77);
    b.arm(FaultKind::kThrowIo, 0.5, 5);
    int fired = 0;
    for (int i = 0; i < 2000; ++i) {
        if (i % 3 == 0)
            b.fire(FaultKind::kThrowIo); // interleave the other stream
        const bool fa = a.fire(FaultKind::kBitflip);
        ASSERT_EQ(fa, b.fire(FaultKind::kBitflip)) << "draw " << i;
        fired += fa ? 1 : 0;
    }
    // p=0.3 over 2000 draws: loose sanity band, not a statistics test.
    EXPECT_GT(fired, 400);
    EXPECT_LT(fired, 800);
    // Unarmed kinds never fire and never advance.
    EXPECT_FALSE(a.fire(FaultKind::kReadShort));
}

TEST(FaultPlan, HelpersAreInertWithoutAPlan)
{
    clearFaultPlan();
    EXPECT_EQ(activeFaultPlan(), nullptr);
    EXPECT_FALSE(faultArmed(FaultKind::kThrowIo));
    EXPECT_EQ(faultMaybeShortenRead("test", 100u), 100u);
    char byte = 0x5A;
    faultMaybeCorrupt("test", &byte, 1);
    EXPECT_EQ(byte, 0x5A);
    faultMaybeThrowIo("test"); // must not throw
}

TEST(FaultPlan, HelpersFireDeterministically)
{
    FaultPlan plan;
    plan.arm(FaultKind::kThrowIo, 1.0, 1);
    plan.arm(FaultKind::kReadShort, 1.0, 2);
    plan.arm(FaultKind::kBitflip, 1.0, 3);
    installFaultPlan(plan);
    EXPECT_EQ(codeOf([] { faultMaybeThrowIo("test.site"); }),
              ErrCode::kCorrupt);
    EXPECT_LT(faultMaybeShortenRead("test", 100u), 100u);
    char byte = 0;
    faultMaybeCorrupt("test", &byte, 1);
    EXPECT_NE(byte, 0); // exactly one bit flipped
    clearFaultPlan();
}

TEST(BinaryTraceV2, MultiChunkRoundTrip)
{
    const Trace trace = randomTrace(40, 1000, 9);
    TraceWriteOptions wopts;
    wopts.records_per_chunk = 16; // force ~63 chunks
    std::stringstream ss;
    writeBinaryTrace(ss, trace, wopts);
    const Trace back = readBinaryTrace(ss);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
}

TEST(BinaryTraceV2, ReadsVersion1Streams)
{
    // Hand-crafted v1 stream: no chunking, no CRC.
    std::stringstream ss;
    ss.write("TOPB", 4);
    ss.put(1); // version
    ss.put(3); // proc_count
    ss.put(2); // run_count
    ss.put(2); // zigzag(+1): proc 1
    ss.put(7); // offset
    ss.put(5); // length
    ss.put(1); // zigzag(-1): proc 0
    ss.put(0); // offset
    ss.put(9); // length
    const Trace back = readBinaryTrace(ss);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.events()[0].proc, 1u);
    EXPECT_EQ(back.events()[0].offset, 7u);
    EXPECT_EQ(back.events()[1].proc, 0u);
    EXPECT_EQ(back.events()[1].length, 9u);
}

TEST(BinaryTraceV2, CrcCatchesEverySingleBitFlip)
{
    const Trace trace = randomTrace(10, 200, 5);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const std::string clean = ss.str();
    // Flip one bit at a spread of positions across the image; strict
    // reads must throw kCorrupt, never return quietly wrong data.
    // (Flips inside the 6-byte magic/header can also surface as kUser
    // "not a binary trace"; anything after it must be kCorrupt.)
    for (std::size_t pos = 6; pos < clean.size();
         pos += 1 + pos / 16) {
        for (int bit : {0, 3, 7}) {
            std::string bad = clean;
            bad[pos] =
                static_cast<char>(bad[pos] ^ (1 << bit));
            if (bad == clean)
                continue;
            std::stringstream in(bad);
            try {
                const Trace back = readBinaryTrace(in);
                // A flip in a varint length field can keep the CRC
                // window consistent only if the decode still matches;
                // equality with the original is the only acceptable
                // non-throwing outcome.
                ASSERT_EQ(back.size(), trace.size())
                    << "undetected corruption at byte " << pos;
            } catch (const TopoError &err) {
                EXPECT_EQ(err.code(), ErrCode::kCorrupt)
                    << "byte " << pos << " bit " << bit;
            }
        }
    }
}

TEST(BinaryTraceV2, EveryTruncationPointRecoversOrFailsCorrupt)
{
    Logger::global().setLevel(LogLevel::kOff); // silence salvage warns
    const std::size_t kRuns = 300;
    const Trace trace = randomTrace(20, kRuns, 6);
    TraceWriteOptions wopts;
    wopts.records_per_chunk = 16;
    std::stringstream ss;
    writeBinaryTrace(ss, trace, wopts);
    const std::string clean = ss.str();

    for (std::size_t keep = 0; keep < clean.size(); ++keep) {
        const std::string cut = clean.substr(0, keep);
        // Strict mode: every proper prefix is corrupt input.
        {
            std::stringstream in(cut);
            EXPECT_EQ(codeOf([&] { readBinaryTrace(in); }),
                      ErrCode::kCorrupt)
                << "strict read of " << keep << "/" << clean.size();
        }
        // Recover mode: either a salvaged prefix with exact loss
        // accounting, or (header damage) still a corrupt-input error.
        TraceRecovery report;
        TraceReadOptions ropts;
        ropts.recover = true;
        ropts.report = &report;
        std::stringstream in(cut);
        try {
            const Trace back = readBinaryTrace(in, ropts);
            EXPECT_TRUE(report.recovered) << "at " << keep;
            EXPECT_EQ(report.records_recovered, back.size());
            EXPECT_EQ(report.records_recovered + report.records_dropped,
                      kRuns)
                << "loss accounting at " << keep;
            // Salvage keeps a prefix: records must match the original.
            for (std::size_t i = 0; i < back.size(); ++i) {
                ASSERT_EQ(back.events()[i], trace.events()[i])
                    << "record " << i << " after cut at " << keep;
            }
        } catch (const TopoError &err) {
            // Only damage inside the 8-byte fixed header (magic,
            // version, proc_count, run_count varints) defeats
            // recovery: there is nothing to salvage without it.
            EXPECT_EQ(err.code(), ErrCode::kCorrupt) << "at " << keep;
            EXPECT_LT(keep, 8u)
                << "only header truncation may defeat recovery";
        }
    }
    // The complete image reads back without engaging salvage.
    TraceRecovery report;
    TraceReadOptions ropts;
    ropts.recover = true;
    ropts.report = &report;
    std::stringstream in(clean);
    const Trace back = readBinaryTrace(in, ropts);
    EXPECT_EQ(back.size(), kRuns);
    EXPECT_FALSE(report.recovered);
    EXPECT_EQ(report.records_dropped, 0u);
    Logger::global().setLevel(LogLevel::kOff);
}

TEST(BinaryTraceV2, RejectsResourceExhaustingHeaders)
{
    // A tiny file whose header promises absurd sizes must fail fast
    // on the clamps instead of attempting a huge allocation.
    auto craft = [](std::initializer_list<unsigned char> bytes) {
        std::string s("TOPB");
        for (unsigned char b : bytes)
            s.push_back(static_cast<char>(b));
        return s;
    };
    // proc_count varint ~2^35.
    const std::string huge_procs =
        craft({2, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01, 1});
    std::stringstream a(huge_procs);
    EXPECT_EQ(codeOf([&] { readBinaryTrace(a); }), ErrCode::kCorrupt);
    // Plausible counts but a chunk promising 2^30 records.
    const std::string huge_chunk =
        craft({2, 4, 10, 0x80, 0x80, 0x80, 0x80, 0x04, 1, 0, 0, 0, 0});
    std::stringstream b(huge_chunk);
    EXPECT_EQ(codeOf([&] { readBinaryTrace(b); }), ErrCode::kCorrupt);
}

TEST(MmapTraceResilience, SalvageParityWithTheStreamReader)
{
    // The mapped decoder must be bit-for-bit interchangeable with the
    // stream reader on damaged files too: same salvaged records, same
    // loss accounting, same strict-mode error class.
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";
    Logger::global().setLevel(LogLevel::kOff);
    const std::size_t kRuns = 300;
    const Trace trace = randomTrace(20, kRuns, 21);
    TraceWriteOptions wopts;
    wopts.records_per_chunk = 16;
    std::stringstream ss;
    writeBinaryTrace(ss, trace, wopts);
    const std::string clean = ss.str();
    const std::string path = "/tmp/topo_resilience_mmap_cut.tpb";

    for (std::size_t keep = 8; keep < clean.size();
         keep += 1 + keep / 8) {
        {
            std::ofstream os(path,
                             std::ios::binary | std::ios::trunc);
            os.write(clean.data(),
                     static_cast<std::streamsize>(keep));
        }
        // Strict mode: both paths reject the truncation as corrupt.
        for (const TraceMmapMode mode :
             {TraceMmapMode::kOn, TraceMmapMode::kOff}) {
            TraceReadOptions strict;
            strict.mmap = mode;
            EXPECT_EQ(codeOf([&] { loadBinaryTrace(path, strict); }),
                      ErrCode::kCorrupt)
                << "cut " << keep;
        }
        // Recover mode: identical salvage on both paths.
        auto salvage = [&](TraceMmapMode mode, TraceRecovery &report) {
            TraceReadOptions ropts;
            ropts.recover = true;
            ropts.report = &report;
            ropts.mmap = mode;
            return loadBinaryTrace(path, ropts);
        };
        TraceRecovery mapped_report, stream_report;
        const Trace mapped =
            salvage(TraceMmapMode::kOn, mapped_report);
        const Trace streamed =
            salvage(TraceMmapMode::kOff, stream_report);
        ASSERT_EQ(mapped.size(), streamed.size()) << "cut " << keep;
        for (std::size_t i = 0; i < mapped.size(); ++i) {
            ASSERT_EQ(mapped.events()[i], streamed.events()[i])
                << "record " << i << " cut " << keep;
        }
        EXPECT_EQ(mapped_report.recovered, stream_report.recovered);
        EXPECT_EQ(mapped_report.chunks_recovered,
                  stream_report.chunks_recovered)
            << "cut " << keep;
        EXPECT_EQ(mapped_report.records_recovered,
                  stream_report.records_recovered)
            << "cut " << keep;
        EXPECT_EQ(mapped_report.records_dropped,
                  stream_report.records_dropped)
            << "cut " << keep;
        EXPECT_EQ(mapped_report.records_recovered +
                      mapped_report.records_dropped,
                  kRuns)
            << "cut " << keep;
    }
    std::remove(path.c_str());
}

TEST(MmapTraceResilience, ArmedFaultPlanForcesTheStreamPath)
{
    // The stream reader hosts all trace-level injection hooks, so an
    // armed plan must route kAuto loads through it. throw_io at p=1
    // makes the routing observable: the stream header hook fires (and
    // throws) on the very first read, while the mapped decoder has no
    // hooks and reads the same clean file successfully.
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";
    const Trace trace = randomTrace(8, 200, 13);
    const std::string path = "/tmp/topo_resilience_mmap_fault.tpb";
    saveBinaryTrace(path, trace);

    FaultPlan plan;
    plan.arm(FaultKind::kThrowIo, 1.0, 1);
    installFaultPlan(plan);
    TraceReadOptions auto_opts; // kAuto
    EXPECT_FALSE(traceMmapEligible(auto_opts));
    EXPECT_EQ(codeOf([&] { loadBinaryTrace(path, auto_opts); }),
              ErrCode::kCorrupt);
    // Explicit kOn bypasses the plan check and decodes the mapping.
    TraceReadOptions pin_opts;
    pin_opts.mmap = TraceMmapMode::kOn;
    EXPECT_TRUE(traceMmapEligible(pin_opts));
    const Trace mapped = loadBinaryTrace(path, pin_opts);
    EXPECT_EQ(mapped.size(), trace.size());
    clearFaultPlan();

    // With the plan gone, kAuto maps again and agrees with the file.
    EXPECT_TRUE(traceMmapEligible(auto_opts));
    const Trace back = loadBinaryTrace(path, auto_opts);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
    std::remove(path.c_str());
}

TEST(TextTrace, RecoverSalvagesTheValidLinePrefix)
{
    Logger::global().setLevel(LogLevel::kOff);
    std::stringstream ss("topo-trace v1 4\n"
                         "0 0 10\n"
                         "1 5 20\n"
                         "garbage line\n"
                         "2 0 30\n");
    {
        std::stringstream strict(ss.str());
        EXPECT_EQ(codeOf([&] { readTrace(strict); }), ErrCode::kCorrupt);
    }
    TraceRecovery report;
    TraceReadOptions ropts;
    ropts.recover = true;
    ropts.report = &report;
    const Trace back = readTrace(ss, ropts);
    EXPECT_EQ(back.size(), 2u);
    EXPECT_TRUE(report.recovered);
    EXPECT_EQ(report.records_recovered, 2u);
    EXPECT_EQ(report.records_dropped, 2u); // bad line + everything after
}

TEST(Checkpoint, FileRoundTripAndCorruptionDetection)
{
    SimCheckpoint ckpt;
    ckpt.fingerprint = 0xFEEDFACE12345678ULL;
    ckpt.cursor = 123456;
    ckpt.misses = 789;
    ckpt.cache_words = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL};
    ckpt.misses_by_proc = {4, 5, 6};
    const std::string path = "/tmp/topo_resilience_ckpt_test.bin";
    saveCheckpoint(path, ckpt);
    const SimCheckpoint back = loadCheckpoint(path);
    EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
    EXPECT_EQ(back.cursor, ckpt.cursor);
    EXPECT_EQ(back.misses, ckpt.misses);
    EXPECT_EQ(back.cache_words, ckpt.cache_words);
    EXPECT_EQ(back.misses_by_proc, ckpt.misses_by_proc);

    // A flipped payload byte must be caught by the CRC.
    {
        std::ifstream is(path, std::ios::binary);
        std::ostringstream buf;
        buf << is.rdbuf();
        std::string bytes = buf.str();
        bytes[bytes.size() - 3] =
            static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_EQ(codeOf([&] { loadCheckpoint(path); }), ErrCode::kCorrupt);
    std::remove(path.c_str());
    EXPECT_EQ(codeOf([&] { loadCheckpoint(path); }), ErrCode::kUser);
}

/** Pipeline fixture shared by the resume tests. */
struct SimFixture
{
    Program program{"resilience"};
    Trace trace{0};
    CacheConfig cache;

    explicit SimFixture(std::uint32_t assoc)
    {
        for (int i = 0; i < 24; ++i) {
            program.addProcedure("p" + std::to_string(i),
                                 200 + 64 * (i % 7));
        }
        // Runs must stay inside their procedure for FetchStream.
        trace = Trace(24);
        Rng rng(31);
        for (int i = 0; i < 20000; ++i) {
            const ProcId proc = static_cast<ProcId>(rng.nextBelow(24));
            const std::uint32_t size = program.proc(proc).size_bytes;
            const std::uint32_t offset =
                static_cast<std::uint32_t>(rng.nextBelow(size));
            const std::uint32_t length =
                1 + static_cast<std::uint32_t>(
                        rng.nextBelow(size - offset));
            trace.append(proc, offset, length);
        }
        cache.size_bytes = 2048;
        cache.line_bytes = 32;
        cache.associativity = assoc;
    }
};

void
expectResumeBitEquality(std::uint32_t assoc)
{
    const SimFixture fix(assoc);
    const Layout layout =
        Layout::defaultOrder(fix.program, fix.cache.line_bytes);
    const FetchStream stream(fix.program, fix.trace,
                             fix.cache.line_bytes);
    const SimResult whole = simulateLayout(fix.program, layout, stream,
                                           fix.cache, true);
    ASSERT_TRUE(whole.completed);

    const std::string path = "/tmp/topo_resilience_resume_test.bin";
    // Interrupt at several points, including mid-checkpoint cadences.
    for (const std::uint64_t stop : {1ULL, 777ULL, 9999ULL}) {
        SimControl first;
        first.checkpoint_path = path;
        first.checkpoint_every = 500;
        first.stop_after = stop;
        const SimResult partial = simulateLayout(
            fix.program, layout, stream, fix.cache, true, &first);
        EXPECT_FALSE(partial.completed);
        EXPECT_EQ(partial.accesses, stop);

        const SimCheckpoint ckpt = loadCheckpoint(path);
        EXPECT_EQ(ckpt.cursor, stop);
        SimControl second;
        second.resume = &ckpt;
        const SimResult resumed = simulateLayout(
            fix.program, layout, stream, fix.cache, true, &second);
        EXPECT_TRUE(resumed.completed);
        EXPECT_EQ(resumed.accesses, whole.accesses) << "stop " << stop;
        EXPECT_EQ(resumed.misses, whole.misses) << "stop " << stop;
        EXPECT_EQ(resumed.misses_by_proc, whole.misses_by_proc)
            << "stop " << stop;
    }
    std::remove(path.c_str());
}

TEST(CheckpointResume, BitIdenticalDirectMapped)
{
    expectResumeBitEquality(1);
}

TEST(CheckpointResume, BitIdenticalSetAssociative)
{
    expectResumeBitEquality(4);
}

TEST(CheckpointResume, RefusesForeignCheckpoints)
{
    const SimFixture fix(1);
    const Layout layout =
        Layout::defaultOrder(fix.program, fix.cache.line_bytes);
    const FetchStream stream(fix.program, fix.trace,
                             fix.cache.line_bytes);
    SimCheckpoint ckpt;
    ckpt.fingerprint = 0xBAD; // matches no real run
    ckpt.cursor = 10;
    SimControl control;
    control.resume = &ckpt;
    EXPECT_EQ(codeOf([&] {
                  simulateLayout(fix.program, layout, stream, fix.cache,
                                 false, &control);
              }),
              ErrCode::kUser);
}

TEST(Options, RejectsUnknownWithDidYouMeanHint)
{
    const char *argv[] = {"tool", "--progam=x", "--trace=y"};
    const Options opts = Options::parse(3, argv);
    try {
        opts.rejectUnknown({"program", "trace"});
        FAIL() << "expected a TopoError";
    } catch (const TopoError &err) {
        EXPECT_EQ(err.code(), ErrCode::kUser);
        EXPECT_NE(std::string(err.what()).find("did you mean"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("--program"),
                  std::string::npos);
    }
    // Nothing in common with any known option: no hint, still an error.
    const char *argv2[] = {"tool", "--zzzzzzzzzz=1"};
    const Options opts2 = Options::parse(2, argv2);
    try {
        opts2.rejectUnknown({"program", "trace"});
        FAIL() << "expected a TopoError";
    } catch (const TopoError &err) {
        EXPECT_EQ(err.code(), ErrCode::kUser);
        EXPECT_EQ(std::string(err.what()).find("did you mean"),
                  std::string::npos);
    }
    // Known options sail through.
    EXPECT_NO_THROW(opts.rejectUnknown({"program", "trace", "progam"}));
}

TEST(ToolSpec, ExitCodesAreStable)
{
    EXPECT_EQ(exitCodeFor(ErrCode::kUser), 1);
    EXPECT_EQ(exitCodeFor(ErrCode::kCorrupt), 2);
    EXPECT_EQ(exitCodeFor(ErrCode::kInternal), 3);
    try {
        failCorrupt("bad bytes", "unit");
    } catch (const TopoError &err) {
        EXPECT_EQ(err.exitCode(), 2);
        EXPECT_EQ(err.context(), "unit");
        EXPECT_NE(std::string(err.what()).find("unit"),
                  std::string::npos);
    }
}

TEST(ChunkScan, MapsChunksForTargetedDrops)
{
    const Trace trace = randomTrace(8, 100, 12);
    TraceWriteOptions wopts;
    wopts.records_per_chunk = 16;
    std::stringstream ss;
    writeBinaryTrace(ss, trace, wopts);
    const std::string bytes = ss.str();
    const std::vector<ChunkExtent> chunks =
        scanBinaryTraceChunks(bytes);
    ASSERT_EQ(chunks.size(), 7u); // ceil(100 / 16)
    std::uint64_t records = 0;
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_LT(chunks[i].begin, chunks[i].end);
        if (i > 0) {
            EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
        }
        records += chunks[i].records;
    }
    EXPECT_EQ(records, 100u);
    EXPECT_EQ(chunks.back().end, bytes.size());
    EXPECT_EQ(codeOf([] { scanBinaryTraceChunks("topo-trace v1 3"); }),
              ErrCode::kCorrupt);
}

} // namespace
} // namespace topo
