#!/bin/sh
# End-to-end test of the command-line workflow:
#   topo_trace_gen -> topo_place -> topo_sim
# Usage: cli_workflow_test.sh <tools-dir>
set -e

TOOLS_DIR="$1"
[ -n "$TOOLS_DIR" ] || { echo "usage: $0 <tools-dir>"; exit 2; }
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$TOOLS_DIR/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-program="$WORK/m.prog" \
    --out-trace="$WORK/m.trace" 2> "$WORK/gen.log"

grep -q "topo-program v1" "$WORK/m.prog" || {
    echo "FAIL: program file missing header"; exit 1; }
grep -q "topo-trace v1" "$WORK/m.trace" || {
    echo "FAIL: trace file missing header"; exit 1; }

"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=gbsc \
    --out-layout="$WORK/m.layout" --out-script="$WORK/m.ld" \
    --evaluate 2> "$WORK/place.log"

grep -q "topo-layout v" "$WORK/m.layout" || {
    echo "FAIL: layout file missing header"; exit 1; }
grep -q "^!algorithm gbsc" "$WORK/m.layout" || {
    echo "FAIL: layout file missing provenance"; exit 1; }
grep -q "SECTIONS" "$WORK/m.ld" || {
    echo "FAIL: linker script missing SECTIONS"; exit 1; }
grep -q "miss rate on this trace" "$WORK/place.log" || {
    echo "FAIL: --evaluate produced no report"; exit 1; }

"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --layout="$WORK/m.layout" \
    --attribute --pages > "$WORK/sim.txt"
grep -q "miss rate:" "$WORK/sim.txt" || {
    echo "FAIL: topo_sim printed no miss rate"; exit 1; }
grep -q "pages touched:" "$WORK/sim.txt" || {
    echo "FAIL: topo_sim printed no page stats"; exit 1; }

# The GBSC layout must beat the default layout on the same trace.
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" > "$WORK/sim_default.txt"
gbsc_mr=$(sed -n 's/^miss rate:  *\([0-9.]*\)%/\1/p' "$WORK/sim.txt")
def_mr=$(sed -n 's/^miss rate:  *\([0-9.]*\)%/\1/p' \
    "$WORK/sim_default.txt")
better=$(awk -v a="$gbsc_mr" -v b="$def_mr" 'BEGIN{print (a<b)?1:0}')
[ "$better" = "1" ] || {
    echo "FAIL: GBSC ($gbsc_mr%) not better than default ($def_mr%)"
    exit 1; }

# topo_compare runs all algorithms and prints the comparison table.
"$TOOLS_DIR/topo_compare" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --refine > "$WORK/cmp.txt" \
    2> "$WORK/cmp.log"
grep -q "GBSC" "$WORK/cmp.txt" || {
    echo "FAIL: topo_compare missing GBSC row"; exit 1; }
grep -q "GBSC+refine" "$WORK/cmp.txt" || {
    echo "FAIL: topo_compare missing refine row"; exit 1; }

# Bad inputs must fail cleanly (non-zero exit, no crash).
if "$TOOLS_DIR/topo_place" --program=/nonexistent --trace=/nonexistent \
    2> /dev/null; then
    echo "FAIL: topo_place accepted nonexistent inputs"; exit 1
fi

# --metrics-out on the full in-process pipeline: the snapshot must be
# valid JSON carrying the per-phase timings and the cache counters.
"$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --metrics-out="$WORK/metrics.json" > /dev/null 2> "$WORK/sim2.log"
[ -s "$WORK/metrics.json" ] || {
    echo "FAIL: --metrics-out wrote nothing"; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    if ! python3 - "$WORK/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["topo_metrics"] == 1
for phase in ("phase.synthesis.ms", "phase.trg_build.ms",
              "phase.placement.gbsc.ms", "phase.simulate.ms"):
    assert phase in m["histograms"], phase
    assert m["histograms"][phase]["count"] >= 1, phase
for counter in ("cache.accesses", "cache.misses", "cache.simulations"):
    assert m["counters"][counter] >= 1, counter
EOF
    then
        echo "FAIL: metrics snapshot invalid"; exit 1
    fi
else
    for key in '"topo_metrics": 1' '"phase.synthesis.ms"' \
        '"phase.trg_build.ms"' '"phase.placement.gbsc.ms"' \
        '"phase.simulate.ms"' '"cache.accesses"' '"cache.misses"'; do
        grep -q "$key" "$WORK/metrics.json" || {
            echo "FAIL: metrics snapshot missing $key"; exit 1; }
    done
fi

# topo_place writes a snapshot too, and debug logging emits per-pass
# placement lines.
"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=gbsc \
    --out-layout="$WORK/m2.layout" --log-level=debug \
    --metrics-out="$WORK/place_metrics.json" 2> "$WORK/place2.log"
grep -q '"gbsc.merge_steps"' "$WORK/place_metrics.json" || {
    echo "FAIL: place metrics missing gbsc.merge_steps"; exit 1; }
grep -q "merge pass" "$WORK/place2.log" || {
    echo "FAIL: --log-level=debug shows no per-pass lines"; exit 1; }

# --- Parallel execution --------------------------------------------

# --jobs validation: zero, negative, and non-numeric values are user
# errors (exit 1), never silently clamped.
for bad_jobs in 0 -3 abc; do
    set +e
    "$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
        --jobs=$bad_jobs > /dev/null 2> "$WORK/jobs.log"
    rc=$?
    set -e
    [ "$rc" = "1" ] || {
        echo "FAIL: --jobs=$bad_jobs exited $rc, want 1"; exit 1; }
    grep -qi "jobs" "$WORK/jobs.log" || {
        echo "FAIL: --jobs=$bad_jobs error does not name the option"
        exit 1; }
done

# Determinism contract: the multi-benchmark grid with --jobs=2 must be
# byte-identical to --jobs=1 (DESIGN.md §9).
"$TOOLS_DIR/topo_sim" --benchmark='*' --algorithms=ph,gbsc \
    --trace-scale=0.005 --jobs=1 > "$WORK/grid_j1.txt" 2> /dev/null
"$TOOLS_DIR/topo_sim" --benchmark='*' --algorithms=ph,gbsc \
    --trace-scale=0.005 --jobs=2 > "$WORK/grid_j2.txt" 2> /dev/null
cmp -s "$WORK/grid_j1.txt" "$WORK/grid_j2.txt" || {
    echo "FAIL: --jobs=2 grid output differs from --jobs=1"; exit 1; }
grep -q "miss rate:" "$WORK/grid_j1.txt" || {
    echo "FAIL: grid run printed no miss rates"; exit 1; }

# --- Resilience workflow -------------------------------------------

# Unknown options are a user error (exit 1) with a spelling hint.
set +e
"$TOOLS_DIR/topo_sim" --progam="$WORK/m.prog" 2> "$WORK/unknown.log"
rc=$?
set -e
[ "$rc" = "1" ] || {
    echo "FAIL: unknown option exited $rc, want 1"; exit 1; }
grep -q "did you mean '--program'" "$WORK/unknown.log" || {
    echo "FAIL: unknown option gave no spelling hint"; exit 1; }

# A binary trace damaged by topo_corrupt is corrupt input: exit 2.
"$TOOLS_DIR/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-trace="$WORK/m.btrace" --binary \
    2> /dev/null
"$TOOLS_DIR/topo_corrupt" --in="$WORK/m.btrace" \
    --out="$WORK/bad.btrace" --truncate-frac=0.5 2> /dev/null
set +e
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/bad.btrace" > /dev/null 2> "$WORK/corrupt.log"
rc=$?
set -e
[ "$rc" = "2" ] || {
    echo "FAIL: corrupt trace exited $rc, want 2"; exit 1; }

# --recover salvages the valid prefix and reports the loss in metrics.
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/bad.btrace" --recover \
    --metrics-out="$WORK/recover_metrics.json" > "$WORK/recover.txt" \
    2> /dev/null
grep -q "miss rate:" "$WORK/recover.txt" || {
    echo "FAIL: --recover run printed no miss rate"; exit 1; }
grep -q '"trace.dropped_records"' "$WORK/recover_metrics.json" || {
    echo "FAIL: --recover reported no dropped records"; exit 1; }

# Deterministic bit corruption is caught by the chunk CRC.
"$TOOLS_DIR/topo_corrupt" --in="$WORK/m.btrace" \
    --out="$WORK/flip.btrace" --random-flips=3 --seed=9 2> /dev/null
set +e
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/flip.btrace" > /dev/null 2>&1
rc=$?
set -e
[ "$rc" = "2" ] || {
    echo "FAIL: bit-flipped trace exited $rc, want 2"; exit 1; }

# Checkpoint/resume: an interrupted run resumed from its checkpoint
# must report exactly the miss count of the uninterrupted run.
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.btrace" > "$WORK/whole.txt" 2> /dev/null
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.btrace" --checkpoint="$WORK/sim.ckpt" \
    --checkpoint-every=1000 --stop-after=12345 > "$WORK/part.txt" \
    2> /dev/null
grep -q "interrupted at 12345" "$WORK/part.txt" || {
    echo "FAIL: interrupted run printed no resume hint"; exit 1; }
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.btrace" --resume="$WORK/sim.ckpt" \
    > "$WORK/resumed.txt" 2> /dev/null
whole_misses=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' "$WORK/whole.txt")
resumed_misses=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' \
    "$WORK/resumed.txt")
[ -n "$whole_misses" ] && [ "$whole_misses" = "$resumed_misses" ] || {
    echo "FAIL: resume gave $resumed_misses misses, want $whole_misses"
    exit 1; }

# The in-process --benchmark pipeline checkpoints and resumes the
# same way: interrupted + resumed must equal uninterrupted.
"$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    > "$WORK/bwhole.txt" 2> /dev/null
"$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --checkpoint="$WORK/bench.ckpt" --stop-after=7777 > /dev/null \
    2> /dev/null
"$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --resume="$WORK/bench.ckpt" > "$WORK/bresumed.txt" 2> /dev/null
bwhole=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' "$WORK/bwhole.txt")
bresumed=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' "$WORK/bresumed.txt")
[ -n "$bwhole" ] && [ "$bwhole" = "$bresumed" ] || {
    echo "FAIL: benchmark resume gave $bresumed misses, want $bwhole"
    exit 1; }

# A corrupted checkpoint must be refused as corrupt input.
"$TOOLS_DIR/topo_corrupt" --in="$WORK/sim.ckpt" \
    --out="$WORK/bad.ckpt" --bitflip=20 --flip-bit=3 2> /dev/null
set +e
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.btrace" --resume="$WORK/bad.ckpt" \
    > /dev/null 2>&1
rc=$?
set -e
[ "$rc" = "2" ] || {
    echo "FAIL: corrupt checkpoint exited $rc, want 2"; exit 1; }

# --- Explainability workflow ---------------------------------------

# Decision provenance: --decisions-out writes a validating artifact,
# and topo_report --diff joins it against a layout diff.
"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=ph \
    --out-layout="$WORK/ph.layout" 2> /dev/null
"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=gbsc \
    --out-layout="$WORK/g.layout" \
    --decisions-out="$WORK/g.decisions.json" 2> /dev/null
"$TOOLS_DIR/topo_report" --check-json="$WORK/g.decisions.json" \
    > /dev/null || {
    echo "FAIL: decisions artifact failed validation"; exit 1; }

"$TOOLS_DIR/topo_report" --diff="$WORK/ph.layout,$WORK/g.layout" \
    --program="$WORK/m.prog" --trace="$WORK/m.trace" \
    --decisions="$WORK/g.decisions.json" \
    --json-out="$WORK/diff.json" --out="$WORK/diff.md" 2> /dev/null
grep -q "Layout diff" "$WORK/diff.md" || {
    echo "FAIL: diff report missing title"; exit 1; }
grep -q "algorithm=gbsc" "$WORK/diff.md" || {
    echo "FAIL: diff report missing provenance label"; exit 1; }
"$TOOLS_DIR/topo_report" --check-json="$WORK/diff.json" \
    > /dev/null || {
    echo "FAIL: diff artifact failed validation"; exit 1; }

# A damaged decisions file is corrupt input (exit 2), never a crash:
# truncation and a deterministic bit flip both must be caught.
"$TOOLS_DIR/topo_corrupt" --in="$WORK/g.decisions.json" \
    --out="$WORK/trunc.decisions.json" --truncate-frac=0.5 \
    2> /dev/null
"$TOOLS_DIR/topo_corrupt" --in="$WORK/g.decisions.json" \
    --out="$WORK/flip.decisions.json" --bitflip=20 --flip-bit=3 \
    2> /dev/null
for broken in "$WORK/trunc.decisions.json" "$WORK/flip.decisions.json"
do
    set +e
    "$TOOLS_DIR/topo_report" \
        --diff="$WORK/ph.layout,$WORK/g.layout" \
        --program="$WORK/m.prog" --decisions="$broken" \
        > /dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" = "2" ] || {
        echo "FAIL: corrupt decisions $broken exited $rc, want 2"
        exit 1; }
    set +e
    "$TOOLS_DIR/topo_report" --check-json="$broken" > /dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" = "2" ] || {
        echo "FAIL: --check-json on $broken exited $rc, want 2"
        exit 1; }
done

echo "PASS: cli workflow (default $def_mr% -> gbsc $gbsc_mr%," \
    "resume $resumed_misses misses)"
