#!/bin/sh
# End-to-end test of the command-line workflow:
#   topo_trace_gen -> topo_place -> topo_sim
# Usage: cli_workflow_test.sh <tools-dir>
set -e

TOOLS_DIR="$1"
[ -n "$TOOLS_DIR" ] || { echo "usage: $0 <tools-dir>"; exit 2; }
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$TOOLS_DIR/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-program="$WORK/m.prog" \
    --out-trace="$WORK/m.trace" 2> "$WORK/gen.log"

grep -q "topo-program v1" "$WORK/m.prog" || {
    echo "FAIL: program file missing header"; exit 1; }
grep -q "topo-trace v1" "$WORK/m.trace" || {
    echo "FAIL: trace file missing header"; exit 1; }

"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=gbsc \
    --out-layout="$WORK/m.layout" --out-script="$WORK/m.ld" \
    --evaluate 2> "$WORK/place.log"

grep -q "topo-layout v1" "$WORK/m.layout" || {
    echo "FAIL: layout file missing header"; exit 1; }
grep -q "SECTIONS" "$WORK/m.ld" || {
    echo "FAIL: linker script missing SECTIONS"; exit 1; }
grep -q "miss rate on this trace" "$WORK/place.log" || {
    echo "FAIL: --evaluate produced no report"; exit 1; }

"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --layout="$WORK/m.layout" \
    --attribute --pages > "$WORK/sim.txt"
grep -q "miss rate:" "$WORK/sim.txt" || {
    echo "FAIL: topo_sim printed no miss rate"; exit 1; }
grep -q "pages touched:" "$WORK/sim.txt" || {
    echo "FAIL: topo_sim printed no page stats"; exit 1; }

# The GBSC layout must beat the default layout on the same trace.
"$TOOLS_DIR/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" > "$WORK/sim_default.txt"
gbsc_mr=$(sed -n 's/^miss rate:  *\([0-9.]*\)%/\1/p' "$WORK/sim.txt")
def_mr=$(sed -n 's/^miss rate:  *\([0-9.]*\)%/\1/p' \
    "$WORK/sim_default.txt")
better=$(awk -v a="$gbsc_mr" -v b="$def_mr" 'BEGIN{print (a<b)?1:0}')
[ "$better" = "1" ] || {
    echo "FAIL: GBSC ($gbsc_mr%) not better than default ($def_mr%)"
    exit 1; }

# topo_compare runs all algorithms and prints the comparison table.
"$TOOLS_DIR/topo_compare" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --refine > "$WORK/cmp.txt" \
    2> "$WORK/cmp.log"
grep -q "GBSC" "$WORK/cmp.txt" || {
    echo "FAIL: topo_compare missing GBSC row"; exit 1; }
grep -q "GBSC+refine" "$WORK/cmp.txt" || {
    echo "FAIL: topo_compare missing refine row"; exit 1; }

# Bad inputs must fail cleanly (non-zero exit, no crash).
if "$TOOLS_DIR/topo_place" --program=/nonexistent --trace=/nonexistent \
    2> /dev/null; then
    echo "FAIL: topo_place accepted nonexistent inputs"; exit 1
fi

# --metrics-out on the full in-process pipeline: the snapshot must be
# valid JSON carrying the per-phase timings and the cache counters.
"$TOOLS_DIR/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --metrics-out="$WORK/metrics.json" > /dev/null 2> "$WORK/sim2.log"
[ -s "$WORK/metrics.json" ] || {
    echo "FAIL: --metrics-out wrote nothing"; exit 1; }
if command -v python3 > /dev/null 2>&1; then
    if ! python3 - "$WORK/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
assert m["topo_metrics"] == 1
for phase in ("phase.synthesis.ms", "phase.trg_build.ms",
              "phase.placement.gbsc.ms", "phase.simulate.ms"):
    assert phase in m["histograms"], phase
    assert m["histograms"][phase]["count"] >= 1, phase
for counter in ("cache.accesses", "cache.misses", "cache.simulations"):
    assert m["counters"][counter] >= 1, counter
EOF
    then
        echo "FAIL: metrics snapshot invalid"; exit 1
    fi
else
    for key in '"topo_metrics": 1' '"phase.synthesis.ms"' \
        '"phase.trg_build.ms"' '"phase.placement.gbsc.ms"' \
        '"phase.simulate.ms"' '"cache.accesses"' '"cache.misses"'; do
        grep -q "$key" "$WORK/metrics.json" || {
            echo "FAIL: metrics snapshot missing $key"; exit 1; }
    done
fi

# topo_place writes a snapshot too, and debug logging emits per-pass
# placement lines.
"$TOOLS_DIR/topo_place" --program="$WORK/m.prog" \
    --trace="$WORK/m.trace" --algorithm=gbsc \
    --out-layout="$WORK/m2.layout" --log-level=debug \
    --metrics-out="$WORK/place_metrics.json" 2> "$WORK/place2.log"
grep -q '"gbsc.merge_steps"' "$WORK/place_metrics.json" || {
    echo "FAIL: place metrics missing gbsc.merge_steps"; exit 1; }
grep -q "merge pass" "$WORK/place2.log" || {
    echo "FAIL: --log-level=debug shows no per-pass lines"; exit 1; }

echo "PASS: cli workflow (default $def_mr% -> gbsc $gbsc_mr%)"
