/**
 * @file
 * Tests for the HKC cache-line-coloring implementation.
 */

#include <gtest/gtest.h>

#include "topo/placement/cache_coloring.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

struct HkcFixture
{
    Program program{"hkc"};
    WeightedGraph wcg{0};
    PlacementContext ctx;

    HkcFixture(std::size_t procs, std::uint32_t size,
               CacheConfig cache = CacheConfig::paperDefault())
    {
        for (std::size_t i = 0; i < procs; ++i)
            program.addProcedure("p" + std::to_string(i), size);
        wcg = WeightedGraph(procs);
        ctx.program = &program;
        ctx.cache = cache;
        ctx.wcg = &wcg;
    }

    std::uint32_t
    colorOf(const Layout &layout, ProcId id) const
    {
        return static_cast<std::uint32_t>(
            layout.startLine(id, ctx.cache.line_bytes) %
            ctx.cache.lineCount());
    }
};

TEST(CacheColoring, CallerCalleeDoNotOverlap)
{
    // Two procedures of half the cache each, calling each other: HKC
    // must colour them without overlap (adjacent placement suffices).
    HkcFixture fx(2, 4096); // 128 lines each, 256-line cache
    fx.wcg.addWeight(0, 1, 100.0);
    const CacheColoring hkc;
    const Layout layout = hkc.place(fx.ctx);
    layout.validate(fx.program, 32);
    const std::uint32_t c0 = fx.colorOf(layout, 0);
    const std::uint32_t c1 = fx.colorOf(layout, 1);
    // Colour ranges [c0, c0+128) and [c1, c1+128) mod 256 disjoint.
    const std::uint32_t distance = (c1 + 256 - c0) % 256;
    EXPECT_GE(distance, 128u);
}

TEST(CacheColoring, ThirdProcedureAvoidsBothNeighbours)
{
    // p0 and p1 occupy lines; p2 interacts with both and fits in the
    // remaining colours: no overlap should remain.
    HkcFixture fx(3, 2048); // 64 lines each, 256-line cache
    fx.wcg.addWeight(0, 1, 100.0);
    fx.wcg.addWeight(0, 2, 90.0);
    fx.wcg.addWeight(1, 2, 80.0);
    const CacheColoring hkc;
    const Layout layout = hkc.place(fx.ctx);
    layout.validate(fx.program, 32);
    auto overlap = [&](ProcId a, ProcId b) {
        const std::uint32_t ca = fx.colorOf(layout, a);
        const std::uint32_t cb = fx.colorOf(layout, b);
        std::uint32_t count = 0;
        for (std::uint32_t la = 0; la < 64; ++la) {
            for (std::uint32_t lb = 0; lb < 64; ++lb) {
                if ((ca + la) % 256 == (cb + lb) % 256)
                    ++count;
            }
        }
        return count;
    };
    EXPECT_EQ(overlap(0, 1), 0u);
    EXPECT_EQ(overlap(0, 2), 0u);
    EXPECT_EQ(overlap(1, 2), 0u);
}

TEST(CacheColoring, OnlyPopularColoured)
{
    HkcFixture fx(4, 1024);
    fx.wcg.addWeight(0, 1, 100.0);
    fx.wcg.addWeight(2, 3, 90.0); // cold pair: must not form a unit
    fx.ctx.popular = {true, true, false, false};
    fx.ctx.heat = {100.0, 90.0, 1.0, 1.0};
    const CacheColoring hkc;
    const Layout layout = hkc.place(fx.ctx);
    layout.validate(fx.program, 32);
    // Popular pair adjacent at the front; cold procedures appended.
    EXPECT_LT(layout.address(0), layout.address(2));
    EXPECT_LT(layout.address(1), layout.address(2));
}

TEST(CacheColoring, RequiresWcg)
{
    HkcFixture fx(2, 64);
    fx.ctx.wcg = nullptr;
    const CacheColoring hkc;
    EXPECT_THROW(hkc.place(fx.ctx), TopoError);
}

TEST(CacheColoring, ProcedureLargerThanCacheHandled)
{
    HkcFixture fx(2, 16384); // twice the cache size
    fx.wcg.addWeight(0, 1, 10.0);
    const CacheColoring hkc;
    const Layout layout = hkc.place(fx.ctx);
    layout.validate(fx.program, 32);
}

/** Property: valid layouts for random popular graphs. */
class HkcPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HkcPropertyTest, RandomGraphsYieldValidLayouts)
{
    Rng rng(GetParam());
    const std::size_t procs = 24;
    Program program("hkc");
    for (std::size_t i = 0; i < procs; ++i) {
        program.addProcedure(
            "p" + std::to_string(i),
            32 + static_cast<std::uint32_t>(rng.nextBelow(3000)));
    }
    WeightedGraph wcg(procs);
    for (int e = 0; e < 50; ++e) {
        const BlockId u = static_cast<BlockId>(rng.nextBelow(procs));
        const BlockId v = static_cast<BlockId>(rng.nextBelow(procs));
        if (u != v)
            wcg.addWeight(u, v, 1.0 + rng.nextBelow(500));
    }
    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = CacheConfig::paperDefault();
    ctx.wcg = &wcg;
    ctx.popular.assign(procs, false);
    ctx.heat.assign(procs, 0.0);
    for (std::size_t i = 0; i < procs; ++i) {
        ctx.popular[i] = rng.nextBool(0.6);
        ctx.heat[i] = static_cast<double>(rng.nextBelow(10000));
    }
    const CacheColoring hkc;
    const Layout layout = hkc.place(ctx);
    layout.validate(program, 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HkcPropertyTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

} // namespace
} // namespace topo
