/**
 * @file
 * Unit tests for Trace, FetchStream, trace IO, and trace statistics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "topo/program/program.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/trace/trace.hh"
#include "topo/trace/trace_io.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Program
makeProgram()
{
    Program p("t");
    p.addProcedure("f", 100);
    p.addProcedure("g", 64);
    return p;
}

TEST(Trace, AppendAndValidate)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 0, 100);
    t.append(1, 32, 32);
    EXPECT_EQ(t.size(), 2u);
    t.validate(p);
}

TEST(Trace, RejectsBadRuns)
{
    Trace t(2);
    EXPECT_THROW(t.append(2, 0, 10), TopoError); // bad proc
    EXPECT_THROW(t.append(0, 0, 0), TopoError);  // zero length
}

TEST(Trace, ValidateCatchesOutOfBounds)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 90, 20); // 90+20 > 100
    EXPECT_THROW(t.validate(p), TopoError);
}

TEST(FetchStream, ExpandsRunsToLines)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 0, 100); // lines 0..3 at 32B lines
    t.append(1, 40, 8);  // line 1 only
    const FetchStream stream(p, t, 32);
    ASSERT_EQ(stream.size(), 5u);
    EXPECT_EQ(stream.ref(0), (FetchRef{0, 0}));
    EXPECT_EQ(stream.ref(3), (FetchRef{0, 3}));
    EXPECT_EQ(stream.ref(4), (FetchRef{1, 1}));
}

TEST(FetchStream, SingleByteRun)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 99, 1);
    const FetchStream stream(p, t, 32);
    ASSERT_EQ(stream.size(), 1u);
    EXPECT_EQ(stream.ref(0), (FetchRef{0, 3}));
}

/** Property: total lines equals the per-run line-span sum. */
class FetchStreamLineTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FetchStreamLineTest, LineCountMatchesSpans)
{
    const std::uint32_t line = GetParam();
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 10, 55);
    t.append(1, 0, 64);
    t.append(0, 96, 4);
    std::size_t expected = 0;
    for (const TraceEvent &ev : t.events()) {
        const std::uint32_t first = ev.offset / line;
        const std::uint32_t last = (ev.offset + ev.length - 1) / line;
        expected += last - first + 1;
    }
    const FetchStream stream(p, t, line);
    EXPECT_EQ(stream.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(LineSizes, FetchStreamLineTest,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(TraceIo, RoundTrip)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 0, 100);
    t.append(1, 16, 48);
    std::stringstream ss;
    writeTrace(ss, t);
    const Trace back = readTrace(ss);
    EXPECT_EQ(back.procCount(), t.procCount());
    ASSERT_EQ(back.size(), t.size());
    EXPECT_EQ(back.events()[0], t.events()[0]);
    EXPECT_EQ(back.events()[1], t.events()[1]);
}

TEST(TraceIo, CommentsAndBlanksIgnored)
{
    std::stringstream ss("topo-trace v1 2\n# comment\n\n0 0 10\n");
    const Trace t = readTrace(ss);
    EXPECT_EQ(t.size(), 1u);
}

TEST(TraceIo, BadHeaderRejected)
{
    std::stringstream ss("not-a-trace\n");
    EXPECT_THROW(readTrace(ss), TopoError);
}

TEST(TraceIo, OutOfRangeProcRejected)
{
    std::stringstream ss("topo-trace v1 1\n5 0 10\n");
    EXPECT_THROW(readTrace(ss), TopoError);
}

TEST(TraceStats, CountsAndTotals)
{
    const Program p = makeProgram();
    Trace t(p.procCount());
    t.append(0, 0, 100);
    t.append(0, 0, 50);
    t.append(1, 0, 64);
    const TraceStats stats = computeTraceStats(p, t);
    EXPECT_EQ(stats.total_runs, 3u);
    EXPECT_EQ(stats.total_bytes, 214u);
    EXPECT_EQ(stats.run_count[0], 2u);
    EXPECT_EQ(stats.bytes_fetched[0], 150u);
    EXPECT_EQ(stats.procs_touched, 2u);
}

TEST(TraceStats, MismatchRejected)
{
    const Program p = makeProgram();
    Trace t(5);
    EXPECT_THROW(computeTraceStats(p, t), TopoError);
}

} // namespace
} // namespace topo
