/**
 * @file
 * Tests of the attribution sink: a hand-computable two-procedure
 * conflict layout where every cell of the conflict matrix is known in
 * advance, the disabled-sink equivalence guarantee (observers must not
 * change simulation results), a hot-loop allocation bound, and the
 * comparison-report generator built on top.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "topo/cache/attribution.hh"
#include "topo/cache/simulate.hh"
#include "topo/eval/report_gen.hh"
#include "topo/obs/timeline.hh"
#include "topo/util/error.hh"

namespace
{

/** Global allocation counter for the allocation-bound test. */
std::atomic<std::uint64_t> g_allocs{0};

} // namespace

// The full replacement set (array and nothrow forms included) so every
// allocation and deallocation pairs up on malloc/free — a partial set
// trips ASan's alloc-dealloc-mismatch checker in the sanitized build.
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &tag) noexcept
{
    return operator new(size, tag);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

namespace topo
{
namespace
{

/** Two one-line procedures that collide on frame 0 of a 2-frame cache. */
struct ConflictFixture
{
    Program program{"conflict"};
    Layout layout;
    CacheConfig cache{64, 32, 1}; // 2 frames

    ConflictFixture()
    {
        program.addProcedure("A", 32);
        program.addProcedure("B", 32);
        // Both procedures at cache-line offset 0: A at line 0, B at
        // line 2 — the same frame of the 2-line cache.
        layout = Layout::fromCacheOffsets(program, {0, 1}, {0, 0}, 32,
                                          cache.lineCount());
    }

    Trace
    alternating(int rounds) const
    {
        Trace trace(2);
        for (int i = 0; i < rounds; ++i) {
            trace.appendWhole(0, 32);
            trace.appendWhole(1, 32);
        }
        return trace;
    }
};

TEST(AttributionTest, HandComputedConflictMatrix)
{
    const ConflictFixture fx;
    const int kRounds = 50;
    const Trace trace = fx.alternating(kRounds);
    const FetchStream stream(fx.program, trace, 32);

    AttributionSink sink(fx.program, fx.layout, fx.cache, 32);
    SimObservers observers;
    observers.attribution = &sink;
    const SimResult result = simulateLayout(
        fx.program, fx.layout, stream, fx.cache, false, nullptr,
        &observers);

    // A,B,A,B,... on one frame: every access misses. The first A is a
    // cold fill; every later access evicts the other procedure.
    EXPECT_EQ(result.accesses, 2u * kRounds);
    EXPECT_EQ(result.misses, 2u * kRounds);
    EXPECT_EQ(result.evictions, 2u * kRounds - 1);
    EXPECT_EQ(sink.evictions(), 2u * kRounds - 1);

    ASSERT_EQ(sink.fetchesByProc().size(), 2u);
    EXPECT_EQ(sink.fetchesByProc()[0], static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(sink.fetchesByProc()[1], static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(sink.missesByProc()[0], static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(sink.missesByProc()[1], static_cast<std::uint64_t>(kRounds));

    // All traffic lands in set 0; set 1 stays untouched.
    ASSERT_EQ(sink.accessesBySet().size(), 2u);
    EXPECT_EQ(sink.accessesBySet()[0], 2u * kRounds);
    EXPECT_EQ(sink.accessesBySet()[1], 0u);
    EXPECT_EQ(sink.missesBySet()[0], 2u * kRounds);
    EXPECT_EQ(sink.missesBySet()[1], 0u);

    // B evicts A on every B access (kRounds); A evicts B on every A
    // access after the first round (kRounds - 1).
    const std::vector<ConflictPair> pairs = sink.topPairs(10);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].evictor, 1u);
    EXPECT_EQ(pairs[0].victim, 0u);
    EXPECT_EQ(pairs[0].count, static_cast<std::uint64_t>(kRounds));
    EXPECT_EQ(pairs[1].evictor, 0u);
    EXPECT_EQ(pairs[1].victim, 1u);
    EXPECT_EQ(pairs[1].count, static_cast<std::uint64_t>(kRounds - 1));
    EXPECT_EQ(sink.trackedPairs(), 2u);
    EXPECT_EQ(sink.droppedPairs(), 0u);

    // Victim lines resolve through the layout: A owns line 0, B owns
    // line 2, and the gap line 1 belongs to nobody.
    EXPECT_EQ(sink.procAtLine(0), 0u);
    EXPECT_EQ(sink.procAtLine(2), 1u);
    EXPECT_EQ(sink.procAtLine(1), kInvalidProc);
    EXPECT_EQ(sink.procAtLine(99), kInvalidProc);
}

TEST(AttributionTest, TwoWayCacheAbsorbsTheConflict)
{
    const ConflictFixture fx;
    const CacheConfig two_way{128, 32, 2}; // same sets, 2 ways
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);

    AttributionSink sink2(fx.program, fx.layout, two_way, 32);
    SimObservers observers;
    observers.attribution = &sink2;
    const SimResult result = simulateLayout(
        fx.program, fx.layout, stream, two_way, false, nullptr,
        &observers);

    // Both lines fit the shared set: only the two cold misses, no
    // valid-line evictions, an empty conflict matrix.
    EXPECT_EQ(result.misses, 2u);
    EXPECT_EQ(sink2.evictions(), 0u);
    EXPECT_TRUE(sink2.topPairs(10).empty());
}

TEST(AttributionTest, PairBudgetBoundsTheMatrix)
{
    const ConflictFixture fx;
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);

    AttributionSink::Options options;
    options.max_pairs = 1;
    AttributionSink sink(fx.program, fx.layout, fx.cache, 32, options);
    SimObservers observers;
    observers.attribution = &sink;
    simulateLayout(fx.program, fx.layout, stream, fx.cache, false,
                   nullptr, &observers);

    // Only the first pair (B evicts A) fits the budget; the reverse
    // pair's evictions are counted as dropped, not lost silently.
    EXPECT_EQ(sink.trackedPairs(), 1u);
    EXPECT_EQ(sink.droppedPairs(), 49u);
    EXPECT_EQ(sink.evictions(), 99u);
}

TEST(AttributionTest, DisabledSinkLeavesResultsIdentical)
{
    const ConflictFixture fx;
    const Trace trace = fx.alternating(200);
    const FetchStream stream(fx.program, trace, 32);

    const SimResult plain =
        simulateLayout(fx.program, fx.layout, stream, fx.cache, true);

    AttributionSink sink(fx.program, fx.layout, fx.cache, 32);
    TimelineRecorder timeline(16, fx.program.procCount());
    SimObservers observers;
    observers.attribution = &sink;
    observers.timeline = &timeline;
    const SimResult observed = simulateLayout(
        fx.program, fx.layout, stream, fx.cache, true, nullptr,
        &observers);

    EXPECT_EQ(plain.accesses, observed.accesses);
    EXPECT_EQ(plain.misses, observed.misses);
    EXPECT_EQ(plain.evictions, observed.evictions);
    EXPECT_EQ(plain.misses_by_proc, observed.misses_by_proc);

    // The timeline saw every access.
    std::uint64_t timeline_accesses = 0;
    for (const TimelineSample &sample : timeline.samples())
        timeline_accesses += sample.accesses;
    EXPECT_EQ(timeline_accesses, observed.accesses);
}

TEST(AttributionTest, HotLoopIsAllocationFree)
{
    const ConflictFixture fx;
    const Trace small_trace = fx.alternating(100);
    const Trace big_trace = fx.alternating(4000);
    const FetchStream small_stream(fx.program, small_trace, 32);
    const FetchStream big_stream(fx.program, big_trace, 32);

    auto count_allocs = [&](const FetchStream &stream) {
        AttributionSink sink(fx.program, fx.layout, fx.cache, 32);
        TimelineRecorder timeline(64, fx.program.procCount());
        SimObservers observers;
        observers.attribution = &sink;
        observers.timeline = &timeline;
        const std::uint64_t before =
            g_allocs.load(std::memory_order_relaxed);
        simulateLayout(fx.program, fx.layout, stream, fx.cache, false,
                       nullptr, &observers);
        return g_allocs.load(std::memory_order_relaxed) - before;
    };

    // Warm up metric-registry entries so both runs see the same
    // steady state, then compare: 40x the stream must not allocate
    // more than a small constant extra (timeline windows aside, the
    // replay loop itself is allocation-free).
    count_allocs(small_stream);
    const std::uint64_t small_allocs = count_allocs(small_stream);
    const std::uint64_t big_allocs = count_allocs(big_stream);
    // The big run records more timeline windows (vector growth), but
    // nothing proportional to the 8000-access stream.
    EXPECT_LE(big_allocs, small_allocs + 32);
}

TEST(AttributionTest, SteadyStateBatchedReplayIsAllocationFree)
{
    // The plain (unobserved, uncontrolled) replay takes the batched
    // fast path whose only scratch, the per-layout line-address table,
    // lives in a thread-local arena. Once a first replay has grown the
    // arena and the cache/metrics steady state exists, replaying a
    // stream 40x longer must allocate exactly as much as replaying the
    // short one — the replay loop itself performs zero allocations per
    // access.
    const ConflictFixture fx;
    const Trace small_trace = fx.alternating(100);
    const Trace big_trace = fx.alternating(4000);
    const FetchStream small_stream(fx.program, small_trace, 32);
    const FetchStream big_stream(fx.program, big_trace, 32);

    auto count_allocs = [&](const FetchStream &stream) {
        const std::uint64_t before =
            g_allocs.load(std::memory_order_relaxed);
        simulateLayout(fx.program, fx.layout, stream, fx.cache, false);
        return g_allocs.load(std::memory_order_relaxed) - before;
    };

    count_allocs(big_stream); // warm arena, cache words, metrics
    const std::uint64_t small_allocs = count_allocs(small_stream);
    const std::uint64_t big_allocs = count_allocs(big_stream);
    EXPECT_EQ(big_allocs, small_allocs);
}

TEST(ReportGenTest, ComparisonReportNamesWinnersAndPairs)
{
    const ConflictFixture fx;
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);

    // Candidate 2 separates the procedures onto distinct frames.
    const Layout apart = Layout::fromCacheOffsets(
        fx.program, {0, 1}, {0, 1}, 32, fx.cache.lineCount());

    ReportOptions options;
    options.timeline_window = 10;
    const ComparisonReport report = buildComparisonReport(
        fx.program, stream, fx.cache,
        {{"overlapped", fx.layout}, {"separated", apart}}, options);

    ASSERT_EQ(report.layouts.size(), 2u);
    EXPECT_EQ(report.layouts[0].misses, 100u);
    EXPECT_EQ(report.layouts[1].misses, 2u);
    ASSERT_EQ(report.layouts[0].top_pairs.size(), 2u);
    EXPECT_EQ(report.layouts[0].top_pairs[0].evictor, "B");
    EXPECT_EQ(report.layouts[0].top_pairs[0].victim, "A");
    EXPECT_EQ(report.layouts[0].top_pairs[0].count, 50u);
    EXPECT_TRUE(report.layouts[1].top_pairs.empty());
    // The separated layout wins every complete window.
    EXPECT_GT(report.layouts[1].windows_better, 0u);
    EXPECT_EQ(report.layouts[1].windows_worse, 0u);

    std::ostringstream md;
    renderReportMarkdown(report, md);
    EXPECT_NE(md.str().find("overlapped"), std::string::npos);
    EXPECT_NE(md.str().find("separated"), std::string::npos);
    EXPECT_NE(md.str().find("| `B` | `A` | 50 |"), std::string::npos);

    const JsonValue json =
        JsonValue::parse(reportToJson(report).toString());
    EXPECT_DOUBLE_EQ(json.at("topo_report").asNumber(), 1.0);
    ASSERT_EQ(json.at("layouts").size(), 2u);
    EXPECT_EQ(json.at("layouts")
                  .at(std::size_t{0})
                  .at("label")
                  .asString(),
              "overlapped");
}

TEST(AttributionTest, ObserversRejectCheckpointControl)
{
    const ConflictFixture fx;
    const Trace trace = fx.alternating(5);
    const FetchStream stream(fx.program, trace, 32);
    AttributionSink sink(fx.program, fx.layout, fx.cache, 32);
    SimObservers observers;
    observers.attribution = &sink;
    SimControl control;
    control.checkpoint_path = "/tmp/unused.ckpt";
    control.checkpoint_every = 1;
    EXPECT_THROW(simulateLayout(fx.program, fx.layout, stream, fx.cache,
                                false, &control, &observers),
                 TopoError);
}

} // namespace
} // namespace topo