/**
 * @file
 * Unit tests for Program, Layout and the linker-script writer,
 * including parameterised sweeps of the cache-offset realisation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "topo/program/layout.hh"
#include "topo/program/layout_script.hh"
#include "topo/program/program.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

Program
threeProcs()
{
    Program p("three");
    p.addProcedure("a", 100); // 4 lines at 32B
    p.addProcedure("b", 32);  // 1 line
    p.addProcedure("c", 70);  // 3 lines
    return p;
}

TEST(Program, AddAndQuery)
{
    const Program p = threeProcs();
    EXPECT_EQ(p.procCount(), 3u);
    EXPECT_EQ(p.totalSize(), 202u);
    EXPECT_EQ(p.proc(0).name, "a");
    EXPECT_EQ(p.findProc("b"), 1u);
    EXPECT_EQ(p.findProc("nope"), kInvalidProc);
    EXPECT_THROW(p.proc(3), TopoError);
}

TEST(Program, ZeroSizeRejected)
{
    Program p;
    EXPECT_THROW(p.addProcedure("zero", 0), TopoError);
}

TEST(Program, SizeInLinesRoundsUp)
{
    const Program p = threeProcs();
    EXPECT_EQ(p.sizeInLines(0, 32), 4u);
    EXPECT_EQ(p.sizeInLines(1, 32), 1u);
    EXPECT_EQ(p.sizeInLines(2, 32), 3u);
    EXPECT_THROW(p.sizeInLines(0, 0), TopoError);
}

TEST(Layout, DefaultOrderPacksAndAligns)
{
    const Program p = threeProcs();
    const Layout layout = Layout::defaultOrder(p, 32);
    layout.validate(p, 32);
    EXPECT_EQ(layout.address(0), 0u);
    EXPECT_EQ(layout.address(1), 128u); // 100 aligned up to 128
    EXPECT_EQ(layout.address(2), 160u);
    EXPECT_TRUE(layout.complete());
}

TEST(Layout, DefaultOrderWithPadding)
{
    const Program p = threeProcs();
    const Layout padded = Layout::defaultOrder(p, 32, 32);
    padded.validate(p, 32);
    // Padding inserts one extra line after each procedure.
    EXPECT_EQ(padded.address(1), 160u);
    EXPECT_EQ(padded.address(2), 224u);
}

TEST(Layout, FromOrderCoversMissingProcs)
{
    const Program p = threeProcs();
    const Layout layout = Layout::fromOrder(p, {2}, 32);
    layout.validate(p, 32);
    EXPECT_EQ(layout.address(2), 0u);
    EXPECT_LT(layout.address(2), layout.address(0));
    EXPECT_LT(layout.address(0), layout.address(1));
}

TEST(Layout, FromOrderRejectsDuplicates)
{
    const Program p = threeProcs();
    EXPECT_THROW(Layout::fromOrder(p, {0, 0}, 32), TopoError);
}

TEST(Layout, UnassignedAddressThrows)
{
    Layout layout(2);
    EXPECT_FALSE(layout.complete());
    EXPECT_THROW(layout.address(0), TopoError);
    layout.setAddress(0, 64);
    EXPECT_TRUE(layout.assigned(0));
    EXPECT_EQ(layout.address(0), 64u);
}

TEST(Layout, ValidateDetectsOverlap)
{
    const Program p = threeProcs();
    Layout layout(3);
    layout.setAddress(0, 0);
    layout.setAddress(1, 32); // inside procedure 0 (100 bytes)
    layout.setAddress(2, 512);
    EXPECT_THROW(layout.validate(p, 32), TopoError);
}

TEST(Layout, ValidateDetectsMisalignment)
{
    const Program p = threeProcs();
    Layout layout(3);
    layout.setAddress(0, 0);
    layout.setAddress(1, 130);
    layout.setAddress(2, 512);
    EXPECT_THROW(layout.validate(p, 32), TopoError);
}

TEST(Layout, OrderByAddress)
{
    const Program p = threeProcs();
    Layout layout(3);
    layout.setAddress(0, 512);
    layout.setAddress(1, 0);
    layout.setAddress(2, 128);
    const std::vector<ProcId> order = layout.orderByAddress();
    EXPECT_EQ(order, (std::vector<ProcId>{1, 2, 0}));
}

TEST(Layout, ExtentIsEndOfLastProc)
{
    const Program p = threeProcs();
    const Layout layout = Layout::defaultOrder(p, 32);
    EXPECT_EQ(layout.extent(p), 160u + 70u);
}

TEST(Layout, WithPaddingShiftsCumulatively)
{
    const Program p = threeProcs();
    const Layout base = Layout::defaultOrder(p, 32);
    const Layout padded = Layout::withPadding(base, p, 32, 32);
    padded.validate(p, 32);
    EXPECT_EQ(padded.address(0), base.address(0));
    EXPECT_EQ(padded.address(1), base.address(1) + 32);
    EXPECT_EQ(padded.address(2), base.address(2) + 64);
}

/** Parameterised sweep: cache-offset realisation honours targets. */
class FromCacheOffsetsTest
    : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(FromCacheOffsetsTest, AchievesTargetOffsets)
{
    const std::uint32_t cache_lines = GetParam();
    const Program p = threeProcs();
    const std::vector<std::uint32_t> targets{
        5 % cache_lines, 2 % cache_lines, 7 % cache_lines};
    const Layout layout =
        Layout::fromCacheOffsets(p, {0, 1, 2}, targets, 32, cache_lines);
    layout.validate(p, 32);
    for (ProcId id = 0; id < 3; ++id) {
        EXPECT_EQ(layout.startLine(id, 32) % cache_lines,
                  targets[id])
            << "cache_lines=" << cache_lines << " proc=" << id;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FromCacheOffsetsTest,
                         ::testing::Values(3u, 8u, 16u, 256u, 1024u));

TEST(Layout, FromCacheOffsetsRequiresFullOrder)
{
    const Program p = threeProcs();
    EXPECT_THROW(
        Layout::fromCacheOffsets(p, {0, 1}, {0, 0, 0}, 32, 8),
        TopoError);
}

TEST(LayoutScript, LinkerScriptMentionsAllProcsAndGaps)
{
    const Program p = threeProcs();
    const Layout layout =
        Layout::fromCacheOffsets(p, {0, 1, 2}, {0, 6, 0}, 32, 8);
    std::ostringstream oss;
    writeLinkerScript(oss, p, layout, 32);
    const std::string out = oss.str();
    EXPECT_NE(out.find("*(.text.a)"), std::string::npos);
    EXPECT_NE(out.find("*(.text.b)"), std::string::npos);
    EXPECT_NE(out.find("*(.text.c)"), std::string::npos);
    EXPECT_NE(out.find("gap"), std::string::npos);
}

TEST(LayoutScript, PlacementMapListsCacheLines)
{
    const Program p = threeProcs();
    const Layout layout = Layout::defaultOrder(p, 32);
    std::ostringstream oss;
    writePlacementMap(oss, p, layout, 32, 8);
    EXPECT_NE(oss.str().find("cache_line"), std::string::npos);
    EXPECT_NE(oss.str().find(" a"), std::string::npos);
}

} // namespace
} // namespace topo
