/**
 * @file
 * Tests for the representative-interval sampler (DESIGN.md §15):
 * deterministic k-means, plan construction, the weighted estimator's
 * exactness anchors, and the end-to-end error bound on the paper
 * suite.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "topo/cache/simulate.hh"
#include "topo/exec/exec.hh"
#include "topo/program/layout.hh"
#include "topo/sampling/estimator.hh"
#include "topo/sampling/kmeans.hh"
#include "topo/sampling/sample_plan.hh"
#include "topo/sampling/window_features.hh"
#include "topo/util/error.hh"
#include "topo/workload/paper_suite.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{
namespace
{

/** Restore the previous jobs count on scope exit. */
struct JobsGuard
{
    int saved;
    JobsGuard() : saved(execJobs()) {}
    ~JobsGuard() { setExecJobs(saved); }
};

/** Events [begin, end) of @p trace as a standalone trace. */
Trace
subTrace(const Trace &trace, std::size_t begin, std::size_t end)
{
    Trace out(trace.procCount());
    for (std::size_t i = begin; i < end; ++i) {
        const TraceEvent &e = trace.events()[i];
        out.append(e.proc, e.offset, e.length);
    }
    return out;
}

/**
 * Two-phase workload: phase 1 alternates two procedures that conflict
 * in a direct-mapped cache (every fetch misses), phase 2 hammers a
 * third procedure (everything after the cold fetch hits). Window
 * boundaries align with the phase boundary.
 */
struct TwoPhase
{
    Program program{"two-phase"};
    ProcId a, b, c, pad;
    Trace trace{0};
    CacheConfig cache;

    TwoPhase(std::size_t phase_runs)
    {
        cache.size_bytes = 1024;
        cache.line_bytes = 64;
        cache.associativity = 1;
        a = program.addProcedure("a", 64);
        b = program.addProcedure("b", 64);
        c = program.addProcedure("c", 64);
        // Pad so a and b map to the same set in the 16-line cache.
        pad = program.addProcedure("pad", 15 * 64);
        trace = Trace(program.procCount());
        for (std::size_t i = 0; i < phase_runs; ++i)
            trace.append(i % 2 == 0 ? a : b, 0, 64);
        for (std::size_t i = 0; i < phase_runs; ++i)
            trace.append(c, 0, 64);
        trace.validate(program);
    }

    Layout
    layout() const
    {
        // Emit the pad procedure between a and b so they share a set:
        // a at line 0, pad covers lines 1..15, b at line 16 == set 0.
        return Layout::fromOrder(program, {a, pad, b, c},
                                 cache.line_bytes);
    }
};

/**
 * A trace of @p window_count windows where window w runs only
 * procedure w — every window's feature vector is distinct, so a
 * k == windows clustering yields singleton clusters.
 */
struct DistinctWindows
{
    Program program{"distinct"};
    Trace trace{0};
    CacheConfig cache;
    std::uint64_t window_runs;

    DistinctWindows(std::size_t window_count, std::uint64_t runs)
        : window_runs(runs)
    {
        for (std::size_t w = 0; w < window_count; ++w)
            program.addProcedure("p" + std::to_string(w), 3 * 32);
        trace = Trace(program.procCount());
        for (std::size_t w = 0; w < window_count; ++w)
            for (std::uint64_t r = 0; r < runs; ++r)
                trace.append(static_cast<ProcId>(w), 0, 3 * 32);
        trace.validate(program);
    }
};

WindowFeatureMatrix
benchmarkFeatures(const char *name, double scale, std::uint64_t window,
                  TraceWindows *out_windows = nullptr)
{
    const BenchmarkCase bench = paperBenchmark(name, scale);
    const Trace trace = synthesizeTrace(bench.model, bench.train);
    const TraceWindows windows =
        sliceTraceWindows(bench.model.program, trace, window, 32);
    if (out_windows != nullptr)
        *out_windows = windows;
    return extractWindowFeatures(bench.model.program, trace, windows, 32);
}

TEST(KMeans, DeterministicAcrossJobsAndReruns)
{
    JobsGuard guard;
    const WindowFeatureMatrix features =
        benchmarkFeatures("m88ksim", 0.02, 256);
    ASSERT_GE(features.windows, 8u);
    KMeansOptions opts;
    opts.seed = 7;

    setExecJobs(1);
    const KMeansResult serial = kmeansCluster(features, 4, opts);
    const KMeansResult serial_again = kmeansCluster(features, 4, opts);
    setExecJobs(4);
    const KMeansResult parallel = kmeansCluster(features, 4, opts);

    EXPECT_EQ(serial.assignment, serial_again.assignment);
    EXPECT_EQ(serial.assignment, parallel.assignment);
    EXPECT_EQ(serial.cluster_size, parallel.cluster_size);
    // Bit-identical FP state, not just equal clusterings.
    EXPECT_EQ(serial.centroids, parallel.centroids);
    EXPECT_EQ(serial.inertia, parallel.inertia);
    EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST(KMeans, AutoChoosesDeterministically)
{
    JobsGuard guard;
    const WindowFeatureMatrix features =
        benchmarkFeatures("m88ksim", 0.02, 256);
    setExecJobs(1);
    const KMeansResult serial = kmeansAuto(features, 8, KMeansOptions{});
    setExecJobs(4);
    const KMeansResult parallel = kmeansAuto(features, 8, KMeansOptions{});
    EXPECT_GE(serial.k, 1u);
    EXPECT_EQ(serial.k, parallel.k);
    EXPECT_EQ(serial.assignment, parallel.assignment);
    EXPECT_EQ(serial.inertia, parallel.inertia);
}

TEST(KMeans, ExactKEqualsWindowsGivesSingletons)
{
    const WindowFeatureMatrix features =
        benchmarkFeatures("perl", 0.02, 512);
    const KMeansResult result =
        kmeansCluster(features, features.windows, KMeansOptions{});
    ASSERT_EQ(result.k, features.windows);
    // Every non-empty cluster holds at most one window and the fit is
    // perfect when windows are distinct; inertia must be ~0 anyway.
    EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(SamplePlan, DegeneratePlanIsOneExactSegment)
{
    const DistinctWindows dw(8, 512);
    SamplingOptions opts;
    opts.mode = SampleMode::kSimpoint;
    opts.window_runs = dw.window_runs;
    opts.k = 8; // == window count: every window its own cluster
    const SamplePlan plan =
        buildSamplePlan(dw.program, dw.trace, dw.cache.line_bytes, opts);
    ASSERT_TRUE(plan.active());
    EXPECT_EQ(plan.window_count, 8u);
    EXPECT_EQ(plan.selected.size(), 8u);
    // All scales 1.0 and contiguous, so everything merges into one
    // whole-trace segment with no warm-up.
    ASSERT_EQ(plan.segments.size(), 1u);
    EXPECT_EQ(plan.segments[0].warm_begin, 0u);
    EXPECT_EQ(plan.segments[0].begin, 0u);
    EXPECT_EQ(plan.segments[0].end, dw.trace.size());
    EXPECT_EQ(plan.segments[0].scale, 1.0);
    EXPECT_EQ(plan.replayed_events, dw.trace.size());
}

TEST(Estimator, DegeneratePlanBitIdenticalToExact)
{
    const DistinctWindows dw(8, 512);
    SamplingOptions opts;
    opts.mode = SampleMode::kSimpoint;
    opts.window_runs = dw.window_runs;
    opts.k = 8;
    const SamplePlan plan =
        buildSamplePlan(dw.program, dw.trace, dw.cache.line_bytes, opts);
    const Layout layout =
        Layout::defaultOrder(dw.program, dw.cache.line_bytes);
    const SampledSimResult est = estimateLayout(
        dw.program, layout, dw.trace, plan, dw.cache, /*attribute=*/true);
    const FetchStream stream(dw.program, dw.trace, dw.cache.line_bytes);
    const SimResult exact = simulateLayout(dw.program, layout, stream,
                                           dw.cache, /*attribute=*/true);
    EXPECT_EQ(est.accesses, exact.accesses);
    // Scale 1.0, single cold segment: the weighted sum is one exact
    // integer count — require bit equality, not closeness.
    EXPECT_EQ(est.est_misses, static_cast<double>(exact.misses));
    ASSERT_EQ(est.est_misses_by_proc.size(), exact.misses_by_proc.size());
    for (std::size_t p = 0; p < exact.misses_by_proc.size(); ++p)
        EXPECT_EQ(est.est_misses_by_proc[p],
                  static_cast<double>(exact.misses_by_proc[p]))
            << "proc " << p;
}

TEST(Estimator, MatchesHandComputedWeightedSum)
{
    // Two clearly separated phases: the estimator's answer must equal
    // the weighted subtract-trick sum computed independently here, and
    // the analytic miss rate (phase 1 all-miss, phase 2 all-hit) pins
    // the estimate near 0.5.
    const TwoPhase tp(4096);
    SamplingOptions opts;
    opts.mode = SampleMode::kSimpoint;
    opts.window_runs = 1024;
    opts.k = 2;
    const SamplePlan plan =
        buildSamplePlan(tp.program, tp.trace, tp.cache.line_bytes, opts);
    ASSERT_EQ(plan.cluster_count, 2u);
    const Layout layout = tp.layout();
    const SampledSimResult est = estimateLayout(
        tp.program, layout, tp.trace, plan, tp.cache, /*attribute=*/false);

    double expected = 0.0;
    for (const SampleSegment &seg : plan.segments) {
        const Trace full = subTrace(tp.trace, seg.warm_begin, seg.end);
        const FetchStream full_stream(tp.program, full,
                                      tp.cache.line_bytes);
        std::uint64_t misses =
            simulateLayout(tp.program, layout, full_stream, tp.cache)
                .misses;
        if (seg.warm_begin < seg.begin) {
            const Trace warm =
                subTrace(tp.trace, seg.warm_begin, seg.begin);
            const FetchStream warm_stream(tp.program, warm,
                                          tp.cache.line_bytes);
            misses -= simulateLayout(tp.program, layout, warm_stream,
                                     tp.cache)
                          .misses;
        }
        expected += seg.scale * static_cast<double>(misses);
    }
    EXPECT_EQ(est.est_misses, expected);

    // Phase 1 misses on every fetch, phase 2 only on the cold one.
    EXPECT_NEAR(est.estMissRate(), 0.5, 0.02);
    const FetchStream stream(tp.program, tp.trace, tp.cache.line_bytes);
    const SimResult exact =
        simulateLayout(tp.program, layout, stream, tp.cache);
    EXPECT_NEAR(est.estMissRate(), exact.missRate(), 0.02);
}

TEST(Estimator, JobsInvariant)
{
    JobsGuard guard;
    const BenchmarkCase bench = paperBenchmark("vortex", 0.02);
    const Trace trace = synthesizeTrace(bench.model, bench.train);
    const CacheConfig cache;
    SamplingOptions opts;
    opts.mode = SampleMode::kSimpoint;
    opts.window_runs = 512;
    const SamplePlan plan = buildSamplePlan(bench.model.program, trace,
                                            cache.line_bytes,
                                            opts);
    const Layout layout = Layout::defaultOrder(
        bench.model.program, cache.line_bytes);

    setExecJobs(1);
    const SamplePlan plan_serial = buildSamplePlan(
        bench.model.program, trace, cache.line_bytes, opts);
    const SampledSimResult serial =
        estimateLayout(bench.model.program, layout, trace, plan,
                       cache, /*attribute=*/true);
    setExecJobs(4);
    const SamplePlan plan_parallel = buildSamplePlan(
        bench.model.program, trace, cache.line_bytes, opts);
    const SampledSimResult parallel =
        estimateLayout(bench.model.program, layout, trace, plan,
                       cache, /*attribute=*/true);

    EXPECT_EQ(plan_serial.selected, plan_parallel.selected);
    ASSERT_EQ(plan_serial.segments.size(), plan_parallel.segments.size());
    for (std::size_t s = 0; s < plan_serial.segments.size(); ++s) {
        EXPECT_EQ(plan_serial.segments[s].begin,
                  plan_parallel.segments[s].begin);
        EXPECT_EQ(plan_serial.segments[s].scale,
                  plan_parallel.segments[s].scale);
    }
    EXPECT_EQ(serial.accesses, parallel.accesses);
    EXPECT_EQ(serial.est_misses, parallel.est_misses);
    EXPECT_EQ(serial.est_misses_by_proc, parallel.est_misses_by_proc);
}

TEST(Estimator, ErrorBoundOnPaperSuite)
{
    // The acceptance bound of DESIGN.md §15: the sampled miss-rate
    // estimate stays within 2% absolute of the exact replay.
    for (const char *name : {"m88ksim", "gcc"}) {
        const BenchmarkCase bench = paperBenchmark(name, 0.05);
        const Trace trace = synthesizeTrace(bench.model, bench.test);
        const CacheConfig cache;
        SamplingOptions opts;
        opts.mode = SampleMode::kSimpoint;
        const SamplePlan plan = buildSamplePlan(
            bench.model.program, trace, cache.line_bytes,
            opts);
        EXPECT_LT(plan.replayedFraction(), 0.5) << name;
        const Layout layout = Layout::defaultOrder(
            bench.model.program, cache.line_bytes);
        const SampledSimResult est =
            estimateLayout(bench.model.program, layout, trace, plan,
                           cache, /*attribute=*/false);
        const FetchStream stream(bench.model.program, trace,
                                 cache.line_bytes);
        const SimResult exact = simulateLayout(bench.model.program,
                                               layout, stream,
                                               cache);
        EXPECT_EQ(est.accesses, exact.accesses) << name;
        EXPECT_NEAR(est.estMissRate(), exact.missRate(), 0.02) << name;
    }
}

TEST(SamplePlan, TinyTraceFallsBackToExact)
{
    const TwoPhase tp(64);
    SamplingOptions opts;
    opts.mode = SampleMode::kSimpoint;
    opts.window_runs = 100000; // one window covers everything
    const SamplePlan plan =
        buildSamplePlan(tp.program, tp.trace, tp.cache.line_bytes, opts);
    ASSERT_EQ(plan.segments.size(), 1u);
    EXPECT_EQ(plan.segments[0].begin, 0u);
    EXPECT_EQ(plan.segments[0].end, tp.trace.size());
    EXPECT_EQ(plan.segments[0].scale, 1.0);
}

} // namespace
} // namespace topo
