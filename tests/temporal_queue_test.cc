/**
 * @file
 * Tests for the ordered set Q of Section 3: reference semantics,
 * between-lists, byte-budget eviction, and randomised invariants.
 */

#include <gtest/gtest.h>

#include "topo/profile/temporal_queue.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

TemporalQueue
makeQueue(std::uint64_t budget, std::size_t blocks = 8,
          std::uint32_t size = 10)
{
    return TemporalQueue(std::vector<std::uint32_t>(blocks, size), budget);
}

TEST(TemporalQueue, FirstReferenceHasNoPrevious)
{
    TemporalQueue q = makeQueue(1000);
    std::vector<BlockId> between;
    EXPECT_FALSE(q.reference(0, between));
    EXPECT_TRUE(between.empty());
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.residentBytes(), 10u);
}

TEST(TemporalQueue, BetweenListsAreExact)
{
    TemporalQueue q = makeQueue(1000);
    std::vector<BlockId> between;
    q.reference(0, between);
    q.reference(1, between);
    q.reference(2, between);
    q.reference(3, between);
    EXPECT_TRUE(q.reference(1, between));
    EXPECT_EQ(between, (std::vector<BlockId>{2, 3}));
    // 1 moved to the most recent end; order is now 0,2,3,1.
    EXPECT_EQ(q.contents(), (std::vector<BlockId>{0, 2, 3, 1}));
    EXPECT_EQ(q.size(), 4u);
}

TEST(TemporalQueue, ImmediateRepeatHasEmptyBetween)
{
    TemporalQueue q = makeQueue(1000);
    std::vector<BlockId> between;
    q.reference(0, between);
    EXPECT_TRUE(q.reference(0, between));
    EXPECT_TRUE(between.empty());
    EXPECT_EQ(q.size(), 1u);
}

TEST(TemporalQueue, EvictionKeepsBudgetWorth)
{
    // Budget 35 with 10-byte blocks: after inserting a fresh block the
    // oldest entries are dropped while the remainder stays >= 35 bytes,
    // i.e. exactly 4 blocks survive.
    TemporalQueue q = makeQueue(35);
    std::vector<BlockId> between;
    for (BlockId id = 0; id < 6; ++id)
        q.reference(id, between);
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.contents(), (std::vector<BlockId>{2, 3, 4, 5}));
    EXPECT_EQ(q.residentBytes(), 40u);
}

TEST(TemporalQueue, NoEvictionOnRepeatReference)
{
    // Section 3: the trim step happens only when no previous reference
    // exists.
    TemporalQueue q = makeQueue(35);
    std::vector<BlockId> between;
    for (BlockId id = 0; id < 4; ++id)
        q.reference(id, between);
    EXPECT_EQ(q.size(), 4u);
    q.reference(0, between); // repeat: no trim even though at budget
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.contents(), (std::vector<BlockId>{1, 2, 3, 0}));
}

TEST(TemporalQueue, EvictedBlockForgotten)
{
    TemporalQueue q = makeQueue(25); // keeps >= 25 bytes => 3 blocks
    std::vector<BlockId> between;
    for (BlockId id = 0; id < 5; ++id)
        q.reference(id, between);
    EXPECT_FALSE(q.contains(0));
    // Re-referencing an evicted block counts as fresh.
    EXPECT_FALSE(q.reference(0, between));
}

TEST(TemporalQueue, ClearEmpties)
{
    TemporalQueue q = makeQueue(1000);
    std::vector<BlockId> between;
    q.reference(0, between);
    q.reference(1, between);
    q.clear();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.residentBytes(), 0u);
    EXPECT_EQ(q.oldest(), TemporalQueue::kNone);
    EXPECT_FALSE(q.reference(0, between));
}

TEST(TemporalQueue, RejectsBadInput)
{
    EXPECT_THROW(makeQueue(0), TopoError);
    TemporalQueue q = makeQueue(100, 4);
    std::vector<BlockId> between;
    EXPECT_THROW(q.reference(4, between), TopoError);
}

TEST(TemporalQueue, VariableSizesRespectBudget)
{
    TemporalQueue q(std::vector<std::uint32_t>{100, 1, 1, 1}, 4);
    std::vector<BlockId> between;
    q.reference(0, between); // 100 bytes, alone
    q.reference(1, between); // big block evicted? 101-100=1 < 4: stays
    EXPECT_EQ(q.size(), 2u);
    q.reference(2, between); // 102 - 100 = 2 < 4: stays
    q.reference(3, between); // 103 - 100 = 3 < 4: stays
    EXPECT_EQ(q.size(), 4u);
}

/** Randomised invariants across budgets. */
class TemporalQueueProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TemporalQueueProperty, InvariantsHoldUnderRandomTraffic)
{
    const std::uint64_t budget = GetParam();
    const std::size_t blocks = 32;
    TemporalQueue q(std::vector<std::uint32_t>(blocks, 16), budget);
    Rng rng(GetParam() * 7 + 1);
    std::vector<BlockId> between;
    for (int step = 0; step < 5000; ++step) {
        const BlockId id = static_cast<BlockId>(rng.nextBelow(blocks));
        const bool had_prev = q.contains(id);
        const bool reported = q.reference(id, between);
        EXPECT_EQ(had_prev, reported);
        // Newest is always the last reference.
        EXPECT_EQ(q.newest(), id);
        // Every block appears at most once.
        const auto contents = q.contents();
        std::vector<bool> seen(blocks, false);
        std::uint64_t bytes = 0;
        for (BlockId b : contents) {
            EXPECT_FALSE(seen[b]);
            seen[b] = true;
            bytes += 16;
        }
        EXPECT_EQ(bytes, q.residentBytes());
        // Removing the oldest entry would drop below the budget
        // (unless the queue holds a single block).
        if (q.size() > 1) {
            EXPECT_LT(q.residentBytes() - 16, budget + 16);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, TemporalQueueProperty,
                         ::testing::Values(16u, 64u, 128u, 400u, 100000u));

} // namespace
} // namespace topo
