/**
 * @file
 * Tests for the binary trace format: round trips, compactness,
 * corruption handling, and format auto-detection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_io.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

Trace
randomTrace(std::size_t procs, std::size_t runs, std::uint64_t seed)
{
    Trace trace(procs);
    Rng rng(seed);
    for (std::size_t i = 0; i < runs; ++i) {
        const ProcId proc = static_cast<ProcId>(rng.nextBelow(procs));
        const std::uint32_t offset =
            static_cast<std::uint32_t>(rng.nextBelow(4096));
        const std::uint32_t length =
            1 + static_cast<std::uint32_t>(rng.nextBelow(512));
        trace.append(proc, offset, length);
    }
    return trace;
}

TEST(BinaryTrace, RoundTrip)
{
    const Trace trace = randomTrace(50, 5000, 1);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    ASSERT_EQ(back.size(), trace.size());
    EXPECT_EQ(back.procCount(), trace.procCount());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
}

TEST(BinaryTrace, EmptyTraceRoundTrip)
{
    const Trace trace(7);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    EXPECT_EQ(back.size(), 0u);
    EXPECT_EQ(back.procCount(), 7u);
}

TEST(BinaryTrace, MuchSmallerThanText)
{
    // Locality-heavy trace (like real programs): the delta coding
    // should put the binary form well under half of the text form.
    Trace trace(100);
    Rng rng(2);
    ProcId current = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.2))
            current = static_cast<ProcId>(rng.nextBelow(100));
        trace.append(current, 0, 64);
    }
    std::stringstream text, binary;
    writeTrace(text, trace);
    writeBinaryTrace(binary, trace);
    EXPECT_LT(binary.str().size(), text.str().size() / 2);
}

TEST(BinaryTrace, DetectsCorruption)
{
    {
        std::stringstream ss("nope");
        EXPECT_THROW(readBinaryTrace(ss), TopoError);
    }
    {
        // Valid header claiming runs that are not present.
        const Trace trace = randomTrace(4, 100, 3);
        std::stringstream ss;
        writeBinaryTrace(ss, trace);
        std::string data = ss.str();
        data.resize(data.size() / 2); // truncate
        std::stringstream cut(data);
        EXPECT_THROW(readBinaryTrace(cut), TopoError);
    }
    {
        // Out-of-range procedure delta.
        std::stringstream ss;
        ss.write("TOPB", 4);
        ss.put(1);  // version
        ss.put(2);  // proc_count
        ss.put(1);  // run_count
        ss.put(8);  // zigzag(4): proc 4 of 2
        ss.put(0);  // offset
        ss.put(1);  // length
        EXPECT_THROW(readBinaryTrace(ss), TopoError);
    }
}

TEST(BinaryTrace, FileRoundTripAndAutoDetect)
{
    const Trace trace = randomTrace(20, 1000, 4);
    const std::string bin_path = "/tmp/topo_trace_binary_test.tpb";
    const std::string txt_path = "/tmp/topo_trace_binary_test.txt";
    saveBinaryTrace(bin_path, trace);
    saveTrace(txt_path, trace);

    const Trace from_bin = loadAnyTrace(bin_path);
    const Trace from_txt = loadAnyTrace(txt_path);
    ASSERT_EQ(from_bin.size(), trace.size());
    ASSERT_EQ(from_txt.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 37) {
        EXPECT_EQ(from_bin.events()[i], trace.events()[i]);
        EXPECT_EQ(from_txt.events()[i], trace.events()[i]);
    }
    std::remove(bin_path.c_str());
    std::remove(txt_path.c_str());
    EXPECT_THROW(loadBinaryTrace("/nonexistent/x.tpb"), TopoError);
}

TEST(BinaryTrace, LargeIdsAndValues)
{
    // Exercise multi-byte varints.
    Trace trace(100000);
    trace.append(99999, 4000000000u, 1000000u);
    trace.append(0, 0, 1);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    EXPECT_EQ(back.events()[0].offset, 4000000000u);
    EXPECT_EQ(back.events()[0].length, 1000000u);
    EXPECT_EQ(back.events()[1].proc, 0u);
}

} // namespace
} // namespace topo
