/**
 * @file
 * Tests for the binary trace format: round trips, compactness,
 * corruption handling, and format auto-detection.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "topo/obs/metrics.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_io.hh"
#include "topo/trace/trace_mmap.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

Trace
randomTrace(std::size_t procs, std::size_t runs, std::uint64_t seed)
{
    Trace trace(procs);
    Rng rng(seed);
    for (std::size_t i = 0; i < runs; ++i) {
        const ProcId proc = static_cast<ProcId>(rng.nextBelow(procs));
        const std::uint32_t offset =
            static_cast<std::uint32_t>(rng.nextBelow(4096));
        const std::uint32_t length =
            1 + static_cast<std::uint32_t>(rng.nextBelow(512));
        trace.append(proc, offset, length);
    }
    return trace;
}

TEST(BinaryTrace, RoundTrip)
{
    const Trace trace = randomTrace(50, 5000, 1);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    ASSERT_EQ(back.size(), trace.size());
    EXPECT_EQ(back.procCount(), trace.procCount());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
}

TEST(BinaryTrace, EmptyTraceRoundTrip)
{
    const Trace trace(7);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    EXPECT_EQ(back.size(), 0u);
    EXPECT_EQ(back.procCount(), 7u);
}

TEST(BinaryTrace, MuchSmallerThanText)
{
    // Locality-heavy trace (like real programs): the delta coding
    // should put the binary form well under half of the text form.
    Trace trace(100);
    Rng rng(2);
    ProcId current = 0;
    for (int i = 0; i < 20000; ++i) {
        if (rng.nextBool(0.2))
            current = static_cast<ProcId>(rng.nextBelow(100));
        trace.append(current, 0, 64);
    }
    std::stringstream text, binary;
    writeTrace(text, trace);
    writeBinaryTrace(binary, trace);
    EXPECT_LT(binary.str().size(), text.str().size() / 2);
}

TEST(BinaryTrace, DetectsCorruption)
{
    {
        std::stringstream ss("nope");
        EXPECT_THROW(readBinaryTrace(ss), TopoError);
    }
    {
        // Valid header claiming runs that are not present.
        const Trace trace = randomTrace(4, 100, 3);
        std::stringstream ss;
        writeBinaryTrace(ss, trace);
        std::string data = ss.str();
        data.resize(data.size() / 2); // truncate
        std::stringstream cut(data);
        EXPECT_THROW(readBinaryTrace(cut), TopoError);
    }
    {
        // Out-of-range procedure delta.
        std::stringstream ss;
        ss.write("TOPB", 4);
        ss.put(1);  // version
        ss.put(2);  // proc_count
        ss.put(1);  // run_count
        ss.put(8);  // zigzag(4): proc 4 of 2
        ss.put(0);  // offset
        ss.put(1);  // length
        EXPECT_THROW(readBinaryTrace(ss), TopoError);
    }
}

TEST(BinaryTrace, FileRoundTripAndAutoDetect)
{
    const Trace trace = randomTrace(20, 1000, 4);
    const std::string bin_path = "/tmp/topo_trace_binary_test.tpb";
    const std::string txt_path = "/tmp/topo_trace_binary_test.txt";
    saveBinaryTrace(bin_path, trace);
    saveTrace(txt_path, trace);

    const Trace from_bin = loadAnyTrace(bin_path);
    const Trace from_txt = loadAnyTrace(txt_path);
    ASSERT_EQ(from_bin.size(), trace.size());
    ASSERT_EQ(from_txt.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 37) {
        EXPECT_EQ(from_bin.events()[i], trace.events()[i]);
        EXPECT_EQ(from_txt.events()[i], trace.events()[i]);
    }
    std::remove(bin_path.c_str());
    std::remove(txt_path.c_str());
    EXPECT_THROW(loadBinaryTrace("/nonexistent/x.tpb"), TopoError);
}

TEST(MmapTrace, MappedAndStreamLoadsAgree)
{
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";
    const Trace trace = randomTrace(30, 3000, 7);
    const std::string path = "/tmp/topo_trace_mmap_test.tpb";
    saveBinaryTrace(path, trace);

    // Private registry so the counter assertions see only this test.
    MetricsRegistry metrics;
    MetricsScope scope(metrics);

    TraceReadOptions mapped_opts;
    mapped_opts.mmap = TraceMmapMode::kOn;
    TraceReadOptions stream_opts;
    stream_opts.mmap = TraceMmapMode::kOff;

    const Trace mapped = loadBinaryTrace(path, mapped_opts);
    EXPECT_EQ(metrics.counter("trace.mmap_loads").value(), 1u);
    const Trace streamed = loadBinaryTrace(path, stream_opts);
    EXPECT_EQ(metrics.counter("trace.mmap_loads").value(), 1u);

    ASSERT_EQ(mapped.size(), trace.size());
    ASSERT_EQ(streamed.size(), trace.size());
    EXPECT_EQ(mapped.procCount(), streamed.procCount());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(mapped.events()[i], trace.events()[i]);
        ASSERT_EQ(streamed.events()[i], trace.events()[i]);
    }

    // The auto-detecting loader takes the mapped path for binary magic.
    const Trace any = loadAnyTrace(path, mapped_opts);
    EXPECT_EQ(metrics.counter("trace.mmap_loads").value(), 2u);
    EXPECT_EQ(any.size(), trace.size());
    std::remove(path.c_str());
}

TEST(MmapTrace, TextTracesFallBackToTheStreamParser)
{
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";
    const Trace trace = randomTrace(10, 200, 8);
    const std::string path = "/tmp/topo_trace_mmap_test.txt";
    saveTrace(path, trace);

    MetricsRegistry metrics;
    MetricsScope scope(metrics);
    TraceReadOptions ropts;
    ropts.mmap = TraceMmapMode::kOn;
    const Trace back = loadAnyTrace(path, ropts);
    // The magic sniff happens on the mapping, but the line-oriented
    // parse itself is the stream reader's: no mapped load recorded.
    EXPECT_EQ(metrics.counter("trace.mmap_loads").value(), 0u);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 17)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
    std::remove(path.c_str());
}

TEST(MmapTrace, EligibilityMatrixAndEnvKillSwitch)
{
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";

    TraceReadOptions ropts;
    ropts.mmap = TraceMmapMode::kOff;
    EXPECT_FALSE(traceMmapEligible(ropts));
    ropts.mmap = TraceMmapMode::kOn;
    EXPECT_TRUE(traceMmapEligible(ropts));
    ropts.mmap = TraceMmapMode::kAuto;
    EXPECT_TRUE(traceMmapEligible(ropts));

    // TOPO_TRACE_MMAP=0/off is the operational kill-switch: it turns
    // kAuto into the stream path but never overrides an explicit kOn.
    ::setenv("TOPO_TRACE_MMAP", "0", 1);
    EXPECT_FALSE(traceMmapEligible(ropts));
    ::setenv("TOPO_TRACE_MMAP", "off", 1);
    EXPECT_FALSE(traceMmapEligible(ropts));
    ropts.mmap = TraceMmapMode::kOn;
    EXPECT_TRUE(traceMmapEligible(ropts));
    ::setenv("TOPO_TRACE_MMAP", "1", 1);
    ropts.mmap = TraceMmapMode::kAuto;
    EXPECT_TRUE(traceMmapEligible(ropts));
    ::unsetenv("TOPO_TRACE_MMAP");

    // End-to-end: the kill-switch still yields a correct (streamed)
    // load, with no mapped-load counter tick.
    const Trace trace = randomTrace(6, 100, 9);
    const std::string path = "/tmp/topo_trace_mmap_env.tpb";
    saveBinaryTrace(path, trace);
    MetricsRegistry metrics;
    MetricsScope scope(metrics);
    ::setenv("TOPO_TRACE_MMAP", "0", 1);
    const Trace back = loadBinaryTrace(path, ropts);
    ::unsetenv("TOPO_TRACE_MMAP");
    EXPECT_EQ(metrics.counter("trace.mmap_loads").value(), 0u);
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(back.events()[i], trace.events()[i]);
    std::remove(path.c_str());
}

TEST(MmapTrace, MapFailureFallsBackToTheStreamError)
{
    // A missing file must produce the stream reader's canonical open
    // error even when the mapped path is requested.
    TraceReadOptions ropts;
    ropts.mmap = TraceMmapMode::kOn;
    EXPECT_THROW(loadBinaryTrace("/nonexistent/x.tpb", ropts),
                 TopoError);
    EXPECT_FALSE(
        MappedFile::tryMap("/nonexistent/x.tpb").has_value());

    if (!mmapSupported())
        return;
    // An empty file maps (zero-length) and fails identically to the
    // stream reader: too short for any magic.
    const std::string path = "/tmp/topo_trace_mmap_empty.tpb";
    { std::ofstream os(path, std::ios::binary); }
    std::optional<MappedFile> map = MappedFile::tryMap(path);
    ASSERT_TRUE(map.has_value());
    EXPECT_EQ(map->size(), 0u);
    EXPECT_THROW(loadBinaryTrace(path, ropts), TopoError);
    TraceReadOptions stream_opts;
    stream_opts.mmap = TraceMmapMode::kOff;
    EXPECT_THROW(loadBinaryTrace(path, stream_opts), TopoError);
    std::remove(path.c_str());
}

TEST(BinaryTrace, LargeIdsAndValues)
{
    // Exercise multi-byte varints.
    Trace trace(100000);
    trace.append(99999, 4000000000u, 1000000u);
    trace.append(0, 0, 1);
    std::stringstream ss;
    writeBinaryTrace(ss, trace);
    const Trace back = readBinaryTrace(ss);
    EXPECT_EQ(back.events()[0].offset, 4000000000u);
    EXPECT_EQ(back.events()[0].length, 1000000u);
    EXPECT_EQ(back.events()[1].proc, 0u);
}

} // namespace
} // namespace topo
