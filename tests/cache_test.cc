/**
 * @file
 * Unit and property tests for the cache simulators and the layout
 * miss-rate driver.
 */

#include <gtest/gtest.h>

#include "topo/cache/cache_config.hh"
#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/cache/simulate.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

TEST(CacheConfig, GeometryAccessors)
{
    const CacheConfig c = CacheConfig::paperDefault();
    c.validate();
    EXPECT_EQ(c.lineCount(), 256u);
    EXPECT_EQ(c.setCount(), 256u);
    EXPECT_EQ(c.describe(), "8KB direct-mapped, 32B lines");
    const CacheConfig two = CacheConfig::paperTwoWay();
    EXPECT_EQ(two.setCount(), 128u);
    EXPECT_NE(two.describe().find("2-way"), std::string::npos);
}

TEST(CacheConfig, ValidationCatchesNonsense)
{
    CacheConfig c{100, 32, 1}; // size not a multiple of line
    EXPECT_THROW(c.validate(), TopoError);
    CacheConfig zero{0, 32, 1};
    EXPECT_THROW(zero.validate(), TopoError);
    CacheConfig assoc{8192, 32, 3}; // 256 lines not divisible by 3
    EXPECT_THROW(assoc.validate(), TopoError);
}

TEST(DirectMapped, HitAfterFill)
{
    DirectMappedCache cache(CacheConfig{128, 32, 1}); // 4 lines
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(4)); // maps to frame 0, evicts 0
    EXPECT_FALSE(cache.access(0));
}

TEST(DirectMapped, NonPowerOfTwoLineCount)
{
    DirectMappedCache cache(CacheConfig{96, 32, 1}); // 3 lines
    EXPECT_EQ(cache.mapIndex(0), 0u);
    EXPECT_EQ(cache.mapIndex(3), 0u);
    EXPECT_EQ(cache.mapIndex(4), 1u);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(3));
    EXPECT_FALSE(cache.access(0));
}

TEST(DirectMapped, ResetInvalidates)
{
    DirectMappedCache cache(CacheConfig{128, 32, 1});
    cache.access(7);
    EXPECT_TRUE(cache.access(7));
    cache.reset();
    EXPECT_FALSE(cache.access(7));
}

TEST(DirectMapped, RejectsAssociativeConfig)
{
    EXPECT_THROW(DirectMappedCache(CacheConfig{128, 32, 2}), TopoError);
}

TEST(SetAssociative, LruEvictionOrder)
{
    // 1 set, 2 ways.
    SetAssociativeCache cache(CacheConfig{64, 32, 2});
    EXPECT_FALSE(cache.access(10));
    EXPECT_FALSE(cache.access(20));
    EXPECT_TRUE(cache.access(10));  // 10 now MRU
    EXPECT_FALSE(cache.access(30)); // evicts 20 (LRU)
    EXPECT_TRUE(cache.access(10));
    EXPECT_FALSE(cache.access(20));
}

TEST(SetAssociative, TwoBlocksCoexistInOneSet)
{
    // The set-associative motivation of Section 6: one intervening
    // block does not evict p in a 2-way set.
    SetAssociativeCache cache(CacheConfig{64, 32, 2});
    cache.access(0);
    for (int i = 0; i < 10; ++i) {
        cache.access(100); // same set, other way
        EXPECT_TRUE(cache.access(0));
    }
}

TEST(SetAssociative, OneWayMatchesDirectMapped)
{
    const CacheConfig config{256, 32, 1};
    DirectMappedCache dm(config);
    SetAssociativeCache sa(config);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.nextBelow(64);
        EXPECT_EQ(dm.access(addr), sa.access(addr)) << "step " << i;
    }
}

/** Full-associativity property: working set <= ways never misses twice. */
TEST(SetAssociative, FullyAssociativeRetainsWorkingSet)
{
    // 4 ways, 1 set.
    SetAssociativeCache cache(CacheConfig{128, 32, 4});
    for (std::uint64_t a = 0; a < 4; ++a)
        cache.access(a);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(cache.access(rng.nextBelow(4)));
}

Program
twoProcs()
{
    Program p("sim");
    p.addProcedure("f", 128); // 4 lines
    p.addProcedure("g", 128); // 4 lines
    return p;
}

TEST(Simulate, NoConflictWhenFitsInCache)
{
    const Program p = twoProcs();
    const CacheConfig cache{512, 32, 1}; // 16 lines: both procs fit
    Trace t(2);
    for (int i = 0; i < 100; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    // Only the 8 cold misses.
    EXPECT_EQ(result.misses, 8u);
    EXPECT_EQ(result.accesses, stream.size());
}

TEST(Simulate, FullConflictWhenOverlapped)
{
    const Program p = twoProcs();
    const CacheConfig cache{128, 32, 1}; // 4 lines: f and g collide
    Trace t(2);
    for (int i = 0; i < 50; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    // Every access evicts the other procedure's line: all misses.
    EXPECT_EQ(result.misses, result.accesses);
}

TEST(Simulate, AttributionSumsToTotal)
{
    const Program p = twoProcs();
    const CacheConfig cache{128, 32, 1};
    Trace t(2);
    for (int i = 0; i < 20; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result =
        simulateLayout(p, layout, stream, cache, true);
    ASSERT_EQ(result.misses_by_proc.size(), 2u);
    EXPECT_EQ(result.misses_by_proc[0] + result.misses_by_proc[1],
              result.misses);
}

TEST(Simulate, LineSizeMismatchRejected)
{
    const Program p = twoProcs();
    Trace t(2);
    t.append(0, 0, 128);
    const FetchStream stream(p, t, 16);
    const Layout layout = Layout::defaultOrder(p, 16);
    EXPECT_THROW(
        simulateLayout(p, layout, stream, CacheConfig{8192, 32, 1}),
        TopoError);
}

TEST(Simulate, TwoWayToleratesOneConflicting)
{
    // f and g overlap fully; in a 2-way cache of the same total size
    // alternation does not thrash.
    const Program p = twoProcs();
    Trace t(2);
    for (int i = 0; i < 50; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout overlap =
        Layout::fromCacheOffsets(p, {0, 1}, {0, 0}, 32, 4);
    const SimResult dm =
        simulateLayout(p, overlap, stream, CacheConfig{128, 32, 1});
    const SimResult sa =
        simulateLayout(p, overlap, stream, CacheConfig{256, 32, 2});
    EXPECT_EQ(dm.misses, dm.accesses);
    EXPECT_EQ(sa.misses, 8u); // cold misses only
}

/** Property sweep: miss rate is within [0,1] for random traffic. */
class SimulatePropertyTest
    : public ::testing::TestWithParam<CacheConfig>
{
};

TEST_P(SimulatePropertyTest, MissRateBounded)
{
    const CacheConfig cache = GetParam();
    Program p("r");
    for (int i = 0; i < 10; ++i)
        p.addProcedure("p" + std::to_string(i), 64 + 32 * i);
    Trace t(p.procCount());
    Rng rng(321);
    for (int i = 0; i < 2000; ++i) {
        const ProcId id = static_cast<ProcId>(rng.nextBelow(10));
        t.append(id, 0, p.proc(id).size_bytes);
    }
    const FetchStream stream(p, t, cache.line_bytes);
    const Layout layout = Layout::defaultOrder(p, cache.line_bytes);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    EXPECT_GT(result.missRate(), 0.0);
    EXPECT_LE(result.missRate(), 1.0);
    EXPECT_EQ(result.accesses, stream.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SimulatePropertyTest,
    ::testing::Values(CacheConfig{1024, 32, 1}, CacheConfig{2048, 32, 2},
                      CacheConfig{4096, 64, 4}, CacheConfig{96, 32, 1},
                      CacheConfig{8192, 32, 1}));

// ---------------------------------------------------------------------
// Replacement-policy zoo.
// ---------------------------------------------------------------------

CacheConfig
policyConfig(std::uint32_t size_bytes, std::uint32_t assoc,
             ReplacementPolicy policy,
             std::uint64_t seed = kDefaultPolicySeed)
{
    CacheConfig config{size_bytes, 32, assoc};
    config.policy = policy;
    config.policy_seed = seed;
    return config;
}

TEST(PolicyConfig, DescribeNamesNonDefaultPolicies)
{
    // The default (LRU) description must stay byte-identical to the
    // pre-policy era: committed BENCH baselines embed it.
    const CacheConfig lru{8192, 32, 2};
    EXPECT_EQ(lru.describe(), "8KB 2-way set-associative, 32B lines");
    const CacheConfig srrip =
        policyConfig(8192, 2, ReplacementPolicy::kSrrip);
    EXPECT_EQ(srrip.describe(),
              "8KB 2-way set-associative, 32B lines, srrip replacement");
}

TEST(PolicyConfig, ParseRoundTripsAndRejectsUnknown)
{
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        EXPECT_EQ(parseReplacementPolicy(replacementPolicyName(policy)),
                  policy);
    }
    EXPECT_THROW(parseReplacementPolicy("mru"), TopoError);
}

TEST(PolicyConfig, PlruRequiresPowerOfTwoWays)
{
    // 12 ways divides 24 lines but is not a PLRU tree shape.
    const CacheConfig bad =
        policyConfig(768, 12, ReplacementPolicy::kPlru);
    EXPECT_THROW(bad.validate(), TopoError);
    const CacheConfig good =
        policyConfig(1024, 8, ReplacementPolicy::kPlru);
    good.validate();
}

TEST(PolicyBehavior, FifoEvictsOldestInsertionDespiteHits)
{
    // 1 set, 2 ways: a hit must not refresh FIFO insertion order.
    PolicyCache<FifoPolicy> cache(
        policyConfig(64, 2, ReplacementPolicy::kFifo));
    EXPECT_FALSE(cache.access(10));
    EXPECT_FALSE(cache.access(20));
    EXPECT_TRUE(cache.access(10));  // hit; 10 stays oldest
    EXPECT_FALSE(cache.access(30)); // evicts 10, not 20
    EXPECT_TRUE(cache.access(20));
    EXPECT_FALSE(cache.access(10));
}

TEST(PolicyBehavior, SrripSecondInsertEvictsFirst)
{
    // 1 set, 4 ways. Promote three residents to RRPV 0; a fresh
    // insert lands at the long-re-reference point (RRPV 2), so the
    // next insert's victim scan reaches it first — SRRIP sacrifices
    // its own most recent insertion where LRU would keep it.
    PolicyCache<SrripPolicy> cache(
        policyConfig(128, 4, ReplacementPolicy::kSrrip));
    for (std::uint64_t a = 0; a < 4; ++a)
        EXPECT_FALSE(cache.access(a));
    for (std::uint64_t a = 0; a < 3; ++a)
        EXPECT_TRUE(cache.access(a));
    EXPECT_FALSE(cache.access(100)); // evicts line 3 (RRPV 2)
    EXPECT_FALSE(cache.access(200)); // evicts line 100, not 0..2
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(1));
    EXPECT_TRUE(cache.access(2));
    EXPECT_FALSE(cache.access(100)); // was sacrificed for 200
}

TEST(PolicyBehavior, PlruProtectsMostRecentTouch)
{
    PolicyCache<TreePlruPolicy> cache(
        policyConfig(128, 4, ReplacementPolicy::kPlru));
    for (std::uint64_t a = 0; a < 4; ++a)
        EXPECT_FALSE(cache.access(a));
    EXPECT_TRUE(cache.access(2));   // tree now points away from way 2
    EXPECT_FALSE(cache.access(50)); // victim is on the other subtree
    EXPECT_TRUE(cache.access(2));
    EXPECT_TRUE(cache.access(50));
}

TEST(PolicyBehavior, RandomIsSeedDeterministic)
{
    const CacheConfig config =
        policyConfig(512, 4, ReplacementPolicy::kRandom, 1234);
    PolicyCache<RandomPolicy> a(config);
    PolicyCache<RandomPolicy> b(config);
    CacheConfig other = config;
    other.policy_seed = 99;
    PolicyCache<RandomPolicy> c(other);
    Rng rng(42);
    std::uint64_t disagreements = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.nextBelow(64);
        const bool hit = a.access(addr);
        EXPECT_EQ(hit, b.access(addr)) << "step " << i;
        disagreements +=
            static_cast<std::uint64_t>(hit != c.access(addr));
    }
    // A different seed draws different victims; the exact count is
    // deterministic, so assert only that the seed matters at all.
    EXPECT_GT(disagreements, 0u);
}

TEST(PolicyBehavior, RandomResetReseeds)
{
    // After reset(), the RNG cursor restarts: the same access stream
    // must reproduce the same hit/miss bits.
    PolicyCache<RandomPolicy> cache(
        policyConfig(128, 4, ReplacementPolicy::kRandom));
    Rng rng(17);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 800; ++i)
        stream.push_back(rng.nextBelow(16));
    std::vector<bool> first;
    for (const std::uint64_t addr : stream)
        first.push_back(cache.access(addr));
    cache.reset();
    for (std::size_t i = 0; i < stream.size(); ++i)
        EXPECT_EQ(cache.access(stream[i]), first[i]) << "step " << i;
}

/** 1-way instances of every policy must equal DirectMappedCache. */
template <typename Policy>
void
expectOneWayMatchesDirectMapped(ReplacementPolicy policy)
{
    const CacheConfig config = policyConfig(256, 1, policy);
    DirectMappedCache dm(config);
    PolicyCache<Policy> pc(config);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.nextBelow(64);
        ASSERT_EQ(dm.access(addr), pc.access(addr))
            << replacementPolicyName(policy) << " step " << i;
    }
}

TEST(PolicyBehavior, OneWayCollapsesToDirectMappedForEveryPolicy)
{
    expectOneWayMatchesDirectMapped<TrueLruPolicy>(
        ReplacementPolicy::kLru);
    expectOneWayMatchesDirectMapped<TreePlruPolicy>(
        ReplacementPolicy::kPlru);
    expectOneWayMatchesDirectMapped<SrripPolicy>(
        ReplacementPolicy::kSrrip);
    expectOneWayMatchesDirectMapped<FifoPolicy>(
        ReplacementPolicy::kFifo);
    expectOneWayMatchesDirectMapped<RandomPolicy>(
        ReplacementPolicy::kRandom);
}

/**
 * Batched replay (accessRunBatch, including any repeat-elision
 * shortcut) must be bit-identical to the fully expanded access()
 * stream: same miss count, identical behaviour on a follow-up stream,
 * and — when @p exact_state — identical raw state words. The state
 * check is skipped only for true LRU, whose elided repeats advance
 * the recency clocks by smaller absolute amounts while preserving the
 * per-set ordering that victim selection consults (the follow-up
 * stream verifies that equivalence behaviourally).
 */
template <typename Cache>
void
expectBatchMatchesExpanded(const CacheConfig &config,
                           const std::string &what,
                           bool exact_state = true)
{
    SCOPED_TRACE(what);
    struct Run
    {
        std::uint64_t base;
        std::uint32_t len;
        std::uint32_t repeats;
    };
    // Mixed run shapes: short loops under the elision threshold with
    // high repeat counts, runs longer than the cache, single fetches.
    Rng rng(2024);
    std::vector<Run> runs;
    const std::uint64_t lines = config.lineCount();
    for (int i = 0; i < 200; ++i) {
        Run run;
        run.base = rng.nextBelow(4 * lines);
        run.len = static_cast<std::uint32_t>(
            1 + rng.nextBelow(2 * lines));
        run.repeats = static_cast<std::uint32_t>(1 + rng.nextBelow(5));
        runs.push_back(run);
    }

    Cache batched(config);
    Cache expanded(config);
    const std::uint64_t batched_misses = batched.accessRunBatch(
        runs.size(), [&runs](std::size_t r) {
            return std::tuple<std::uint64_t, std::uint32_t,
                              std::uint32_t>(
                runs[r].base, runs[r].len, runs[r].repeats);
        });
    std::uint64_t expanded_misses = 0;
    for (const Run &run : runs) {
        for (std::uint32_t pass = 0; pass < run.repeats; ++pass) {
            for (std::uint32_t j = 0; j < run.len; ++j) {
                expanded_misses += static_cast<std::uint64_t>(
                    !expanded.access(run.base + j));
            }
        }
    }
    EXPECT_EQ(batched_misses, expanded_misses);
    if (exact_state) {
        EXPECT_EQ(std::vector<std::uint64_t>(batched.stateWords()),
                  std::vector<std::uint64_t>(expanded.stateWords()));
    }
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t addr = rng.nextBelow(4 * lines);
        ASSERT_EQ(batched.access(addr), expanded.access(addr))
            << "follow-up step " << i;
    }
}

TEST(PolicyBatch, BatchedEqualsExpandedForEveryPolicyAndModel)
{
    for (const std::uint32_t assoc : {2u, 4u, 8u}) {
        const std::string where = std::to_string(assoc) + "-way";
        expectBatchMatchesExpanded<PolicyCache<TrueLruPolicy>>(
            policyConfig(512, assoc, ReplacementPolicy::kLru),
            "lru " + where, false);
        expectBatchMatchesExpanded<PolicyCache<TreePlruPolicy>>(
            policyConfig(512, assoc, ReplacementPolicy::kPlru),
            "plru " + where);
        expectBatchMatchesExpanded<PolicyCache<SrripPolicy>>(
            policyConfig(512, assoc, ReplacementPolicy::kSrrip),
            "srrip " + where);
        expectBatchMatchesExpanded<PolicyCache<FifoPolicy>>(
            policyConfig(512, assoc, ReplacementPolicy::kFifo),
            "fifo " + where);
        expectBatchMatchesExpanded<PolicyCache<RandomPolicy>>(
            policyConfig(512, assoc, ReplacementPolicy::kRandom),
            "random " + where);
    }
    // Fully associative (single set) and the direct-mapped model's own
    // unconditional elision.
    expectBatchMatchesExpanded<PolicyCache<TrueLruPolicy>>(
        policyConfig(256, 8, ReplacementPolicy::kLru), "lru 1x8",
        false);
    expectBatchMatchesExpanded<PolicyCache<SrripPolicy>>(
        policyConfig(256, 8, ReplacementPolicy::kSrrip), "srrip 1x8");
    expectBatchMatchesExpanded<DirectMappedCache>(
        CacheConfig{512, 32, 1}, "direct-mapped");
    expectBatchMatchesExpanded<DirectMappedCache>(
        CacheConfig{96, 32, 1}, "direct-mapped non-pow2");
}

/**
 * Eviction accounting: with invalid-first fills, every policy obeys
 * "misses - validLineCount() == evictions", and accessTracked's
 * victim_valid reports exactly those evictions.
 */
template <typename Cache>
void
expectEvictionAccounting(const CacheConfig &config,
                         const std::string &what)
{
    SCOPED_TRACE(what);
    Cache cache(config);
    Rng rng(7);
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    for (int i = 0; i < 4000; ++i) {
        std::uint32_t set = 0;
        std::uint64_t victim = 0;
        bool victim_valid = false;
        const std::uint64_t addr = rng.nextBelow(8 * config.lineCount());
        if (!cache.accessTracked(addr, set, victim, victim_valid)) {
            ++misses;
            evictions += static_cast<std::uint64_t>(victim_valid);
        } else {
            ASSERT_FALSE(victim_valid);
        }
    }
    EXPECT_EQ(misses - cache.validLineCount(), evictions);
    EXPECT_LE(cache.validLineCount(), config.lineCount());
}

TEST(PolicyAccounting, MissesMinusValidLinesEqualsEvictions)
{
    expectEvictionAccounting<PolicyCache<TrueLruPolicy>>(
        policyConfig(512, 4, ReplacementPolicy::kLru), "lru");
    expectEvictionAccounting<PolicyCache<TreePlruPolicy>>(
        policyConfig(512, 4, ReplacementPolicy::kPlru), "plru");
    expectEvictionAccounting<PolicyCache<SrripPolicy>>(
        policyConfig(512, 4, ReplacementPolicy::kSrrip), "srrip");
    expectEvictionAccounting<PolicyCache<FifoPolicy>>(
        policyConfig(512, 4, ReplacementPolicy::kFifo), "fifo");
    expectEvictionAccounting<PolicyCache<RandomPolicy>>(
        policyConfig(512, 4, ReplacementPolicy::kRandom), "random");
    expectEvictionAccounting<DirectMappedCache>(
        CacheConfig{512, 32, 1}, "direct-mapped");
}

TEST(PolicySimulate, AllPoliciesProduceSaneMissCounts)
{
    // End-to-end through simulateLayout: every policy at 4 ways on the
    // same workload; all see the same compulsory floor, and LRU must
    // retain the alternating working set that thrashes direct-mapped.
    const Program p = twoProcs();
    Trace t(2);
    for (int i = 0; i < 50; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout overlap =
        Layout::fromCacheOffsets(p, {0, 1}, {0, 0}, 32, 4);
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        SCOPED_TRACE(replacementPolicyName(policy));
        const CacheConfig config = policyConfig(256, 8, policy);
        const SimResult result =
            simulateLayout(p, overlap, stream, config);
        EXPECT_EQ(result.accesses, stream.size());
        EXPECT_GE(result.misses, 8u); // compulsory floor
        EXPECT_EQ(result.evictions,
                  result.misses - std::min<std::uint64_t>(
                                      result.misses, 8u));
        if (policy == ReplacementPolicy::kLru) {
            EXPECT_EQ(result.misses, 8u); // working set fits 8 ways
        }
    }
}

// ---------------------------------------------------------------------
// Invalid-line-address sentinel.
// ---------------------------------------------------------------------

TEST(Sentinel, CachesRejectReservedLineAddress)
{
    DirectMappedCache dm(CacheConfig{128, 32, 1});
    EXPECT_THROW(dm.access(kInvalidLineAddr), TopoError);
    std::uint32_t set = 0;
    std::uint64_t victim = 0;
    bool victim_valid = false;
    EXPECT_THROW(
        dm.accessTracked(kInvalidLineAddr, set, victim, victim_valid),
        TopoError);

    SetAssociativeCache sa(CacheConfig{128, 32, 4});
    EXPECT_THROW(sa.access(kInvalidLineAddr), TopoError);
    EXPECT_THROW(
        sa.accessTracked(kInvalidLineAddr, set, victim, victim_valid),
        TopoError);
    // The guard must not perturb normal accounting.
    EXPECT_FALSE(sa.access(3));
    EXPECT_TRUE(sa.access(3));
}

TEST(Sentinel, LayoutValidateRejectsTopOfAddressSpace)
{
    // With 1-byte lines, a procedure ending at byte 2^64-1 would fetch
    // the reserved line address and alias every empty frame.
    Program p("edge");
    p.addProcedure("f", 64);
    Layout layout(1);
    layout.setAddress(0, ~std::uint64_t{0} - 63);
    EXPECT_THROW(layout.validate(p, 1), TopoError);
    // One byte lower is fine.
    Layout ok(1);
    ok.setAddress(0, ~std::uint64_t{0} - 64);
    ok.validate(p, 1);
}

} // namespace
} // namespace topo
