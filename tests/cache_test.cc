/**
 * @file
 * Unit and property tests for the cache simulators and the layout
 * miss-rate driver.
 */

#include <gtest/gtest.h>

#include "topo/cache/cache_config.hh"
#include "topo/cache/direct_mapped_cache.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/cache/simulate.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{
namespace
{

TEST(CacheConfig, GeometryAccessors)
{
    const CacheConfig c = CacheConfig::paperDefault();
    c.validate();
    EXPECT_EQ(c.lineCount(), 256u);
    EXPECT_EQ(c.setCount(), 256u);
    EXPECT_EQ(c.describe(), "8KB direct-mapped, 32B lines");
    const CacheConfig two = CacheConfig::paperTwoWay();
    EXPECT_EQ(two.setCount(), 128u);
    EXPECT_NE(two.describe().find("2-way"), std::string::npos);
}

TEST(CacheConfig, ValidationCatchesNonsense)
{
    CacheConfig c{100, 32, 1}; // size not a multiple of line
    EXPECT_THROW(c.validate(), TopoError);
    CacheConfig zero{0, 32, 1};
    EXPECT_THROW(zero.validate(), TopoError);
    CacheConfig assoc{8192, 32, 3}; // 256 lines not divisible by 3
    EXPECT_THROW(assoc.validate(), TopoError);
}

TEST(DirectMapped, HitAfterFill)
{
    DirectMappedCache cache(CacheConfig{128, 32, 1}); // 4 lines
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(4)); // maps to frame 0, evicts 0
    EXPECT_FALSE(cache.access(0));
}

TEST(DirectMapped, NonPowerOfTwoLineCount)
{
    DirectMappedCache cache(CacheConfig{96, 32, 1}); // 3 lines
    EXPECT_EQ(cache.mapIndex(0), 0u);
    EXPECT_EQ(cache.mapIndex(3), 0u);
    EXPECT_EQ(cache.mapIndex(4), 1u);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(3));
    EXPECT_FALSE(cache.access(0));
}

TEST(DirectMapped, ResetInvalidates)
{
    DirectMappedCache cache(CacheConfig{128, 32, 1});
    cache.access(7);
    EXPECT_TRUE(cache.access(7));
    cache.reset();
    EXPECT_FALSE(cache.access(7));
}

TEST(DirectMapped, RejectsAssociativeConfig)
{
    EXPECT_THROW(DirectMappedCache(CacheConfig{128, 32, 2}), TopoError);
}

TEST(SetAssociative, LruEvictionOrder)
{
    // 1 set, 2 ways.
    SetAssociativeCache cache(CacheConfig{64, 32, 2});
    EXPECT_FALSE(cache.access(10));
    EXPECT_FALSE(cache.access(20));
    EXPECT_TRUE(cache.access(10));  // 10 now MRU
    EXPECT_FALSE(cache.access(30)); // evicts 20 (LRU)
    EXPECT_TRUE(cache.access(10));
    EXPECT_FALSE(cache.access(20));
}

TEST(SetAssociative, TwoBlocksCoexistInOneSet)
{
    // The set-associative motivation of Section 6: one intervening
    // block does not evict p in a 2-way set.
    SetAssociativeCache cache(CacheConfig{64, 32, 2});
    cache.access(0);
    for (int i = 0; i < 10; ++i) {
        cache.access(100); // same set, other way
        EXPECT_TRUE(cache.access(0));
    }
}

TEST(SetAssociative, OneWayMatchesDirectMapped)
{
    const CacheConfig config{256, 32, 1};
    DirectMappedCache dm(config);
    SetAssociativeCache sa(config);
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.nextBelow(64);
        EXPECT_EQ(dm.access(addr), sa.access(addr)) << "step " << i;
    }
}

/** Full-associativity property: working set <= ways never misses twice. */
TEST(SetAssociative, FullyAssociativeRetainsWorkingSet)
{
    // 4 ways, 1 set.
    SetAssociativeCache cache(CacheConfig{128, 32, 4});
    for (std::uint64_t a = 0; a < 4; ++a)
        cache.access(a);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(cache.access(rng.nextBelow(4)));
}

Program
twoProcs()
{
    Program p("sim");
    p.addProcedure("f", 128); // 4 lines
    p.addProcedure("g", 128); // 4 lines
    return p;
}

TEST(Simulate, NoConflictWhenFitsInCache)
{
    const Program p = twoProcs();
    const CacheConfig cache{512, 32, 1}; // 16 lines: both procs fit
    Trace t(2);
    for (int i = 0; i < 100; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    // Only the 8 cold misses.
    EXPECT_EQ(result.misses, 8u);
    EXPECT_EQ(result.accesses, stream.size());
}

TEST(Simulate, FullConflictWhenOverlapped)
{
    const Program p = twoProcs();
    const CacheConfig cache{128, 32, 1}; // 4 lines: f and g collide
    Trace t(2);
    for (int i = 0; i < 50; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    // Every access evicts the other procedure's line: all misses.
    EXPECT_EQ(result.misses, result.accesses);
}

TEST(Simulate, AttributionSumsToTotal)
{
    const Program p = twoProcs();
    const CacheConfig cache{128, 32, 1};
    Trace t(2);
    for (int i = 0; i < 20; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout layout = Layout::defaultOrder(p, 32);
    const SimResult result =
        simulateLayout(p, layout, stream, cache, true);
    ASSERT_EQ(result.misses_by_proc.size(), 2u);
    EXPECT_EQ(result.misses_by_proc[0] + result.misses_by_proc[1],
              result.misses);
}

TEST(Simulate, LineSizeMismatchRejected)
{
    const Program p = twoProcs();
    Trace t(2);
    t.append(0, 0, 128);
    const FetchStream stream(p, t, 16);
    const Layout layout = Layout::defaultOrder(p, 16);
    EXPECT_THROW(
        simulateLayout(p, layout, stream, CacheConfig{8192, 32, 1}),
        TopoError);
}

TEST(Simulate, TwoWayToleratesOneConflicting)
{
    // f and g overlap fully; in a 2-way cache of the same total size
    // alternation does not thrash.
    const Program p = twoProcs();
    Trace t(2);
    for (int i = 0; i < 50; ++i) {
        t.append(0, 0, 128);
        t.append(1, 0, 128);
    }
    const FetchStream stream(p, t, 32);
    const Layout overlap =
        Layout::fromCacheOffsets(p, {0, 1}, {0, 0}, 32, 4);
    const SimResult dm =
        simulateLayout(p, overlap, stream, CacheConfig{128, 32, 1});
    const SimResult sa =
        simulateLayout(p, overlap, stream, CacheConfig{256, 32, 2});
    EXPECT_EQ(dm.misses, dm.accesses);
    EXPECT_EQ(sa.misses, 8u); // cold misses only
}

/** Property sweep: miss rate is within [0,1] for random traffic. */
class SimulatePropertyTest
    : public ::testing::TestWithParam<CacheConfig>
{
};

TEST_P(SimulatePropertyTest, MissRateBounded)
{
    const CacheConfig cache = GetParam();
    Program p("r");
    for (int i = 0; i < 10; ++i)
        p.addProcedure("p" + std::to_string(i), 64 + 32 * i);
    Trace t(p.procCount());
    Rng rng(321);
    for (int i = 0; i < 2000; ++i) {
        const ProcId id = static_cast<ProcId>(rng.nextBelow(10));
        t.append(id, 0, p.proc(id).size_bytes);
    }
    const FetchStream stream(p, t, cache.line_bytes);
    const Layout layout = Layout::defaultOrder(p, cache.line_bytes);
    const SimResult result = simulateLayout(p, layout, stream, cache);
    EXPECT_GT(result.missRate(), 0.0);
    EXPECT_LE(result.missRate(), 1.0);
    EXPECT_EQ(result.accesses, stream.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SimulatePropertyTest,
    ::testing::Values(CacheConfig{1024, 32, 1}, CacheConfig{2048, 32, 2},
                      CacheConfig{4096, 64, 4}, CacheConfig{96, 32, 1},
                      CacheConfig{8192, 32, 1}));

} // namespace
} // namespace topo
