/**
 * @file
 * Cross-cutting coverage: environment-variable options, the
 * measure-on-train comparison path, empty-input behaviour, conflict
 * metric properties under offset sweeps, and Section 4.3 gap-formula
 * arithmetic as exposed through Layout::fromCacheOffsets.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "topo/eval/conflict_metric.hh"
#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/util/options.hh"
#include "topo/workload/synthetic_program.hh"

namespace topo
{
namespace
{

TEST(OptionsEnv, EnvironmentBackfillsAndCliWins)
{
    ::setenv("TOPO_COVERAGE_PROBE", "0.5", 1);
    Options opts;
    EXPECT_TRUE(opts.has("coverage-probe"));
    EXPECT_DOUBLE_EQ(opts.getDouble("coverage-probe", 1.0), 0.5);
    opts.set("coverage-probe", "0.25");
    EXPECT_DOUBLE_EQ(opts.getDouble("coverage-probe", 1.0), 0.25);
    ::unsetenv("TOPO_COVERAGE_PROBE");
    EXPECT_DOUBLE_EQ(opts.getDouble("coverage-probe", 1.0), 0.25);
}

TEST(TraceStatsEdge, EmptyTrace)
{
    Program p("e");
    p.addProcedure("f", 64);
    const Trace t(1);
    const TraceStats stats = computeTraceStats(p, t);
    EXPECT_EQ(stats.total_runs, 0u);
    EXPECT_EQ(stats.total_bytes, 0u);
    EXPECT_EQ(stats.procs_touched, 0u);
}

/** Conflict metric is invariant under a global rotation of offsets. */
class MetricRotationTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MetricRotationTest, GlobalRotationInvariant)
{
    const std::uint32_t rotation = GetParam();
    Program p("m");
    p.addProcedure("a", 96);
    p.addProcedure("b", 64);
    p.addProcedure("c", 160);
    const ChunkMap chunks(p, 64);
    WeightedGraph place(chunks.chunkCount());
    place.addWeight(chunks.chunkId(0, 0), chunks.chunkId(1, 0), 5.0);
    place.addWeight(chunks.chunkId(1, 0), chunks.chunkId(2, 1), 2.0);
    place.addWeight(chunks.chunkId(0, 1), chunks.chunkId(2, 2), 7.0);
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{512, 32, 1}; // 16 lines
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    const std::vector<std::uint32_t> base{3, 9, 14};
    std::vector<std::uint32_t> rotated(base);
    for (auto &o : rotated)
        o = (o + rotation) % 16;
    EXPECT_DOUBLE_EQ(Gbsc::conflictMetric(ctx, base),
                     Gbsc::conflictMetric(ctx, rotated));
}

INSTANTIATE_TEST_SUITE_P(Rotations, MetricRotationTest,
                         ::testing::Values(0u, 1u, 5u, 15u));

TEST(MetricProperties, ZeroWhenNoLineShared)
{
    Program p("m");
    p.addProcedure("a", 64); // 2 lines
    p.addProcedure("b", 64); // 2 lines
    const ChunkMap chunks(p, 64);
    WeightedGraph place(chunks.chunkCount());
    place.addWeight(0, 1, 100.0);
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{256, 32, 1}; // 8 lines
    ctx.chunks = &chunks;
    ctx.trg_place = &place;
    for (std::uint32_t gap = 2; gap <= 6; ++gap) {
        EXPECT_DOUBLE_EQ(Gbsc::conflictMetric(ctx, {0, gap}), 0.0)
            << "gap " << gap;
    }
    EXPECT_GT(Gbsc::conflictMetric(ctx, {0, 0}), 0.0);
    EXPECT_GT(Gbsc::conflictMetric(ctx, {0, 1}), 0.0); // partial
}

TEST(GapFormula, FromCacheOffsetsUsesSmallestNonNegativeGap)
{
    // The Section 4.3 gap formula is (q_SL - p_EL) mod N; verify the
    // realisation inserts exactly that many lines.
    Program p("g");
    p.addProcedure("first", 96);  // 3 lines, ends at line 3
    p.addProcedure("wrap", 32);   // target offset 1 -> gap 6 (mod 8)
    p.addProcedure("tight", 32);  // placed right after wrap
    const Layout layout =
        Layout::fromCacheOffsets(p, {0, 1, 2}, {0, 1, 2}, 32, 8);
    EXPECT_EQ(layout.address(0), 0u);
    // first ends at line 3; wrap wants offset 1: gap = (1-3) mod 8 = 6
    EXPECT_EQ(layout.startLine(1, 32), 9u);
    // wrap ends at line 10; tight wants offset 2: gap = (2-10) mod 8=0
    EXPECT_EQ(layout.startLine(2, 32), 10u);
}

TEST(RunComparison, MeasureOnTrainOption)
{
    SyntheticSpec spec;
    spec.name = "train-measure";
    spec.proc_count = 30;
    spec.total_bytes = 60 * 1024;
    spec.popular_count = 10;
    spec.popular_bytes = 20 * 1024;
    spec.phase_count = 2;
    spec.ranks = 2;
    spec.seed = 3;
    BenchmarkCase bench;
    bench.name = spec.name;
    bench.model = buildSyntheticWorkload(spec);
    bench.train.target_runs = 8000;
    bench.train.seed = 1;
    bench.test.target_runs = 8000;
    bench.test.seed = 2;
    EvalOptions eopts;
    eopts.cache = CacheConfig{2048, 32, 1};
    const ProfileBundle bundle(bench, eopts);
    const Gbsc gbsc;
    ComparisonOptions train_opts, test_opts;
    train_opts.repetitions = test_opts.repetitions = 1;
    train_opts.measure_on_train = true;
    const auto on_train = runComparison(bundle, {&gbsc}, train_opts);
    const auto on_test = runComparison(bundle, {&gbsc}, test_opts);
    // Distinct inputs: the measured numbers must differ.
    EXPECT_NE(on_train[0].unperturbed, on_test[0].unperturbed);
    // And the train measurement must match the direct API.
    const PlacementContext ctx = bundle.makeContext();
    EXPECT_DOUBLE_EQ(on_train[0].unperturbed,
                     bundle.trainMissRate(gbsc.place(ctx)));
}

TEST(WcgMetric, CountsProcedurePairsPerLine)
{
    Program p("w");
    p.addProcedure("a", 64); // 2 lines
    p.addProcedure("b", 64);
    const ChunkMap chunks(p, 256);
    WeightedGraph wcg(2);
    wcg.addWeight(0, 1, 10.0);
    WeightedGraph place(chunks.chunkCount());
    PlacementContext ctx;
    ctx.program = &p;
    ctx.cache = CacheConfig{128, 32, 1}; // 4 lines
    ctx.chunks = &chunks;
    ctx.wcg = &wcg;
    ctx.trg_place = &place;
    // Fully overlapped: both lines collide -> 2 * 10.
    const Layout overlapped =
        Layout::fromCacheOffsets(p, {0, 1}, {0, 0}, 32, 4);
    EXPECT_DOUBLE_EQ(wcgConflictMetric(ctx, overlapped), 20.0);
    const Layout disjoint =
        Layout::fromCacheOffsets(p, {0, 1}, {0, 2}, 32, 4);
    EXPECT_DOUBLE_EQ(wcgConflictMetric(ctx, disjoint), 0.0);
}

} // namespace
} // namespace topo
