/**
 * @file
 * Determinism-contract tests (DESIGN.md §9).
 *
 * Two families: (1) placement algorithms run twice from independently
 * rebuilt profiles must produce identical layouts and miss counts —
 * the guard against hash-order iteration leaking into placement
 * decisions; (2) the sharded profile-construction path (planTraceShards
 * + seeded TrgAccumulators merged in shard order) must equal the serial
 * walk bit-exactly, for uneven split points, empty shards, and runs
 * that span chunk boundaries.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "topo/cache/simulate.hh"
#include "topo/eval/experiment.hh"
#include "topo/eval/layout_diff.hh"
#include "topo/placement/decision_log.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_mmap.hh"
#include "topo/exec/exec.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/pair_database.hh"
#include "topo/profile/trg_accumulator.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/workload/paper_suite.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{
namespace
{

void
expectGraphsEqual(const WeightedGraph &a, const WeightedGraph &b,
                  const std::string &what)
{
    ASSERT_EQ(a.nodeCount(), b.nodeCount()) << what;
    ASSERT_EQ(a.edgeCount(), b.edgeCount()) << what;
    const std::vector<WeightedGraph::Edge> ea = a.edges();
    const std::vector<WeightedGraph::Edge> eb = b.edges();
    ASSERT_EQ(ea.size(), eb.size()) << what;
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].u, eb[i].u) << what << " edge " << i;
        EXPECT_EQ(ea[i].v, eb[i].v) << what << " edge " << i;
        // TRG weights are integer-valued counts, so equality is exact.
        EXPECT_EQ(ea[i].weight, eb[i].weight)
            << what << " edge {" << ea[i].u << "," << ea[i].v << "}";
    }
}

void
expectResultsEqual(const TrgBuildResult &a, const TrgBuildResult &b)
{
    expectGraphsEqual(a.select, b.select, "TRG_select");
    expectGraphsEqual(a.place, b.place, "TRG_place");
    EXPECT_EQ(a.proc_steps, b.proc_steps);
    EXPECT_EQ(a.proc_evictions, b.proc_evictions);
    EXPECT_EQ(a.chunk_evictions, b.chunk_evictions);
    EXPECT_DOUBLE_EQ(a.avg_queue_procs, b.avg_queue_procs);
}

/** Seed an accumulator from a shard and replay the shard's events. */
TrgAccumulator
replayShard(const Program &program, const ChunkMap &chunks,
            const TrgBuildOptions &options, const Trace &trace,
            const TraceShard &shard)
{
    TrgAccumulator acc(program, chunks, options);
    acc.seedState(shard.proc_queue, shard.chunk_queue, shard.last_proc,
                  shard.last_chunk);
    const std::vector<TraceEvent> &events = trace.events();
    for (std::size_t i = shard.begin; i < shard.end; ++i)
        acc.onRun(events[i].proc, events[i].offset, events[i].length);
    return acc;
}

TrgBuildResult
shardedBuild(const Program &program, const ChunkMap &chunks,
             const TrgBuildOptions &options, const Trace &trace,
             std::size_t shard_count)
{
    const std::vector<TraceShard> shards =
        planTraceShards(program, chunks, trace, options, shard_count);
    std::unique_ptr<TrgAccumulator> total;
    for (const TraceShard &shard : shards) {
        TrgAccumulator acc =
            replayShard(program, chunks, options, trace, shard);
        if (!total)
            total = std::make_unique<TrgAccumulator>(std::move(acc));
        else
            total->merge(acc);
    }
    return total->take();
}

/** Layouts must agree address-by-address, not just in order. */
void
expectLayoutsEqual(const Program &program, const Layout &a,
                   const Layout &b, const std::string &what)
{
    ASSERT_EQ(a.procCount(), b.procCount()) << what;
    for (ProcId p = 0; p < program.procCount(); ++p) {
        EXPECT_EQ(a.address(p), b.address(p))
            << what << ": procedure " << program.proc(p).name;
    }
}

TEST(Determinism, AlgorithmsRepeatAcrossIndependentProfileBuilds)
{
    // Rebuild the entire profile pipeline twice; any hash-order
    // dependence in TRG/WCG construction or in the placement
    // algorithms shows up as an address mismatch here.
    const EvalOptions eval;
    const ProfileBundle first(paperBenchmark("gcc", 0.01), eval);
    const ProfileBundle second(paperBenchmark("gcc", 0.01), eval);

    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const PlacementAlgorithm *algorithms[] = {&ph, &hkc, &gbsc};

    for (const PlacementAlgorithm *algorithm : algorithms) {
        const Layout a = algorithm->place(first.makeContext());
        const Layout b = algorithm->place(second.makeContext());
        expectLayoutsEqual(first.program(), a, b, algorithm->name());
        EXPECT_DOUBLE_EQ(first.testMissRate(a), second.testMissRate(b))
            << algorithm->name();
    }
}

TEST(Determinism, ShardedTrgEqualsSerialForUnevenSplits)
{
    const BenchmarkCase bench = paperBenchmark("gcc", 0.005);
    const Program &program = bench.model.program;
    const Trace trace = synthesizeTrace(bench.model, bench.train);
    const ChunkMap chunks(program);
    const TrgBuildOptions options;

    TrgAccumulator serial(program, chunks, options);
    serial.onTrace(trace);
    const TrgBuildResult reference = serial.take();
    ASSERT_GT(reference.select.edgeCount(), 0u);

    // Prime shard counts guarantee uneven i*n/shards boundaries.
    for (const std::size_t shard_count : {2u, 3u, 5u, 7u, 11u}) {
        SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
        const TrgBuildResult sharded =
            shardedBuild(program, chunks, options, trace, shard_count);
        expectResultsEqual(sharded, reference);
    }
}

TEST(Determinism, ShardMergeIsAssociative)
{
    const BenchmarkCase bench = paperBenchmark("perl", 0.005);
    const Program &program = bench.model.program;
    const Trace trace = synthesizeTrace(bench.model, bench.train);
    const ChunkMap chunks(program);
    const TrgBuildOptions options;
    const std::vector<TraceShard> shards =
        planTraceShards(program, chunks, trace, options, 4);
    ASSERT_EQ(shards.size(), 4u);

    const auto replay = [&](std::size_t s) {
        return replayShard(program, chunks, options, trace, shards[s]);
    };

    // Left fold: ((a + b) + c) + d.
    TrgAccumulator left = replay(0);
    for (std::size_t s = 1; s < shards.size(); ++s) {
        const TrgAccumulator other = replay(s);
        left.merge(other);
    }

    // Pairwise tree: (a + b) + (c + d).
    TrgAccumulator ab = replay(0);
    {
        const TrgAccumulator b = replay(1);
        ab.merge(b);
    }
    TrgAccumulator cd = replay(2);
    {
        const TrgAccumulator d = replay(3);
        cd.merge(d);
    }
    ab.merge(cd);

    expectResultsEqual(left.take(), ab.take());
}

TEST(Determinism, EmptyShardsAreNeutral)
{
    // More shards than events: the plan produces empty [begin, begin)
    // ranges whose seeded accumulators contribute nothing to the merge.
    Program p;
    const ProcId f = p.addProcedure("f", 64);
    const ProcId g = p.addProcedure("g", 64);
    Trace trace(2);
    trace.appendWhole(f, 64);
    trace.appendWhole(g, 64);
    trace.appendWhole(f, 64);

    const ChunkMap chunks(p);
    const TrgBuildOptions options;
    TrgAccumulator serial(p, chunks, options);
    serial.onTrace(trace);
    const TrgBuildResult reference = serial.take();

    const TrgBuildResult sharded =
        shardedBuild(p, chunks, options, trace, 8);
    expectResultsEqual(sharded, reference);
}

TEST(Determinism, ShardBoundaryInsideChunkSpanningRuns)
{
    // Runs that cross chunk boundaries exercise the last_chunk
    // deduplication state; a shard boundary landing between two such
    // runs must not re-count the chunk transition.
    Program p;
    const ProcId f = p.addProcedure("f", 1024);
    const ProcId g = p.addProcedure("g", 1024);
    Trace trace(2);
    for (int i = 0; i < 20; ++i) {
        // Each run covers several 256-byte chunks, and consecutive
        // runs overlap in their first/last chunk.
        trace.append(f, 128, 512);  // chunks 0..2 of f
        trace.append(f, 512, 512);  // chunks 2..3 of f (2 repeats)
        trace.append(g, 0, 640);    // chunks 0..2 of g
        trace.append(g, 600, 424);  // chunks 2..3 of g (2 repeats)
    }

    const ChunkMap chunks(p, 256);
    TrgBuildOptions options;
    TrgAccumulator serial(p, chunks, options);
    serial.onTrace(trace);
    const TrgBuildResult reference = serial.take();
    ASSERT_GT(reference.place.edgeCount(), 0u);

    // Every possible split point, so some boundary falls between the
    // overlapping runs of each pair.
    for (std::size_t shard_count = 2; shard_count <= trace.size();
         ++shard_count) {
        SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
        const TrgBuildResult sharded =
            shardedBuild(p, chunks, options, trace, shard_count);
        expectResultsEqual(sharded, reference);
    }
}

TEST(Determinism, MmapAndStreamTraceSourcesPlaceIdentically)
{
    // The zero-copy mapped loader must be invisible to every consumer:
    // a trace round-tripped through disk and loaded via mmap vs the
    // stream reader, then pushed through the full profile -> placement
    // -> simulation pipeline at jobs 1 and 4, must yield identical
    // layouts and miss counts in all combinations.
    if (!mmapSupported())
        GTEST_SKIP() << "no mmap on this platform";
    const BenchmarkCase bench = paperBenchmark("gcc", 0.01);
    const Program &program = bench.model.program;
    const Trace original = synthesizeTrace(bench.model, bench.train);
    const std::string path = "/tmp/topo_determinism_mmap.tpb";
    saveBinaryTrace(path, original);
    TraceReadOptions mapped_opts;
    mapped_opts.mmap = TraceMmapMode::kOn;
    TraceReadOptions stream_opts;
    stream_opts.mmap = TraceMmapMode::kOff;
    const Trace mapped = loadBinaryTrace(path, mapped_opts);
    const Trace streamed = loadBinaryTrace(path, stream_opts);
    std::remove(path.c_str());
    ASSERT_EQ(mapped.size(), original.size());
    ASSERT_EQ(streamed.size(), original.size());

    CacheConfig cache;
    cache.size_bytes = 4096;
    cache.line_bytes = 32;
    cache.associativity = 1;
    const ChunkMap chunks(program);
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const PlacementAlgorithm *algorithms[] = {&ph, &hkc, &gbsc};

    struct Outcome
    {
        std::vector<Layout> layouts;
        std::vector<std::uint64_t> misses;
    };
    const auto run = [&](const Trace &trace, int jobs) {
        setExecJobs(jobs);
        const TrgBuildResult trg =
            buildTrgs(program, chunks, trace, TrgBuildOptions{});
        const WeightedGraph wcg = buildWcg(program, trace);
        const PairDatabase pairs =
            buildPairDatabase(program, trace, PairBuildOptions{});
        setExecJobs(1);
        PlacementContext ctx;
        ctx.program = &program;
        ctx.cache = cache;
        ctx.chunks = &chunks;
        ctx.wcg = &wcg;
        ctx.trg_select = &trg.select;
        ctx.trg_place = &trg.place;
        ctx.pairs = &pairs;
        ctx.heat.assign(program.procCount(), 0.0);
        for (const TraceEvent &ev : trace.events())
            ctx.heat[ev.proc] += static_cast<double>(ev.length);
        const FetchStream stream(program, trace, cache.line_bytes);
        Outcome out;
        for (const PlacementAlgorithm *algorithm : algorithms) {
            Layout layout = algorithm->place(ctx);
            out.misses.push_back(
                simulateLayout(program, layout, stream, cache, false)
                    .misses);
            out.layouts.push_back(std::move(layout));
        }
        return out;
    };

    const Outcome reference = run(mapped, 1);
    const struct
    {
        const Trace *trace;
        int jobs;
        const char *what;
    } variants[] = {
        {&mapped, 4, "mapped jobs=4"},
        {&streamed, 1, "streamed jobs=1"},
        {&streamed, 4, "streamed jobs=4"},
    };
    for (const auto &variant : variants) {
        const Outcome got = run(*variant.trace, variant.jobs);
        for (std::size_t a = 0; a < std::size(algorithms); ++a) {
            expectLayoutsEqual(program, got.layouts[a],
                               reference.layouts[a],
                               std::string(variant.what) + " " +
                                   algorithms[a]->name());
            EXPECT_EQ(got.misses[a], reference.misses[a])
                << variant.what << " " << algorithms[a]->name();
        }
    }
}

TEST(Determinism, PooledProfileBuildsMatchSerial)
{
    // End-to-end: the real buildTrgs/buildWcg/buildPairDatabase entry
    // points with the pool engaged vs fully serial.
    const BenchmarkCase bench = paperBenchmark("gcc", 0.03);
    const Program &program = bench.model.program;
    const Trace trace = synthesizeTrace(bench.model, bench.train);
    const ChunkMap chunks(program);
    const TrgBuildOptions trg_options;
    // Large enough that buildTrgs actually takes the sharded path.
    ASSERT_GE(trace.size(), 2u * 8192u);

    setExecJobs(1);
    const TrgBuildResult serial_trg =
        buildTrgs(program, chunks, trace, trg_options);
    const WeightedGraph serial_wcg = buildWcg(program, trace);
    const PairBuildOptions pair_options;
    const PairDatabase serial_pairs =
        buildPairDatabase(program, trace, pair_options);

    setExecJobs(4);
    const TrgBuildResult pooled_trg =
        buildTrgs(program, chunks, trace, trg_options);
    const WeightedGraph pooled_wcg = buildWcg(program, trace);
    const PairDatabase pooled_pairs =
        buildPairDatabase(program, trace, pair_options);
    setExecJobs(1);

    expectResultsEqual(pooled_trg, serial_trg);
    expectGraphsEqual(pooled_wcg, serial_wcg, "WCG");

    const std::vector<PairDatabase::Entry> sp = serial_pairs.entries();
    const std::vector<PairDatabase::Entry> pp = pooled_pairs.entries();
    ASSERT_EQ(sp.size(), pp.size());
    for (std::size_t i = 0; i < sp.size(); ++i) {
        EXPECT_EQ(sp[i].p, pp[i].p) << "pair entry " << i;
        EXPECT_EQ(sp[i].r, pp[i].r) << "pair entry " << i;
        EXPECT_EQ(sp[i].s, pp[i].s) << "pair entry " << i;
        EXPECT_EQ(sp[i].weight, pp[i].weight) << "pair entry " << i;
    }
}

TEST(Determinism, SeededRandomPolicyIsJobsInvariantAndRepeatable)
{
    // The random replacement policy draws from a per-cache-instance
    // counter RNG seeded by CacheConfig::policy_seed, so full pipeline
    // runs must be bit-identical across --jobs values and across
    // reruns — no global RNG state leaks between grid cells.
    EvalOptions eval;
    eval.cache.associativity = 4;
    eval.cache.policy = ReplacementPolicy::kRandom;
    const Gbsc gbsc;

    auto run = [&](int jobs) {
        setExecJobs(jobs);
        const ProfileBundle bundle(paperBenchmark("gcc", 0.01), eval);
        const Layout layout = gbsc.place(bundle.makeContext());
        const double miss_rate = bundle.testMissRate(layout);
        setExecJobs(1);
        return std::make_pair(layout, miss_rate);
    };

    const auto serial = run(1);
    const auto rerun = run(1);
    const auto pooled = run(4);
    const ProfileBundle bundle(paperBenchmark("gcc", 0.01), eval);
    expectLayoutsEqual(bundle.program(), serial.first, rerun.first,
                       "rerun");
    expectLayoutsEqual(bundle.program(), serial.first, pooled.first,
                       "jobs=4");
    EXPECT_DOUBLE_EQ(serial.second, rerun.second);
    EXPECT_DOUBLE_EQ(serial.second, pooled.second);
}

TEST(Determinism, ExplainArtifactsAreJobsInvariant)
{
    // The decisions artifact and the attributed layout-diff artifact
    // must be byte-identical for any --jobs value: decision recording
    // is strictly sequential inside each algorithm, and the diff's
    // double replay merges per-task metrics in fixed side order.
    const EvalOptions eval;
    const ProfileBundle bundle(paperBenchmark("gcc", 0.01), eval);
    const Gbsc gbsc;
    const PettisHansen ph;

    auto render = [&]() {
        DecisionLog log;
        log.setAlgorithm("gbsc");
        log.setCache(eval.cache);
        PlacementContext ctx = bundle.makeContext();
        ctx.decisions = &log;
        const Layout gb = gbsc.place(ctx);
        const Layout base = ph.place(bundle.makeContext());

        LayoutDiff diff = buildLayoutDiff(bundle.program(), eval.cache,
                                          base, gb, "ph", "gbsc");
        attributeMissDelta(diff, bundle.program(), base, gb,
                           bundle.testStream());
        crossReferenceDecisions(diff, bundle.program(),
                                snapshotDecisions(log,
                                                  bundle.program()));
        return std::make_pair(
            log.toJson(bundle.program()).toString(),
            diffToJson(diff, bundle.program()).toString());
    };

    setExecJobs(1);
    const auto serial = render();
    setExecJobs(4);
    const auto pooled = render();
    setExecJobs(1);

    EXPECT_EQ(serial.first, pooled.first) << "decisions JSON";
    EXPECT_EQ(serial.second, pooled.second) << "diff JSON";
}

} // namespace
} // namespace topo
