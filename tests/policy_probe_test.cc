/**
 * @file
 * Black-box replacement-policy inference harness tests: the probe
 * battery must uniquely identify every implemented policy from
 * hit/miss bits alone (a collision or mis-identification is a
 * simulator bug by construction — see policy_probe.hh).
 */

#include <gtest/gtest.h>

#include "topo/cache/policy_probe.hh"
#include "topo/cache/set_associative_cache.hh"
#include "topo/util/error.hh"

namespace topo
{
namespace
{

ProbeTargetFactory
factoryFor(ReplacementPolicy policy,
           std::uint64_t seed = kDefaultPolicySeed)
{
    return [policy, seed](const CacheConfig &geometry) {
        CacheConfig config = geometry;
        config.policy = policy;
        config.policy_seed = seed;
        return makeCacheTarget(config);
    };
}

TEST(PolicyProbe, UniquelyIdentifiesEveryPolicy)
{
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        SCOPED_TRACE(replacementPolicyName(policy));
        const PolicyProbeResult result =
            inferPolicy(factoryFor(policy));
        ASSERT_TRUE(result.unique())
            << result.matches.size() << " matches";
        EXPECT_EQ(result.identified(), policy);
    }
}

TEST(PolicyProbe, SignaturesArePairwiseDistinct)
{
    std::vector<ProbeSignature> signatures;
    for (const ReplacementPolicy policy : kAllReplacementPolicies)
        signatures.push_back(probeSignature(factoryFor(policy)));
    for (std::size_t a = 0; a < signatures.size(); ++a) {
        for (std::size_t b = a + 1; b < signatures.size(); ++b) {
            EXPECT_FALSE(signatures[a] == signatures[b])
                << replacementPolicyName(kAllReplacementPolicies[a])
                << " vs "
                << replacementPolicyName(kAllReplacementPolicies[b]);
        }
    }
}

TEST(PolicyProbe, SignatureIsStableAcrossRuns)
{
    // reset() reseeds the random policy, so even its signature is a
    // pure function of (policy, seed).
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        SCOPED_TRACE(replacementPolicyName(policy));
        const ProbeSignature first = probeSignature(factoryFor(policy));
        const ProbeSignature second =
            probeSignature(factoryFor(policy));
        EXPECT_TRUE(first == second);
    }
}

TEST(PolicyProbe, SeedChangesRandomSignatureOnly)
{
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        SCOPED_TRACE(replacementPolicyName(policy));
        const ProbeSignature default_seed =
            probeSignature(factoryFor(policy));
        const ProbeSignature other_seed =
            probeSignature(factoryFor(policy, 4242));
        if (policy == ReplacementPolicy::kRandom)
            EXPECT_FALSE(default_seed == other_seed);
        else
            EXPECT_TRUE(default_seed == other_seed);
    }
}

TEST(PolicyProbe, InferencePinsSeed)
{
    // Inference of a reseeded random cache must match when told the
    // seed, and find no match under the default seed.
    const PolicyProbeResult right = inferPolicy(
        factoryFor(ReplacementPolicy::kRandom, 4242), 4242);
    ASSERT_TRUE(right.unique());
    EXPECT_EQ(right.identified(), ReplacementPolicy::kRandom);
    const PolicyProbeResult wrong =
        inferPolicy(factoryFor(ReplacementPolicy::kRandom, 4242));
    EXPECT_TRUE(wrong.matches.empty());
}

TEST(PolicyProbe, DescribeRendersOneCharPerAccess)
{
    ProbeSignature signature;
    signature.bits = {true, false, true};
    EXPECT_EQ(signature.describe(), "101");
    const ProbeSignature real =
        probeSignature(factoryFor(ReplacementPolicy::kLru));
    EXPECT_EQ(real.describe().size(), real.bits.size());
}

/** An off-zoo policy should be recognised as matching nothing. */
class MruTarget final : public PolicyProbeTarget
{
  public:
    explicit MruTarget(const CacheConfig &config)
        : ways_(config.associativity),
          sets_(config.setCount()),
          tags_(static_cast<std::size_t>(ways_) * sets_,
                kInvalidLineAddr),
          last_(static_cast<std::size_t>(sets_), 0)
    {
    }

    bool
    access(std::uint64_t line_addr) override
    {
        const std::uint32_t set =
            static_cast<std::uint32_t>(line_addr % sets_);
        std::uint64_t *base =
            &tags_[static_cast<std::size_t>(set) * ways_];
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == line_addr) {
                last_[set] = w;
                return true;
            }
        }
        std::uint32_t way = ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (base[w] == kInvalidLineAddr) {
                way = w;
                break;
            }
        }
        if (way == ways_)
            way = last_[set]; // evict the most recently used line
        base[way] = line_addr;
        last_[set] = way;
        return false;
    }

    void
    reset() override
    {
        tags_.assign(tags_.size(), kInvalidLineAddr);
        last_.assign(last_.size(), 0);
    }

  private:
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint32_t> last_;
};

TEST(PolicyProbe, ForeignPolicyMatchesNothing)
{
    const PolicyProbeResult result =
        inferPolicy([](const CacheConfig &geometry) {
            return std::unique_ptr<PolicyProbeTarget>(
                new MruTarget(geometry));
        });
    EXPECT_TRUE(result.matches.empty());
}

} // namespace
} // namespace topo
