/**
 * @file
 * Tests for the Section 5.1 multiplicative profile perturbation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "topo/profile/perturb.hh"
#include "topo/util/error.hh"
#include "topo/util/stats.hh"

namespace topo
{
namespace
{

WeightedGraph
denseGraph(std::size_t n)
{
    WeightedGraph g(n);
    for (BlockId u = 0; u < n; ++u) {
        for (BlockId v = u + 1; v < n; ++v)
            g.addWeight(u, v, 1.0 + u * 10.0 + v);
    }
    return g;
}

TEST(Perturb, ZeroScaleIsIdentity)
{
    const WeightedGraph g = denseGraph(6);
    Rng rng(1);
    const WeightedGraph noisy = perturb(g, 0.0, rng);
    for (BlockId u = 0; u < 6; ++u) {
        for (BlockId v = u + 1; v < 6; ++v)
            EXPECT_DOUBLE_EQ(noisy.weight(u, v), g.weight(u, v));
    }
}

TEST(Perturb, PreservesStructure)
{
    const WeightedGraph g = denseGraph(8);
    Rng rng(2);
    const WeightedGraph noisy = perturb(g, 0.5, rng);
    EXPECT_EQ(noisy.nodeCount(), g.nodeCount());
    EXPECT_EQ(noisy.edgeCount(), g.edgeCount());
    for (BlockId u = 0; u < 8; ++u) {
        for (BlockId v = u + 1; v < 8; ++v)
            EXPECT_EQ(noisy.hasEdge(u, v), g.hasEdge(u, v));
    }
}

TEST(Perturb, WeightsStayPositive)
{
    // The paper's reason for multiplicative noise: no negative weights.
    const WeightedGraph g = denseGraph(10);
    Rng rng(3);
    const WeightedGraph noisy = perturb(g, 2.0, rng);
    for (const auto &e : noisy.edges())
        EXPECT_GT(e.weight, 0.0);
}

TEST(Perturb, DeterministicForSeed)
{
    const WeightedGraph g = denseGraph(7);
    Rng a(42), b(42);
    const WeightedGraph n1 = perturb(g, 0.1, a);
    const WeightedGraph n2 = perturb(g, 0.1, b);
    for (const auto &e : n1.edges())
        EXPECT_DOUBLE_EQ(e.weight, n2.weight(e.u, e.v));
}

TEST(Perturb, LogRatiosMatchScale)
{
    // log(w'/w) should be N(0, s^2).
    WeightedGraph g(80);
    for (BlockId u = 0; u + 1 < 80; ++u)
        g.addWeight(u, u + 1, 100.0);
    const double s = 0.1;
    RunningStats stats;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        Rng rng(seed);
        const WeightedGraph noisy = perturb(g, s, rng);
        for (const auto &e : noisy.edges())
            stats.add(std::log(e.weight / 100.0));
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.stddev(), s, 0.01);
}

TEST(Perturb, SelfScalingAcrossMagnitudes)
{
    // The relative spread is independent of the initial weight.
    WeightedGraph g(4);
    g.addWeight(0, 1, 1.0);
    g.addWeight(2, 3, 1.0e9);
    RunningStats small_ratio, big_ratio;
    for (std::uint64_t seed = 0; seed < 2000; ++seed) {
        Rng rng(seed);
        const WeightedGraph noisy = perturb(g, 0.3, rng);
        small_ratio.add(noisy.weight(0, 1) / 1.0);
        big_ratio.add(noisy.weight(2, 3) / 1.0e9);
    }
    EXPECT_NEAR(small_ratio.mean(), big_ratio.mean(), 0.05);
    EXPECT_NEAR(small_ratio.stddev(), big_ratio.stddev(), 0.05);
}

TEST(Perturb, NegativeScaleRejected)
{
    const WeightedGraph g = denseGraph(3);
    Rng rng(1);
    EXPECT_THROW(perturb(g, -0.1, rng), TopoError);
}

} // namespace
} // namespace topo
