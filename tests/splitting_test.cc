/**
 * @file
 * Tests for procedure splitting (the Section 8 orthogonal technique):
 * the derived program, the chunk mapping, trace transformation, and
 * the end-to-end benefit when combined with GBSC.
 */

#include <gtest/gtest.h>

#include "topo/cache/simulate.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/splitting.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/util/error.hh"
#include "topo/workload/synthetic_program.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{
namespace
{

/** One procedure: hot prefix (0..255), cold tail (256..1023). */
struct TwoPartFixture
{
    Program program{"split"};
    ProcId f;
    ProcId g;
    Trace trace;

    TwoPartFixture()
        : f(program.addProcedure("f", 1024)),
          g(program.addProcedure("g", 512)),
          trace(2)
    {
        for (int i = 0; i < 10; ++i) {
            trace.append(f, 0, 256);  // hot chunk 0 of f
            trace.append(g, 0, 512);  // whole g
        }
    }
};

TEST(ChunkHeat, CountsBytesPerChunk)
{
    const TwoPartFixture fx;
    const ChunkMap chunks(fx.program, 256);
    const auto heat = chunkHeat(fx.program, chunks, fx.trace);
    EXPECT_EQ(heat[chunks.chunkId(fx.f, 0)], 2560u);
    EXPECT_EQ(heat[chunks.chunkId(fx.f, 1)], 0u);
    EXPECT_EQ(heat[chunks.chunkId(fx.g, 0)], 2560u);
    EXPECT_EQ(heat[chunks.chunkId(fx.g, 1)], 2560u);
}

TEST(ChunkHeat, SplitsRunsAtChunkBoundaries)
{
    Program p("h");
    const ProcId f = p.addProcedure("f", 1024);
    Trace t(1);
    t.append(f, 200, 200); // 200..399 spans chunks 0 and 1
    const ChunkMap chunks(p, 256);
    const auto heat = chunkHeat(p, chunks, t);
    EXPECT_EQ(heat[chunks.chunkId(f, 0)], 56u);  // 200..255
    EXPECT_EQ(heat[chunks.chunkId(f, 1)], 144u); // 256..399
}

TEST(Splitting, SeparatesHotAndColdChunks)
{
    const TwoPartFixture fx;
    const SplitProgram split = splitProcedures(fx.program, fx.trace);
    // f splits (hot 256 bytes, cold 768); g stays whole (all hot).
    EXPECT_EQ(split.splitCount(), 1u);
    EXPECT_EQ(split.coldBytes(), 768u);
    const auto &f_split = split.splitOf(fx.f);
    ASSERT_TRUE(f_split.wasSplit());
    EXPECT_EQ(split.program().proc(f_split.hot).size_bytes, 256u);
    EXPECT_EQ(split.program().proc(f_split.hot).name, "f.hot");
    EXPECT_EQ(split.program().proc(f_split.cold).size_bytes, 768u);
    const auto &g_split = split.splitOf(fx.g);
    EXPECT_FALSE(g_split.wasSplit());
    EXPECT_EQ(split.program().proc(g_split.hot).name, "g");
    // Total size preserved.
    EXPECT_EQ(split.program().totalSize(), fx.program.totalSize());
}

TEST(Splitting, UntouchedProcedureAllCold)
{
    Program p("c");
    const ProcId f = p.addProcedure("f", 512);
    const ProcId dead = p.addProcedure("dead", 512);
    Trace t(2);
    t.append(f, 0, 512);
    const SplitProgram split = splitProcedures(p, t);
    const auto &dead_split = split.splitOf(dead);
    EXPECT_EQ(dead_split.hot, kInvalidProc);
    ASSERT_NE(dead_split.cold, kInvalidProc);
    EXPECT_EQ(split.program().proc(dead_split.cold).name, "dead");
}

TEST(Splitting, TransformRemapsAndCoalesces)
{
    const TwoPartFixture fx;
    const SplitProgram split = splitProcedures(fx.program, fx.trace);
    const Trace derived = split.transform(fx.trace);
    derived.validate(split.program());
    // Same number of runs (each original run maps into one derived
    // procedure contiguously here) and same total bytes.
    const TraceStats before = computeTraceStats(fx.program, fx.trace);
    const TraceStats after =
        computeTraceStats(split.program(), derived);
    EXPECT_EQ(before.total_bytes, after.total_bytes);
    EXPECT_EQ(derived.size(), fx.trace.size());
    // All of f's activity landed on f.hot.
    const auto &f_split = split.splitOf(fx.f);
    EXPECT_EQ(after.bytes_fetched[f_split.hot],
              before.bytes_fetched[fx.f]);
}

TEST(Splitting, TransformDividesCrossBoundaryRuns)
{
    // Execution touching hot and cold chunks of the same procedure
    // must be divided into two derived runs.
    Program p("x");
    const ProcId f = p.addProcedure("f", 512);
    Trace training(1);
    training.append(f, 0, 256); // only chunk 0 is hot
    const SplitProgram split = splitProcedures(p, training);
    ASSERT_TRUE(split.splitOf(f).wasSplit());

    Trace full(1);
    full.append(f, 0, 512); // spans hot and cold
    const Trace derived = split.transform(full);
    derived.validate(split.program());
    ASSERT_EQ(derived.size(), 2u);
    EXPECT_EQ(derived.events()[0].proc, split.splitOf(f).hot);
    EXPECT_EQ(derived.events()[0].length, 256u);
    EXPECT_EQ(derived.events()[1].proc, split.splitOf(f).cold);
    EXPECT_EQ(derived.events()[1].length, 256u);
}

TEST(Splitting, TransformRejectsForeignTrace)
{
    const TwoPartFixture fx;
    const SplitProgram split = splitProcedures(fx.program, fx.trace);
    Trace foreign(5);
    EXPECT_THROW(split.transform(foreign), TopoError);
}

TEST(Explode, OneProcedurePerChunk)
{
    Program p("e");
    const ProcId f = p.addProcedure("f", 600); // 3 chunks of 256
    const ProcId g = p.addProcedure("g", 100); // 1 chunk
    const SplitProgram exploded = explodeProcedures(p, 256);
    EXPECT_EQ(exploded.program().procCount(), 4u);
    EXPECT_EQ(exploded.program().totalSize(), p.totalSize());
    EXPECT_EQ(exploded.program().proc(0).name, "f.0");
    EXPECT_EQ(exploded.program().proc(2).size_bytes, 88u); // tail
    EXPECT_EQ(exploded.splitCount(), 1u); // only f was divided
    EXPECT_NE(exploded.splitOf(f).hot, kInvalidProc);
    EXPECT_NE(exploded.splitOf(g).hot, kInvalidProc);
}

TEST(Explode, TransformSplitsRunsPerChunk)
{
    Program p("e");
    const ProcId f = p.addProcedure("f", 600);
    const SplitProgram exploded = explodeProcedures(p, 256);
    Trace t(1);
    t.append(f, 100, 400); // crosses chunks 0,1 (100..499)
    const Trace derived = exploded.transform(t);
    derived.validate(exploded.program());
    ASSERT_EQ(derived.size(), 2u);
    EXPECT_EQ(derived.events()[0].offset, 100u);
    EXPECT_EQ(derived.events()[0].length, 156u);
    EXPECT_EQ(derived.events()[1].offset, 0u);
    EXPECT_EQ(derived.events()[1].length, 244u);
    // Total bytes preserved.
    EXPECT_EQ(derived.events()[0].length + derived.events()[1].length,
              400u);
}

TEST(Splitting, EndToEndReducesHotFootprintAndMissRate)
{
    // A workload whose procedures have large cold tails: splitting
    // must shrink the popular footprint and not hurt the miss rate.
    SyntheticSpec spec;
    spec.name = "tails";
    spec.proc_count = 50;
    spec.total_bytes = 150 * 1024;
    spec.popular_count = 16;
    spec.popular_bytes = 48 * 1024;
    spec.phase_count = 3;
    spec.ranks = 3;
    spec.seed = 77;
    const WorkloadModel model = buildSyntheticWorkload(spec);
    WorkloadInput input;
    input.seed = 78;
    input.target_runs = 30000;
    const Trace trace = synthesizeTrace(model, input);

    const CacheConfig cache{4096, 32, 1};
    auto gbsc_mr = [&](const Program &prog, const Trace &t) {
        const ChunkMap chunks(prog, 256);
        TrgBuildOptions opts;
        opts.byte_budget = 2 * cache.size_bytes;
        const TrgBuildResult trgs = buildTrgs(prog, chunks, t, opts);
        PlacementContext ctx;
        ctx.program = &prog;
        ctx.cache = cache;
        ctx.chunks = &chunks;
        ctx.trg_select = &trgs.select;
        ctx.trg_place = &trgs.place;
        const Gbsc gbsc;
        const Layout layout = gbsc.place(ctx);
        const FetchStream stream(prog, t, cache.line_bytes);
        return layoutMissRate(prog, layout, stream, cache);
    };

    const double plain = gbsc_mr(model.program, trace);
    const SplitProgram split = splitProcedures(model.program, trace);
    const Trace derived = split.transform(trace);
    const double with_split = gbsc_mr(split.program(), derived);
    // Splitting must not hurt; usually it helps by packing hot code.
    EXPECT_LE(with_split, plain * 1.02);
}

} // namespace
} // namespace topo
