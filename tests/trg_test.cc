/**
 * @file
 * Tests for TRG construction (Section 3), including the paper's
 * Figure 1/2 qualitative claims and the chunk-granularity TRG_place.
 */

#include <gtest/gtest.h>

#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/util/rng.hh"
#include "topo/workload/figure1.hh"

namespace topo
{
namespace
{

TrgBuildOptions
figure1Options(const Figure1Example &ex)
{
    TrgBuildOptions opts;
    opts.byte_budget = 2 * ex.cache.size_bytes;
    return opts;
}

TEST(Trg, Figure2SiblingEdgesAppearOnlyWithInterleaving)
{
    const Figure1Example ex = makeFigure1Example();
    const ChunkMap chunks(ex.program, 256);

    // Trace #2 (phased): X and Y never interleave, so the TRG must
    // contain edges (X,Z) and (Y,Z) but only a negligible (X,Y)
    // weight (one phase transition at most).
    const TrgBuildResult trg2 =
        buildTrgs(ex.program, chunks, ex.trace2(), figure1Options(ex));
    EXPECT_GT(trg2.select.weight(ex.m, ex.x), 0.0);
    EXPECT_GT(trg2.select.weight(ex.m, ex.y), 0.0);
    EXPECT_GT(trg2.select.weight(ex.m, ex.z), 0.0);
    EXPECT_GT(trg2.select.weight(ex.x, ex.z), 0.0);
    EXPECT_GT(trg2.select.weight(ex.y, ex.z), 0.0);
    // X/Y interleave only around the single phase boundary.
    EXPECT_LE(trg2.select.weight(ex.x, ex.y), 2.0);

    // Trace #1 (alternating): X and Y interleave constantly.
    const TrgBuildResult trg1 =
        buildTrgs(ex.program, chunks, ex.trace1(), figure1Options(ex));
    EXPECT_GT(trg1.select.weight(ex.x, ex.y),
              10.0 * trg2.select.weight(ex.x, ex.y));
}

TEST(Trg, WcgIdenticalForBothTracesButTrgDiffers)
{
    // The motivating claim of Section 1: both traces produce the same
    // WCG, yet their TRGs differ.
    const Figure1Example ex = makeFigure1Example();
    const WeightedGraph wcg1 = buildWcg(ex.program, ex.trace1());
    const WeightedGraph wcg2 = buildWcg(ex.program, ex.trace2());
    for (ProcId a = 0; a < 4; ++a) {
        for (ProcId b = a + 1; b < 4; ++b)
            EXPECT_DOUBLE_EQ(wcg1.weight(a, b), wcg2.weight(a, b))
                << "(" << a << "," << b << ")";
    }
    const ChunkMap chunks(ex.program, 256);
    const TrgBuildResult trg1 =
        buildTrgs(ex.program, chunks, ex.trace1(), figure1Options(ex));
    const TrgBuildResult trg2 =
        buildTrgs(ex.program, chunks, ex.trace2(), figure1Options(ex));
    EXPECT_NE(trg1.select.weight(ex.x, ex.y),
              trg2.select.weight(ex.x, ex.y));
}

TEST(Trg, EdgeWeightCountsInterveningReferences)
{
    // Trace f g f: one edge increment (g between the two f's).
    Program p("t");
    const ProcId f = p.addProcedure("f", 32);
    const ProcId g = p.addProcedure("g", 32);
    Trace t(2);
    t.append(f, 0, 32);
    t.append(g, 0, 32);
    t.append(f, 0, 32);
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 1024;
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    EXPECT_DOUBLE_EQ(trg.select.weight(f, g), 1.0);
}

TEST(Trg, NoEdgeWithoutReuse)
{
    // Trace f g: g is never between two references to anything.
    Program p("t");
    const ProcId f = p.addProcedure("f", 32);
    const ProcId g = p.addProcedure("g", 32);
    Trace t(2);
    t.append(f, 0, 32);
    t.append(g, 0, 32);
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 1024;
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    EXPECT_DOUBLE_EQ(trg.select.weight(f, g), 0.0);
    EXPECT_EQ(trg.select.edgeCount(), 0u);
}

TEST(Trg, CapacityBoundPreventsDistantEdges)
{
    // f ... lots of unique code ... f: the second reference to f must
    // not create edges because f was evicted from Q (capacity, not
    // timely interleaving — Section 3).
    Program p("t");
    const ProcId f = p.addProcedure("f", 64);
    std::vector<ProcId> fillers;
    for (int i = 0; i < 20; ++i)
        fillers.push_back(p.addProcedure("u" + std::to_string(i), 512));
    Trace t(p.procCount());
    t.append(f, 0, 64);
    for (ProcId u : fillers)
        t.append(u, 0, 512);
    t.append(f, 0, 64);
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 2048; // far less than 20*512 bytes of filler
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    for (ProcId u : fillers)
        EXPECT_DOUBLE_EQ(trg.select.weight(f, u), 0.0);
}

TEST(Trg, PopularFilterDropsColdProcs)
{
    Program p("t");
    const ProcId f = p.addProcedure("f", 32);
    const ProcId g = p.addProcedure("g", 32);
    const ProcId cold = p.addProcedure("cold", 32);
    Trace t(3);
    t.append(f, 0, 32);
    t.append(cold, 0, 32);
    t.append(g, 0, 32);
    t.append(f, 0, 32);
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 1024;
    std::vector<bool> popular{true, true, false};
    opts.popular = &popular;
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    EXPECT_DOUBLE_EQ(trg.select.weight(f, g), 1.0);
    EXPECT_DOUBLE_EQ(trg.select.weight(f, cold), 0.0);
}

TEST(Trg, ChunkGranularityConnectsChunksNotJustProcs)
{
    // Two multi-chunk procedures alternating: TRG_place must connect
    // their chunks pairwise (the executed ones).
    Program p("t");
    const ProcId f = p.addProcedure("f", 512); // 2 chunks of 256
    const ProcId g = p.addProcedure("g", 512);
    Trace t(2);
    for (int i = 0; i < 5; ++i) {
        t.append(f, 0, 512);
        t.append(g, 0, 512);
    }
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = 8192;
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    const ChunkId f0 = chunks.chunkId(f, 0);
    const ChunkId f1 = chunks.chunkId(f, 1);
    const ChunkId g0 = chunks.chunkId(g, 0);
    EXPECT_GT(trg.place.weight(f0, g0), 0.0);
    EXPECT_GT(trg.place.weight(f1, g0), 0.0);
    // Within one pass through f, f0 is not between two f0 references.
    EXPECT_GT(trg.place.weight(f0, f1), 0.0);
}

TEST(Trg, AverageQueueSizeReported)
{
    const Figure1Example ex = makeFigure1Example();
    const ChunkMap chunks(ex.program, 256);
    const TrgBuildResult trg =
        buildTrgs(ex.program, chunks, ex.trace2(), figure1Options(ex));
    EXPECT_GT(trg.avg_queue_procs, 1.0);
    EXPECT_LE(trg.avg_queue_procs, 4.0);
    EXPECT_GT(trg.proc_steps, 0u);
}

TEST(Trg, ObserverSeesEverything)
{
    const Figure1Example ex = makeFigure1Example();
    const ChunkMap chunks(ex.program, 256);
    TrgBuildOptions opts = figure1Options(ex);
    std::size_t steps = 0;
    std::size_t with_prev = 0;
    opts.observer = [&](ProcId, bool had_prev,
                        const std::vector<BlockId> &,
                        const TemporalQueue &q) {
        ++steps;
        with_prev += had_prev;
        EXPECT_GE(q.size(), 1u);
    };
    const TrgBuildResult trg =
        buildTrgs(ex.program, chunks, ex.trace2(), opts);
    EXPECT_EQ(steps, trg.proc_steps);
    EXPECT_GT(with_prev, 0u);
}

/** Property: select-TRG weights are symmetric and non-negative. */
class TrgSymmetryTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrgSymmetryTest, SymmetricWeights)
{
    Program p("t");
    for (int i = 0; i < 12; ++i)
        p.addProcedure("p" + std::to_string(i), 64 + 16 * i);
    Trace t(p.procCount());
    Rng rng(GetParam());
    for (int i = 0; i < 3000; ++i) {
        const ProcId id = static_cast<ProcId>(rng.nextBelow(12));
        t.append(id, 0, p.proc(id).size_bytes);
    }
    const ChunkMap chunks(p, 256);
    TrgBuildOptions opts;
    opts.byte_budget = GetParam() * 128 + 256;
    const TrgBuildResult trg = buildTrgs(p, chunks, t, opts);
    for (ProcId a = 0; a < 12; ++a) {
        for (ProcId b = 0; b < 12; ++b) {
            EXPECT_DOUBLE_EQ(trg.select.weight(a, b),
                             trg.select.weight(b, a));
            EXPECT_GE(trg.select.weight(a, b), 0.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrgSymmetryTest,
                         ::testing::Values(1u, 2u, 3u, 8u));

} // namespace
} // namespace topo
