/**
 * @file
 * Tests of the taxonomy sink: hand-computed 3C classification on tiny
 * traces (pure-conflict ping-pong, pure-capacity streaming, an
 * all-compulsory cold run), a differential check of the Olken
 * order-statistic tree against a naive O(n) stack-distance reference,
 * disabled-observer result/allocation parity mirroring
 * attribution_test, per-window invariants, and the comparison-report
 * and artifact-validation surfaces built on top.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "topo/cache/simulate.hh"
#include "topo/cache/taxonomy.hh"
#include "topo/eval/report_gen.hh"
#include "topo/obs/timeline.hh"
#include "topo/util/error.hh"

namespace
{

/** Global allocation counter for the allocation-bound test. */
std::atomic<std::uint64_t> g_allocs{0};

} // namespace

// The full replacement set (array and nothrow forms included) so every
// allocation and deallocation pairs up on malloc/free — a partial set
// trips ASan's alloc-dealloc-mismatch checker in the sanitized build.
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *ptr = std::malloc(size))
        return ptr;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &tag) noexcept
{
    return operator new(size, tag);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    std::free(ptr);
}

namespace topo
{
namespace
{

/** Two one-line procedures that collide on frame 0 of a 2-frame cache. */
struct PingPongFixture
{
    Program program{"pingpong"};
    Layout layout;
    CacheConfig cache{64, 32, 1}; // 2 frames

    PingPongFixture()
    {
        program.addProcedure("A", 32);
        program.addProcedure("B", 32);
        layout = Layout::fromCacheOffsets(program, {0, 1}, {0, 0}, 32,
                                          cache.lineCount());
    }

    Trace
    alternating(int rounds) const
    {
        Trace trace(2);
        for (int i = 0; i < rounds; ++i) {
            trace.appendWhole(0, 32);
            trace.appendWhole(1, 32);
        }
        return trace;
    }
};

TEST(TaxonomyTest, PureConflictPingPong)
{
    const PingPongFixture fx;
    const int kRounds = 50;
    const Trace trace = fx.alternating(kRounds);
    const FetchStream stream(fx.program, trace, 32);

    TaxonomySink sink(fx.program, stream.programLineCount(), fx.cache);
    SimObservers observers;
    observers.taxonomy = &sink;
    const SimResult result = simulateLayout(
        fx.program, fx.layout, stream, fx.cache, false, nullptr,
        &observers);

    // Both lines fit a 2-line fully-associative cache (stack distance
    // is always 1), so beyond the two first touches every miss is the
    // layout's fault: pure conflict.
    EXPECT_EQ(result.misses, 2u * kRounds);
    EXPECT_EQ(sink.compulsory(), 2u);
    EXPECT_EQ(sink.capacity(), 0u);
    EXPECT_EQ(sink.conflict(), 2u * kRounds - 2);
    EXPECT_EQ(sink.classifiedMisses(), result.misses);

    // Per-procedure split: one cold fill each, the rest conflict.
    ASSERT_EQ(sink.conflictByProc().size(), 2u);
    EXPECT_EQ(sink.compulsoryByProc()[0], 1u);
    EXPECT_EQ(sink.compulsoryByProc()[1], 1u);
    EXPECT_EQ(sink.conflictByProc()[0],
              static_cast<std::uint64_t>(kRounds - 1));
    EXPECT_EQ(sink.conflictByProc()[1],
              static_cast<std::uint64_t>(kRounds - 1));
    EXPECT_EQ(sink.capacityByProc()[0], 0u);
    EXPECT_EQ(sink.capacityByProc()[1], 0u);

    // Reuse histogram: 2 cold touches, 98 accesses at distance 1.
    const auto &hist = sink.reuseHistogram();
    EXPECT_EQ(hist[kReuseColdBucket], 2u);
    EXPECT_EQ(hist[TaxonomySink::bucketOf(1)], 2u * kRounds - 2);

    const std::vector<ProcTaxonomy> top = sink.topProcs(10);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].proc, 0u); // equal conflicts, id breaks the tie
    EXPECT_EQ(top[0].conflict, static_cast<std::uint64_t>(kRounds - 1));
}

TEST(TaxonomyTest, TwoWayCacheAbsorbsTheConflict)
{
    const PingPongFixture fx;
    const CacheConfig two_way{128, 32, 2};
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);

    TaxonomySink sink(fx.program, stream.programLineCount(), two_way);
    SimObservers observers;
    observers.taxonomy = &sink;
    const SimResult result = simulateLayout(
        fx.program, fx.layout, stream, two_way, false, nullptr,
        &observers);

    // The shared set holds both lines: only the two first touches
    // miss, and first touches are compulsory by definition.
    EXPECT_EQ(result.misses, 2u);
    EXPECT_EQ(sink.compulsory(), 2u);
    EXPECT_EQ(sink.capacity(), 0u);
    EXPECT_EQ(sink.conflict(), 0u);
}

TEST(TaxonomyTest, PureCapacityStreamingLoop)
{
    // One 4-line procedure cyclically swept over a 2-line cache: every
    // re-reference has stack distance 3 >= 2, so even a
    // fully-associative cache of this capacity would miss — pure
    // capacity, never conflict, whatever the layout.
    Program program{"stream"};
    program.addProcedure("S", 128); // 4 lines
    const CacheConfig cache{64, 32, 1};
    const Layout layout = Layout::fromCacheOffsets(
        program, {0}, {0}, 32, cache.lineCount());

    const int kSweeps = 25;
    Trace trace(1);
    for (int i = 0; i < kSweeps; ++i)
        trace.appendWhole(0, 128);
    const FetchStream stream(program, trace, 32);

    TaxonomySink sink(program, stream.programLineCount(), cache);
    SimObservers observers;
    observers.taxonomy = &sink;
    const SimResult result = simulateLayout(
        program, layout, stream, cache, false, nullptr, &observers);

    EXPECT_EQ(result.accesses, 4u * kSweeps);
    EXPECT_EQ(result.misses, 4u * kSweeps);
    EXPECT_EQ(sink.compulsory(), 4u);
    EXPECT_EQ(sink.capacity(), 4u * kSweeps - 4);
    EXPECT_EQ(sink.conflict(), 0u);
    EXPECT_EQ(sink.classifiedMisses(), result.misses);

    // Every re-reference sits at stack distance 3.
    EXPECT_EQ(sink.reuseHistogram()[TaxonomySink::bucketOf(3)],
              4u * kSweeps - 4);
}

TEST(TaxonomyTest, AllCompulsoryColdRun)
{
    // Touch every line exactly once: every miss is a first touch.
    Program program{"cold"};
    program.addProcedure("C", 256); // 8 lines
    const CacheConfig cache{64, 32, 1};
    const Layout layout = Layout::fromCacheOffsets(
        program, {0}, {0}, 32, cache.lineCount());

    Trace trace(1);
    trace.appendWhole(0, 256);
    const FetchStream stream(program, trace, 32);

    TaxonomySink sink(program, stream.programLineCount(), cache);
    SimObservers observers;
    observers.taxonomy = &sink;
    const SimResult result = simulateLayout(
        program, layout, stream, cache, false, nullptr, &observers);

    EXPECT_EQ(result.misses, 8u);
    EXPECT_EQ(sink.compulsory(), 8u);
    EXPECT_EQ(sink.capacity(), 0u);
    EXPECT_EQ(sink.conflict(), 0u);
    EXPECT_EQ(sink.reuseHistogram()[kReuseColdBucket], 8u);
}

TEST(TaxonomyTest, OrderStatTreeMatchesNaiveReference)
{
    // Drive the tree through the exact op mix Olken's algorithm
    // performs — countGreater(old), erase(old), insert(new with a
    // monotonically increasing key) — and compare every count against
    // a sorted-vector reference.
    OrderStatTree tree;
    std::vector<std::uint64_t> reference; // sorted ascending

    std::uint64_t state = 0x243f6a8885a308d3ull; // deterministic rng
    auto next_rand = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };

    std::uint64_t now = 0;
    std::vector<std::uint64_t> live;
    for (int step = 0; step < 5000; ++step) {
        if (!live.empty() && next_rand() % 2 == 0) {
            const std::size_t pick = next_rand() % live.size();
            const std::uint64_t key = live[pick];
            const auto it = std::lower_bound(reference.begin(),
                                             reference.end(), key);
            const std::uint64_t expected = static_cast<std::uint64_t>(
                reference.end() - it - 1);
            ASSERT_EQ(tree.countGreater(key), expected);
            tree.erase(key);
            reference.erase(it);
            live.erase(live.begin() +
                       static_cast<std::ptrdiff_t>(pick));
        } else {
            ++now;
            tree.insert(now);
            reference.push_back(now); // keys ascend: stays sorted
            live.push_back(now);
        }
        ASSERT_EQ(tree.size(), reference.size());
    }
}

TEST(TaxonomyTest, ReuseHistogramMatchesNaiveStackDistance)
{
    // Differential check at the sink level: a naive LRU stack (O(n)
    // per access) classifies a pseudo-random access stream; the sink's
    // Olken-tree histogram and 3C tallies must match bucket for
    // bucket.
    const std::uint32_t kLines = 150;
    Program program{"rand"};
    program.addProcedure("R", kLines * 32);
    const CacheConfig cache{8 * 32, 32, 1}; // 8-line shadow

    TaxonomySink sink(program, kLines, cache);
    std::array<std::uint64_t, kReuseBucketCount> naive_hist{};
    std::uint64_t naive_compulsory = 0, naive_capacity = 0,
                  naive_conflict = 0;
    std::vector<std::uint32_t> stack; // most recent first

    std::uint64_t state = 0x13198a2e03707344ull;
    auto next_rand = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };

    for (int step = 0; step < 10000; ++step) {
        // Skewed line choice so some lines re-reference at short
        // distances and others stream; alternate hit/miss claims to
        // exercise every classification path.
        const std::uint32_t line = static_cast<std::uint32_t>(
            next_rand() % (step % 3 == 0 ? kLines : 16));
        const bool real_hit = next_rand() % 4 == 0;
        const TaxonomyEvent event = sink.record(0, line, real_hit);

        const auto it = std::find(stack.begin(), stack.end(), line);
        std::size_t naive_bucket;
        if (it == stack.end()) {
            naive_bucket = kReuseColdBucket;
            if (!real_hit)
                ++naive_compulsory;
        } else {
            const std::uint64_t distance =
                static_cast<std::uint64_t>(it - stack.begin());
            naive_bucket = TaxonomySink::bucketOf(distance);
            if (!real_hit) {
                if (distance < cache.lineCount())
                    ++naive_conflict;
                else
                    ++naive_capacity;
            }
            stack.erase(it);
        }
        stack.insert(stack.begin(), line);
        ++naive_hist[naive_bucket];
        ASSERT_EQ(event.reuse_bucket, naive_bucket) << "step " << step;
    }

    EXPECT_EQ(sink.compulsory(), naive_compulsory);
    EXPECT_EQ(sink.capacity(), naive_capacity);
    EXPECT_EQ(sink.conflict(), naive_conflict);
    for (std::size_t b = 0; b < kReuseBucketCount; ++b)
        EXPECT_EQ(sink.reuseHistogram()[b], naive_hist[b])
            << "bucket " << b;
}

TEST(TaxonomyTest, Log2BucketsAndMetricNames)
{
    EXPECT_EQ(TaxonomySink::bucketOf(0), 0);
    EXPECT_EQ(TaxonomySink::bucketOf(1), 1);
    EXPECT_EQ(TaxonomySink::bucketOf(2), 2);
    EXPECT_EQ(TaxonomySink::bucketOf(3), 2);
    EXPECT_EQ(TaxonomySink::bucketOf(4), 3);
    EXPECT_EQ(TaxonomySink::bucketOf(7), 3);
    EXPECT_EQ(TaxonomySink::bucketOf(8), 4);
    EXPECT_EQ(TaxonomySink::bucketOf(~std::uint64_t{0}), 32);
    EXPECT_EQ(reuseBucketMetricName(0), "taxonomy.reuse.b00");
    EXPECT_EQ(reuseBucketMetricName(32), "taxonomy.reuse.b32");
    EXPECT_EQ(reuseBucketMetricName(kReuseColdBucket),
              "taxonomy.reuse.cold");
    EXPECT_EQ(reuseBucketLabel(0), "0");
    EXPECT_EQ(reuseBucketLabel(kReuseColdBucket), "cold");
}

TEST(TaxonomyTest, DisabledObserverLeavesResultsIdentical)
{
    const PingPongFixture fx;
    const Trace trace = fx.alternating(200);
    const FetchStream stream(fx.program, trace, 32);

    const SimResult plain =
        simulateLayout(fx.program, fx.layout, stream, fx.cache, true);

    TaxonomySink sink(fx.program, stream.programLineCount(), fx.cache);
    TimelineRecorder timeline(16, fx.program.procCount());
    SimObservers observers;
    observers.taxonomy = &sink;
    observers.timeline = &timeline;
    const SimResult observed = simulateLayout(
        fx.program, fx.layout, stream, fx.cache, true, nullptr,
        &observers);

    EXPECT_EQ(plain.accesses, observed.accesses);
    EXPECT_EQ(plain.misses, observed.misses);
    EXPECT_EQ(plain.evictions, observed.evictions);
    EXPECT_EQ(plain.misses_by_proc, observed.misses_by_proc);
    EXPECT_EQ(sink.classifiedMisses(), observed.misses);
}

TEST(TaxonomyTest, PerWindowInvariantsHold)
{
    const PingPongFixture fx;
    const Trace trace = fx.alternating(100);
    const FetchStream stream(fx.program, trace, 32);

    TaxonomySink sink(fx.program, stream.programLineCount(), fx.cache);
    TimelineRecorder timeline(16, fx.program.procCount());
    SimObservers observers;
    observers.taxonomy = &sink;
    observers.timeline = &timeline;
    simulateLayout(fx.program, fx.layout, stream, fx.cache, false,
                   nullptr, &observers);

    EXPECT_TRUE(timeline.taxonomyArmed());
    std::uint64_t total_compulsory = 0, total_capacity = 0,
                  total_conflict = 0, total_hist = 0;
    for (const TimelineSample &sample : timeline.samples()) {
        // Window-local 3C sums to the window's misses; the window
        // histogram covers every access in the window.
        EXPECT_EQ(sample.compulsory + sample.capacity + sample.conflict,
                  sample.misses);
        std::uint64_t hist_sum = 0;
        for (const std::uint32_t count : sample.reuse_hist)
            hist_sum += count;
        EXPECT_EQ(hist_sum, sample.accesses);
        total_compulsory += sample.compulsory;
        total_capacity += sample.capacity;
        total_conflict += sample.conflict;
        total_hist += hist_sum;
    }
    EXPECT_EQ(total_compulsory, sink.compulsory());
    EXPECT_EQ(total_capacity, sink.capacity());
    EXPECT_EQ(total_conflict, sink.conflict());
    EXPECT_EQ(total_hist, 200u);

    // The windowed samples serialise with the taxonomy columns.
    const JsonValue json =
        JsonValue::parse(timeline.toJson().toString());
    const JsonValue &first = json.at("samples").at(std::size_t{0});
    EXPECT_NE(first.find("conflict"), nullptr);
    EXPECT_EQ(first.at("reuse_hist").size(), kReuseBucketCount);
}

TEST(TaxonomyTest, HotLoopIsAllocationFree)
{
    const PingPongFixture fx;
    const Trace small_trace = fx.alternating(100);
    const Trace big_trace = fx.alternating(4000);
    const FetchStream small_stream(fx.program, small_trace, 32);
    const FetchStream big_stream(fx.program, big_trace, 32);

    auto count_allocs = [&](const FetchStream &stream) {
        TaxonomySink sink(fx.program, stream.programLineCount(),
                          fx.cache);
        TimelineRecorder timeline(64, fx.program.procCount());
        SimObservers observers;
        observers.taxonomy = &sink;
        observers.timeline = &timeline;
        const std::uint64_t before =
            g_allocs.load(std::memory_order_relaxed);
        simulateLayout(fx.program, fx.layout, stream, fx.cache, false,
                       nullptr, &observers);
        return g_allocs.load(std::memory_order_relaxed) - before;
    };

    // Warm up registry entries, then compare: the 40x stream re-uses
    // the tree's free list for every erase/insert cycle, so only the
    // timeline's window vector may grow.
    count_allocs(small_stream);
    const std::uint64_t small_allocs = count_allocs(small_stream);
    const std::uint64_t big_allocs = count_allocs(big_stream);
    EXPECT_LE(big_allocs, small_allocs + 32);
}

TEST(TaxonomyTest, ObserverRejectsCheckpointControl)
{
    const PingPongFixture fx;
    const Trace trace = fx.alternating(5);
    const FetchStream stream(fx.program, trace, 32);
    TaxonomySink sink(fx.program, stream.programLineCount(), fx.cache);
    SimObservers observers;
    observers.taxonomy = &sink;
    SimControl control;
    control.checkpoint_path = "/tmp/unused.ckpt";
    control.checkpoint_every = 1;
    EXPECT_THROW(simulateLayout(fx.program, fx.layout, stream, fx.cache,
                                false, &control, &observers),
                 TopoError);
}

TEST(TaxonomyReportTest, ComparisonReportSplitsConflictFromCapacity)
{
    const PingPongFixture fx;
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);

    const Layout apart = Layout::fromCacheOffsets(
        fx.program, {0, 1}, {0, 1}, 32, fx.cache.lineCount());

    ReportOptions options;
    options.timeline_window = 10;
    const ComparisonReport report = buildComparisonReport(
        fx.program, stream, fx.cache,
        {{"overlapped", fx.layout}, {"separated", apart}}, options);

    ASSERT_EQ(report.layouts.size(), 2u);
    // Compulsory and the reuse profile are stream properties —
    // identical across candidates; the conflict column is what the
    // better layout eliminates.
    EXPECT_EQ(report.layouts[0].compulsory, 2u);
    EXPECT_EQ(report.layouts[1].compulsory, 2u);
    EXPECT_EQ(report.layouts[0].reuse_hist,
              report.layouts[1].reuse_hist);
    EXPECT_EQ(report.layouts[0].conflict, 98u);
    EXPECT_EQ(report.layouts[1].conflict, 0u);
    EXPECT_EQ(report.layouts[0].compulsory + report.layouts[0].capacity +
                  report.layouts[0].conflict,
              report.layouts[0].misses);

    std::ostringstream md;
    renderReportMarkdown(report, md);
    EXPECT_NE(md.str().find("Miss taxonomy (3C)"), std::string::npos);
    EXPECT_NE(md.str().find("Reuse-distance profile"),
              std::string::npos);
}

TEST(TaxonomyReportTest, ValidatorAcceptsRealAndRejectsBrokenDocs)
{
    const PingPongFixture fx;
    const Trace trace = fx.alternating(50);
    const FetchStream stream(fx.program, trace, 32);
    ReportOptions options;
    options.timeline_window = 10;
    const ComparisonReport report = buildComparisonReport(
        fx.program, stream, fx.cache, {{"overlapped", fx.layout}},
        options);

    JsonValue doc =
        JsonValue::parse(reportToJson(report).toString());
    EXPECT_EQ(validateArtifactJson(doc), "topo_report");

    // Breaking the 3C sum must be caught...
    {
        JsonValue broken =
            JsonValue::parse(reportToJson(report).toString());
        JsonValue layouts = broken.at("layouts");
        JsonValue row = layouts.at(std::size_t{0});
        JsonValue taxonomy = row.at("taxonomy");
        taxonomy.set("conflict", JsonValue::number(1.0));
        row.set("taxonomy", std::move(taxonomy));
        JsonValue fixed_layouts = JsonValue::array();
        fixed_layouts.push(std::move(row));
        broken.set("layouts", std::move(fixed_layouts));
        EXPECT_THROW(validateArtifactJson(broken), TopoError);
    }
    // ...and so must an unknown key.
    {
        JsonValue broken =
            JsonValue::parse(reportToJson(report).toString());
        broken.set("surprise", JsonValue::number(1.0));
        EXPECT_THROW(validateArtifactJson(broken), TopoError);
    }
    // Unrecognised document types are corrupt, not silently valid.
    JsonValue stranger = JsonValue::object();
    stranger.set("anything", JsonValue::number(1.0));
    EXPECT_THROW(validateArtifactJson(stranger), TopoError);
}

} // namespace
} // namespace topo
