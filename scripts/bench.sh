#!/bin/sh
# Performance snapshot: run every placement algorithm on a paper-suite
# benchmark and record wall time, blocks/sec, peak RSS, and miss rates
# as BENCH_<date>.json (the topo_bench schema, parsable by the in-tree
# JSON parser; validate with `topo_report --check-json=FILE`).
#
# Usage: scripts/bench.sh [out.json] [build-dir]
#   out.json   output path (default: BENCH_$(date -u +%Y%m%d).json)
#   build-dir  existing/created build tree (default: build)
#
# Schema (stable; consumed by scripts/perf_gate.sh): top-level
# topo_bench=1, date, benchmarks, trace_scale, cache, jobs, threads,
# peak_rss_kb, and runs[] of {benchmark, algorithm, accesses, misses,
# miss_rate, wall_ms, blocks_per_sec}. The committed reference
# snapshot is BENCH_baseline.json; regenerate it with
#   TOPO_BENCH_JOBS=1 scripts/bench.sh BENCH_baseline.json
# after intentional perf changes (single-job wall times are the
# stable ones — concurrent grid cells perturb per-run throughput).
# Knobs: TOPO_BENCH_SCALE (trace scale, default 0.05),
#        TOPO_BENCH_NAMES (comma list, default m88ksim,vortex),
#        TOPO_BENCH_JOBS (worker threads, default: hardware concurrency;
#        results are jobs-invariant, only the wall times change),
#        TOPO_BENCH_TAXONOMY (1 = attach the 3C miss taxonomy to every
#        run; off by default so wall times stay comparable with
#        BENCH_baseline.json, which records the plain batched replay),
#        TOPO_BENCH_SAMPLE (1 = representative-interval sampling with
#        --sample-verify: every run carries a sampling block with the
#        estimated AND exact miss rates plus the measured error; off
#        by default — sampled snapshots are a different measurement,
#        not comparable to exact baselines row-for-row)
set -e

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_$(date -u +%Y%m%d).json}"
BUILD="${2:-build}"
SCALE="${TOPO_BENCH_SCALE:-0.05}"
NAMES="${TOPO_BENCH_NAMES:-m88ksim,vortex}"
JOBS="${TOPO_BENCH_JOBS:-$(nproc 2> /dev/null || echo 1)}"
TAXONOMY_FLAG=""
[ "${TOPO_BENCH_TAXONOMY:-0}" = "1" ] && TAXONOMY_FLAG="--taxonomy"
SAMPLE_FLAGS=""
[ "${TOPO_BENCH_SAMPLE:-0}" = "1" ] &&
    SAMPLE_FLAGS="--sample=simpoint --sample-verify"

echo "== build ($BUILD) =="
cmake -B "$BUILD" -S . > /dev/null
cmake --build "$BUILD" -j --target topo_sim topo_report > /dev/null

echo "== bench ($NAMES, scale $SCALE, jobs $JOBS) =="
"$BUILD/tools/topo_sim" --benchmark="$NAMES" \
    --algorithms=default,ph,hkc,gbsc --trace-scale="$SCALE" \
    --jobs="$JOBS" $TAXONOMY_FLAG $SAMPLE_FLAGS --bench-out="$OUT"

"$BUILD/tools/topo_report" --check-json="$OUT" > /dev/null || {
    echo "FAIL: $OUT is not valid JSON"; exit 1; }
echo "OK: wrote $OUT"
