#!/bin/sh
# Strict pre-merge gate: configure with warnings-as-errors, build
# everything, run the test suite, and smoke-test the metrics output.
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -e

cd "$(dirname "$0")/.."
BUILD="${1:-build-check}"

echo "== configure ($BUILD, -Wall -Wextra -Werror) =="
cmake -B "$BUILD" -S . \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" > /dev/null

echo "== build =="
cmake --build "$BUILD" -j

echo "== test =="
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== metrics smoke =="
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
"$BUILD/tools/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --metrics-out="$WORK/metrics.json" > /dev/null
for key in '"topo_metrics": 1' '"phase.synthesis.ms"' \
    '"phase.trg_build.ms"' '"phase.placement.gbsc.ms"' \
    '"phase.simulate.ms"' '"cache.misses"'; do
    grep -q "$key" "$WORK/metrics.json" || {
        echo "FAIL: metrics snapshot missing $key"; exit 1; }
done

echo "OK: all checks passed"
