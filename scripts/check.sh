#!/bin/sh
# Strict pre-merge gate: configure with warnings-as-errors, build
# everything, run the test suite, and smoke-test the metrics output.
# Then rebuild under ASan+UBSan and run a deterministic fault-injection
# soak: every seeded fault plan must end in a clean exit code (0 on
# survival or recovery, 1/2 on rejected input) — never a sanitizer
# report, crash, or hang.
# Usage: scripts/check.sh [build-dir]   (default: build-check)
set -e

cd "$(dirname "$0")/.."
BUILD="${1:-build-check}"

echo "== configure ($BUILD, -Wall -Wextra -Werror) =="
cmake -B "$BUILD" -S . \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" > /dev/null

echo "== build =="
cmake --build "$BUILD" -j

echo "== test =="
ctest --test-dir "$BUILD" --output-on-failure -j

echo "== metrics smoke =="
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
"$BUILD/tools/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --taxonomy --metrics-out="$WORK/metrics.json" > /dev/null
for key in '"topo_metrics": 1' '"phase.synthesis.ms"' \
    '"phase.trg_build.ms"' '"phase.placement.gbsc.ms"' \
    '"phase.simulate.ms"' '"cache.misses"' \
    '"taxonomy.compulsory"' '"taxonomy.conflict"' \
    '"provenance"' '"git_sha"'; do
    grep -q "$key" "$WORK/metrics.json" || {
        echo "FAIL: metrics snapshot missing $key"; exit 1; }
done
"$BUILD/tools/topo_report" --check-json="$WORK/metrics.json" \
    > /dev/null || {
    echo "FAIL: metrics.json fails schema validation"; exit 1; }

echo "== report smoke =="
"$BUILD/tools/topo_report" --microsuite=thrash_pair \
    --algorithms=default,ph,gbsc --out="$WORK/report.md" \
    --json-out="$WORK/report.json" > /dev/null
grep -q "Top conflicting procedure pairs" "$WORK/report.md" || {
    echo "FAIL: report.md missing the conflict-pair section"; exit 1; }
"$BUILD/tools/topo_report" --check-json="$WORK/report.json" \
    > /dev/null || {
    echo "FAIL: report.json is not valid JSON"; exit 1; }

echo "== explain smoke =="
# Placement explainability end to end: {ph,gbsc} x assoc {1,2}
# decisions artifacts and attributed layout diffs. --check-json
# enforces the decision-record schema and the exact attribution-sum
# invariant (per-proc and per-set miss deltas each sum to the total
# miss delta); the jobs=1 / jobs=4 artifacts must be byte-identical.
"$BUILD/tools/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-program="$WORK/ex.prog" \
    --out-trace="$WORK/ex.trace" 2> /dev/null
for assoc in 1 2; do
    for alg in ph gbsc; do
        for jobs in 1 4; do
            "$BUILD/tools/topo_place" --program="$WORK/ex.prog" \
                --trace="$WORK/ex.trace" --algorithm="$alg" \
                --assoc="$assoc" --jobs="$jobs" \
                --out-layout="$WORK/ex_${alg}_a${assoc}_j${jobs}.layout" \
                --decisions-out="$WORK/ex_${alg}_a${assoc}_j${jobs}.json" \
                2> /dev/null
            "$BUILD/tools/topo_report" \
                --check-json="$WORK/ex_${alg}_a${assoc}_j${jobs}.json" \
                > /dev/null || {
                echo "FAIL: decisions ($alg assoc=$assoc jobs=$jobs)"
                exit 1; }
        done
        cmp -s "$WORK/ex_${alg}_a${assoc}_j1.json" \
            "$WORK/ex_${alg}_a${assoc}_j4.json" || {
            echo "FAIL: $alg assoc=$assoc decisions differ by jobs"
            exit 1; }
        grep -q "^!algorithm $alg" \
            "$WORK/ex_${alg}_a${assoc}_j1.layout" || {
            echo "FAIL: $alg assoc=$assoc layout missing provenance"
            exit 1; }
    done
    for jobs in 1 4; do
        "$BUILD/tools/topo_report" \
            --diff="$WORK/ex_ph_a${assoc}_j1.layout,$WORK/ex_gbsc_a${assoc}_j1.layout" \
            --program="$WORK/ex.prog" --trace="$WORK/ex.trace" \
            --decisions="$WORK/ex_gbsc_a${assoc}_j1.json" \
            --assoc="$assoc" --jobs="$jobs" \
            --out="$WORK/ex_diff_a${assoc}_j${jobs}.md" \
            --json-out="$WORK/ex_diff_a${assoc}_j${jobs}.json" \
            2> /dev/null
        "$BUILD/tools/topo_report" \
            --check-json="$WORK/ex_diff_a${assoc}_j${jobs}.json" \
            > /dev/null || {
            echo "FAIL: diff invariant (assoc=$assoc jobs=$jobs)"
            exit 1; }
    done
    cmp -s "$WORK/ex_diff_a${assoc}_j1.json" \
        "$WORK/ex_diff_a${assoc}_j4.json" || {
        echo "FAIL: assoc=$assoc diff differs jobs=1 vs jobs=4"
        exit 1; }
    grep -q "Layout diff" "$WORK/ex_diff_a${assoc}_j1.md" || {
        echo "FAIL: assoc=$assoc diff report missing title"; exit 1; }
done

echo "== taxonomy invariants =="
# Every microsuite case x {ph,hkc,gbsc} x both cache geometries x
# jobs in {1,4}: --check-json enforces the exact 3C-sum invariant
# (compulsory + capacity + conflict == misses, per layout and per
# timeline window) on each artefact, and the jobs=1 / jobs=4 suite
# documents must be byte-identical (taxonomy is deterministic and
# jobs-invariant).
for assoc in 1 2; do
    for jobs in 1 4; do
        "$BUILD/tools/topo_report" --microsuite \
            --algorithms=ph,hkc,gbsc --assoc="$assoc" --jobs="$jobs" \
            --out="$WORK/tax_a${assoc}_j${jobs}.md" \
            --json-out="$WORK/tax_a${assoc}_j${jobs}.json" > /dev/null
        "$BUILD/tools/topo_report" \
            --check-json="$WORK/tax_a${assoc}_j${jobs}.json" \
            > /dev/null || {
            echo "FAIL: taxonomy invariant (assoc=$assoc jobs=$jobs)"
            exit 1; }
    done
    cmp -s "$WORK/tax_a${assoc}_j1.json" "$WORK/tax_a${assoc}_j4.json" || {
        echo "FAIL: assoc=$assoc taxonomy differs jobs=1 vs jobs=4"
        exit 1; }
done
grep -q "Miss taxonomy (3C)" "$WORK/tax_a1_j1.md" || {
    echo "FAIL: microsuite report missing the 3C section"; exit 1; }

echo "== replacement-policy gate =="
# Every replacement policy on the full microsuite x {ph,gbsc}: the
# artefacts must validate, --policy=lru must be byte-identical to the
# default (the policy zoo may not perturb the historical path), and
# the black-box probe must uniquely identify every implemented policy
# from hit/miss bits alone.
"$BUILD/tools/topo_report" --microsuite --algorithms=ph,gbsc \
    --assoc=4 --jobs=4 --json-out="$WORK/pol_default.json" > /dev/null
for policy in lru plru srrip fifo random; do
    "$BUILD/tools/topo_report" --microsuite --algorithms=ph,gbsc \
        --assoc=4 --jobs=4 --policy="$policy" \
        --json-out="$WORK/pol_$policy.json" > /dev/null
    "$BUILD/tools/topo_report" --check-json="$WORK/pol_$policy.json" \
        > /dev/null || {
        echo "FAIL: policy $policy microsuite artefact invalid"
        exit 1; }
done
cmp -s "$WORK/pol_default.json" "$WORK/pol_lru.json" || {
    echo "FAIL: --policy=lru differs from the default policy"; exit 1; }
"$BUILD/tools/topo_sim" --probe-policy > /dev/null || {
    echo "FAIL: --probe-policy could not identify every policy"
    exit 1; }

echo "== bench smoke =="
TOPO_BENCH_SCALE=0.02 TOPO_BENCH_NAMES=m88ksim \
    scripts/bench.sh "$WORK/BENCH_smoke.json" "$BUILD" > /dev/null
[ -s "$WORK/BENCH_smoke.json" ] || {
    echo "FAIL: bench.sh produced no BENCH json"; exit 1; }
grep -q '"topo_bench": 1' "$WORK/BENCH_smoke.json" || {
    echo "FAIL: BENCH json missing the topo_bench marker"; exit 1; }
"$BUILD/tools/topo_report" --check-json="$WORK/BENCH_smoke.json" \
    > /dev/null || {
    echo "FAIL: BENCH json does not parse"; exit 1; }

echo "== sampling gate =="
# Representative-interval sampling (DESIGN.md §15): across the full
# suite x {ph,gbsc}, the sampled estimate must stay within 2% absolute
# miss rate of the exact replay (--sample-max-error aborts the run
# otherwise), the stdout must be byte-identical for jobs=1 vs jobs=4,
# and the bench artefact's sampling block must pass schema validation.
for jobs in 1 4; do
    "$BUILD/tools/topo_sim" --benchmark='*' --algorithms=ph,gbsc \
        --trace-scale=0.05 --jobs="$jobs" --sample=simpoint \
        --sample-verify --sample-max-error=0.02 \
        --bench-out="$WORK/sample_j${jobs}.json" \
        > "$WORK/sample_j${jobs}.txt" || {
        echo "FAIL: sampled suite run (jobs=$jobs)"; exit 1; }
    "$BUILD/tools/topo_report" --check-json="$WORK/sample_j${jobs}.json" \
        > /dev/null || {
        echo "FAIL: sampled bench artefact invalid (jobs=$jobs)"
        exit 1; }
    grep -q '"sampling"' "$WORK/sample_j${jobs}.json" || {
        echo "FAIL: sampled bench artefact missing the sampling block"
        exit 1; }
done
cmp -s "$WORK/sample_j1.txt" "$WORK/sample_j4.txt" || {
    echo "FAIL: sampled output differs jobs=1 vs jobs=4"; exit 1; }
# Misuse must be rejected with the stable usage exit code (1), not a
# crash or a silent fallback to the exact path.
for bad in "--trace-scale=0" "--trace-scale=nan" \
    "--trace-scale=0.02 --sample=bogus" \
    "--trace-scale=0.02 --sample-verify" \
    "--trace-scale=0.02 --sample=simpoint --sample-max-error=0.01"; do
    rc=0
    # shellcheck disable=SC2086
    "$BUILD/tools/topo_sim" --benchmark=m88ksim \
        $bad > /dev/null 2>&1 || rc=$?
    [ "$rc" = 1 ] || {
        echo "FAIL: '$bad' exited $rc, want usage error 1"; exit 1; }
done

echo "== perf smoke =="
# The microbenchmarks must run (a filter keeps the smoke fast), and
# the perf gate must hold against the committed baseline. The smoke
# uses single-job bench runs (stable per-run wall times) and a
# generous tolerance: shared CI boxes are noisy, and the gate's job
# here is to catch order-of-magnitude hot-path regressions — the
# committed 15% default is for dedicated perf runs.
"$BUILD/bench/perf_microbench" \
    --benchmark_filter='FlatMap|UnorderedMap|TraceLoad' \
    --benchmark_min_time=0.05 > /dev/null 2>&1 || {
    echo "FAIL: perf_microbench did not run"; exit 1; }
TOPO_BENCH_JOBS=1 TOPO_PERF_TOL="${TOPO_PERF_TOL:-0.6}" \
    scripts/perf_gate.sh "" "$BUILD" || {
    echo "FAIL: perf gate"; exit 1; }

SAN="$BUILD-asan"
echo "== configure ($SAN, ASan+UBSan) =="
cmake -B "$SAN" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    > /dev/null

echo "== build (sanitized) =="
cmake --build "$SAN" -j

echo "== test (sanitized) =="
# exitcode=99 separates "sanitizer found a bug" from the tools' own
# stable exit codes 0/1/2/3.
export ASAN_OPTIONS="exitcode=99:abort_on_error=0"
export UBSAN_OPTIONS="exitcode=99:halt_on_error=1"
ctest --test-dir "$SAN" --output-on-failure -j

echo "== taxonomy smoke (sanitized) =="
# The Olken tree and shadow-model bookkeeping must be clean under
# ASan+UBSan on a real benchmark stream, not just the unit fixtures.
"$SAN/tools/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --taxonomy > /dev/null

echo "== replacement-policy smoke (sanitized) =="
# The policy probe walks every policy's metadata (tree bits, RRPVs,
# FIFO hands, RNG draws) through thousands of eviction decisions, and
# a random-policy benchmark run exercises the PolicyCache replay loop
# at scale — both must be clean under ASan+UBSan.
"$SAN/tools/topo_sim" --probe-policy > /dev/null
"$SAN/tools/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
    --assoc=4 --policy=random > /dev/null

echo "== explain smoke (sanitized) =="
# Decision recording and the diff's double replay must be clean under
# ASan+UBSan on a real benchmark, not just the unit fixtures.
"$SAN/tools/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-program="$WORK/sx.prog" \
    --out-trace="$WORK/sx.trace" 2> /dev/null
"$SAN/tools/topo_place" --program="$WORK/sx.prog" \
    --trace="$WORK/sx.trace" --algorithm=gbsc \
    --out-layout="$WORK/sx_g.layout" \
    --decisions-out="$WORK/sx_g.json" 2> /dev/null
"$SAN/tools/topo_place" --program="$WORK/sx.prog" \
    --trace="$WORK/sx.trace" --algorithm=ph \
    --out-layout="$WORK/sx_p.layout" 2> /dev/null
"$SAN/tools/topo_report" \
    --diff="$WORK/sx_p.layout,$WORK/sx_g.layout" \
    --program="$WORK/sx.prog" --trace="$WORK/sx.trace" \
    --decisions="$WORK/sx_g.json" \
    --json-out="$WORK/sx_diff.json" > /dev/null 2>&1
"$SAN/tools/topo_report" --check-json="$WORK/sx_diff.json" \
    > /dev/null || {
    echo "FAIL: sanitized diff artifact fails validation"; exit 1; }

echo "== fault-injection soak (sanitized) =="
TOOLS="$SAN/tools"
"$TOOLS/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-program="$WORK/m.prog" \
    --out-trace="$WORK/m.btrace" --binary 2> /dev/null
"$TOOLS/topo_trace_gen" --benchmark=m88ksim --input=train \
    --trace-scale=0.02 --out-trace="$WORK/m.trace" 2> /dev/null

echo "== mmap reader exercise (sanitized) =="
# No fault plan armed here, so the file-path load takes the mapped
# zero-copy decode path under ASan; the kill-switch run pins the
# stream reader on the same input and both must agree byte-for-byte.
# (Every --fault-spec run below deliberately falls back to the stream
# reader, so this is the only ASan coverage the mapped path gets.)
"$TOOLS/topo_sim" --program="$WORK/m.prog" --trace="$WORK/m.btrace" \
    > "$WORK/mmap_on.txt" 2> /dev/null
TOPO_TRACE_MMAP=0 "$TOOLS/topo_sim" --program="$WORK/m.prog" \
    --trace="$WORK/m.btrace" > "$WORK/mmap_off.txt" 2> /dev/null
cmp -s "$WORK/mmap_on.txt" "$WORK/mmap_off.txt" || {
    echo "FAIL: mmap and stream trace loads disagree"; exit 1; }

# check_rc <description> <allowed-codes> <cmd...>: the command must
# exit with one of the allowed codes — never a sanitizer failure (99),
# a signal (>= 128), or an unexpected code.
check_rc() {
    desc="$1"; allowed="$2"; shift 2
    set +e
    "$@" > /dev/null 2>&1
    rc=$?
    set -e
    [ "$rc" != "99" ] || { echo "FAIL ($desc): sanitizer report"; exit 1; }
    [ "$rc" -lt 128 ] || { echo "FAIL ($desc): died with signal ($rc)"; exit 1; }
    case " $allowed " in
        *" $rc "*) ;;
        *) echo "FAIL ($desc): exit $rc, want one of [$allowed]"; exit 1 ;;
    esac
}

for seed in 1 2 3; do
    for spec in "read_short@0.01:$seed" "bitflip@0.01:$seed" \
        "throw_io@0.001:$seed" \
        "read_short@0.02:$seed,bitflip@0.02:$seed,throw_io@0.002:$seed"; do
        # Strict runs may survive (fault never fired) or reject the
        # injected damage as corrupt input.
        check_rc "sim strict $spec" "0 2" \
            "$TOOLS/topo_sim" --program="$WORK/m.prog" \
            --trace="$WORK/m.btrace" --fault-spec="$spec"
        check_rc "sim text strict $spec" "0 2" \
            "$TOOLS/topo_sim" --program="$WORK/m.prog" \
            --trace="$WORK/m.trace" --fault-spec="$spec"
        # Recover runs additionally salvage what they can; throw_io
        # faults in the simulator itself still abort with code 2.
        check_rc "sim recover $spec" "0 2" \
            "$TOOLS/topo_sim" --program="$WORK/m.prog" \
            --trace="$WORK/m.btrace" --recover --fault-spec="$spec"
        check_rc "place recover $spec" "0 2" \
            "$TOOLS/topo_place" --program="$WORK/m.prog" \
            --trace="$WORK/m.btrace" --recover \
            --out-layout="$WORK/soak.layout" --fault-spec="$spec"
        check_rc "benchmark $spec" "0 2" \
            "$TOOLS/topo_sim" --benchmark=m88ksim --trace-scale=0.02 \
            --fault-spec="$spec"
    done
done

# Exhaustive-ish damage soak: every truncation fraction and a spread
# of deterministic bit flips must recover (0) or reject (2).
for frac in 0.1 0.3 0.5 0.7 0.9 0.99; do
    "$TOOLS/topo_corrupt" --in="$WORK/m.btrace" \
        --out="$WORK/soak.btrace" --truncate-frac="$frac" 2> /dev/null
    check_rc "truncate $frac strict" "2" \
        "$TOOLS/topo_sim" --program="$WORK/m.prog" \
        --trace="$WORK/soak.btrace"
    check_rc "truncate $frac recover" "0" \
        "$TOOLS/topo_sim" --program="$WORK/m.prog" \
        --trace="$WORK/soak.btrace" --recover
done
for seed in 1 2 3 4 5; do
    "$TOOLS/topo_corrupt" --in="$WORK/m.btrace" \
        --out="$WORK/soak.btrace" --random-flips=4 --seed="$seed" \
        2> /dev/null
    check_rc "flips seed $seed strict" "0 2" \
        "$TOOLS/topo_sim" --program="$WORK/m.prog" \
        --trace="$WORK/soak.btrace"
    check_rc "flips seed $seed recover" "0 2" \
        "$TOOLS/topo_sim" --program="$WORK/m.prog" \
        --trace="$WORK/soak.btrace" --recover
done

# Kill/resume soak: SIGKILL a checkpointing `topo_sim --benchmark`
# run mid-stream, then resume from whatever checkpoint survived; the
# final miss count must match an uninterrupted run.
BENCH_ARGS="--benchmark=m88ksim --trace-scale=0.02"
"$TOOLS/topo_sim" $BENCH_ARGS > "$WORK/whole.txt" 2> /dev/null
whole=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' "$WORK/whole.txt")
set +e
"$TOOLS/topo_sim" $BENCH_ARGS --checkpoint="$WORK/soak.ckpt" \
    --checkpoint-every=2000 > /dev/null 2>&1 &
pid=$!
while [ ! -s "$WORK/soak.ckpt" ] && kill -0 "$pid" 2> /dev/null; do
    :
done
kill -9 "$pid" 2> /dev/null
wait "$pid" 2> /dev/null
set -e
if [ -s "$WORK/soak.ckpt" ]; then
    "$TOOLS/topo_sim" $BENCH_ARGS --resume="$WORK/soak.ckpt" \
        > "$WORK/resumed.txt" 2> /dev/null
    resumed=$(sed -n 's/^misses: *\([0-9]*\)/\1/p' "$WORK/resumed.txt")
    [ "$resumed" = "$whole" ] || {
        echo "FAIL: kill/resume gave $resumed misses, want $whole"
        exit 1; }
else
    echo "note: run finished before a checkpoint landed; resume skipped"
fi

echo "== profile-store crash drill (sanitized) =="
# The persistent store must survive a crash at every injected site:
# the process dies with the crash-point code (42) and a subsequent
# `status` reopen must succeed, replaying the journal's valid prefix
# and/or salvaging the older snapshot generation. The in-process
# crash matrix (store_test) already ran under ASan in the ctest pass
# above; this drills the same sites through the real CLI and fsync.
STORE="$WORK/store"
rm -rf "$STORE"
"$TOOLS/topo_profile" init --store="$STORE" \
    --program="$WORK/m.prog" 2> /dev/null
for site in store.journal.mid_record store.journal.pre_fsync \
    store.journal.post_fsync; do
    check_rc "ingest crash at $site" "42" \
        "$TOOLS/topo_profile" ingest --store="$STORE" \
        --trace="$WORK/m.btrace" --crash-at="$site"
    check_rc "reopen after $site" "0" \
        "$TOOLS/topo_profile" status --store="$STORE"
done
"$TOOLS/topo_profile" ingest --store="$STORE" \
    --trace="$WORK/m.btrace" 2> /dev/null
for site in store.snapshot.pre_rename store.snapshot.post_rename \
    store.compact.pre_journal store.compact.pre_rename \
    store.compact.post_rename; do
    check_rc "compact crash at $site" "42" \
        "$TOOLS/topo_profile" compact --store="$STORE" \
        --crash-at="$site"
    check_rc "reopen after $site" "0" \
        "$TOOLS/topo_profile" status --store="$STORE"
done
# Deliberate damage must degrade, never brick: a torn journal tail is
# dropped, a flipped snapshot bit salvages the older generation. The
# ingest first puts a record in the journal — tearing into the 16-byte
# header itself is external damage and is rejected as corrupt instead.
"$TOOLS/topo_profile" ingest --store="$STORE" \
    --trace="$WORK/m.btrace" 2> /dev/null
"$TOOLS/topo_corrupt" --target=store --store="$STORE" \
    --truncate-tail=7 2> /dev/null
check_rc "reopen after torn tail" "0" \
    "$TOOLS/topo_profile" status --store="$STORE"
"$TOOLS/topo_profile" compact --store="$STORE" 2> /dev/null
"$TOOLS/topo_corrupt" --target=store --store="$STORE" \
    --bitflip-snapshot=100 2> /dev/null
check_rc "reopen after snapshot flip" "0" \
    "$TOOLS/topo_profile" status --store="$STORE"

# SIGKILL an ingest at arbitrary points; every reopen must succeed
# and the scarred store must still produce a placement.
for i in 1 2 3; do
    set +e
    "$TOOLS/topo_profile" ingest --store="$STORE" \
        --trace="$WORK/m.btrace" --label="kill$i" > /dev/null 2>&1 &
    pid=$!
    [ "$i" = 1 ] || sleep "0.0$i"
    kill -9 "$pid" 2> /dev/null
    wait "$pid" 2> /dev/null
    set -e
    check_rc "reopen after kill -9 #$i" "0" \
        "$TOOLS/topo_profile" status --store="$STORE"
done
check_rc "place from the drilled store" "0" \
    "$TOOLS/topo_profile" place --store="$STORE" --force \
    --out-layout="$WORK/drilled.layout"

# Placement through the store must not depend on the ingestion
# schedule: one-shot ingest vs ingest+compact+ingest must give
# byte-identical layouts.
rm -rf "$WORK/storeA" "$WORK/storeB"
"$TOOLS/topo_profile" init --store="$WORK/storeA" \
    --program="$WORK/m.prog" 2> /dev/null
"$TOOLS/topo_profile" init --store="$WORK/storeB" \
    --program="$WORK/m.prog" 2> /dev/null
"$TOOLS/topo_profile" ingest --store="$WORK/storeA" \
    --trace="$WORK/m.btrace,$WORK/m.btrace" 2> /dev/null
"$TOOLS/topo_profile" ingest --store="$WORK/storeB" \
    --trace="$WORK/m.btrace" 2> /dev/null
"$TOOLS/topo_profile" compact --store="$WORK/storeB" 2> /dev/null
"$TOOLS/topo_profile" ingest --store="$WORK/storeB" \
    --trace="$WORK/m.btrace" 2> /dev/null
"$TOOLS/topo_profile" place --store="$WORK/storeA" --force \
    --out-layout="$WORK/layoutA.txt" 2> /dev/null
"$TOOLS/topo_profile" place --store="$WORK/storeB" --force \
    --out-layout="$WORK/layoutB.txt" 2> /dev/null
cmp -s "$WORK/layoutA.txt" "$WORK/layoutB.txt" || {
    echo "FAIL: store placement differs across ingestion schedules"
    exit 1; }

TSAN="$BUILD-tsan"
echo "== configure ($TSAN, TSan) =="
cmake -B "$TSAN" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    > /dev/null

echo "== build (TSan targets) =="
cmake --build "$TSAN" -j \
    --target topo_sim topo_report exec_test determinism_test

echo "== parallel smoke (TSan) =="
# exitcode=66 separates "TSan found a race" from the tools' own codes.
export TSAN_OPTIONS="exitcode=66:halt_on_error=1"
"$TSAN/tests/exec_test" > /dev/null
"$TSAN/tests/determinism_test" > /dev/null
"$TSAN/tools/topo_sim" --benchmark='*' --algorithms=ph,gbsc,hkc \
    --trace-scale=0.01 --jobs=4 > "$WORK/tsan_j4.txt" 2> /dev/null
"$TSAN/tools/topo_sim" --benchmark='*' --algorithms=ph,gbsc,hkc \
    --trace-scale=0.01 --jobs=1 > "$WORK/tsan_j1.txt" 2> /dev/null
cmp -s "$WORK/tsan_j1.txt" "$WORK/tsan_j4.txt" || {
    echo "FAIL: --jobs=4 output differs from --jobs=1 under TSan"
    exit 1; }
"$TSAN/tools/topo_report" --microsuite --algorithms=default,ph,gbsc \
    --jobs=4 --out="$WORK/tsan_report.md" > /dev/null
unset TSAN_OPTIONS

echo "OK: all checks passed"
