#!/usr/bin/env python3
"""Render the paper's Figure 5 / Figure 6 plots from bench output.

The bench binaries print machine-readable CSV blocks alongside their
text tables. Pipe their output into files and point this script at
them:

    ./build/bench/figure5_missrates > fig5.txt
    ./build/bench/figure6_metric_correlation > fig6.txt
    python3 scripts/plot_figures.py --figure5 fig5.txt --figure6 fig6.txt

Requires matplotlib; exits with a clear message when it is missing.
"""

import argparse
import re
import sys


def require_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt  # noqa: F401

        return matplotlib.pyplot
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")


def parse_figure5(path):
    """Return {benchmark: {algorithm: [(miss_rate, fraction), ...]}}."""
    panels = {}
    benchmark = None
    with open(path) as handle:
        for line in handle:
            header = re.match(r"^== (\S+) ==", line)
            if header:
                benchmark = header.group(1)
                panels[benchmark] = {}
                continue
            row = re.match(r"^(\w[\w-]*),([\d.]+)%,([\d.]+)$", line)
            if row and benchmark:
                algo, mr, frac = row.groups()
                panels[benchmark].setdefault(algo, []).append(
                    (float(mr), float(frac)))
    return panels


def parse_figure6(path):
    """Return list of (miss_rate, trg_metric, wcg_metric)."""
    points = []
    with open(path) as handle:
        for line in handle:
            row = re.match(
                r"^\d+,\d+,([\d.]+)%,([\d.]+),([\d.]+)$", line)
            if row:
                mr, trg, wcg = row.groups()
                points.append((float(mr), float(trg), float(wcg)))
    return points


def plot_figure5(plt, panels, out):
    count = len(panels)
    cols = 3
    rows = (count + cols - 1) // cols
    fig, axes = plt.subplots(rows, cols,
                             figsize=(4.2 * cols, 3.2 * rows))
    axes = axes.flatten() if count > 1 else [axes]
    for ax, (benchmark, series) in zip(axes, sorted(panels.items())):
        for algo, pts in sorted(series.items()):
            xs = [p[0] for p in pts]
            ys = [p[1] for p in pts]
            ax.step(xs, ys, where="post", label=algo)
        ax.set_title(benchmark)
        ax.set_xlabel("cache miss rate (%)")
        ax.set_ylabel("fraction <=")
        ax.legend(fontsize=7)
    for ax in axes[count:]:
        ax.axis("off")
    fig.suptitle("Figure 5: miss-rate distributions over perturbed "
                 "profiles")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_figure6(plt, points, out):
    fig, axes = plt.subplots(1, 2, figsize=(9, 4))
    mrs = [p[0] for p in points]
    axes[0].scatter([p[1] for p in points], mrs, s=12)
    axes[0].set_xlabel("TRG_place conflict metric")
    axes[0].set_ylabel("cache miss rate (%)")
    axes[0].set_title("temporal metric (near-linear)")
    axes[1].scatter([p[2] for p in points], mrs, s=12, color="tab:red")
    axes[1].set_xlabel("WCG conflict metric")
    axes[1].set_title("call-graph metric")
    fig.suptitle("Figure 6: conflict metric vs cache misses")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure5", help="figure5_missrates output")
    parser.add_argument("--figure6",
                        help="figure6_metric_correlation output")
    parser.add_argument("--out-prefix", default="",
                        help="prefix for the generated PNGs")
    args = parser.parse_args()
    if not args.figure5 and not args.figure6:
        parser.error("nothing to do: pass --figure5 and/or --figure6")
    plt = require_matplotlib()
    if args.figure5:
        panels = parse_figure5(args.figure5)
        if not panels:
            sys.exit(f"no Figure 5 series found in {args.figure5}")
        plot_figure5(plt, panels, args.out_prefix + "figure5.png")
    if args.figure6:
        points = parse_figure6(args.figure6)
        if not points:
            sys.exit(f"no Figure 6 points found in {args.figure6}")
        plot_figure6(plt, points, args.out_prefix + "figure6.png")


if __name__ == "__main__":
    main()
