#!/bin/sh
# Perf-regression gate: compare a bench snapshot (fresh by default)
# against the committed baseline, row by (benchmark x algorithm) row.
#
#   - accesses and misses must match the baseline EXACTLY — any drift
#     is a determinism regression, not a perf question;
#   - blocks_per_sec must not fall more than TOPO_PERF_TOL (fractional,
#     default 0.15) below the baseline. Faster is never a failure, but
#     an improvement beyond the tolerance prints a reminder to refresh
#     the baseline so the gate keeps teeth.
#
# The baseline records one reference machine running the default
# configuration (direct-mapped, LRU-default policy), so this gate
# also guards the branchless direct-mapped fast path against
# regressions from the replacement-policy generalisation: the
# baseline rows must keep matching bit-for-bit and at full speed.
# After intentional perf work or a hardware change, regenerate with
#   scripts/bench.sh BENCH_baseline.json
# and commit the result.
#
# Usage: scripts/perf_gate.sh [candidate.json] [build-dir]
#   candidate.json  existing snapshot to judge; when omitted, a fresh
#                   one is produced via scripts/bench.sh (build-dir,
#                   default: build)
# Sampled rows (a "sampling" block from TOPO_BENCH_SAMPLE=1 /
# --sample=simpoint): miss counts are weighted estimates, so the exact
# accesses/misses equality is skipped for any row where either side is
# sampled; instead, a sampled row that carries a measured abs_error
# (from --sample-verify) must stay within TOPO_SAMPLE_TOL (absolute
# miss rate, default 0.02). Throughput is compared as usual.
#
# Knobs: TOPO_PERF_BASELINE (default BENCH_baseline.json),
#        TOPO_PERF_TOL (fractional throughput tolerance, default 0.15),
#        TOPO_SAMPLE_TOL (absolute sampled miss-rate error bound,
#        default 0.02),
#        plus the scripts/bench.sh knobs for the fresh-snapshot case
#        (TOPO_BENCH_SCALE must match the baseline's trace_scale or
#        the exact-miss comparison is skipped with a warning).
set -e

cd "$(dirname "$0")/.."
CANDIDATE="${1:-}"
BUILD="${2:-build}"
BASELINE="${TOPO_PERF_BASELINE:-BENCH_baseline.json}"
TOL="${TOPO_PERF_TOL:-0.15}"
SAMPLE_TOL="${TOPO_SAMPLE_TOL:-0.02}"

[ -f "$BASELINE" ] || {
    echo "FAIL: baseline '$BASELINE' not found (generate with" \
         "scripts/bench.sh BENCH_baseline.json)"; exit 1; }

if [ -z "$CANDIDATE" ]; then
    CANDIDATE="$(mktemp /tmp/topo_perf_gate.XXXXXX)"
    trap 'rm -f "$CANDIDATE"' EXIT
    echo "== fresh snapshot (scripts/bench.sh) =="
    scripts/bench.sh "$CANDIDATE" "$BUILD" > /dev/null
fi

python3 - "$BASELINE" "$CANDIDATE" "$TOL" "$SAMPLE_TOL" << 'PYEOF'
import json
import sys

baseline_path, candidate_path, tol_text, sample_tol_text = sys.argv[1:5]
tol = float(tol_text)
sample_tol = float(sample_tol_text)
with open(baseline_path) as f:
    baseline = json.load(f)
with open(candidate_path) as f:
    candidate = json.load(f)

for name, doc in (("baseline", baseline), ("candidate", candidate)):
    if doc.get("topo_bench") != 1:
        sys.exit(f"FAIL: {name} is not a topo_bench snapshot")

def rows(doc):
    return {(r["benchmark"], r["algorithm"]): r for r in doc["runs"]}

base_rows, cand_rows = rows(baseline), rows(candidate)
same_scale = baseline.get("trace_scale") == candidate.get("trace_scale")
if not same_scale:
    print(f"warning: trace_scale differs ({baseline.get('trace_scale')}"
          f" vs {candidate.get('trace_scale')});"
          " skipping exact access/miss comparison")

failures = []
improvements = []
for key in sorted(base_rows):
    bench, algo = key
    if key not in cand_rows:
        failures.append(f"{bench}/{algo}: missing from candidate")
        continue
    base, cand = base_rows[key], cand_rows[key]
    sampled = "sampling" in base or "sampling" in cand
    if same_scale and not sampled:
        for field in ("accesses", "misses"):
            if base[field] != cand[field]:
                failures.append(
                    f"{bench}/{algo}: {field} {cand[field]} != baseline"
                    f" {base[field]} (determinism regression)")
    err = cand.get("sampling", {}).get("abs_error")
    if err is not None and err > sample_tol:
        failures.append(
            f"{bench}/{algo}: sampled miss-rate error {err:.4f} exceeds"
            f" the {sample_tol:.4f} bound")
    ratio = cand["blocks_per_sec"] / base["blocks_per_sec"]
    verdict = "ok"
    if ratio < 1.0 - tol:
        failures.append(
            f"{bench}/{algo}: {cand['blocks_per_sec']:.3e} blocks/s is"
            f" {(1.0 - ratio) * 100:.1f}% below baseline"
            f" {base['blocks_per_sec']:.3e} (tolerance {tol * 100:.0f}%)")
        verdict = "SLOW"
    elif ratio > 1.0 + tol:
        improvements.append(key)
        verdict = "fast"
    print(f"  {bench:>10s}/{algo:<8s} {ratio:6.2f}x baseline  {verdict}")

for key in sorted(set(cand_rows) - set(base_rows)):
    print(f"note: {key[0]}/{key[1]} has no baseline row (new bench?)")

if improvements:
    print(f"note: {len(improvements)} row(s) beat the baseline by more"
          f" than {tol * 100:.0f}% — refresh BENCH_baseline.json to"
          " tighten the gate")
if failures:
    print("FAIL: perf gate")
    for failure in failures:
        print("  " + failure)
    sys.exit(1)
print("OK: perf gate passed"
      f" (tolerance {tol * 100:.0f}%, {len(base_rows)} rows)")
PYEOF
