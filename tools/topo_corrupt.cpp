/**
 * @file
 * topo_corrupt: deterministic file-damage tool for resilience testing.
 *
 *   topo_corrupt --in=app.btrace --out=damaged.btrace --truncate=100
 *   topo_corrupt --in=app.btrace --out=d.btrace --bitflip=512
 *   topo_corrupt --in=app.btrace --out=d.btrace --random-flips=8 --seed=7
 *   topo_corrupt --in=app.btrace --out=d.btrace --drop-chunk=1
 *
 * Damage kinds (exactly one per invocation):
 *   --truncate=N        keep only the first N bytes
 *   --truncate-frac=F   keep the first F fraction of bytes (0..1)
 *   --bitflip=OFF       flip one bit at byte offset OFF (bit index via
 *                       --flip-bit=B, default 0)
 *   --random-flips=N    flip N random bits, seeded with --seed
 *   --drop-chunk=K      excise the K-th v2 trace chunk (binary traces
 *                       only; chunk 0 is the first after the header)
 *
 * Profile-store damage (--target=store --store=DIR, in place):
 *   --truncate-tail=N      cut N bytes off the journal's end (a torn
 *                          append)
 *   --drop-record=K        excise the K-th valid journal record (a
 *                          sequence gap)
 *   --bitflip-snapshot=OFF flip a bit of the newest snapshot file
 *                          (--snapshot-gen=G picks a generation,
 *                          --flip-bit=B a bit index)
 *
 * Every mode is a pure function of its flags, so failures found by the
 * soak harness replay exactly.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "topo/obs/obs.hh"
#include "topo/resilience/resilience.hh"
#include "topo/store/store_codec.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace
{

using namespace topo;

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "topo_corrupt: cannot open '" + path + "'");
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    require(os.good(), "topo_corrupt: cannot open '" + path + "'");
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    require(os.good(), "topo_corrupt: write to '" + path + "' failed");
}

void
flipBit(std::string &bytes, std::size_t off, int bit)
{
    require(off < bytes.size(),
            "topo_corrupt: bit-flip offset beyond the file size");
    require(bit >= 0 && bit < 8,
            "topo_corrupt: --flip-bit must be in [0, 7]");
    bytes[off] = static_cast<char>(
        static_cast<unsigned char>(bytes[off]) ^ (1u << bit));
}

/** In-place damage to a profile-store directory. */
int
runStore(const Options &opts)
{
    const std::string dir = opts.getString("store", "");
    require(!dir.empty(),
            "topo_corrupt: --target=store needs --store=DIR");
    int modes = 0;
    for (const char *flag :
         {"truncate-tail", "drop-record", "bitflip-snapshot"}) {
        if (!opts.getString(flag, "").empty())
            ++modes;
    }
    require(modes == 1,
            "topo_corrupt: pick exactly one of --truncate-tail, "
            "--drop-record, --bitflip-snapshot");

    if (!opts.getString("bitflip-snapshot", "").empty()) {
        // Damage a snapshot generation (default: the newest slot).
        std::string path;
        if (opts.getString("snapshot-gen", "").empty()) {
            // Newest = the slot whose header carries the higher
            // generation; fall back to whichever slot exists.
            std::string best;
            std::uint64_t best_gen = 0;
            for (int slot = 0; slot < 2; ++slot) {
                const std::string candidate =
                    dir + "/snapshot-" + std::to_string(slot) +
                    ".tps";
                std::ifstream probe(candidate, std::ios::binary);
                if (!probe.good())
                    continue;
                std::string bytes = readFileBytes(candidate);
                // generation lives at payload offset 16 => file 32.
                if (bytes.size() < 40)
                    continue;
                std::uint64_t gen = 0;
                for (int i = 0; i < 8; ++i) {
                    gen |= static_cast<std::uint64_t>(
                               static_cast<unsigned char>(
                                   bytes[32 + i]))
                           << (8 * i);
                }
                if (best.empty() || gen > best_gen) {
                    best = candidate;
                    best_gen = gen;
                }
            }
            require(!best.empty(),
                    "topo_corrupt: no snapshot files in '" + dir +
                        "'");
            path = best;
        } else {
            path = dir + "/snapshot-" +
                   std::to_string(opts.getInt("snapshot-gen", 0) % 2) +
                   ".tps";
        }
        std::string bytes = readFileBytes(path);
        const auto off = static_cast<std::size_t>(
            opts.getInt("bitflip-snapshot", 0));
        flipBit(bytes, off,
                static_cast<int>(opts.getInt("flip-bit", 0)));
        writeFileBytes(path, bytes);
        std::cerr << "flipped bit at offset " << off << " of " << path
                  << "\n";
        return 0;
    }

    const std::string journal = dir + "/journal.tpj";
    std::string bytes = readFileBytes(journal);
    if (!opts.getString("truncate-tail", "").empty()) {
        const auto cut = static_cast<std::size_t>(
            opts.getInt("truncate-tail", 0));
        require(cut <= bytes.size(),
                "topo_corrupt: --truncate-tail beyond the journal "
                "size");
        bytes.resize(bytes.size() - cut);
        writeFileBytes(journal, bytes);
        std::cerr << "cut " << cut << " byte(s) off " << journal
                  << "\n";
        return 0;
    }

    const auto drop =
        static_cast<std::size_t>(opts.getInt("drop-record", 0));
    const JournalScan scan = scanJournal(bytes, journal);
    require(drop < scan.extents.size(),
            "topo_corrupt: --drop-record index out of range (journal "
            "has " + std::to_string(scan.extents.size()) +
            " valid records)");
    bytes.erase(scan.extents[drop].begin,
                scan.extents[drop].end - scan.extents[drop].begin);
    writeFileBytes(journal, bytes);
    std::cerr << "dropped journal record " << drop << " (seq "
              << scan.extents[drop].seq << ")\n";
    return 0;
}

int
run(const Options &opts)
{
    if (opts.getString("target", "") == "store")
        return runStore(opts);
    require(opts.getString("target", "").empty(),
            "topo_corrupt: unknown --target (only 'store')");
    const std::string in_path = opts.getString("in", "");
    const std::string out_path = opts.getString("out", "");
    require(!in_path.empty() && !out_path.empty(),
            "topo_corrupt: --in and --out are required");
    std::string bytes = readFileBytes(in_path);
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("corrupt.bytes_in").add(bytes.size());

    int modes = 0;
    for (const char *flag : {"truncate", "truncate-frac", "bitflip",
                             "random-flips", "drop-chunk"}) {
        if (!opts.getString(flag, "").empty())
            ++modes;
    }
    require(modes == 1,
            "topo_corrupt: pick exactly one of --truncate, "
            "--truncate-frac, --bitflip, --random-flips, --drop-chunk");

    if (!opts.getString("truncate", "").empty()) {
        const auto keep =
            static_cast<std::size_t>(opts.getInt("truncate", 0));
        require(keep <= bytes.size(),
                "topo_corrupt: --truncate beyond the file size");
        bytes.resize(keep);
    } else if (!opts.getString("truncate-frac", "").empty()) {
        const double frac = opts.getDouble("truncate-frac", 1.0);
        require(frac >= 0.0 && frac <= 1.0,
                "topo_corrupt: --truncate-frac must be in [0, 1]");
        bytes.resize(static_cast<std::size_t>(
            static_cast<double>(bytes.size()) * frac));
    } else if (!opts.getString("bitflip", "").empty()) {
        const auto off =
            static_cast<std::size_t>(opts.getInt("bitflip", 0));
        require(off < bytes.size(),
                "topo_corrupt: --bitflip offset beyond the file size");
        const int bit = static_cast<int>(opts.getInt("flip-bit", 0));
        require(bit >= 0 && bit < 8,
                "topo_corrupt: --flip-bit must be in [0, 7]");
        bytes[off] = static_cast<char>(
            static_cast<unsigned char>(bytes[off]) ^ (1u << bit));
    } else if (!opts.getString("random-flips", "").empty()) {
        const auto flips =
            static_cast<std::uint64_t>(opts.getInt("random-flips", 1));
        require(!bytes.empty(), "topo_corrupt: input file is empty");
        Rng rng(static_cast<std::uint64_t>(opts.getInt("seed", 1)));
        for (std::uint64_t i = 0; i < flips; ++i) {
            const std::size_t off = static_cast<std::size_t>(
                rng.nextBelow(bytes.size()));
            const int bit = static_cast<int>(rng.nextBelow(8));
            bytes[off] = static_cast<char>(
                static_cast<unsigned char>(bytes[off]) ^ (1u << bit));
        }
    } else {
        const auto drop = static_cast<std::size_t>(
            opts.getInt("drop-chunk", 0));
        const std::vector<ChunkExtent> chunks =
            scanBinaryTraceChunks(bytes);
        require(drop < chunks.size(),
                "topo_corrupt: --drop-chunk index out of range (file "
                "has " + std::to_string(chunks.size()) + " chunks)");
        bytes.erase(chunks[drop].begin,
                    chunks[drop].end - chunks[drop].begin);
        std::cerr << "dropped chunk " << drop << " ("
                  << chunks[drop].records << " records)\n";
    }

    writeFileBytes(out_path, bytes);
    metrics.counter("corrupt.bytes_out").add(bytes.size());
    logInfo("corrupt", "damage applied",
            {{"in", in_path},
             {"out", out_path},
             {"bytes_out", bytes.size()}});
    std::cerr << "wrote " << bytes.size() << " bytes to " << out_path
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const topo::ToolSpec spec{
        "topo_corrupt",
        "topo_corrupt: damage a file deterministically for resilience "
        "tests.\n"
        "  --in=FILE --out=FILE\n"
        "  --truncate=N | --truncate-frac=F\n"
        "  --bitflip=OFFSET [--flip-bit=B]\n"
        "  --random-flips=N [--seed=S]\n"
        "  --drop-chunk=K   (binary topo traces only)\n"
        "  --target=store --store=DIR  damage a profile store in "
        "place:\n"
        "    --truncate-tail=N | --drop-record=K |\n"
        "    --bitflip-snapshot=OFF [--snapshot-gen=G] [--flip-bit=B]\n"
        "  --fault-spec=KIND@P[:seed] "
        "(read_short|write_short|bitflip|throw_io)\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n"
        "  --trace-out=FILE (Chrome trace events for Perfetto)\n",
        {"in", "out", "truncate", "truncate-frac", "bitflip",
         "flip-bit", "random-flips", "seed", "drop-chunk", "target",
         "store", "truncate-tail", "drop-record", "bitflip-snapshot",
         "snapshot-gen"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
