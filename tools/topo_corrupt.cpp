/**
 * @file
 * topo_corrupt: deterministic file-damage tool for resilience testing.
 *
 *   topo_corrupt --in=app.btrace --out=damaged.btrace --truncate=100
 *   topo_corrupt --in=app.btrace --out=d.btrace --bitflip=512
 *   topo_corrupt --in=app.btrace --out=d.btrace --random-flips=8 --seed=7
 *   topo_corrupt --in=app.btrace --out=d.btrace --drop-chunk=1
 *
 * Damage kinds (exactly one per invocation):
 *   --truncate=N        keep only the first N bytes
 *   --truncate-frac=F   keep the first F fraction of bytes (0..1)
 *   --bitflip=OFF       flip one bit at byte offset OFF (bit index via
 *                       --flip-bit=B, default 0)
 *   --random-flips=N    flip N random bits, seeded with --seed
 *   --drop-chunk=K      excise the K-th v2 trace chunk (binary traces
 *                       only; chunk 0 is the first after the header)
 *
 * Every mode is a pure function of its flags, so failures found by the
 * soak harness replay exactly.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "topo/obs/obs.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace
{

using namespace topo;

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "topo_corrupt: cannot open '" + path + "'");
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    require(os.good(), "topo_corrupt: cannot open '" + path + "'");
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size()));
    require(os.good(), "topo_corrupt: write to '" + path + "' failed");
}

int
run(const Options &opts)
{
    const std::string in_path = opts.getString("in", "");
    const std::string out_path = opts.getString("out", "");
    require(!in_path.empty() && !out_path.empty(),
            "topo_corrupt: --in and --out are required");
    std::string bytes = readFileBytes(in_path);
    MetricsRegistry &metrics = MetricsRegistry::global();
    metrics.counter("corrupt.bytes_in").add(bytes.size());

    int modes = 0;
    for (const char *flag : {"truncate", "truncate-frac", "bitflip",
                             "random-flips", "drop-chunk"}) {
        if (!opts.getString(flag, "").empty())
            ++modes;
    }
    require(modes == 1,
            "topo_corrupt: pick exactly one of --truncate, "
            "--truncate-frac, --bitflip, --random-flips, --drop-chunk");

    if (!opts.getString("truncate", "").empty()) {
        const auto keep =
            static_cast<std::size_t>(opts.getInt("truncate", 0));
        require(keep <= bytes.size(),
                "topo_corrupt: --truncate beyond the file size");
        bytes.resize(keep);
    } else if (!opts.getString("truncate-frac", "").empty()) {
        const double frac = opts.getDouble("truncate-frac", 1.0);
        require(frac >= 0.0 && frac <= 1.0,
                "topo_corrupt: --truncate-frac must be in [0, 1]");
        bytes.resize(static_cast<std::size_t>(
            static_cast<double>(bytes.size()) * frac));
    } else if (!opts.getString("bitflip", "").empty()) {
        const auto off =
            static_cast<std::size_t>(opts.getInt("bitflip", 0));
        require(off < bytes.size(),
                "topo_corrupt: --bitflip offset beyond the file size");
        const int bit = static_cast<int>(opts.getInt("flip-bit", 0));
        require(bit >= 0 && bit < 8,
                "topo_corrupt: --flip-bit must be in [0, 7]");
        bytes[off] = static_cast<char>(
            static_cast<unsigned char>(bytes[off]) ^ (1u << bit));
    } else if (!opts.getString("random-flips", "").empty()) {
        const auto flips =
            static_cast<std::uint64_t>(opts.getInt("random-flips", 1));
        require(!bytes.empty(), "topo_corrupt: input file is empty");
        Rng rng(static_cast<std::uint64_t>(opts.getInt("seed", 1)));
        for (std::uint64_t i = 0; i < flips; ++i) {
            const std::size_t off = static_cast<std::size_t>(
                rng.nextBelow(bytes.size()));
            const int bit = static_cast<int>(rng.nextBelow(8));
            bytes[off] = static_cast<char>(
                static_cast<unsigned char>(bytes[off]) ^ (1u << bit));
        }
    } else {
        const auto drop = static_cast<std::size_t>(
            opts.getInt("drop-chunk", 0));
        const std::vector<ChunkExtent> chunks =
            scanBinaryTraceChunks(bytes);
        require(drop < chunks.size(),
                "topo_corrupt: --drop-chunk index out of range (file "
                "has " + std::to_string(chunks.size()) + " chunks)");
        bytes.erase(chunks[drop].begin,
                    chunks[drop].end - chunks[drop].begin);
        std::cerr << "dropped chunk " << drop << " ("
                  << chunks[drop].records << " records)\n";
    }

    writeFileBytes(out_path, bytes);
    metrics.counter("corrupt.bytes_out").add(bytes.size());
    logInfo("corrupt", "damage applied",
            {{"in", in_path},
             {"out", out_path},
             {"bytes_out", bytes.size()}});
    std::cerr << "wrote " << bytes.size() << " bytes to " << out_path
              << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const topo::ToolSpec spec{
        "topo_corrupt",
        "topo_corrupt: damage a file deterministically for resilience "
        "tests.\n"
        "  --in=FILE --out=FILE\n"
        "  --truncate=N | --truncate-frac=F\n"
        "  --bitflip=OFFSET [--flip-bit=B]\n"
        "  --random-flips=N [--seed=S]\n"
        "  --drop-chunk=K   (binary topo traces only)\n"
        "  --fault-spec=KIND@P[:seed] (read_short|bitflip|throw_io)\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n"
        "  --trace-out=FILE (Chrome trace events for Perfetto)\n",
        {"in", "out", "truncate", "truncate-frac", "bitflip",
         "flip-bit", "random-flips", "seed", "drop-chunk"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
