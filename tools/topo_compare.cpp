/**
 * @file
 * topo_compare: run every placement algorithm on a program + trace
 * pair and print a comparison table — the quickest way to see what
 * placement is worth for a given application.
 *
 *   topo_compare --program=app.prog --trace=app.trace \
 *                [--test-trace=other.trace] [--cache-kb=8 ...]
 *
 * With --test-trace the layouts are trained on --trace and measured
 * on the second trace (the paper's train/test methodology).
 */

#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/refine.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/table.hh"

namespace
{

using namespace topo;

int
run(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    require(!program_path.empty() && !trace_path.empty(),
            "topo_compare: --program and --trace are required");
    const Program program = loadProgram(program_path);
    TraceReadOptions ropts;
    ropts.recover = opts.getBool("recover", false);
    Trace train = loadAnyTrace(trace_path, ropts);
    train.validate(program);
    const std::string test_path = opts.getString("test-trace", "");
    Trace test = test_path.empty() ? Trace(program.procCount())
                                   : loadAnyTrace(test_path, ropts);
    const bool has_test = !test_path.empty();
    if (has_test)
        test.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);

    // Profile from the training trace.
    const TraceStats stats = computeTraceStats(program, train);
    const PopularSet popular =
        selectPopular(program, stats, eval.popularity);
    const ChunkMap chunks(program, eval.chunk_bytes);
    const WeightedGraph wcg = buildWcg(program, train);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &popular.mask;
    const TrgBuildResult trgs = buildTrgs(program, chunks, train, topts);

    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.wcg = &wcg;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);

    const FetchStream train_stream(program, train,
                                   eval.cache.line_bytes);
    const FetchStream test_stream(program, test, eval.cache.line_bytes);

    std::cerr << program.procCount() << " procedures, "
              << popular.count << " popular; cache "
              << eval.cache.describe() << "\n";

    TextTable table({"algorithm", has_test ? "train MR" : "MR",
                     has_test ? "test MR" : "-", "pages", "extent"});
    auto report = [&](const std::string &name, const Layout &layout) {
        layout.validate(program, eval.cache.line_bytes);
        const double train_mr =
            layoutMissRate(program, layout, train_stream, eval.cache);
        const std::string test_mr =
            has_test ? fmtPercent(layoutMissRate(
                           program, layout, test_stream, eval.cache))
                     : std::string("-");
        const PageStats pages = measurePageStats(
            program, layout, has_test ? test_stream : train_stream);
        table.addRow({name, fmtPercent(train_mr), test_mr,
                      std::to_string(pages.pages_touched),
                      fmtBytes(layout.extent(program))});
    };

    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    report("default", def.place(ctx));
    report("PH", ph.place(ctx));
    report("HKC", hkc.place(ctx));
    const Layout gbsc_layout = gbsc.place(ctx);
    report("GBSC", gbsc_layout);
    if (opts.getBool("refine", false)) {
        const RefineResult refined = refineLayout(ctx, gbsc_layout);
        report("GBSC+refine", refined.layout);
    }
    table.render(std::cout, "Placement comparison for '" +
                                program.name() + "'");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const topo::ToolSpec spec{
        "topo_compare",
        "topo_compare: all placement algorithms side by side.\n"
        "  --program=FILE --trace=FILE [--test-trace=FILE]\n"
        "  [--refine] [--recover] --cache-kb=N --line-bytes=N\n"
        "  --assoc=N --chunk-bytes=N --coverage=F --q-factor=F\n"
        "  --fault-spec=KIND@P[:seed]\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n",
        {"program", "trace", "test-trace", "refine", "recover",
         "cache-kb", "line-bytes", "assoc", "policy", "policy-seed",
         "chunk-bytes", "coverage",
         "q-factor"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
