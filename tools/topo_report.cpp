/**
 * @file
 * topo_report: self-contained "why did this layout win" reports.
 *
 * Three ways to name the workload:
 *
 *   topo_report --benchmark=NAME [--algorithms=default,ph,hkc,gbsc]
 *       full in-process pipeline on a paper-suite benchmark; one
 *       candidate layout per algorithm.
 *
 *   topo_report --microsuite[=CASE] [--algorithms=...]
 *       same head-to-head on the adversarial micro workloads (all
 *       cases, or one named case).
 *
 *   topo_report --program=F --trace=F --layouts=a.layout,b.layout
 *       compare explicit layout files over a recorded trace.
 *
 * Output is Markdown on stdout (or --out=FILE); --json-out=FILE writes
 * the same data as JSON parsable by the in-tree JsonValue parser. The
 * first candidate is the baseline for timeline deltas.
 *
 * Utility mode: --check-json=FILE parses FILE with the in-tree JSON
 * parser, recognises the document type (report, report suite, bench,
 * or metrics snapshot), rejects unknown keys, and enforces the
 * taxonomy invariants (3C sums equal miss counts; reuse histograms
 * sum to access counts) — exit 0 (valid) or 2 (malformed). Used by
 * check.sh to validate report/bench artefacts without python.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "topo/eval/experiment.hh"
#include "topo/eval/layout_diff.hh"
#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/eval/report_gen.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/placement/popularity.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"
#include "topo/workload/microsuite.hh"
#include "topo/workload/paper_suite.hh"

namespace
{

using namespace topo;

/** Resolve one algorithm name; throws a user error on unknowns. */
const PlacementAlgorithm &
algorithmByName(const std::string &name)
{
    static const DefaultPlacement def;
    static const PettisHansen ph;
    static const CacheColoring hkc;
    static const Gbsc gbsc;
    if (name == "default")
        return def;
    if (name == "ph")
        return ph;
    if (name == "hkc")
        return hkc;
    if (name == "gbsc")
        return gbsc;
    fail("topo_report: unknown algorithm '" + name +
         "' (use default, ph, hkc, or gbsc)");
}

std::vector<std::string>
algorithmListFrom(const Options &opts)
{
    const std::string raw =
        opts.getString("algorithms", "default,ph,gbsc");
    std::vector<std::string> names = split(raw, ',');
    require(!names.empty(), "topo_report: --algorithms is empty");
    for (const std::string &name : names)
        algorithmByName(name); // validate early
    return names;
}

ReportOptions
reportOptionsFrom(const Options &opts)
{
    ReportOptions ropts;
    ropts.top_pairs = static_cast<std::size_t>(
        opts.getInt("top-pairs", static_cast<std::int64_t>(
                                     ropts.top_pairs)));
    ropts.hot_sets = static_cast<std::size_t>(
        opts.getInt("hot-sets",
                    static_cast<std::int64_t>(ropts.hot_sets)));
    ropts.timeline_window = static_cast<std::uint64_t>(
        opts.getInt("timeline-window", 0));
    return ropts;
}

/** Place every requested algorithm over one context. */
std::vector<LayoutCandidate>
placeCandidates(const std::vector<std::string> &algorithms,
                const Program &program, std::uint32_t line_bytes,
                const PlacementContext &ctx)
{
    std::vector<LayoutCandidate> candidates;
    for (const std::string &name : algorithms) {
        const PlacementAlgorithm &algo = algorithmByName(name);
        LayoutCandidate cand{algo.name(), algo.place(ctx)};
        cand.layout.validate(program, line_bytes);
        candidates.push_back(std::move(cand));
    }
    return candidates;
}

/** Emit one finished report to stdout/--out/--json-out. */
struct ReportWriter
{
    std::string out_path;
    std::string json_path;
    std::ostringstream markdown;
    JsonValue json_reports = JsonValue::array();

    void
    add(const ComparisonReport &report)
    {
        renderReportMarkdown(report, markdown);
        markdown << '\n';
        json_reports.push(reportToJson(report));
    }

    int
    finish()
    {
        if (out_path.empty()) {
            std::cout << markdown.str();
        } else {
            std::ofstream os(out_path);
            require(os.good(),
                    "topo_report: cannot open --out file '" + out_path +
                        "'");
            os << markdown.str();
            logInfo("report", "markdown written",
                    {{"file", out_path}});
        }
        if (!json_path.empty()) {
            JsonValue root = JsonValue::object();
            root.set("topo_report_suite", JsonValue::number(1));
            root.set("reports", std::move(json_reports));
            std::ofstream os(json_path);
            require(os.good(),
                    "topo_report: cannot open --json-out file '" +
                        json_path + "'");
            os << root.toString() << '\n';
            logInfo("report", "json written", {{"file", json_path}});
        }
        return 0;
    }
};

ReportWriter
writerFrom(const Options &opts)
{
    ReportWriter writer;
    writer.out_path = opts.getString("out", "");
    writer.json_path = opts.getString("json-out", "");
    return writer;
}

int
runBenchmarkReport(const Options &opts)
{
    const std::string name = opts.getString("benchmark", "");
    const BenchmarkCase bench =
        paperBenchmark(name, traceScaleFrom(opts));
    const EvalOptions eval = evalOptionsFrom(opts);
    const ProfileBundle bundle(bench, eval);
    const std::vector<std::string> algorithms = algorithmListFrom(opts);

    const PlacementContext ctx = bundle.makeContext();
    const std::vector<LayoutCandidate> candidates = placeCandidates(
        algorithms, bundle.program(), eval.cache.line_bytes, ctx);
    ComparisonReport report = buildComparisonReport(
        bundle.program(), bundle.testStream(), eval.cache, candidates,
        reportOptionsFrom(opts));
    report.title = "Benchmark " + bundle.name();

    ReportWriter writer = writerFrom(opts);
    writer.add(report);
    return writer.finish();
}

/** Build the standard profiling context for one microsuite case. */
ComparisonReport
microCaseReport(const MicroCase &mc,
                const std::vector<std::string> &algorithms,
                const ReportOptions &ropts)
{
    const ChunkMap chunks(mc.program, 256);
    const TraceStats stats = computeTraceStats(mc.program, mc.trace);
    const PopularSet popular = selectPopular(mc.program, stats);
    const WeightedGraph wcg = buildWcg(mc.program, mc.trace);
    TrgBuildOptions topts;
    topts.byte_budget = 2 * mc.cache.size_bytes;
    topts.popular = &popular.mask;
    const TrgBuildResult trgs =
        buildTrgs(mc.program, chunks, mc.trace, topts);

    PlacementContext ctx;
    ctx.program = &mc.program;
    ctx.cache = mc.cache;
    ctx.chunks = &chunks;
    ctx.wcg = &wcg;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(mc.program.procCount(), 0.0);
    for (std::size_t i = 0; i < ctx.heat.size(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);

    const std::vector<LayoutCandidate> candidates = placeCandidates(
        algorithms, mc.program, mc.cache.line_bytes, ctx);
    const FetchStream stream(mc.program, mc.trace,
                             mc.cache.line_bytes);
    ComparisonReport report = buildComparisonReport(
        mc.program, stream, mc.cache, candidates, ropts);
    report.title = "Microsuite case " + mc.name + " — " + mc.lesson;
    return report;
}

int
runMicrosuiteReport(const Options &opts)
{
    const std::string which = opts.getString("microsuite", "");
    const std::vector<std::string> algorithms = algorithmListFrom(opts);
    const ReportOptions ropts = reportOptionsFrom(opts);

    std::vector<MicroCase> cases;
    if (which.empty() || which == "1" || which == "all")
        cases = microsuite();
    else
        cases.push_back(microCase(which));

    // Each case carries its own lesson-specific geometry; --assoc
    // overrides the associativity across the suite so the same
    // workloads can be compared on both cache organisations.
    if (opts.has("assoc")) {
        const std::int64_t assoc = opts.getInt("assoc", 1);
        require(assoc > 0, "topo_report: --assoc must be positive");
        for (MicroCase &mc : cases) {
            mc.cache.associativity =
                static_cast<std::uint32_t>(assoc);
            mc.cache.validate();
        }
    }
    // --policy likewise overrides the replacement policy suite-wide,
    // so placement robustness can be compared across policies.
    if (opts.has("policy") || opts.has("policy-seed")) {
        const ReplacementPolicy policy = parseReplacementPolicy(
            opts.getString("policy", replacementPolicyName(
                                         ReplacementPolicy::kLru)));
        const std::uint64_t seed = static_cast<std::uint64_t>(
            opts.getInt("policy-seed",
                        static_cast<std::int64_t>(kDefaultPolicySeed)));
        for (MicroCase &mc : cases) {
            mc.cache.policy = policy;
            mc.cache.policy_seed = seed;
            mc.cache.validate();
        }
    }

    // Cases are independent pipelines; fan them out on the shared
    // pool. Per-case metrics registries merge in case order, so the
    // report and --metrics-out are byte-identical for every --jobs
    // value (DESIGN.md §9).
    struct CaseResult
    {
        ComparisonReport report;
        std::unique_ptr<MetricsRegistry> metrics;
    };
    std::vector<CaseResult> results =
        parallelMap(cases.size(), [&](std::size_t i) {
            CaseResult out;
            out.metrics = std::make_unique<MetricsRegistry>();
            MetricsScope scope(*out.metrics);
            out.report = microCaseReport(cases[i], algorithms, ropts);
            return out;
        });
    ReportWriter writer = writerFrom(opts);
    for (CaseResult &result : results) {
        MetricsRegistry::current().mergeFrom(*result.metrics);
        writer.add(result.report);
    }
    return writer.finish();
}

int
runFileReport(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    const std::string layouts_raw = opts.getString("layouts", "");
    require(!program_path.empty() && !trace_path.empty() &&
                !layouts_raw.empty(),
            "topo_report: file mode needs --program, --trace, and "
            "--layouts=a.layout,b.layout");
    const Program program = loadProgram(program_path);
    Trace trace = loadAnyTrace(trace_path, TraceReadOptions{});
    trace.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);

    std::vector<LayoutCandidate> candidates;
    for (const std::string &path : split(layouts_raw, ',')) {
        LayoutCandidate cand{path, loadLayout(path, program)};
        cand.layout.validate(program, eval.cache.line_bytes);
        candidates.push_back(std::move(cand));
    }
    const FetchStream stream(program, trace, eval.cache.line_bytes);
    ComparisonReport report =
        buildComparisonReport(program, stream, eval.cache, candidates,
                              reportOptionsFrom(opts));
    report.title = "Trace " + trace_path;

    ReportWriter writer = writerFrom(opts);
    writer.add(report);
    return writer.finish();
}

/**
 * Diff two layout files: structural moves, and (when --trace is
 * given) the exact per-procedure miss-delta attribution from a double
 * replay. --decisions=FILE cross-references moved procedures against
 * a decision-provenance log written by topo_place --decisions-out.
 */
int
runDiffReport(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    const std::string diff_raw = opts.getString("diff", "");
    require(!program_path.empty(),
            "topo_report: --diff needs --program");
    const std::vector<std::string> paths = split(diff_raw, ',');
    require(paths.size() == 2,
            "topo_report: --diff=A.layout,B.layout takes exactly two "
            "files");
    const Program program = loadProgram(program_path);
    const EvalOptions eval = evalOptionsFrom(opts);

    LayoutProvenance prov_a, prov_b;
    const Layout layout_a = loadLayout(paths[0], program, &prov_a);
    const Layout layout_b = loadLayout(paths[1], program, &prov_b);
    auto label = [](const std::string &path,
                    const LayoutProvenance &prov) {
        return prov.empty() ? path : path + " (" + prov.describe() + ")";
    };

    LayoutDiffOptions dopts;
    dopts.top_moves = static_cast<std::size_t>(
        opts.getInt("top-moves",
                    static_cast<std::int64_t>(dopts.top_moves)));
    dopts.top_pairs = static_cast<std::size_t>(
        opts.getInt("top-pairs",
                    static_cast<std::int64_t>(dopts.top_pairs)));
    LayoutDiff diff = buildLayoutDiff(program, eval.cache, layout_a,
                                      layout_b, label(paths[0], prov_a),
                                      label(paths[1], prov_b), dopts);

    const std::string trace_path = opts.getString("trace", "");
    if (!trace_path.empty()) {
        Trace trace = loadAnyTrace(trace_path, TraceReadOptions{});
        trace.validate(program);
        const FetchStream stream(program, trace, eval.cache.line_bytes);
        attributeMissDelta(diff, program, layout_a, layout_b, stream,
                           dopts);
    }
    const std::string decisions_path = opts.getString("decisions", "");
    if (!decisions_path.empty()) {
        const LoadedDecisions decisions =
            readDecisionFile(decisions_path);
        crossReferenceDecisions(diff, program, decisions);
    }
    publishDiffMetrics(diff);

    const std::string out_path = opts.getString("out", "");
    const std::string markdown =
        renderDiffMarkdown(diff, program, dopts);
    if (out_path.empty()) {
        std::cout << markdown;
    } else {
        std::ofstream os(out_path);
        require(os.good(), "topo_report: cannot open --out file '" +
                               out_path + "'");
        os << markdown;
        logInfo("report", "diff markdown written",
                {{"file", out_path}});
    }
    const std::string json_path = opts.getString("json-out", "");
    if (!json_path.empty()) {
        std::ofstream os(json_path);
        require(os.good(),
                "topo_report: cannot open --json-out file '" +
                    json_path + "'");
        os << diffToJson(diff, program).toString() << '\n';
        logInfo("report", "diff json written", {{"file", json_path}});
    }
    return 0;
}

/**
 * Parse FILE with the in-tree JSON parser and validate it as a known
 * artifact (schema + taxonomy invariants); exit 0 valid, 2 corrupt.
 */
int
runCheckJson(const Options &opts)
{
    const std::string path = opts.getString("check-json", "");
    std::ifstream is(path, std::ios::binary);
    requireData(is.good(), "cannot open file", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string doc_type;
    try {
        const JsonValue doc = JsonValue::parse(buf.str());
        doc_type = validateArtifactJson(doc);
    } catch (const TopoError &err) {
        failCorrupt(err.what(), path);
    }
    std::cout << "valid " << doc_type << ": " << path << "\n";
    return 0;
}

int
run(const Options &opts)
{
    if (!opts.getString("check-json", "").empty())
        return runCheckJson(opts);
    if (!opts.getString("diff", "").empty())
        return runDiffReport(opts);
    if (!opts.getString("benchmark", "").empty())
        return runBenchmarkReport(opts);
    if (opts.has("microsuite"))
        return runMicrosuiteReport(opts);
    return runFileReport(opts);
}

} // namespace

int
main(int argc, char **argv)
{
    const ToolSpec spec{
        "topo_report",
        "topo_report: attribution/timeline comparison reports.\n"
        "  --benchmark=NAME (paper-suite pipeline) or\n"
        "  --microsuite[=CASE] (adversarial micro workloads) or\n"
        "  --program=FILE --trace=FILE --layouts=a.layout,b.layout\n"
        "  --diff=A.layout,B.layout --program=FILE [--trace=FILE]\n"
        "      [--decisions=FILE] [--top-moves=N] (layout diff with\n"
        "      exact miss-delta attribution + decision provenance)\n"
        "  --algorithms=default,ph,hkc,gbsc (pipeline modes)\n"
        "  --out=FILE (Markdown; default stdout) --json-out=FILE\n"
        "  --top-pairs=N --hot-sets=N --timeline-window=BLOCKS\n"
        "  --cache-kb=N --line-bytes=N --assoc=N --trace-scale=S\n"
        "  --policy=lru|plru|srrip|fifo|random [--policy-seed=N]\n"
        "      (set-associative replacement policy; with --microsuite\n"
        "      it overrides every case's geometry)\n"
        "  --jobs=N (parallel cases/candidates; output is\n"
        "      bit-identical for every N)\n"
        "  --check-json=FILE (validate a JSON artefact; exit 0/2)\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n"
        "  --trace-out=FILE (Chrome trace events for Perfetto)\n",
        {"benchmark", "microsuite", "program", "trace", "layouts",
         "diff", "decisions", "top-moves", "algorithms", "out",
         "json-out", "top-pairs", "hot-sets", "timeline-window",
         "trace-scale", "cache-kb", "line-bytes", "assoc",
         "policy", "policy-seed",
         "chunk-bytes", "coverage", "q-factor", "check-json"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
