/**
 * @file
 * topo_sim: instruction-cache simulation of a trace under a layout.
 *
 *   topo_sim --program=app.prog --trace=app.trace \
 *            [--layout=app.layout] [--cache-kb=8 --assoc=1] \
 *            [--attribute] [--pages]
 *
 * Without --layout the default (source-order) layout is simulated.
 */

#include <algorithm>
#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/table.hh"

namespace
{

using namespace topo;

int
run(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    require(!program_path.empty() && !trace_path.empty(),
            "topo_sim: --program and --trace are required");
    const Program program = loadProgram(program_path);
    Trace trace = loadAnyTrace(trace_path);
    trace.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);

    const std::string layout_path = opts.getString("layout", "");
    const Layout layout =
        layout_path.empty()
            ? Layout::defaultOrder(program, eval.cache.line_bytes)
            : loadLayout(layout_path, program);
    layout.validate(program, eval.cache.line_bytes);

    const FetchStream stream(program, trace, eval.cache.line_bytes);
    const bool attribute = opts.getBool("attribute", false);
    const SimResult result =
        simulateLayout(program, layout, stream, eval.cache, attribute);

    std::cout << "cache:      " << eval.cache.describe() << "\n";
    std::cout << "layout:     "
              << (layout_path.empty() ? "default (source order)"
                                      : layout_path)
              << "\n";
    std::cout << "accesses:   " << result.accesses << " line fetches\n";
    std::cout << "misses:     " << result.misses << "\n";
    std::cout << "miss rate:  " << result.missRate() * 100.0 << "%\n";

    if (attribute) {
        std::vector<std::pair<std::uint64_t, ProcId>> by_misses;
        for (ProcId i = 0; i < program.procCount(); ++i)
            by_misses.emplace_back(result.misses_by_proc[i], i);
        std::sort(by_misses.rbegin(), by_misses.rend());
        TextTable table({"procedure", "misses", "share"});
        for (std::size_t i = 0; i < by_misses.size() && i < 15; ++i) {
            if (by_misses[i].first == 0)
                break;
            table.addRow(
                {program.proc(by_misses[i].second).name,
                 std::to_string(by_misses[i].first),
                 fmtPercent(static_cast<double>(by_misses[i].first) /
                            static_cast<double>(result.misses))});
        }
        std::cout << '\n';
        table.render(std::cout, "Top miss contributors");
    }
    if (opts.getBool("pages", false)) {
        const PageStats pages =
            measurePageStats(program, layout, stream);
        std::cout << "\npages touched: " << pages.pages_touched
                  << ", switches/kacc: "
                  << pages.switchesPerKiloAccess()
                  << ", LRU faults (16 pages): " << pages.lru_faults
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace topo;
    const Options opts = Options::parse(argc, argv);
    if (opts.helpRequested() || argc == 1) {
        std::cout <<
            "topo_sim: simulate a trace under a layout.\n"
            "  --program=FILE --trace=FILE [--layout=FILE]\n"
            "  --cache-kb=N --line-bytes=N --assoc=N\n"
            "  --attribute (per-procedure misses) --pages\n";
        return argc == 1 ? 2 : 0;
    }
    try {
        return run(opts);
    } catch (const TopoError &err) {
        std::cerr << "error: " << err.what() << "\n";
        return 1;
    }
}
