/**
 * @file
 * topo_sim: instruction-cache simulation of a trace under a layout.
 *
 *   topo_sim --program=app.prog --trace=app.trace \
 *            [--layout=app.layout] [--cache-kb=8 --assoc=1] \
 *            [--attribute] [--pages]
 *
 * Without --layout the default (source-order) layout is simulated.
 *
 * With --benchmark=NAME the full pipeline runs in-process on a
 * paper-suite benchmark — synthesis, profiling, placement, and
 * simulation — which makes it the one-command way to capture phase
 * timings with --metrics-out.
 *
 * Resilience knobs: --recover salvages the valid prefix of a damaged
 * trace instead of exiting with code 2; --checkpoint/--checkpoint-every
 * write periodic simulator checkpoints, --resume continues from one
 * bit-identically, and --stop-after emulates a preemption point.
 */

#include <algorithm>
#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/table.hh"
#include "topo/workload/paper_suite.hh"

namespace
{

using namespace topo;

/** Checkpoint/resume directives shared by both run paths. */
struct ControlState
{
    SimCheckpoint resume_ckpt;
    SimControl control;
    bool active = false;
};

ControlState
controlFrom(const Options &opts)
{
    ControlState state;
    state.control.checkpoint_path = opts.getString("checkpoint", "");
    state.control.checkpoint_every = static_cast<std::uint64_t>(
        opts.getInt("checkpoint-every", 0));
    state.control.stop_after =
        static_cast<std::uint64_t>(opts.getInt("stop-after", 0));
    require(state.control.checkpoint_every == 0 ||
                !state.control.checkpoint_path.empty(),
            "topo_sim: --checkpoint-every requires --checkpoint");
    require(state.control.stop_after == 0 ||
                !state.control.checkpoint_path.empty(),
            "topo_sim: --stop-after requires --checkpoint");
    const std::string resume_path = opts.getString("resume", "");
    if (!resume_path.empty()) {
        state.resume_ckpt = loadCheckpoint(resume_path);
        state.control.resume = &state.resume_ckpt;
    }
    state.active = state.control.resume != nullptr ||
                   !state.control.checkpoint_path.empty();
    return state;
}

void
printResult(const SimResult &result, const SimControl &control)
{
    std::cout << "accesses:   " << result.accesses
              << " line fetches\n";
    std::cout << "misses:     " << result.misses << "\n";
    std::cout << "miss rate:  " << result.missRate() * 100.0 << "%\n";
    if (!result.completed) {
        std::cout << "status:     interrupted at " << result.accesses
                  << " fetches; checkpoint written to "
                  << control.checkpoint_path << " (resume with --resume="
                  << control.checkpoint_path << ")\n";
    }
}

/**
 * Full pipeline on a synthetic paper benchmark: synthesise traces,
 * profile, place with one algorithm, and simulate the testing trace.
 */
int
runBenchmark(const Options &opts)
{
    const std::string name = opts.getString("benchmark", "");
    const double scale = traceScaleFrom(opts);
    const BenchmarkCase bench = paperBenchmark(name, scale);
    const EvalOptions eval = evalOptionsFrom(opts);
    const ProfileBundle bundle(bench, eval);

    const std::string algorithm = opts.getString("algorithm", "gbsc");
    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const PlacementAlgorithm *algo = nullptr;
    if (algorithm == "gbsc")
        algo = &gbsc;
    else if (algorithm == "ph")
        algo = &ph;
    else if (algorithm == "hkc")
        algo = &hkc;
    else if (algorithm == "default")
        algo = &def;
    else
        fail("topo_sim: unknown algorithm '" + algorithm +
             "' (use gbsc, ph, hkc, or default)");

    const PlacementContext ctx = bundle.makeContext();
    const Layout layout = algo->place(ctx);
    layout.validate(bundle.program(), eval.cache.line_bytes);
    ControlState ctl = controlFrom(opts);
    const SimResult result = simulateLayout(
        bundle.program(), layout, bundle.testStream(), eval.cache,
        opts.getBool("attribute", false),
        ctl.active ? &ctl.control : nullptr);

    std::cout << "benchmark:  " << bundle.name() << "\n";
    std::cout << "cache:      " << eval.cache.describe() << "\n";
    std::cout << "algorithm:  " << algo->name() << "\n";
    printResult(result, ctl.control);
    return 0;
}

int
run(const Options &opts)
{
    if (!opts.getString("benchmark", "").empty())
        return runBenchmark(opts);
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    require(!program_path.empty() && !trace_path.empty(),
            "topo_sim: --program and --trace are required");
    const Program program = loadProgram(program_path);
    TraceReadOptions ropts;
    ropts.recover = opts.getBool("recover", false);
    Trace trace = loadAnyTrace(trace_path, ropts);
    trace.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);

    const std::string layout_path = opts.getString("layout", "");
    const Layout layout =
        layout_path.empty()
            ? Layout::defaultOrder(program, eval.cache.line_bytes)
            : loadLayout(layout_path, program);
    layout.validate(program, eval.cache.line_bytes);

    const FetchStream stream(program, trace, eval.cache.line_bytes);
    const bool attribute = opts.getBool("attribute", false);
    ControlState ctl = controlFrom(opts);
    const SimResult result =
        simulateLayout(program, layout, stream, eval.cache, attribute,
                       ctl.active ? &ctl.control : nullptr);

    std::cout << "cache:      " << eval.cache.describe() << "\n";
    std::cout << "layout:     "
              << (layout_path.empty() ? "default (source order)"
                                      : layout_path)
              << "\n";
    printResult(result, ctl.control);

    if (attribute) {
        std::vector<std::pair<std::uint64_t, ProcId>> by_misses;
        for (ProcId i = 0; i < program.procCount(); ++i)
            by_misses.emplace_back(result.misses_by_proc[i], i);
        std::sort(by_misses.rbegin(), by_misses.rend());
        TextTable table({"procedure", "misses", "share"});
        for (std::size_t i = 0; i < by_misses.size() && i < 15; ++i) {
            if (by_misses[i].first == 0)
                break;
            table.addRow(
                {program.proc(by_misses[i].second).name,
                 std::to_string(by_misses[i].first),
                 fmtPercent(static_cast<double>(by_misses[i].first) /
                            static_cast<double>(result.misses))});
        }
        std::cout << '\n';
        table.render(std::cout, "Top miss contributors");
    }
    if (opts.getBool("pages", false)) {
        const PageStats pages =
            measurePageStats(program, layout, stream);
        std::cout << "\npages touched: " << pages.pages_touched
                  << ", switches/kacc: "
                  << pages.switchesPerKiloAccess()
                  << ", LRU faults (16 pages): " << pages.lru_faults
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const ToolSpec spec{
        "topo_sim",
        "topo_sim: simulate a trace under a layout.\n"
        "  --program=FILE --trace=FILE [--layout=FILE]\n"
        "  --benchmark=NAME [--algorithm=NAME] (full in-process\n"
        "      pipeline on a paper-suite benchmark instead)\n"
        "  --cache-kb=N --line-bytes=N --assoc=N\n"
        "  --attribute (per-procedure misses) --pages\n"
        "  --recover (salvage a damaged trace and continue)\n"
        "  --checkpoint=FILE --checkpoint-every=N (periodic state)\n"
        "  --resume=FILE (continue bit-identically) --stop-after=N\n"
        "  --fault-spec=KIND@P[:seed] (read_short|bitflip|throw_io)\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n",
        {"program", "trace", "layout", "benchmark", "algorithm",
         "trace-scale", "cache-kb", "line-bytes", "assoc",
         "chunk-bytes", "coverage", "q-factor", "attribute", "pages",
         "recover", "checkpoint", "checkpoint-every", "resume",
         "stop-after"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
