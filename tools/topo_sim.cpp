/**
 * @file
 * topo_sim: instruction-cache simulation of a trace under a layout.
 *
 *   topo_sim --program=app.prog --trace=app.trace \
 *            [--layout=app.layout] [--cache-kb=8 --assoc=1] \
 *            [--attribute] [--attribution] [--pages]
 *
 * Without --layout the default (source-order) layout is simulated.
 *
 * With --benchmark=NAME[,NAME...] the full pipeline runs in-process on
 * paper-suite benchmarks — synthesis, profiling, placement, and
 * simulation — which makes it the one-command way to capture phase
 * timings with --metrics-out. --algorithms=default,ph,hkc,gbsc runs
 * several placements head-to-head; --bench-out=FILE records every run
 * (wall time, blocks/sec, peak RSS, miss rate) as a BENCH_*.json
 * document for scripts/bench.sh.
 *
 * Observability: --attribution attaches the per-procedure /
 * per-set attribution sink and prints the top conflicting procedure
 * pairs; --timeline-window=N samples windowed miss rates, exported as
 * Chrome trace counters when --trace-out is given.
 *
 * Resilience knobs: --recover salvages the valid prefix of a damaged
 * trace instead of exiting with code 2; --checkpoint/--checkpoint-every
 * write periodic simulator checkpoints, --resume continues from one
 * bit-identically, and --stop-after emulates a preemption point.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "topo/exec/exec.hh"

#include "topo/cache/attribution.hh"
#include "topo/cache/policy_probe.hh"
#include "topo/cache/simulate.hh"
#include "topo/cache/taxonomy.hh"
#include "topo/eval/page_metric.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/obs/provenance.hh"
#include "topo/obs/timeline.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/sampling/estimator.hh"
#include "topo/sampling/sample_plan.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"
#include "topo/util/sysinfo.hh"
#include "topo/util/table.hh"
#include "topo/workload/paper_suite.hh"

namespace
{

using namespace topo;

/** Checkpoint/resume directives shared by both run paths. */
struct ControlState
{
    SimCheckpoint resume_ckpt;
    SimControl control;
    bool active = false;
};

ControlState
controlFrom(const Options &opts)
{
    ControlState state;
    state.control.checkpoint_path = opts.getString("checkpoint", "");
    state.control.checkpoint_every = static_cast<std::uint64_t>(
        opts.getInt("checkpoint-every", 0));
    state.control.stop_after =
        static_cast<std::uint64_t>(opts.getInt("stop-after", 0));
    require(state.control.checkpoint_every == 0 ||
                !state.control.checkpoint_path.empty(),
            "topo_sim: --checkpoint-every requires --checkpoint");
    require(state.control.stop_after == 0 ||
                !state.control.checkpoint_path.empty(),
            "topo_sim: --stop-after requires --checkpoint");
    const std::string resume_path = opts.getString("resume", "");
    if (!resume_path.empty()) {
        state.resume_ckpt = loadCheckpoint(resume_path);
        state.control.resume = &state.resume_ckpt;
    }
    state.active = state.control.resume != nullptr ||
                   !state.control.checkpoint_path.empty();
    return state;
}

void
printResult(std::ostream &os, const SimResult &result,
            const SimControl &control)
{
    os << "accesses:   " << result.accesses << " line fetches\n";
    os << "misses:     " << result.misses << "\n";
    os << "miss rate:  " << result.missRate() * 100.0 << "%\n";
    if (!result.completed) {
        os << "status:     interrupted at " << result.accesses
           << " fetches; checkpoint written to "
           << control.checkpoint_path << " (resume with --resume="
           << control.checkpoint_path << ")\n";
    }
}

/** Print the heaviest evictor→victim pairs from an attribution sink. */
void
printConflicts(std::ostream &os, const Program &program,
               const AttributionSink &sink)
{
    os << '\n';
    const std::vector<ConflictPair> pairs = sink.topPairs(10);
    if (pairs.empty()) {
        os << "no valid-line evictions — the working set fits "
              "the cache\n";
        return;
    }
    TextTable table({"evictor", "victim", "evictions"});
    for (const ConflictPair &pair : pairs) {
        table.addRow({program.proc(pair.evictor).name,
                      program.proc(pair.victim).name,
                      std::to_string(pair.count)});
    }
    table.render(os, "Top conflicting procedure pairs");
    if (sink.droppedPairs() != 0) {
        os << "(pair budget exhausted; " << sink.droppedPairs()
           << " evictions over untracked pairs)\n";
    }
}

/** Print the 3C breakdown and reuse profile of a taxonomy sink. */
void
printTaxonomy(std::ostream &os, const Program &program,
              const TaxonomySink &sink, std::uint64_t misses)
{
    os << '\n';
    auto share = [misses](std::uint64_t count) {
        return misses ? fmtPercent(static_cast<double>(count) /
                                   static_cast<double>(misses))
                      : std::string("0%");
    };
    TextTable classes({"miss class", "misses", "share"});
    classes.addRow({"compulsory", std::to_string(sink.compulsory()),
                    share(sink.compulsory())});
    classes.addRow({"capacity", std::to_string(sink.capacity()),
                    share(sink.capacity())});
    classes.addRow({"conflict", std::to_string(sink.conflict()),
                    share(sink.conflict())});
    classes.render(os, "Miss taxonomy (3C)");

    TextTable hist({"stack distance", "fetches"});
    const auto &buckets = sink.reuseHistogram();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        hist.addRow({reuseBucketLabel(b), std::to_string(buckets[b])});
    }
    os << '\n';
    hist.render(os, "Reuse-distance profile");

    const std::vector<ProcTaxonomy> top = sink.topProcs(10);
    if (!top.empty()) {
        TextTable procs(
            {"procedure", "conflict", "capacity", "compulsory"});
        for (const ProcTaxonomy &row : top) {
            procs.addRow({program.proc(row.proc).name,
                          std::to_string(row.conflict),
                          std::to_string(row.capacity),
                          std::to_string(row.compulsory)});
        }
        os << '\n';
        procs.render(os, "Top conflict-miss procedures");
    }
}

/** Observation sinks for one simulation, built on request. */
struct Observation
{
    std::unique_ptr<AttributionSink> attribution;
    std::unique_ptr<TaxonomySink> taxonomy;
    std::unique_ptr<TimelineRecorder> timeline;
    SimObservers observers;
    bool active = false;
};

/**
 * Build the requested sinks: --attribution arms the attribution sink;
 * --taxonomy arms the 3C classifier / reuse-distance profiler; a
 * timeline is recorded when --timeline-window is given or a Chrome
 * trace is being captured (--trace-out).
 */
Observation
observationFrom(const Options &opts, const Program &program,
                const Layout &layout, const CacheConfig &cache,
                const FetchStream &stream)
{
    Observation obs;
    if (opts.getBool("attribution", false)) {
        obs.attribution = std::make_unique<AttributionSink>(
            program, layout, cache, cache.line_bytes);
        obs.observers.attribution = obs.attribution.get();
    }
    if (opts.getBool("taxonomy", false)) {
        obs.taxonomy = std::make_unique<TaxonomySink>(
            program, stream.programLineCount(), cache);
        obs.observers.taxonomy = obs.taxonomy.get();
    }
    std::uint64_t window = static_cast<std::uint64_t>(
        opts.getInt("timeline-window", 0));
    if (window == 0 && ChromeTraceLog::global().enabled())
        window = std::max<std::uint64_t>(1, stream.size() / 64);
    if (window != 0) {
        obs.timeline = std::make_unique<TimelineRecorder>(
            window, program.procCount());
        obs.observers.timeline = obs.timeline.get();
    }
    obs.active = obs.observers.any();
    return obs;
}

/** Timed simulation; returns wall milliseconds via @p wall_ms. */
SimResult
timedSimulate(const Program &program, const Layout &layout,
              const FetchStream &stream, const CacheConfig &cache,
              bool attribute, const SimControl *control,
              const SimObservers *observers, double &wall_ms)
{
    const auto start = std::chrono::steady_clock::now();
    const SimResult result = simulateLayout(
        program, layout, stream, cache, attribute, control, observers);
    wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
    return result;
}

/** Post-run reporting shared by both paths. */
void
reportObservation(std::ostream &os, const Program &program,
                  const Observation &obs, std::uint64_t misses,
                  const std::string &track)
{
    if (obs.attribution)
        printConflicts(os, program, *obs.attribution);
    if (obs.taxonomy)
        printTaxonomy(os, program, *obs.taxonomy, misses);
    if (obs.timeline && ChromeTraceLog::global().enabled())
        obs.timeline->exportCounters(ChromeTraceLog::global(), track);
}

/** One simulated (benchmark, algorithm) cell of a bench run. */
struct RunRecord
{
    std::string benchmark;
    std::string algorithm;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    double miss_rate = 0.0;
    double wall_ms = 0.0;
    /** 3C breakdown; meaningful only when has_taxonomy is set. */
    bool has_taxonomy = false;
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;
    std::vector<std::uint64_t> reuse_hist;
    /** Sampled-run provenance; meaningful only when has_sampling. */
    bool has_sampling = false;
    std::uint64_t sample_window_runs = 0;
    std::uint64_t sample_windows = 0;
    std::uint64_t sample_clusters = 0;
    std::uint64_t sample_selected = 0;
    double sample_replayed_fraction = 0.0;
    double sample_est_miss_rate = 0.0;
    /** --sample-verify extras; meaningful only when has_exact. */
    bool has_exact = false;
    double sample_exact_miss_rate = 0.0;
    double sample_abs_error = 0.0;

    double
    blocksPerSec() const
    {
        return wall_ms > 0.0 ? static_cast<double>(accesses) /
                                   (wall_ms / 1000.0)
                             : 0.0;
    }
};

/** Copy a sample plan + estimate into a run record. */
void
recordSampling(RunRecord &record, const SamplePlan &plan,
               const SampledSimResult &est)
{
    record.has_sampling = true;
    record.sample_window_runs = plan.window_runs;
    record.sample_windows = plan.window_count;
    record.sample_clusters = plan.cluster_count;
    record.sample_selected = plan.selected.size();
    record.sample_replayed_fraction = plan.replayedFraction();
    record.sample_est_miss_rate = est.estMissRate();
    record.accesses = est.accesses;
    record.misses = static_cast<std::uint64_t>(
        std::llround(est.est_misses));
    record.miss_rate = est.estMissRate();
}

/** Print the sampled-estimate block shared by both run paths. */
void
printSampledResult(std::ostream &os, const SamplePlan &plan,
                   const SampledSimResult &est)
{
    os << "accesses:   " << est.accesses << " line fetches\n";
    os << "est misses: " << est.est_misses << "\n";
    os << "est miss rate: " << est.estMissRate() * 100.0 << "%\n";
    os << "sampling:   simpoint window=" << plan.window_runs
       << " windows=" << plan.window_count << " clusters="
       << plan.cluster_count << " segments=" << plan.segments.size()
       << " replayed=" << plan.replayedFraction() * 100.0 << "%\n";
}

/** Reject observation/checkpoint surfaces that need every reference. */
void
requireExactOnly(const Options &opts, bool ctl_active)
{
    require(!ctl_active, "topo_sim: --sample does not combine with "
                         "checkpoint/resume (sampled replays skip "
                         "references)");
    require(!opts.getBool("attribution", false) &&
                !opts.getBool("taxonomy", false) &&
                opts.getInt("timeline-window", 0) == 0 &&
                !opts.getBool("attribute", false) &&
                !opts.getBool("pages", false),
            "topo_sim: --sample does not combine with "
            "--attribute/--attribution/--taxonomy/--timeline-window/"
            "--pages (they observe every reference; run them exact)");
}

/** Copy a taxonomy sink's tallies into a run record. */
void
recordTaxonomy(RunRecord &record, const TaxonomySink &sink)
{
    record.has_taxonomy = true;
    record.compulsory = sink.compulsory();
    record.capacity = sink.capacity();
    record.conflict = sink.conflict();
    record.reuse_hist.assign(sink.reuseHistogram().begin(),
                             sink.reuseHistogram().end());
}

/** Write the BENCH_*.json document consumed by scripts/bench.sh. */
void
writeBenchJson(const std::string &path, const std::string &benchmarks,
               double trace_scale, const CacheConfig &cache,
               const std::vector<RunRecord> &runs)
{
    JsonValue root = JsonValue::object();
    root.set("topo_bench", JsonValue::number(1));
    root.set("date", JsonValue::string(utcTimestamp()));
    root.set("benchmarks", JsonValue::string(benchmarks));
    root.set("trace_scale", JsonValue::number(trace_scale));
    root.set("cache", JsonValue::string(cache.describe()));
    // The replacement policy already rides in the cache description;
    // the explicit key is emitted only for non-default policies so
    // pre-policy bench records stay byte-identical.
    if (cache.policy != ReplacementPolicy::kLru) {
        root.set("policy", JsonValue::string(
                               replacementPolicyName(cache.policy)));
    }
    // Parallelism provenance: the configured lane count and the OS
    // threads that participate (pool workers + the calling thread).
    root.set("jobs", JsonValue::number(execJobs()));
    root.set("threads", JsonValue::number(execJobs()));
    root.set("peak_rss_kb",
             JsonValue::number(static_cast<double>(peakRssKb())));
    root.set("provenance", provenanceJson());
    JsonValue list = JsonValue::array();
    for (const RunRecord &run : runs) {
        JsonValue row = JsonValue::object();
        row.set("benchmark", JsonValue::string(run.benchmark));
        row.set("algorithm", JsonValue::string(run.algorithm));
        row.set("accesses",
                JsonValue::number(static_cast<double>(run.accesses)));
        row.set("misses",
                JsonValue::number(static_cast<double>(run.misses)));
        row.set("miss_rate", JsonValue::number(run.miss_rate));
        row.set("wall_ms", JsonValue::number(run.wall_ms));
        row.set("blocks_per_sec", JsonValue::number(run.blocksPerSec()));
        if (run.has_taxonomy) {
            JsonValue taxonomy = JsonValue::object();
            taxonomy.set("compulsory",
                         JsonValue::number(
                             static_cast<double>(run.compulsory)));
            taxonomy.set("capacity",
                         JsonValue::number(
                             static_cast<double>(run.capacity)));
            taxonomy.set("conflict",
                         JsonValue::number(
                             static_cast<double>(run.conflict)));
            JsonValue hist = JsonValue::array();
            for (const std::uint64_t count : run.reuse_hist)
                hist.push(
                    JsonValue::number(static_cast<double>(count)));
            taxonomy.set("reuse_hist", std::move(hist));
            row.set("taxonomy", std::move(taxonomy));
        }
        if (run.has_sampling) {
            JsonValue sampling = JsonValue::object();
            sampling.set("mode", JsonValue::string("simpoint"));
            sampling.set("window_runs",
                         JsonValue::number(static_cast<double>(
                             run.sample_window_runs)));
            sampling.set("windows",
                         JsonValue::number(static_cast<double>(
                             run.sample_windows)));
            sampling.set("clusters",
                         JsonValue::number(static_cast<double>(
                             run.sample_clusters)));
            sampling.set("selected_windows",
                         JsonValue::number(static_cast<double>(
                             run.sample_selected)));
            sampling.set("replayed_fraction",
                         JsonValue::number(
                             run.sample_replayed_fraction));
            sampling.set("est_miss_rate",
                         JsonValue::number(run.sample_est_miss_rate));
            if (run.has_exact) {
                sampling.set("exact_miss_rate",
                             JsonValue::number(
                                 run.sample_exact_miss_rate));
                sampling.set("abs_error",
                             JsonValue::number(run.sample_abs_error));
            }
            row.set("sampling", std::move(sampling));
        }
        list.push(std::move(row));
    }
    root.set("runs", std::move(list));
    std::ofstream os(path);
    require(os.good(),
            "topo_sim: cannot open --bench-out file '" + path + "'");
    os << root.toString() << '\n';
    logInfo("bench", "bench record written",
            {{"file", path}, {"runs", runs.size()}});
}

const PlacementAlgorithm &
algorithmByName(const std::string &name)
{
    static const DefaultPlacement def;
    static const PettisHansen ph;
    static const CacheColoring hkc;
    static const Gbsc gbsc;
    if (name == "gbsc")
        return gbsc;
    if (name == "ph")
        return ph;
    if (name == "hkc")
        return hkc;
    if (name == "default")
        return def;
    fail("topo_sim: unknown algorithm '" + name +
         "' (use gbsc, ph, hkc, or default)");
}

/** Everything one (benchmark, algorithm) cell produces. */
struct CellResult
{
    RunRecord record;
    std::string output;
    std::unique_ptr<MetricsRegistry> metrics;
};

/**
 * Full pipeline on synthetic paper benchmarks: synthesise traces,
 * profile, place with each requested algorithm, and simulate the
 * testing trace.
 *
 * The (benchmark, algorithm) grid fans out on the shared pool. Each
 * cell records into its own metrics registry and renders into its own
 * buffer; cells are joined in grid order, so stdout, --metrics-out,
 * and the bench record are byte-identical for every --jobs value
 * (DESIGN.md §9).
 */
int
runBenchmark(const Options &opts)
{
    const std::string bench_names = opts.getString("benchmark", "");
    const double scale = traceScaleFrom(opts);
    EvalOptions eval = evalOptionsFrom(opts);
    eval.sampling = samplingFrom(opts);
    setProvenance("cache", eval.cache.describe());
    if (eval.cache.policy != ReplacementPolicy::kLru) {
        setProvenance("policy",
                      replacementPolicyName(eval.cache.policy));
    }
    setProvenance("trace_scale", std::to_string(scale));

    std::vector<std::string> algorithms;
    if (opts.has("algorithms"))
        algorithms = split(opts.getString("algorithms", ""), ',');
    else
        algorithms.push_back(opts.getString("algorithm", "gbsc"));
    require(!algorithms.empty(), "topo_sim: --algorithms is empty");
    for (const std::string &name : algorithms)
        algorithmByName(name); // validate early

    ControlState ctl = controlFrom(opts);
    const std::vector<std::string> benches =
        bench_names == "*" ? paperBenchmarkNames()
                           : split(bench_names, ',');
    const bool single = benches.size() == 1 && algorithms.size() == 1;
    require(!ctl.active || single,
            "topo_sim: checkpoint/resume needs a single benchmark and "
            "algorithm");
    if (eval.sampling.active()) {
        requireExactOnly(opts, ctl.active);
        setProvenance("sampling", "simpoint");
    }

    // Phase 1: profile every benchmark (synthesis + TRG/WCG builds —
    // the expensive part; the builds additionally shard internally).
    struct BenchProfile
    {
        std::unique_ptr<ProfileBundle> bundle;
        std::unique_ptr<MetricsRegistry> metrics;
    };
    std::vector<BenchProfile> profiles =
        parallelMap(benches.size(), [&](std::size_t b) {
            BenchProfile profile;
            profile.metrics = std::make_unique<MetricsRegistry>();
            MetricsScope scope(*profile.metrics);
            const BenchmarkCase bench =
                paperBenchmark(benches[b], scale);
            profile.bundle =
                std::make_unique<ProfileBundle>(bench, eval);
            return profile;
        });
    for (const BenchProfile &profile : profiles)
        MetricsRegistry::current().mergeFrom(*profile.metrics);

    // Phase 2: the simulation grid, one task per cell, row-major so
    // the joined order matches the serial loop nest.
    const bool attribute = opts.getBool("attribute", false);
    std::vector<CellResult> cells = parallelMap(
        benches.size() * algorithms.size(), [&](std::size_t i) {
            const std::size_t b = i / algorithms.size();
            const std::size_t a = i % algorithms.size();
            const ProfileBundle &bundle = *profiles[b].bundle;
            const std::string &algo_name = algorithms[a];

            CellResult cell;
            cell.metrics = std::make_unique<MetricsRegistry>();
            MetricsScope scope(*cell.metrics);
            std::ostringstream out;
            if (a == 0) {
                out << "benchmark:  " << bundle.name() << "\n";
                out << "cache:      " << eval.cache.describe() << "\n";
            }
            const PlacementContext ctx = bundle.makeContext();
            const PlacementAlgorithm &algo = algorithmByName(algo_name);
            const Layout layout = algo.place(ctx);
            layout.validate(bundle.program(), eval.cache.line_bytes);

            if (bundle.sampled()) {
                const auto start = std::chrono::steady_clock::now();
                const SampledSimResult est =
                    bundle.sampledTestResult(layout);
                const double wall_ms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                out << "algorithm:  " << algo.name() << "\n";
                printSampledResult(out, bundle.testPlan(), est);
                cell.record.benchmark = bundle.name();
                cell.record.algorithm = algo_name;
                cell.record.wall_ms = wall_ms;
                recordSampling(cell.record, bundle.testPlan(), est);
                if (eval.sampling.verify) {
                    const SimResult exact =
                        bundle.exactTestResult(layout);
                    cell.record.has_exact = true;
                    cell.record.sample_exact_miss_rate =
                        exact.missRate();
                    cell.record.sample_abs_error =
                        std::fabs(est.estMissRate() - exact.missRate());
                    out << "exact miss rate: "
                        << exact.missRate() * 100.0 << "%\n";
                    out << "est error:  "
                        << cell.record.sample_abs_error * 100.0
                        << "% (abs miss rate)\n";
                }
                out << "\n";
                cell.output = out.str();
                return cell;
            }

            Observation obs = observationFrom(
                opts, bundle.program(), layout, eval.cache,
                bundle.testStream());
            require(!obs.active || !ctl.active,
                    "topo_sim: --attribution/--timeline-window do not "
                    "combine with checkpoint/resume");
            double wall_ms = 0.0;
            const SimResult result = timedSimulate(
                bundle.program(), layout, bundle.testStream(),
                eval.cache, attribute,
                ctl.active ? &ctl.control : nullptr,
                obs.active ? &obs.observers : nullptr, wall_ms);

            out << "algorithm:  " << algo.name() << "\n";
            printResult(out, result, ctl.control);
            reportObservation(out, bundle.program(), obs,
                              result.misses,
                              bundle.name() + "/" + algo_name);
            out << "\n";
            cell.record.benchmark = bundle.name();
            cell.record.algorithm = algo_name;
            cell.record.accesses = result.accesses;
            cell.record.misses = result.misses;
            cell.record.miss_rate = result.missRate();
            cell.record.wall_ms = wall_ms;
            if (obs.taxonomy)
                recordTaxonomy(cell.record, *obs.taxonomy);
            cell.output = out.str();
            return cell;
        });

    std::vector<RunRecord> runs;
    runs.reserve(cells.size());
    for (const CellResult &cell : cells) {
        std::cout << cell.output;
        MetricsRegistry::current().mergeFrom(*cell.metrics);
        runs.push_back(cell.record);
    }
    const std::string bench_out = opts.getString("bench-out", "");
    if (!bench_out.empty())
        writeBenchJson(bench_out, bench_names, scale, eval.cache, runs);

    // The measured error bound: with --sample-verify and
    // --sample-max-error, any cell whose estimate strays beyond the
    // bound fails the run (after the bench record is written, so the
    // offending numbers are on disk for inspection).
    if (eval.sampling.max_error > 0.0) {
        std::string violations;
        for (const RunRecord &run : runs) {
            if (run.has_exact &&
                run.sample_abs_error > eval.sampling.max_error) {
                violations += " " + run.benchmark + "/" +
                              run.algorithm + "=" +
                              std::to_string(run.sample_abs_error);
            }
        }
        require(violations.empty(),
                "topo_sim: sampling miss-rate error exceeds "
                "--sample-max-error=" +
                    std::to_string(eval.sampling.max_error) + ":" +
                    violations);
    }
    return 0;
}

/**
 * --probe-policy: CacheQuery-style black-box self-check. Every
 * implemented replacement policy is probed through the real cache
 * models, observing only hit/miss bits, and must be uniquely
 * identified by the inference battery. A failure means two policies
 * became behaviourally indistinguishable (or one changed behaviour) —
 * a simulator bug by construction, reported as an internal error.
 */
int
runProbePolicy(const Options &opts)
{
    const std::uint64_t seed = static_cast<std::uint64_t>(opts.getInt(
        "policy-seed", static_cast<std::int64_t>(kDefaultPolicySeed)));
    TextTable table({"policy", "identified as", "signature bits"});
    bool ok = true;
    for (const ReplacementPolicy policy : kAllReplacementPolicies) {
        const PolicyProbeResult result = inferPolicy(
            [policy, seed](const CacheConfig &geometry) {
                CacheConfig config = geometry;
                config.policy = policy;
                config.policy_seed = seed;
                return makeCacheTarget(config);
            },
            seed);
        std::string verdict;
        if (result.unique()) {
            verdict = replacementPolicyName(result.identified());
            ok = ok && result.identified() == policy;
        } else if (result.matches.empty()) {
            verdict = "(no match)";
            ok = false;
        } else {
            verdict = "(ambiguous:";
            for (const ReplacementPolicy match : result.matches) {
                verdict += ' ';
                verdict += replacementPolicyName(match);
            }
            verdict += ')';
            ok = false;
        }
        table.addRow({replacementPolicyName(policy), verdict,
                      std::to_string(result.observed.bits.size())});
    }
    table.render(std::cout, "Black-box policy identification");
    if (!ok) {
        failInternal("topo_sim: --probe-policy could not uniquely "
                     "identify every replacement policy");
    }
    std::cout << "all replacement policies uniquely identified\n";
    return 0;
}

int
run(const Options &opts)
{
    if (opts.getBool("probe-policy", false))
        return runProbePolicy(opts);
    if (!opts.getString("benchmark", "").empty())
        return runBenchmark(opts);
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    require(!program_path.empty() && !trace_path.empty(),
            "topo_sim: --program and --trace are required");
    const Program program = loadProgram(program_path);
    TraceReadOptions ropts;
    ropts.recover = opts.getBool("recover", false);
    Trace trace = loadAnyTrace(trace_path, ropts);
    trace.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);
    setProvenance("cache", eval.cache.describe());
    if (eval.cache.policy != ReplacementPolicy::kLru) {
        setProvenance("policy",
                      replacementPolicyName(eval.cache.policy));
    }

    const std::string layout_path = opts.getString("layout", "");
    const Layout layout =
        layout_path.empty()
            ? Layout::defaultOrder(program, eval.cache.line_bytes)
            : loadLayout(layout_path, program);
    layout.validate(program, eval.cache.line_bytes);

    const SamplingOptions sampling = samplingFrom(opts);
    if (sampling.active()) {
        requireExactOnly(opts, controlFrom(opts).active);
        setProvenance("sampling", "simpoint");
        const SamplePlan plan = buildSamplePlan(
            program, trace, eval.cache.line_bytes, sampling);
        const auto start = std::chrono::steady_clock::now();
        const SampledSimResult est = estimateLayout(
            program, layout, trace, plan, eval.cache, false);
        const double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        std::cout << "cache:      " << eval.cache.describe() << "\n";
        std::cout << "layout:     "
                  << (layout_path.empty() ? "default (source order)"
                                          : layout_path)
                  << "\n";
        printSampledResult(std::cout, plan, est);
        RunRecord record;
        record.benchmark = trace_path;
        record.algorithm = layout_path.empty() ? "default" : layout_path;
        record.wall_ms = wall_ms;
        recordSampling(record, plan, est);
        if (sampling.verify) {
            const FetchStream stream(program, trace,
                                     eval.cache.line_bytes);
            const SimResult exact =
                simulateLayout(program, layout, stream, eval.cache);
            record.has_exact = true;
            record.sample_exact_miss_rate = exact.missRate();
            record.sample_abs_error =
                std::fabs(est.estMissRate() - exact.missRate());
            std::cout << "exact miss rate: "
                      << exact.missRate() * 100.0 << "%\n";
            std::cout << "est error:  "
                      << record.sample_abs_error * 100.0
                      << "% (abs miss rate)\n";
        }
        const std::string bench_out = opts.getString("bench-out", "");
        if (!bench_out.empty())
            writeBenchJson(bench_out, trace_path, 1.0, eval.cache,
                           {record});
        require(sampling.max_error == 0.0 || !record.has_exact ||
                    record.sample_abs_error <= sampling.max_error,
                "topo_sim: sampling miss-rate error " +
                    std::to_string(record.sample_abs_error) +
                    " exceeds --sample-max-error=" +
                    std::to_string(sampling.max_error));
        return 0;
    }

    const FetchStream stream(program, trace, eval.cache.line_bytes);
    const bool attribute = opts.getBool("attribute", false);
    ControlState ctl = controlFrom(opts);
    Observation obs = observationFrom(opts, program, layout, eval.cache,
                                      stream);
    require(!obs.active || !ctl.active,
            "topo_sim: --attribution/--timeline-window do not combine "
            "with checkpoint/resume");
    double wall_ms = 0.0;
    const SimResult result = timedSimulate(
        program, layout, stream, eval.cache, attribute,
        ctl.active ? &ctl.control : nullptr,
        obs.active ? &obs.observers : nullptr, wall_ms);

    std::cout << "cache:      " << eval.cache.describe() << "\n";
    std::cout << "layout:     "
              << (layout_path.empty() ? "default (source order)"
                                      : layout_path)
              << "\n";
    printResult(std::cout, result, ctl.control);
    reportObservation(std::cout, program, obs, result.misses, "sim");

    const std::string bench_out = opts.getString("bench-out", "");
    if (!bench_out.empty()) {
        RunRecord record;
        record.benchmark = trace_path;
        record.algorithm =
            layout_path.empty() ? "default" : layout_path;
        record.accesses = result.accesses;
        record.misses = result.misses;
        record.miss_rate = result.missRate();
        record.wall_ms = wall_ms;
        if (obs.taxonomy)
            recordTaxonomy(record, *obs.taxonomy);
        writeBenchJson(bench_out, trace_path, 1.0, eval.cache,
                       {record});
    }

    if (attribute) {
        std::vector<std::pair<std::uint64_t, ProcId>> by_misses;
        for (ProcId i = 0; i < program.procCount(); ++i)
            by_misses.emplace_back(result.misses_by_proc[i], i);
        std::sort(by_misses.rbegin(), by_misses.rend());
        TextTable table({"procedure", "misses", "share"});
        for (std::size_t i = 0; i < by_misses.size() && i < 15; ++i) {
            if (by_misses[i].first == 0)
                break;
            table.addRow(
                {program.proc(by_misses[i].second).name,
                 std::to_string(by_misses[i].first),
                 fmtPercent(static_cast<double>(by_misses[i].first) /
                            static_cast<double>(result.misses))});
        }
        std::cout << '\n';
        table.render(std::cout, "Top miss contributors");
    }
    if (opts.getBool("pages", false)) {
        const PageStats pages =
            measurePageStats(program, layout, stream);
        std::cout << "\npages touched: " << pages.pages_touched
                  << ", switches/kacc: "
                  << pages.switchesPerKiloAccess()
                  << ", LRU faults (16 pages): " << pages.lru_faults
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const ToolSpec spec{
        "topo_sim",
        "topo_sim: simulate a trace under a layout.\n"
        "  --program=FILE --trace=FILE [--layout=FILE]\n"
        "  --benchmark=NAME[,NAME...]|'*' [--algorithm=NAME]\n"
        "      [--algorithms=default,ph,hkc,gbsc] (full in-process\n"
        "      pipeline on paper-suite benchmarks instead; '*' runs\n"
        "      the whole Table 1 suite)\n"
        "  --jobs=N (parallel grid/profiling lanes; results are\n"
        "      bit-identical for every N)\n"
        "  --cache-kb=N --line-bytes=N --assoc=N\n"
        "  --policy=lru|plru|srrip|fifo|random (set-associative\n"
        "      replacement policy; --policy-seed=N seeds 'random')\n"
        "  --probe-policy (black-box policy identification self-check)\n"
        "  --attribute (per-procedure misses) --pages\n"
        "  --attribution (conflict-pair attribution sink)\n"
        "  --taxonomy (3C miss classes + reuse-distance profile)\n"
        "  --timeline-window=N (windowed miss-rate samples)\n"
        "  --sample=simpoint (representative-interval sampling:\n"
        "      cluster trace windows, replay one weighted\n"
        "      representative per cluster)\n"
        "  --sample-window=N (runs per window; 0 = auto)\n"
        "  --sample-k=N (clusters; 0 = auto BIC elbow)\n"
        "  --sample-max-k=N --sample-warmup=N --sample-seed=N\n"
        "  --sample-verify (also run exact; report the error)\n"
        "  --sample-max-error=F (fail when |est-exact| miss-rate\n"
        "      error exceeds F; requires --sample-verify)\n"
        "  --bench-out=FILE (BENCH_*.json run record)\n"
        "  --recover (salvage a damaged trace and continue)\n"
        "  --checkpoint=FILE --checkpoint-every=N (periodic state)\n"
        "  --resume=FILE (continue bit-identically) --stop-after=N\n"
        "  --fault-spec=KIND@P[:seed] (read_short|bitflip|throw_io)\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n"
        "  --trace-out=FILE (Chrome trace events for Perfetto)\n",
        {"program", "trace", "layout", "benchmark", "algorithm",
         "algorithms", "trace-scale", "cache-kb", "line-bytes", "assoc",
         "policy", "policy-seed", "probe-policy",
         "chunk-bytes", "coverage", "q-factor", "attribute",
         "attribution", "taxonomy", "timeline-window", "bench-out",
         "pages",
         "sample", "sample-window", "sample-k", "sample-max-k",
         "sample-warmup", "sample-seed", "sample-verify",
         "sample-max-error",
         "recover", "checkpoint", "checkpoint-every", "resume",
         "stop-after"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
