/**
 * @file
 * topo_trace_gen: emit a synthetic benchmark's program description and
 * trace files, so the CLI workflow can be exercised (or demoed)
 * without an instrumented application.
 *
 *   topo_trace_gen --benchmark=perl --input=train \
 *                  --out-program=perl.prog --out-trace=perl.trace
 */

#include <iostream>

#include "topo/obs/obs.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/trace/trace_io.hh"
#include "topo/util/error.hh"
#include "topo/util/options.hh"
#include "topo/workload/paper_suite.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

int
run(const Options &opts)
{
    const std::string name = opts.getString("benchmark", "perl");
    const std::string which = opts.getString("input", "train");
    require(which == "train" || which == "test",
            "topo_trace_gen: --input must be train or test");
    const double scale = opts.getDouble("trace-scale", 0.1);
    const BenchmarkCase bench = paperBenchmark(name, scale);
    const WorkloadInput &input =
        which == "train" ? bench.train : bench.test;

    const std::string out_program = opts.getString("out-program", "");
    const std::string out_trace = opts.getString("out-trace", "");
    require(!out_program.empty() || !out_trace.empty(),
            "topo_trace_gen: nothing to do (need --out-program and/or "
            "--out-trace)");
    if (!out_program.empty()) {
        saveProgram(out_program, bench.model.program);
        std::cerr << "wrote " << bench.model.program.procCount()
                  << " procedures to " << out_program << "\n";
    }
    if (!out_trace.empty()) {
        const Trace trace = synthesizeTrace(bench.model, input);
        if (opts.getBool("binary", false))
            saveBinaryTrace(out_trace, trace);
        else
            saveTrace(out_trace, trace);
        std::cerr << "wrote " << trace.size() << " runs (input '"
                  << input.name << "') to " << out_trace << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const topo::ToolSpec spec{
        "topo_trace_gen",
        "topo_trace_gen: emit synthetic benchmark files.\n"
        "  --benchmark=NAME (gcc go ghostscript m88ksim perl "
        "vortex)\n"
        "  --input=train|test --trace-scale=F\n"
        "  --out-program=FILE --out-trace=FILE --binary\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n",
        {"benchmark", "input", "trace-scale", "out-program",
         "out-trace", "binary"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
