/**
 * @file
 * topo_place: the command-line placement driver.
 *
 * Reads a program description and a profiling trace, runs a placement
 * algorithm, and writes the resulting layout (and optionally a linker
 * script / placement map). With --evaluate it also simulates the
 * instruction cache before and after.
 *
 *   topo_place --program=app.prog --trace=app.trace \
 *              --algorithm=gbsc --out-layout=app.layout \
 *              --out-script=app.ld --evaluate
 */

#include <fstream>
#include <iostream>

#include "topo/cache/simulate.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/obs/provenance.hh"
#include "topo/placement/cache_coloring.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gbsc.hh"
#include "topo/placement/pettis_hansen.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/layout_script.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"

namespace
{

using namespace topo;

int
run(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    const std::string trace_path = opts.getString("trace", "");
    require(!program_path.empty() && !trace_path.empty(),
            "topo_place: --program and --trace are required");

    const Program program = loadProgram(program_path);
    TraceReadOptions ropts;
    ropts.recover = opts.getBool("recover", false);
    Trace trace = loadAnyTrace(trace_path, ropts);
    require(trace.procCount() == program.procCount(),
            "topo_place: trace and program disagree on the procedure "
            "count");
    trace.validate(program);
    const EvalOptions eval = evalOptionsFrom(opts);

    // Build profiles.
    const TraceStats stats = computeTraceStats(program, trace);
    const PopularSet popular =
        selectPopular(program, stats, eval.popularity);
    const ChunkMap chunks(program, eval.chunk_bytes);
    const WeightedGraph wcg = buildWcg(program, trace);
    TrgBuildOptions topts;
    topts.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    topts.popular = &popular.mask;
    const TrgBuildResult trgs = buildTrgs(program, chunks, trace, topts);

    PlacementContext ctx;
    ctx.program = &program;
    ctx.cache = eval.cache;
    ctx.chunks = &chunks;
    ctx.wcg = &wcg;
    ctx.trg_select = &trgs.select;
    ctx.trg_place = &trgs.place;
    ctx.popular = popular.mask;
    ctx.heat.assign(program.procCount(), 0.0);
    for (std::size_t i = 0; i < program.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(stats.bytes_fetched[i]);

    const std::string algorithm = opts.getString("algorithm", "gbsc");
    const DefaultPlacement def;
    const PettisHansen ph;
    const CacheColoring hkc;
    const Gbsc gbsc;
    const PlacementAlgorithm *algo = nullptr;
    if (algorithm == "gbsc")
        algo = &gbsc;
    else if (algorithm == "ph")
        algo = &ph;
    else if (algorithm == "hkc")
        algo = &hkc;
    else if (algorithm == "default")
        algo = &def;
    else
        fail("topo_place: unknown algorithm '" + algorithm +
             "' (use gbsc, ph, hkc, or default)");

    std::cerr << "placing " << program.procCount() << " procedures ("
              << popular.count << " popular) with " << algo->name()
              << " for " << eval.cache.describe() << "\n";
    const std::string decisions_out =
        opts.getString("decisions-out", "");
    DecisionLog decisions;
    if (!decisions_out.empty()) {
        decisions.setAlgorithm(algorithm);
        decisions.setCache(eval.cache);
        ctx.decisions = &decisions;
    }
    const Layout layout = algo->place(ctx);
    ctx.decisions = nullptr;
    layout.validate(program, eval.cache.line_bytes);
    if (!decisions_out.empty()) {
        std::ofstream os(decisions_out);
        require(os.good(), "topo_place: cannot open '" + decisions_out +
                               "'");
        decisions.toJson(program).write(os);
        os << "\n";
        require(os.good(), "topo_place: write failed for '" +
                               decisions_out + "'");
        decisions.publishMetrics(program);
        std::cerr << "wrote " << decisions.kept() << " decision records"
                  << (decisions.dropped()
                          ? " (+" + std::to_string(decisions.dropped()) +
                                " dropped past the bound)"
                          : std::string())
                  << " to " << decisions_out << "\n";
    }

    LayoutProvenance provenance;
    provenance.algorithm = algorithm;
    provenance.cache = eval.cache.describe();
    provenance.git_sha = buildGitSha();
    const std::string out_layout = opts.getString("out-layout", "");
    if (!out_layout.empty()) {
        saveLayout(out_layout, program, layout, provenance);
        std::cerr << "wrote layout to " << out_layout << "\n";
    }
    const std::string out_script = opts.getString("out-script", "");
    if (!out_script.empty()) {
        std::ofstream os(out_script);
        require(os.good(), "topo_place: cannot open '" + out_script +
                               "'");
        writeLinkerScript(os, program, layout, eval.cache.line_bytes);
        std::cerr << "wrote linker script to " << out_script << "\n";
    }
    if (opts.getBool("print-map", false)) {
        writePlacementMap(std::cout, program, layout,
                          eval.cache.line_bytes, eval.cache.lineCount());
    }
    if (out_layout.empty() && out_script.empty() &&
        !opts.getBool("print-map", false)) {
        writeLayout(std::cout, program, layout);
    }

    if (opts.getBool("evaluate", false)) {
        const FetchStream stream(program, trace, eval.cache.line_bytes);
        const double before = layoutMissRate(
            program, def.place(ctx), stream, eval.cache);
        const double after =
            layoutMissRate(program, layout, stream, eval.cache);
        std::cerr << "miss rate on this trace: default "
                  << before * 100.0 << "% -> " << algo->name() << " "
                  << after * 100.0 << "%\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const topo::ToolSpec spec{
        "topo_place",
        "topo_place: profile-driven procedure placement.\n"
        "  --program=FILE     program description (topo-program v1)\n"
        "  --trace=FILE       profiling trace (topo-trace v1)\n"
        "  --algorithm=NAME   gbsc (default) | ph | hkc | default\n"
        "  --out-layout=FILE  write the layout (topo-layout v2)\n"
        "  --decisions-out=FILE  write decision provenance JSON\n"
        "  --out-script=FILE  write a GNU-ld script fragment\n"
        "  --print-map        print a human-readable placement map\n"
        "  --evaluate         simulate miss rates before/after\n"
        "  --recover          salvage a damaged trace and continue\n"
        "  --cache-kb=N --line-bytes=N --assoc=N --chunk-bytes=N\n"
        "  --coverage=F --q-factor=F\n"
        "  --fault-spec=KIND@P[:seed]\n"
        "  --log-level=L --log-file=FILE --metrics-out=FILE\n",
        {"program", "trace", "algorithm", "out-layout", "out-script",
         "decisions-out", "print-map", "evaluate", "recover",
         "cache-kb", "line-bytes", "assoc", "policy", "policy-seed",
         "chunk-bytes", "coverage",
         "q-factor"},
        run,
    };
    return topo::toolMain(argc, argv, spec);
}
