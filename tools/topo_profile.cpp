/**
 * @file
 * topo_profile: the persistent-profile-store driver (DESIGN.md §12).
 *
 * Subcommand CLI over ProfileStore:
 *
 *   topo_profile init    --store=DIR --program=FILE [knobs]
 *   topo_profile ingest  --store=DIR --trace=F1[,F2,...]
 *   topo_profile status  --store=DIR [--json-out=FILE]
 *   topo_profile compact --store=DIR
 *   topo_profile place   --store=DIR [--algorithm=NAME]
 *                        [--replace-threshold=F] [--force]
 *                        [--out-layout=FILE] [--json-out=FILE]
 *
 * `ingest` merges trace shards into the standing profile through the
 * write-ahead journal; `place` recomputes the layout only when the
 * TRG_select drift since the last accepted placement exceeds the
 * threshold (incremental re-placement). Every subcommand reports the
 * store state — generation, applied sequence, drift, salvage — in
 * --json-out and the shared --metrics-out machinery.
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <vector>

#include "topo/eval/layout_diff.hh"
#include "topo/eval/reports.hh"
#include "topo/obs/obs.hh"
#include "topo/placement/decision_log.hh"
#include "topo/obs/provenance.hh"
#include "topo/program/layout_io.hh"
#include "topo/program/program_io.hh"
#include "topo/resilience/resilience.hh"
#include "topo/sampling/sample_plan.hh"
#include "topo/store/profile_store.hh"
#include "topo/trace/trace_binary.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"
#include "topo/workload/paper_suite.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace
{

using namespace topo;

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string
storeDir(const Options &opts)
{
    const std::string dir = opts.getString("store", "");
    require(!dir.empty(), "topo_profile: --store=DIR is required");
    return dir;
}

/** Shared store-state JSON fragment. */
JsonValue
storeStateJson(const ProfileStore &store)
{
    JsonValue state = JsonValue::object();
    state.set("dir", JsonValue::string(store.dir()));
    state.set("generation", JsonValue::number(
                                static_cast<double>(store.generation())));
    state.set("applied_seq", JsonValue::number(
                                 static_cast<double>(store.appliedSeq())));
    state.set("shards", JsonValue::number(static_cast<double>(
                            store.profile().shards.size())));
    state.set("total_runs", JsonValue::number(static_cast<double>(
                                store.profile().total_runs)));
    state.set("total_bytes", JsonValue::number(static_cast<double>(
                                 store.profile().total_bytes)));
    state.set("layout_algorithm",
              JsonValue::string(store.profile().layout_algorithm));
    const double drift = store.drift();
    state.set("drift", std::isfinite(drift)
                           ? JsonValue::number(drift)
                           : JsonValue::string("inf"));
    const StoreOpenStats &os = store.openStats();
    JsonValue open = JsonValue::object();
    open.set("snapshot_generation",
             JsonValue::number(static_cast<double>(
                 os.snapshot_generation)));
    open.set("salvaged", JsonValue::boolean(os.salvaged));
    open.set("replayed_records", JsonValue::number(static_cast<double>(
                                     os.replayed_records)));
    open.set("dropped_bytes", JsonValue::number(static_cast<double>(
                                  os.dropped_bytes)));
    open.set("dropped_records", JsonValue::number(static_cast<double>(
                                    os.dropped_records)));
    state.set("open", std::move(open));
    return state;
}

void
writeJsonIfRequested(const Options &opts, const JsonValue &doc)
{
    const std::string path = opts.getString("json-out", "");
    if (path.empty())
        return;
    std::ofstream out(path);
    require(out.good(),
            "topo_profile: cannot open '" + path + "' for writing");
    doc.write(out);
    out << "\n";
}

void
announceGeneration(const ProfileStore &store)
{
    setProvenance("profile_generation",
                  std::to_string(store.generation()));
    setProvenance("profile_applied_seq",
                  std::to_string(store.appliedSeq()));
}

int
runInit(const Options &opts)
{
    const std::string program_path = opts.getString("program", "");
    require(!program_path.empty(),
            "topo_profile init: --program=FILE is required");
    const EvalOptions eval = evalOptionsFrom(opts);
    StoreConfig config;
    config.program = loadProgram(program_path);
    config.cache = eval.cache;
    config.chunk_bytes = eval.chunk_bytes;
    config.byte_budget = static_cast<std::uint64_t>(
        eval.q_budget_factor * eval.cache.size_bytes);
    config.coverage = eval.popularity.coverage;
    config.build_pairs = opts.getBool("build-pairs", false);
    config.pair_window = eval.pair_window;
    ProfileStore::init(storeDir(opts), config);
    std::cerr << "initialized profile store at " << storeDir(opts)
              << " (" << config.program.procCount()
              << " procedures)\n";
    return 0;
}

int
runIngest(const Options &opts)
{
    const std::string traces = opts.getString("trace", "");
    const std::string synth = opts.getString("synth", "");
    require(!traces.empty() || !synth.empty(),
            "topo_profile ingest: --trace=FILE[,FILE...] or "
            "--synth=BENCH[,BENCH...] is required");
    require(traces.empty() || synth.empty(),
            "topo_profile ingest: --trace and --synth are mutually "
            "exclusive");
    ProfileStore store = ProfileStore::open(storeDir(opts));
    const SamplingOptions sampling = samplingFrom(opts);
    require(!sampling.verify,
            "topo_profile ingest: --sample-verify only applies to "
            "topo_sim (ingest has no exact replay to compare against)");
    if (sampling.active())
        setProvenance("sampling", "simpoint");
    const std::string label_override = opts.getString("label", "");
    std::uint64_t ingested = 0;
    auto ingestOne = [&](const std::string &source, const Trace &trace) {
        std::string label =
            label_override.empty() ? source : label_override;
        if (!label_override.empty() && ingested > 0)
            label += "#" + std::to_string(ingested);
        if (sampling.active()) {
            store.ingest(buildShardDelta(store.config(), label, trace,
                                         sampling));
        } else {
            store.ingestTrace(label, trace);
        }
        ++ingested;
        std::cerr << "ingested " << source << " as shard '" << label
                  << "' (seq " << store.appliedSeq() << ")\n";
    };
    if (!synth.empty()) {
        // In-process synthesis of paper-suite training traces: the
        // store-ingest analogue of topo_sim --benchmark, and the path
        // where --trace-scale applies (file ingest replays the trace
        // exactly as recorded).
        const double scale = traceScaleFrom(opts);
        for (const std::string &raw : split(synth, ',')) {
            const std::string name = trim(raw);
            if (name.empty())
                continue;
            const BenchmarkCase bench = paperBenchmark(name, scale);
            ingestOne(name + "-train",
                      synthesizeTrace(bench.model, bench.train));
        }
    } else {
        require(!opts.has("trace-scale"),
                "topo_profile ingest: --trace-scale only applies to "
                "--synth benchmarks (file traces replay as recorded)");
        TraceReadOptions ropts;
        ropts.recover = opts.getBool("recover", false);
        for (const std::string &raw : split(traces, ',')) {
            const std::string path = trim(raw);
            if (path.empty())
                continue;
            ingestOne(baseName(path), loadAnyTrace(path, ropts));
        }
    }
    require(ingested > 0,
            "topo_profile ingest: no trace files given");
    announceGeneration(store);
    JsonValue doc = JsonValue::object();
    doc.set("command", JsonValue::string("ingest"));
    doc.set("ingested", JsonValue::number(
                            static_cast<double>(ingested)));
    if (sampling.active())
        doc.set("sampling", JsonValue::string("simpoint"));
    doc.set("store", storeStateJson(store));
    writeJsonIfRequested(opts, doc);
    return 0;
}

int
runStatus(const Options &opts)
{
    const ProfileStore store = ProfileStore::open(storeDir(opts));
    announceGeneration(store);
    const StoredProfile &profile = store.profile();
    std::cout << "store " << store.dir() << "\n"
              << "  generation   " << store.generation()
              << (store.openStats().salvaged ? " (salvaged)" : "")
              << "\n"
              << "  applied seq  " << store.appliedSeq() << "\n"
              << "  shards       " << profile.shards.size() << "\n"
              << "  total runs   " << profile.total_runs << "\n"
              << "  total bytes  " << profile.total_bytes << "\n"
              << "  layout       "
              << (profile.layout_algorithm.empty()
                      ? "(never placed)"
                      : profile.layout_algorithm)
              << "\n"
              << "  drift        " << store.drift() << "\n";
    for (const ShardInfo &shard : profile.shards) {
        std::cout << "  shard seq=" << shard.seq << " events="
                  << shard.events << " " << shard.label << "\n";
    }
    if (store.openStats().dropped_bytes > 0) {
        std::cout << "  journal: dropped " << store.openStats().dropped_bytes
                  << " torn byte(s) at open\n";
    }
    JsonValue doc = JsonValue::object();
    doc.set("command", JsonValue::string("status"));
    doc.set("store", storeStateJson(store));
    writeJsonIfRequested(opts, doc);
    return 0;
}

int
runCompact(const Options &opts)
{
    ProfileStore store = ProfileStore::open(storeDir(opts));
    store.compact();
    announceGeneration(store);
    std::cerr << "compacted store to generation " << store.generation()
              << " (applied seq " << store.appliedSeq() << ")\n";
    JsonValue doc = JsonValue::object();
    doc.set("command", JsonValue::string("compact"));
    doc.set("store", storeStateJson(store));
    writeJsonIfRequested(opts, doc);
    return 0;
}

int
runPlace(const Options &opts)
{
    ProfileStore store = ProfileStore::open(storeDir(opts));
    const std::string algorithm =
        opts.getString("algorithm", "gbsc");
    const double threshold =
        opts.getDouble("replace-threshold", 0.1);
    require(threshold >= 0.0,
            "topo_profile place: --replace-threshold must be >= 0");
    const bool force = opts.getBool("force", false);
    const Program &program = store.config().program;

    // Explainability rides on --json-out: snapshot the outgoing
    // layout and thread a decision log through the placement so a
    // drift-triggered re-placement can be reported as a structural
    // diff with per-decision provenance. Without --json-out the
    // placement runs with a null log, exactly as before.
    const bool want_explain = !opts.getString("json-out", "").empty();
    const std::string prev_algorithm = store.profile().layout_algorithm;
    Layout previous(0);
    bool have_previous = false;
    if (want_explain && !prev_algorithm.empty()) {
        const std::vector<std::uint64_t> &addrs =
            store.profile().layout_addresses;
        previous = Layout(addrs.size());
        for (std::size_t i = 0; i < addrs.size(); ++i)
            previous.setAddress(static_cast<ProcId>(i), addrs[i]);
        have_previous = true;
    }

    DecisionLog decisions;
    const StorePlaceResult result =
        store.place(algorithm, threshold, force,
                    want_explain ? &decisions : nullptr);
    announceGeneration(store);
    std::cerr << "drift " << result.drift << " vs threshold "
              << threshold << ": "
              << (result.placed ? "layout recomputed with " +
                                      result.algorithm
                                : "layout retained (" +
                                      result.algorithm + ")")
              << "\n";
    const std::string out_layout = opts.getString("out-layout", "");
    if (!out_layout.empty()) {
        LayoutProvenance provenance;
        provenance.algorithm = result.algorithm;
        provenance.cache = store.config().cache.describe();
        provenance.git_sha = buildGitSha();
        saveLayout(out_layout, program, result.layout, provenance);
        std::cerr << "wrote layout to " << out_layout << "\n";
    }
    JsonValue doc = JsonValue::object();
    doc.set("command", JsonValue::string("place"));
    doc.set("algorithm", JsonValue::string(result.algorithm));
    doc.set("drift", std::isfinite(result.drift)
                         ? JsonValue::number(result.drift)
                         : JsonValue::string("inf"));
    doc.set("threshold", JsonValue::number(threshold));
    doc.set("replaced", JsonValue::boolean(result.placed));
    doc.set("store", storeStateJson(store));
    if (want_explain && result.placed) {
        decisions.publishMetrics(program);
        JsonValue dec = JsonValue::object();
        dec.set("kept", JsonValue::number(
                            static_cast<double>(decisions.kept())));
        dec.set("dropped", JsonValue::number(static_cast<double>(
                               decisions.dropped())));
        dec.set("coverage",
                JsonValue::number(decisions.coverage(program)));
        doc.set("decisions", std::move(dec));
        if (have_previous) {
            LayoutDiff diff = buildLayoutDiff(
                program, store.config().cache, previous,
                result.layout, "stored (" + prev_algorithm + ")",
                "recomputed (" + result.algorithm + ")");
            crossReferenceDecisions(
                diff, program, snapshotDecisions(decisions, program));
            publishDiffMetrics(diff);
            doc.set("diff", diffToJson(diff, program));
            std::cerr << "re-placement moved " << diff.moves.size()
                      << " of "
                      << diff.moves.size() + diff.unmoved
                      << " procedure(s); " << diff.moves_explained
                      << " move(s) explained by decision records\n";
        }
    }
    writeJsonIfRequested(opts, doc);
    return 0;
}

constexpr const char *kUsage =
    "topo_profile: crash-consistent persistent profile store.\n"
    "  topo_profile init    --store=DIR --program=FILE\n"
    "                       [--build-pairs] [--cache-kb=N]\n"
    "                       [--line-bytes=N] [--assoc=N]\n"
    "                       [--chunk-bytes=N] [--coverage=F]\n"
    "                       [--q-factor=F]\n"
    "  topo_profile ingest  --store=DIR --trace=FILE[,FILE...]\n"
    "                       | --synth=BENCH[,BENCH...]\n"
    "                       [--trace-scale=F (with --synth)]\n"
    "                       [--sample=simpoint [--sample-window=N]\n"
    "                        [--sample-k=N] [--sample-warmup=N]]\n"
    "                       [--label=NAME] [--recover]\n"
    "  topo_profile status  --store=DIR [--json-out=FILE]\n"
    "  topo_profile compact --store=DIR\n"
    "  topo_profile place   --store=DIR [--algorithm=NAME]\n"
    "                       [--replace-threshold=F] [--force]\n"
    "                       [--out-layout=FILE] [--json-out=FILE]\n"
    "Standard knobs: --fault-spec=KIND@P[:seed] --crash-at=SITE[:N]\n"
    "  --log-level=L --log-file=FILE --metrics-out=FILE --jobs=N\n";

} // namespace

int
main(int argc, char **argv)
{
    // Peel the subcommand (Options::parse rejects positional args).
    std::string command;
    if (argc >= 2 && argv[1][0] != '-')
        command = argv[1];
    std::vector<const char *> rest;
    rest.push_back(argv[0]);
    for (int i = command.empty() ? 1 : 2; i < argc; ++i)
        rest.push_back(argv[i]);

    topo::ToolSpec spec{
        "topo_profile", kUsage, {"store", "json-out"}, nullptr};
    if (command == "init") {
        spec.options.insert(spec.options.end(),
                            {"program", "build-pairs", "cache-kb",
                             "line-bytes", "assoc", "policy",
                             "policy-seed", "chunk-bytes",
                             "coverage", "q-factor"});
        spec.run = runInit;
    } else if (command == "ingest") {
        spec.options.insert(spec.options.end(),
                            {"trace", "label", "recover", "synth",
                             "trace-scale", "sample", "sample-window",
                             "sample-k", "sample-max-k",
                             "sample-warmup", "sample-seed",
                             "sample-verify", "sample-max-error"});
        spec.run = runIngest;
    } else if (command == "status") {
        spec.run = runStatus;
    } else if (command == "compact") {
        spec.run = runCompact;
    } else if (command == "place") {
        spec.options.insert(spec.options.end(),
                            {"algorithm", "replace-threshold", "force",
                             "out-layout"});
        spec.run = runPlace;
    } else {
        std::cerr << kUsage;
        if (!command.empty())
            std::cerr << "topo_profile: unknown command '" << command
                      << "'\n";
        return 1;
    }
    return topo::toolMain(static_cast<int>(rest.size()), rest.data(),
                          spec);
}
