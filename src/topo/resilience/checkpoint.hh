/**
 * @file
 * Checkpoint/resume state for long cache-simulation runs.
 *
 * A checkpoint captures exactly the state the replay loop carries
 * across one fetch: the cursor into the (deterministically re-derived)
 * fetch stream, the miss counters, and the raw cache frame words.
 * Everything upstream of the loop — program, layout, expanded stream —
 * is a pure function of the tool's inputs, so it is re-derived on
 * resume and guarded by a fingerprint instead of being serialised;
 * see DESIGN.md ("Why checkpoint state is confined to simulator +
 * cursor").
 *
 * On-disk layout (file magic "TOPK"):
 *
 *   magic "TOPK"
 *   u32le crc32(payload)
 *   u64le payload size
 *   payload: u64le version=1, fingerprint, cursor, misses,
 *            cache word count + words, attribution count + words
 *
 * Writes go to "<path>.tmp", fsync, rename over the target, then
 * fsync the parent directory (durable_io::atomicReplace), so a crash
 * mid-checkpoint leaves the previous checkpoint intact and a
 * completed save cannot be undone by losing the rename; a torn write
 * is caught by the CRC on load and reported as corrupt input.
 */

#ifndef TOPO_RESILIENCE_CHECKPOINT_HH
#define TOPO_RESILIENCE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace topo
{

/** Replay-loop state captured between two fetches. */
struct SimCheckpoint
{
    /** Input fingerprint; resume refuses a mismatched run. */
    std::uint64_t fingerprint = 0;
    /** Fetch-stream references already processed. */
    std::uint64_t cursor = 0;
    /** Misses among the processed references. */
    std::uint64_t misses = 0;
    /** Raw cache frame/tag words (geometry-specific, opaque here). */
    std::vector<std::uint64_t> cache_words;
    /** Per-procedure miss attribution; empty unless attributing. */
    std::vector<std::uint64_t> misses_by_proc;
};

/**
 * Write a checkpoint atomically (tmp file + rename). Throws a
 * user-error TopoError when the path is unwritable.
 */
void saveCheckpoint(const std::string &path, const SimCheckpoint &ckpt);

/**
 * Load and verify a checkpoint. Throws a corrupt-input TopoError on
 * bad magic, truncation, or CRC mismatch; a user-error on an
 * unopenable path.
 */
SimCheckpoint loadCheckpoint(const std::string &path);

/**
 * Mix one value into a running input fingerprint (SplitMix64 step).
 * Start from 0 and fold in every quantity that determines the replay:
 * cache geometry, layout addresses, stream length, attribution flag.
 */
std::uint64_t fingerprintMix(std::uint64_t acc, std::uint64_t value);

} // namespace topo

#endif // TOPO_RESILIENCE_CHECKPOINT_HH
