#include "topo/resilience/fault.hh"

#include <cstdlib>
#include <memory>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

namespace
{

/** Default seeds so arms differ even when the spec gives no seed. */
constexpr std::uint64_t kDefaultSeed[kFaultKindCount] = {
    0x5EED0001, 0x5EED0002, 0x5EED0003, 0x5EED0004};

std::unique_ptr<FaultPlan> g_plan;

/** The single armed crash point (none when site is empty). */
struct CrashPoint
{
    std::string site;
    std::uint64_t countdown = 0;
    CrashMode mode = CrashMode::kExit;
};

CrashPoint g_crash_point;

FaultKind
parseKind(const std::string &name)
{
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
        const auto kind = static_cast<FaultKind>(i);
        if (name == faultKindName(kind))
            return kind;
    }
    fail("fault-spec: unknown fault kind '" + name +
         "' (use read_short, bitflip, throw_io, or write_short)");
}

void
countInjection(FaultKind kind)
{
    MetricsRegistry::global()
        .counter(std::string("fault.injected.") + faultKindName(kind))
        .add();
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::kReadShort:
        return "read_short";
      case FaultKind::kBitflip:
        return "bitflip";
      case FaultKind::kThrowIo:
        return "throw_io";
      case FaultKind::kWriteShort:
        return "write_short";
    }
    return "?";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    for (const std::string &raw : split(spec, ',')) {
        const std::string arm_text = trim(raw);
        if (arm_text.empty())
            continue;
        const std::size_t at = arm_text.find('@');
        require(at != std::string::npos,
                "fault-spec: arm '" + arm_text +
                    "' is not KIND@PROB[:seed]");
        const FaultKind kind = parseKind(arm_text.substr(0, at));
        std::string prob_text = arm_text.substr(at + 1);
        std::uint64_t seed =
            kDefaultSeed[static_cast<std::size_t>(kind)];
        const std::size_t colon = prob_text.rfind(':');
        if (colon != std::string::npos) {
            seed = static_cast<std::uint64_t>(
                parseInt(prob_text.substr(colon + 1),
                         "fault-spec seed"));
            prob_text = prob_text.substr(0, colon);
        }
        const double p =
            parseDouble(prob_text, "fault-spec probability");
        require(p >= 0.0 && p <= 1.0,
                "fault-spec: probability " + prob_text +
                    " outside [0, 1]");
        plan.arm(kind, p, seed);
    }
    return plan;
}

void
FaultPlan::arm(FaultKind kind, double probability, std::uint64_t seed)
{
    Arm &arm = arms_[static_cast<std::size_t>(kind)];
    arm.armed = true;
    arm.probability = probability;
    arm.rng = Rng(seed);
}

bool
FaultPlan::armed(FaultKind kind) const
{
    return arms_[static_cast<std::size_t>(kind)].armed;
}

bool
FaultPlan::any() const
{
    for (const Arm &arm : arms_)
        if (arm.armed)
            return true;
    return false;
}

bool
FaultPlan::fire(FaultKind kind)
{
    Arm &arm = arms_[static_cast<std::size_t>(kind)];
    if (!arm.armed)
        return false;
    return arm.rng.nextBool(arm.probability);
}

std::uint64_t
FaultPlan::draw(FaultKind kind)
{
    return arms_[static_cast<std::size_t>(kind)].rng.next();
}

std::string
FaultPlan::describe() const
{
    std::string text;
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
        if (!arms_[i].armed)
            continue;
        if (!text.empty())
            text += ',';
        text += faultKindName(static_cast<FaultKind>(i));
        text += '@';
        text += std::to_string(arms_[i].probability);
    }
    return text.empty() ? "none" : text;
}

void
installFaultPlan(const FaultPlan &plan)
{
    g_plan = std::make_unique<FaultPlan>(plan);
}

void
clearFaultPlan()
{
    g_plan.reset();
}

FaultPlan *
activeFaultPlan()
{
    return g_plan.get();
}

void
faultMaybeThrowIo(const char *site)
{
    FaultPlan *plan = activeFaultPlan();
    if (plan == nullptr || !plan->fire(FaultKind::kThrowIo))
        return;
    countInjection(FaultKind::kThrowIo);
    logWarn("fault", "injected I/O failure", {{"site", site}});
    failCorrupt("injected I/O failure", site);
}

std::size_t
faultMaybeShortenRead(const char *site, std::size_t n)
{
    FaultPlan *plan = activeFaultPlan();
    if (plan == nullptr || n == 0 ||
        !plan->fire(FaultKind::kReadShort)) {
        return n;
    }
    countInjection(FaultKind::kReadShort);
    const std::size_t kept =
        static_cast<std::size_t>(plan->draw(FaultKind::kReadShort) % n);
    logWarn("fault", "injected short read",
            {{"site", site}, {"bytes", std::uint64_t(n)},
             {"kept", std::uint64_t(kept)}});
    return kept;
}

void
faultMaybeCorrupt(const char *site, char *data, std::size_t n)
{
    FaultPlan *plan = activeFaultPlan();
    if (plan == nullptr || n == 0 ||
        !plan->fire(FaultKind::kBitflip)) {
        return;
    }
    countInjection(FaultKind::kBitflip);
    const std::uint64_t pick = plan->draw(FaultKind::kBitflip);
    const std::size_t byte = static_cast<std::size_t>(pick % n);
    const unsigned bit = static_cast<unsigned>((pick >> 32) & 7);
    data[byte] = static_cast<char>(
        static_cast<unsigned char>(data[byte]) ^ (1u << bit));
    logWarn("fault", "injected bit flip",
            {{"site", site}, {"byte", std::uint64_t(byte)},
             {"bit", bit}});
}

std::size_t
faultMaybeShortenWrite(const char *site, std::size_t n)
{
    FaultPlan *plan = activeFaultPlan();
    if (plan == nullptr || n == 0 ||
        !plan->fire(FaultKind::kWriteShort)) {
        return n;
    }
    countInjection(FaultKind::kWriteShort);
    const std::size_t kept = static_cast<std::size_t>(
        plan->draw(FaultKind::kWriteShort) % n);
    logWarn("fault", "injected short write",
            {{"site", site}, {"bytes", std::uint64_t(n)},
             {"kept", std::uint64_t(kept)}});
    return kept;
}

void
installCrashPoint(const std::string &site, std::uint64_t countdown,
                  CrashMode mode)
{
    require(!site.empty(), "crash point: empty site");
    require(countdown > 0, "crash point: countdown must be >= 1");
    g_crash_point = CrashPoint{site, countdown, mode};
}

void
clearCrashPoint()
{
    g_crash_point = CrashPoint{};
}

void
faultMaybeCrash(const char *site)
{
    if (g_crash_point.site.empty() || g_crash_point.site != site)
        return;
    if (--g_crash_point.countdown > 0)
        return;
    MetricsRegistry::global().counter("fault.injected.crash").add();
    logWarn("fault", "crash point fired", {{"site", site}});
    if (g_crash_point.mode == CrashMode::kExit) {
        // No atexit handlers, no stream flushes: everything not yet
        // written (or fsynced) by the store is lost, as in a real
        // crash.
        std::_Exit(kCrashPointExitCode);
    }
    const std::string fired = g_crash_point.site;
    g_crash_point = CrashPoint{};
    throw CrashPointHit{fired};
}

} // namespace topo
