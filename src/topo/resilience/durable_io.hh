/**
 * @file
 * Durable file primitives shared by the checkpoint writer and the
 * profile store: full-buffer writes with fault-injection hooks, fsync
 * of files and directories, and the atomic-replace idiom done right.
 *
 * The classic atomic-replace bug is rename-without-parent-dir-fsync:
 * write tmp, fsync tmp, rename — and then a crash loses the *rename*,
 * because the directory entry was never made durable. atomicReplace()
 * closes that gap (tmp write + fsync, rename, parent directory fsync)
 * and counts the directory syncs under `store.dir_fsyncs` so tests can
 * assert the discipline is actually followed.
 *
 * Every helper threads the seeded fault plans: reads honour
 * read_short/bitflip/throw_io, writes honour write_short (torn
 * write)/throw_io, and the crash-point sites documented in
 * DESIGN.md §12 are embedded at the rename boundaries.
 */

#ifndef TOPO_RESILIENCE_DURABLE_IO_HH
#define TOPO_RESILIENCE_DURABLE_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace topo
{

/** RAII POSIX file descriptor. */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    /** Raw descriptor; -1 when not open. */
    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    /** Close now (idempotent). */
    void close();

  private:
    int fd_ = -1;
};

/**
 * Open @p path for appending (created with 0644 when absent). Throws
 * a user-error TopoError on failure.
 */
Fd openAppend(const std::string &path);

/** Open @p path read-only; throws a user-error TopoError on failure. */
Fd openRead(const std::string &path);

/**
 * Write the whole buffer at the fd's current offset. Injection: the
 * write_short fault writes only a prefix and then raises a
 * corrupt-input error for @p site (a torn write: the prefix stays on
 * disk); throw_io raises before anything is written.
 */
void writeAll(const Fd &fd, const char *data, std::size_t n,
              const char *site);

/**
 * fsync the descriptor; counts `store.fsyncs`. Throws a corrupt-input
 * TopoError when the kernel reports failure (a lost write).
 */
void fsyncFd(const Fd &fd, const char *site);

/**
 * fsync the directory @p dir so renames/creates inside it are
 * durable; counts `store.dir_fsyncs`.
 */
void fsyncDir(const std::string &dir, const char *site);

/** Truncate the file behind @p fd to @p size bytes and fsync it. */
void truncateFd(const Fd &fd, std::uint64_t size, const char *site);

/**
 * Read a whole file into a string. Injection: throw_io raises,
 * read_short truncates the returned bytes, bitflip corrupts them —
 * exactly the failure surface a store open must survive.
 */
std::string readFileBytes(const std::string &path, const char *site);

/**
 * Atomically replace @p path with @p bytes: write "<path>.tmp", fsync
 * it, rename over @p path, fsync the parent directory. Crash-point
 * sites "<site>.pre_rename" and "<site>.post_rename" bracket the
 * rename, so the crash matrix can pin either outcome.
 */
void atomicReplace(const std::string &path, const std::string &bytes,
                   const char *site);

/** Parent directory of a path ("." when the path has no separator). */
std::string parentDir(const std::string &path);

} // namespace topo

#endif // TOPO_RESILIENCE_DURABLE_IO_HH
