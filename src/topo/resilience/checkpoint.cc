#include "topo/resilience/checkpoint.hh"

#include <fstream>

#include "topo/obs/log.hh"
#include "topo/resilience/crc32.hh"
#include "topo/resilience/durable_io.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

constexpr char kMagic[4] = {'T', 'O', 'P', 'K'};
constexpr std::uint64_t kVersion = 1;

/** Frame-word ceiling: 1 GiB of tags, far above any simulated cache. */
constexpr std::uint64_t kMaxWords = 1ULL << 27;

void
putU64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

void
putU32(std::string &out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

std::uint64_t
getU64(const std::string &in, std::size_t &pos, const std::string &path)
{
    requireData(pos + 8 <= in.size(), "truncated checkpoint", path);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(in[pos + i]))
                 << (8 * i);
    }
    pos += 8;
    return value;
}

void
putWords(std::string &out, const std::vector<std::uint64_t> &words)
{
    putU64(out, words.size());
    for (std::uint64_t w : words)
        putU64(out, w);
}

std::vector<std::uint64_t>
getWords(const std::string &in, std::size_t &pos, const std::string &path)
{
    const std::uint64_t count = getU64(in, pos, path);
    requireData(count <= kMaxWords, "checkpoint word count implausible",
                path);
    requireData(pos + count * 8 <= in.size(), "truncated checkpoint",
                path);
    std::vector<std::uint64_t> words(count);
    for (std::uint64_t i = 0; i < count; ++i)
        words[i] = getU64(in, pos, path);
    return words;
}

} // namespace

void
saveCheckpoint(const std::string &path, const SimCheckpoint &ckpt)
{
    std::string payload;
    payload.reserve(48 + 8 * (ckpt.cache_words.size() +
                              ckpt.misses_by_proc.size()));
    putU64(payload, kVersion);
    putU64(payload, ckpt.fingerprint);
    putU64(payload, ckpt.cursor);
    putU64(payload, ckpt.misses);
    putWords(payload, ckpt.cache_words);
    putWords(payload, ckpt.misses_by_proc);

    std::string file;
    file.reserve(payload.size() + 16);
    file.append(kMagic, sizeof(kMagic));
    putU32(file, crc32(payload));
    putU64(file, payload.size());
    file += payload;

    // tmp write + fsync + rename + parent-dir fsync: without the
    // directory sync a crash after the rename could still resurface
    // the previous checkpoint (the rename itself was not durable).
    atomicReplace(path, file, "checkpoint.save");
    logDebug("checkpoint", "saved",
             {{"file", path}, {"cursor", ckpt.cursor},
              {"misses", ckpt.misses}});
}

SimCheckpoint
loadCheckpoint(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "loadCheckpoint: cannot open '" + path + "'");
    std::string file((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    requireData(file.size() >= 16, "checkpoint too short", path);
    requireData(file.compare(0, 4, kMagic, 4) == 0,
                "bad checkpoint magic", path);
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
        crc |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(file[4 + i]))
               << (8 * i);
    }
    std::size_t pos = 8;
    const std::uint64_t payload_size = getU64(file, pos, path);
    requireData(payload_size == file.size() - 16,
                "checkpoint size mismatch", path);
    const std::string payload = file.substr(16);
    requireData(crc32(payload) == crc, "checkpoint CRC mismatch", path);

    pos = 0;
    SimCheckpoint ckpt;
    const std::uint64_t version = getU64(payload, pos, path);
    requireData(version == kVersion,
                "unsupported checkpoint version " +
                    std::to_string(version),
                path);
    ckpt.fingerprint = getU64(payload, pos, path);
    ckpt.cursor = getU64(payload, pos, path);
    ckpt.misses = getU64(payload, pos, path);
    ckpt.cache_words = getWords(payload, pos, path);
    ckpt.misses_by_proc = getWords(payload, pos, path);
    requireData(pos == payload.size(),
                "trailing bytes in checkpoint", path);
    return ckpt;
}

std::uint64_t
fingerprintMix(std::uint64_t acc, std::uint64_t value)
{
    std::uint64_t z = acc + value + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace topo
