/**
 * @file
 * Umbrella header and CLI glue for the resilience layer.
 *
 * Every CLI tool runs through toolMain(), which owns the shared
 * option plumbing (help, unknown-option rejection, observability and
 * fault-plan setup) and translates failures into the stable exit
 * codes documented in error.hh:
 *
 *   0 ok / 1 user error / 2 corrupt input / 3 internal error
 *
 * Standard knobs accepted by every tool (also via TOPO_* environment):
 *
 *   --fault-spec=KIND@P[:seed][,...]  arm deterministic fault injection
 *   --crash-at=SITE[:N]  terminate the process at the N-th visit of a
 *     named crash-point site (profile-store crash drills)
 *   --log-level / --log-file / --metrics-out / --trace-out
 *     (observability layer; --trace-out emits Chrome trace events)
 *   --jobs=N  worker threads for parallel phases (default: hardware
 *     concurrency; results are bit-identical for every N, DESIGN.md §9)
 */

#ifndef TOPO_RESILIENCE_RESILIENCE_HH
#define TOPO_RESILIENCE_RESILIENCE_HH

#include <string>
#include <vector>

#include "topo/resilience/checkpoint.hh"
#include "topo/resilience/crc32.hh"
#include "topo/resilience/fault.hh"
#include "topo/util/options.hh"

namespace topo
{

/**
 * Install the process-wide fault plan from --fault-spec /
 * TOPO_FAULT_SPEC. No-op when the option is absent. Throws a
 * user-error TopoError on a malformed spec.
 */
void initResilience(const Options &opts);

/** What a CLI tool hands to toolMain. */
struct ToolSpec
{
    /** Tool name used in error messages ("topo_sim"). */
    const char *name;
    /** Full help text, printed verbatim for --help / no arguments. */
    const char *usage;
    /** Tool-specific option names; the standard knobs are implied. */
    std::vector<std::string> options;
    /** The tool body; its return value is the exit code on success. */
    int (*run)(const Options &);
};

/**
 * Shared CLI main: parse options, print help, reject unknown options
 * with a "did you mean" hint, set up observability and fault
 * injection, run the tool, write metrics, and map every failure to
 * its stable exit code. Never throws.
 */
int toolMain(int argc, const char *const *argv, const ToolSpec &spec);

} // namespace topo

#endif // TOPO_RESILIENCE_RESILIENCE_HH
