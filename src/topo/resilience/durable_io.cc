#include "topo/resilience/durable_io.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "topo/obs/metrics.hh"
#include "topo/resilience/fault.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Fd
openAppend(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND,
                          0644);
    require(fd >= 0, "cannot open '" + path + "' for append: " +
                         errnoText());
    return Fd(fd);
}

Fd
openRead(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    require(fd >= 0,
            "cannot open '" + path + "' for read: " + errnoText());
    return Fd(fd);
}

void
writeAll(const Fd &fd, const char *data, std::size_t n,
         const char *site)
{
    faultMaybeThrowIo(site);
    const std::size_t allowed = faultMaybeShortenWrite(site, n);
    std::size_t written = 0;
    while (written < allowed) {
        const ssize_t rc =
            ::write(fd.get(), data + written, allowed - written);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            failCorrupt("write failed: " + errnoText(), site);
        }
        written += static_cast<std::size_t>(rc);
    }
    if (allowed < n)
        failCorrupt("injected torn write", site);
}

void
fsyncFd(const Fd &fd, const char *site)
{
    faultMaybeThrowIo(site);
    MetricsRegistry::global().counter("store.fsyncs").add();
    if (::fsync(fd.get()) != 0)
        failCorrupt("fsync failed: " + errnoText(), site);
}

void
fsyncDir(const std::string &dir, const char *site)
{
    Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
    require(fd.valid(), "cannot open directory '" + dir +
                            "' for fsync: " + errnoText());
    MetricsRegistry::global().counter("store.dir_fsyncs").add();
    if (::fsync(fd.get()) != 0)
        failCorrupt("directory fsync failed: " + errnoText(), site);
}

void
truncateFd(const Fd &fd, std::uint64_t size, const char *site)
{
    faultMaybeThrowIo(site);
    if (::ftruncate(fd.get(), static_cast<off_t>(size)) != 0)
        failCorrupt("truncate failed: " + errnoText(), site);
    fsyncFd(fd, site);
}

std::string
readFileBytes(const std::string &path, const char *site)
{
    faultMaybeThrowIo(site);
    Fd fd = openRead(path);
    std::string bytes;
    char buf[1 << 16];
    for (;;) {
        const ssize_t rc = ::read(fd.get(), buf, sizeof(buf));
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            failCorrupt("read failed: " + errnoText(), site);
        }
        if (rc == 0)
            break;
        bytes.append(buf, static_cast<std::size_t>(rc));
    }
    const std::size_t kept = faultMaybeShortenRead(site, bytes.size());
    if (kept < bytes.size())
        bytes.resize(kept);
    if (!bytes.empty())
        faultMaybeCorrupt(site, bytes.data(), bytes.size());
    return bytes;
}

void
atomicReplace(const std::string &path, const std::string &bytes,
              const char *site)
{
    const std::string tmp = path + ".tmp";
    {
        Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
        require(fd.valid(),
                "cannot open '" + tmp + "': " + errnoText());
        writeAll(fd, bytes.data(), bytes.size(), site);
        fsyncFd(fd, site);
    }
    faultMaybeCrash((std::string(site) + ".pre_rename").c_str());
    require(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot rename '" + tmp + "' to '" + path +
                "': " + errnoText());
    faultMaybeCrash((std::string(site) + ".post_rename").c_str());
    fsyncDir(parentDir(path), site);
}

std::string
parentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

} // namespace topo
