/**
 * @file
 * Deterministic fault injection for the trace/simulation pipeline.
 *
 * A FaultPlan arms one or more fault kinds, each with an independent
 * seeded Bernoulli stream, parsed from the --fault-spec grammar:
 *
 *   SPEC  := ARM ("," ARM)*
 *   ARM   := KIND "@" PROB [":" SEED]
 *   KIND  := "read_short" | "bitflip" | "throw_io"
 *
 * e.g. --fault-spec=read_short@0.001,bitflip@1e-5:42
 *
 * Injection points are threaded through trace_io, trace_binary,
 * fetch_stream, and the simulator replay loop via the faultMaybe*
 * helpers below. With no plan installed every helper is a single
 * branch on a global pointer, so production paths pay nothing.
 *
 * Determinism: each kind draws from its own Rng stream seeded from
 * the spec, so the fire/no-fire sequence of a kind depends only on
 * its seed and how many times that kind's sites were visited — never
 * on wall clock, other kinds, or unrelated code.
 *
 * What each kind models at a site:
 *   read_short  a partial read: the reader sees fewer bytes than the
 *               file holds (truncation mid-stream).
 *   bitflip     silent media corruption: one random bit of a just-read
 *               buffer is inverted.
 *   throw_io    a hard I/O failure: the site throws a corrupt-input
 *               TopoError naming the site.
 */

#ifndef TOPO_RESILIENCE_FAULT_HH
#define TOPO_RESILIENCE_FAULT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "topo/util/rng.hh"

namespace topo
{

/** Injectable fault kinds. */
enum class FaultKind : int
{
    kReadShort = 0,
    kBitflip,
    kThrowIo,
};

/** Number of fault kinds (array sizing). */
constexpr std::size_t kFaultKindCount = 3;

/** Spec-grammar name of a kind ("read_short", ...). */
const char *faultKindName(FaultKind kind);

/** A set of armed fault kinds with per-kind probability and stream. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a --fault-spec string; throws a user-error TopoError on an
     * unknown kind, a probability outside [0, 1], or a malformed arm.
     */
    static FaultPlan parse(const std::string &spec);

    /** Arm one kind programmatically (used by tests). */
    void arm(FaultKind kind, double probability, std::uint64_t seed);

    /** True when @p kind was armed. */
    bool armed(FaultKind kind) const;

    /** True when any kind is armed. */
    bool any() const;

    /**
     * Deterministic Bernoulli draw on @p kind's stream; false (and no
     * stream advance) when the kind is not armed.
     */
    bool fire(FaultKind kind);

    /** Raw 64-bit draw on @p kind's stream (bit positions etc.). */
    std::uint64_t draw(FaultKind kind);

    /** Canonical spec string of the armed kinds (logging). */
    std::string describe() const;

  private:
    struct Arm
    {
        bool armed = false;
        double probability = 0.0;
        Rng rng;
    };

    std::array<Arm, kFaultKindCount> arms_;
};

/**
 * Install @p plan as the process-wide plan consulted by the
 * injection helpers. Replaces any previous plan.
 */
void installFaultPlan(const FaultPlan &plan);

/** Remove the process-wide plan (tests; also end of soak runs). */
void clearFaultPlan();

/** The installed plan, or nullptr when fault injection is off. */
FaultPlan *activeFaultPlan();

/** True when a plan is installed and arms @p kind. */
inline bool
faultArmed(FaultKind kind)
{
    FaultPlan *plan = activeFaultPlan();
    return plan != nullptr && plan->armed(kind);
}

/**
 * throw_io injection point: throws a corrupt-input TopoError naming
 * @p site when the throw_io stream fires. Counted under the
 * "fault.injected.throw_io" metric.
 */
void faultMaybeThrowIo(const char *site);

/**
 * read_short injection point: returns a byte count in [0, n) when the
 * read_short stream fires, @p n otherwise. Callers treat the reduced
 * count exactly as a short read from the OS.
 */
std::size_t faultMaybeShortenRead(const char *site, std::size_t n);

/**
 * bitflip injection point: inverts one random bit of @p data (length
 * @p n > 0) when the bitflip stream fires.
 */
void faultMaybeCorrupt(const char *site, char *data, std::size_t n);

} // namespace topo

#endif // TOPO_RESILIENCE_FAULT_HH
