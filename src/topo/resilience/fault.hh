/**
 * @file
 * Deterministic fault injection for the trace/simulation pipeline.
 *
 * A FaultPlan arms one or more fault kinds, each with an independent
 * seeded Bernoulli stream, parsed from the --fault-spec grammar:
 *
 *   SPEC  := ARM ("," ARM)*
 *   ARM   := KIND "@" PROB [":" SEED]
 *   KIND  := "read_short" | "bitflip" | "throw_io" | "write_short"
 *
 * e.g. --fault-spec=read_short@0.001,bitflip@1e-5:42
 *
 * Injection points are threaded through trace_io, trace_binary,
 * fetch_stream, and the simulator replay loop via the faultMaybe*
 * helpers below. With no plan installed every helper is a single
 * branch on a global pointer, so production paths pay nothing.
 *
 * Determinism: each kind draws from its own Rng stream seeded from
 * the spec, so the fire/no-fire sequence of a kind depends only on
 * its seed and how many times that kind's sites were visited — never
 * on wall clock, other kinds, or unrelated code.
 *
 * What each kind models at a site:
 *   read_short  a partial read: the reader sees fewer bytes than the
 *               file holds (truncation mid-stream).
 *   bitflip     silent media corruption: one random bit of a just-read
 *               buffer is inverted.
 *   throw_io    a hard I/O failure: the site throws a corrupt-input
 *               TopoError naming the site.
 *   write_short a torn write: only a prefix of the buffer reaches the
 *               file before the site fails with a corrupt-input error
 *               (the on-disk state keeps the partial bytes).
 *
 * Crash points are a second, non-probabilistic mechanism for the
 * crash-consistency matrix: a single named site is armed with a visit
 * countdown, and when the countdown reaches zero the process either
 * terminates immediately (kExit, for CLI drills — no atexit handlers,
 * no buffered flushes, exit code kCrashPointExitCode) or throws a
 * CrashPointHit (kThrow, for in-process tests — callers must abandon
 * the crashed object and re-open from disk, exactly as a new process
 * would).
 */

#ifndef TOPO_RESILIENCE_FAULT_HH
#define TOPO_RESILIENCE_FAULT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "topo/util/rng.hh"

namespace topo
{

/** Injectable fault kinds. */
enum class FaultKind : int
{
    kReadShort = 0,
    kBitflip,
    kThrowIo,
    kWriteShort,
};

/** Number of fault kinds (array sizing). */
constexpr std::size_t kFaultKindCount = 4;

/** Spec-grammar name of a kind ("read_short", ...). */
const char *faultKindName(FaultKind kind);

/** A set of armed fault kinds with per-kind probability and stream. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a --fault-spec string; throws a user-error TopoError on an
     * unknown kind, a probability outside [0, 1], or a malformed arm.
     */
    static FaultPlan parse(const std::string &spec);

    /** Arm one kind programmatically (used by tests). */
    void arm(FaultKind kind, double probability, std::uint64_t seed);

    /** True when @p kind was armed. */
    bool armed(FaultKind kind) const;

    /** True when any kind is armed. */
    bool any() const;

    /**
     * Deterministic Bernoulli draw on @p kind's stream; false (and no
     * stream advance) when the kind is not armed.
     */
    bool fire(FaultKind kind);

    /** Raw 64-bit draw on @p kind's stream (bit positions etc.). */
    std::uint64_t draw(FaultKind kind);

    /** Canonical spec string of the armed kinds (logging). */
    std::string describe() const;

  private:
    struct Arm
    {
        bool armed = false;
        double probability = 0.0;
        Rng rng;
    };

    std::array<Arm, kFaultKindCount> arms_;
};

/**
 * Install @p plan as the process-wide plan consulted by the
 * injection helpers. Replaces any previous plan.
 */
void installFaultPlan(const FaultPlan &plan);

/** Remove the process-wide plan (tests; also end of soak runs). */
void clearFaultPlan();

/** The installed plan, or nullptr when fault injection is off. */
FaultPlan *activeFaultPlan();

/** True when a plan is installed and arms @p kind. */
inline bool
faultArmed(FaultKind kind)
{
    FaultPlan *plan = activeFaultPlan();
    return plan != nullptr && plan->armed(kind);
}

/**
 * throw_io injection point: throws a corrupt-input TopoError naming
 * @p site when the throw_io stream fires. Counted under the
 * "fault.injected.throw_io" metric.
 */
void faultMaybeThrowIo(const char *site);

/**
 * read_short injection point: returns a byte count in [0, n) when the
 * read_short stream fires, @p n otherwise. Callers treat the reduced
 * count exactly as a short read from the OS.
 */
std::size_t faultMaybeShortenRead(const char *site, std::size_t n);

/**
 * bitflip injection point: inverts one random bit of @p data (length
 * @p n > 0) when the bitflip stream fires.
 */
void faultMaybeCorrupt(const char *site, char *data, std::size_t n);

/**
 * write_short injection point: returns a byte count in [0, n) when the
 * write_short stream fires, @p n otherwise. Callers write the reduced
 * prefix and then raise a corrupt-input error for the site, leaving a
 * torn record on disk exactly as a crash mid-write would.
 */
std::size_t faultMaybeShortenWrite(const char *site, std::size_t n);

/** Process exit code of a kExit crash point (outside 0/1/2/3). */
constexpr int kCrashPointExitCode = 42;

/** How an armed crash point fires. */
enum class CrashMode
{
    /** Terminate the process immediately (std::_Exit). */
    kExit = 0,
    /** Throw CrashPointHit (in-process crash simulation). */
    kThrow,
};

/**
 * Thrown by a kThrow crash point. Deliberately NOT a TopoError: tests
 * catch it specifically, and nothing in the library handles it, so a
 * fired crash point cannot be absorbed by recovery code the way an
 * injected I/O error can.
 */
struct CrashPointHit
{
    /** The site that fired. */
    std::string site;
};

/**
 * Arm a crash point: the @p countdown-th visit of @p site (1 = the
 * next visit) fires with @p mode. Replaces any previous crash point.
 * CLI syntax: --crash-at=SITE[:N] (mode kExit).
 */
void installCrashPoint(const std::string &site, std::uint64_t countdown,
                       CrashMode mode);

/** Disarm the crash point (tests). */
void clearCrashPoint();

/**
 * Crash-point site marker. No-op unless a crash point armed exactly
 * @p site; sites are threaded through the profile-store I/O paths
 * (DESIGN.md §12 lists them).
 */
void faultMaybeCrash(const char *site);

} // namespace topo

#endif // TOPO_RESILIENCE_FAULT_HH
