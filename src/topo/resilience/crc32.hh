/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
 * guarding the v2 binary trace chunks and simulator checkpoints. A
 * plain table-driven implementation: the payloads it covers are read
 * once per run, so portability beats hardware-assisted throughput
 * here, and the library gains no external dependency.
 */

#ifndef TOPO_RESILIENCE_CRC32_HH
#define TOPO_RESILIENCE_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace topo
{

/**
 * Update a running CRC-32 with @p size bytes.
 *
 * @param crc  Previous value (use 0 to start a fresh checksum).
 * @param data Bytes to absorb.
 * @param size Number of bytes.
 * @return Updated checksum.
 */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t size);

/** One-shot CRC-32 of a byte buffer. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    return crc32Update(0, data, size);
}

/** One-shot CRC-32 of a string's bytes. */
inline std::uint32_t
crc32(const std::string &bytes)
{
    return crc32Update(0, bytes.data(), bytes.size());
}

} // namespace topo

#endif // TOPO_RESILIENCE_CRC32_HH
