#include "topo/resilience/resilience.hh"

#include <exception>
#include <iostream>

#include "topo/exec/exec.hh"
#include "topo/obs/obs.hh"
#include "topo/obs/provenance.hh"
#include "topo/util/error.hh"

namespace topo
{

void
initResilience(const Options &opts)
{
    const std::string spec = opts.getString("fault-spec", "");
    if (spec.empty())
        return;
    const FaultPlan plan = FaultPlan::parse(spec);
    installFaultPlan(plan);
    logInfo("fault", "fault plan installed",
            {{"plan", plan.describe()}});
}

int
toolMain(int argc, const char *const *argv, const ToolSpec &spec)
{
    try {
        const Options opts = Options::parse(argc, argv);
        if (opts.helpRequested() || argc == 1) {
            std::cout << spec.usage;
            return argc == 1 ? exitCodeFor(ErrCode::kUser) : 0;
        }
        std::vector<std::string> known = spec.options;
        known.insert(known.end(), {"log-level", "log-file",
                                   "metrics-out", "trace-out",
                                   "fault-spec", "jobs"});
        opts.rejectUnknown(known);
        initObservability(opts);
        initResilience(opts);
        initExec(opts, hardwareJobs());
        setProvenance("tool", spec.name);
        setProvenance("jobs", std::to_string(execJobs()));
        const int rc = spec.run(opts);
        writeMetricsIfRequested(opts);
        writeTraceIfRequested(opts);
        return rc;
    } catch (const TopoError &err) {
        std::cerr << spec.name << ": error: " << err.what() << "\n";
        return err.exitCode();
    } catch (const std::exception &err) {
        std::cerr << spec.name << ": internal error: " << err.what()
                  << "\n";
        return exitCodeFor(ErrCode::kInternal);
    }
}

} // namespace topo
