#include "topo/resilience/resilience.hh"

#include <exception>
#include <iostream>

#include "topo/exec/exec.hh"
#include "topo/obs/obs.hh"
#include "topo/obs/provenance.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

void
initResilience(const Options &opts)
{
    const std::string spec = opts.getString("fault-spec", "");
    if (!spec.empty()) {
        const FaultPlan plan = FaultPlan::parse(spec);
        installFaultPlan(plan);
        logInfo("fault", "fault plan installed",
                {{"plan", plan.describe()}});
    }
    const std::string crash = opts.getString("crash-at", "");
    if (!crash.empty()) {
        std::string site = crash;
        std::uint64_t countdown = 1;
        const std::size_t colon = crash.rfind(':');
        if (colon != std::string::npos) {
            const std::int64_t n = parseInt(
                crash.substr(colon + 1), "crash-at countdown");
            require(n >= 1, "crash-at: countdown must be >= 1");
            countdown = static_cast<std::uint64_t>(n);
            site = crash.substr(0, colon);
        }
        installCrashPoint(site, countdown, CrashMode::kExit);
        logInfo("fault", "crash point armed",
                {{"site", site}, {"countdown", countdown}});
    }
}

int
toolMain(int argc, const char *const *argv, const ToolSpec &spec)
{
    try {
        const Options opts = Options::parse(argc, argv);
        if (opts.helpRequested() || argc == 1) {
            std::cout << spec.usage;
            return argc == 1 ? exitCodeFor(ErrCode::kUser) : 0;
        }
        std::vector<std::string> known = spec.options;
        known.insert(known.end(), {"log-level", "log-file",
                                   "metrics-out", "trace-out",
                                   "fault-spec", "crash-at", "jobs"});
        opts.rejectUnknown(known);
        initObservability(opts);
        initResilience(opts);
        initExec(opts, hardwareJobs());
        setProvenance("tool", spec.name);
        setProvenance("jobs", std::to_string(execJobs()));
        const int rc = spec.run(opts);
        writeMetricsIfRequested(opts);
        writeTraceIfRequested(opts);
        return rc;
    } catch (const TopoError &err) {
        std::cerr << spec.name << ": error: " << err.what() << "\n";
        return err.exitCode();
    } catch (const std::exception &err) {
        std::cerr << spec.name << ": internal error: " << err.what()
                  << "\n";
        return exitCodeFor(ErrCode::kInternal);
    }
}

} // namespace topo
