#include "topo/sampling/kmeans.hh"

#include <cmath>
#include <limits>

#include "topo/exec/exec.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"

namespace topo
{

namespace
{

inline double
sqDistance(const double *a, const double *b, std::size_t dims)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        sum += diff * diff;
    }
    return sum;
}

/**
 * Seeded k-means++ initialisation: first center uniform, subsequent
 * centers D^2-sampled. Distance updates run in parallel (independent
 * per-window writes); the cumulative-sum draw is serial in window
 * order, so the chosen centers depend only on (features, k, seed).
 */
std::vector<double>
seedCenters(const WindowFeatureMatrix &features, std::size_t k, Rng &rng)
{
    const std::size_t n = features.windows;
    const std::size_t dims = features.dims;
    std::vector<double> centers(k * dims, 0.0);
    std::vector<bool> is_center(n, false);

    const std::size_t first = static_cast<std::size_t>(
        rng.nextBelow(static_cast<std::uint64_t>(n)));
    for (std::size_t d = 0; d < dims; ++d)
        centers[d] = features.row(first)[d];
    is_center[first] = true;

    std::vector<double> dist2(n,
                              std::numeric_limits<double>::infinity());
    for (std::size_t c = 1; c < k; ++c) {
        const double *latest = &centers[(c - 1) * dims];
        parallelFor(n, [&](std::size_t w) {
            const double d2 = sqDistance(features.row(w), latest, dims);
            if (d2 < dist2[w])
                dist2[w] = d2;
        });
        double total = 0.0;
        for (std::size_t w = 0; w < n; ++w)
            total += dist2[w];
        std::size_t pick = n;
        if (total > 0.0) {
            const double r = rng.nextDouble() * total;
            double cumulative = 0.0;
            for (std::size_t w = 0; w < n; ++w) {
                cumulative += dist2[w];
                if (cumulative > r) {
                    pick = w;
                    break;
                }
            }
        }
        if (pick == n) {
            // All remaining windows coincide with existing centers (or
            // FP rounding exhausted the draw): take the lowest-index
            // window that is not yet a center; duplicates are fine
            // when every window already is one.
            pick = 0;
            for (std::size_t w = 0; w < n; ++w) {
                if (!is_center[w]) {
                    pick = w;
                    break;
                }
            }
        }
        for (std::size_t d = 0; d < dims; ++d)
            centers[c * dims + d] = features.row(pick)[d];
        is_center[pick] = true;
    }
    return centers;
}

} // namespace

KMeansResult
kmeansCluster(const WindowFeatureMatrix &features, std::size_t k,
              const KMeansOptions &options)
{
    const std::size_t n = features.windows;
    const std::size_t dims = features.dims;
    require(n > 0, "kmeansCluster: no windows");
    require(k >= 1 && k <= n,
            "kmeansCluster: k must be in [1, windows]");

    Rng rng(options.seed);
    KMeansResult result;
    result.k = k;
    result.centroids = seedCenters(features, k, rng);
    result.assignment.assign(n, 0);

    std::vector<std::uint32_t> next(n, 0);
    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
        // Assignment: nearest centroid, strict < so ties keep the
        // lowest center index. Independent writes — jobs-invariant.
        parallelFor(n, [&](std::size_t w) {
            const double *row = features.row(w);
            std::uint32_t best = 0;
            double best_d2 =
                sqDistance(row, &result.centroids[0], dims);
            for (std::size_t c = 1; c < k; ++c) {
                const double d2 =
                    sqDistance(row, &result.centroids[c * dims], dims);
                if (d2 < best_d2) {
                    best_d2 = d2;
                    best = static_cast<std::uint32_t>(c);
                }
            }
            next[w] = best;
        });
        result.iterations = iter + 1;
        const bool changed = next != result.assignment;
        result.assignment = next;
        if (!changed && iter > 0)
            break;

        // Update: serial accumulation in window order pins the FP
        // summation order. Empty clusters keep their previous
        // centroid (they can be re-captured by a later assignment).
        std::vector<double> sums(k * dims, 0.0);
        std::vector<std::uint64_t> counts(k, 0);
        for (std::size_t w = 0; w < n; ++w) {
            const std::uint32_t c = result.assignment[w];
            const double *row = features.row(w);
            double *sum = &sums[static_cast<std::size_t>(c) * dims];
            for (std::size_t d = 0; d < dims; ++d)
                sum[d] += row[d];
            ++counts[c];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue;
            const double inv = 1.0 / static_cast<double>(counts[c]);
            for (std::size_t d = 0; d < dims; ++d)
                result.centroids[c * dims + d] = sums[c * dims + d] * inv;
        }
        if (!changed)
            break;
    }

    result.cluster_size.assign(k, 0);
    result.inertia = 0.0;
    for (std::size_t w = 0; w < n; ++w) {
        const std::uint32_t c = result.assignment[w];
        ++result.cluster_size[c];
        result.inertia += sqDistance(
            features.row(w),
            &result.centroids[static_cast<std::size_t>(c) * dims], dims);
    }
    return result;
}

KMeansResult
kmeansAuto(const WindowFeatureMatrix &features, std::size_t max_k,
           const KMeansOptions &options)
{
    const std::size_t n = features.windows;
    require(n > 0, "kmeansAuto: no windows");
    require(max_k >= 1, "kmeansAuto: zero max_k");
    const std::size_t cap = max_k < n ? max_k : n;
    const double dn = static_cast<double>(n);
    const double dd = static_cast<double>(features.dims);

    KMeansResult best;
    double best_score = std::numeric_limits<double>::infinity();
    std::size_t worse_streak = 0;
    const Rng parent(options.seed);
    for (std::size_t k = 1; k <= cap; ++k) {
        KMeansOptions child = options;
        child.seed = parent.split(static_cast<std::uint64_t>(k)).next();
        KMeansResult candidate = kmeansCluster(features, k, child);
        // BIC-style score under a spherical-Gaussian model: the data
        // term is n * d * log(mean squared distance) — the d factor
        // matters, dropping it makes the parameter penalty dominate
        // and collapses every sweep to k = 1 — and the complexity
        // term charges (centroid params + mixture weights) * log n.
        // Lower is better; an eps floor keeps log() finite when a
        // clustering is exact.
        const double mse =
            candidate.inertia / dn > 1e-12 ? candidate.inertia / dn
                                           : 1e-12;
        const double score = dn * dd * std::log(mse) +
                             static_cast<double>(k) * (dd + 1.0) *
                                 std::log(dn);
        if (score < best_score) {
            best_score = score;
            best = std::move(candidate);
            worse_streak = 0;
        } else if (++worse_streak >= 2) {
            break;
        }
    }
    return best;
}

} // namespace topo
