#include "topo/sampling/sampled_profile.hh"

#include <cmath>

#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/profile/trg_accumulator.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Everything one segment contributes before weighting. */
struct SegmentProfile
{
    double scale = 0.0;
    WeightedGraph wcg;
    TrgBuildResult trgs;
};

} // namespace

SampledProfileResult
buildSampledProfile(const Program &program, const ChunkMap &chunks,
                    const Trace &trace, const SamplePlan &plan,
                    const TrgBuildOptions &options)
{
    require(plan.active(), "buildSampledProfile: inactive sample plan");
    require(plan.total_events == trace.size(),
            "buildSampledProfile: plan was built for a different trace");
    require(!options.observer,
            "buildSampledProfile: per-step observers require the exact "
            "build (sampling skips steps)");
    PhaseTimer timer("sample_profile");

    const std::vector<TraceEvent> &events = trace.events();
    const std::vector<SampleSegment> &segments = plan.segments;
    std::vector<SegmentProfile> profiles =
        parallelMap(segments.size(), [&](std::size_t s) {
            const SampleSegment &seg = segments[s];
            SegmentProfile profile;
            profile.scale = seg.scale;

            // State-only warm-up, then an accumulator seeded with the
            // warmed queue state replays the measured range exactly as
            // the serial walk would have reached it.
            TrgStateWalker walker(program, chunks, options);
            for (std::size_t i = seg.warm_begin; i < seg.begin; ++i)
                walker.advance(events[i]);
            TrgAccumulator accumulator(program, chunks, options);
            accumulator.seedState(walker.procQueue(),
                                  walker.chunkQueue(), walker.lastProc(),
                                  walker.lastChunk());
            for (std::size_t i = seg.begin; i < seg.end; ++i)
                accumulator.onRun(events[i].proc, events[i].offset,
                                  events[i].length);
            profile.trgs = accumulator.take();

            // WCG transitions over the measured range, seeded with the
            // procedure of the preceding event (the sharded exact
            // builder's rule).
            profile.wcg = WeightedGraph(program.procCount());
            ProcId last = seg.begin > 0 ? events[seg.begin - 1].proc
                                        : kInvalidProc;
            for (std::size_t i = seg.begin; i < seg.end; ++i) {
                const ProcId proc = events[i].proc;
                if (last != kInvalidProc && proc != last)
                    profile.wcg.addWeight(last, proc, 1.0);
                last = proc;
            }
            return profile;
        });

    SampledProfileResult result;
    result.wcg = WeightedGraph(program.procCount());
    result.trg_select = WeightedGraph(program.procCount());
    result.trg_place = WeightedGraph(chunks.chunkCount());
    double steps = 0.0;
    double queue_sum = 0.0;
    double proc_evictions = 0.0;
    double chunk_evictions = 0.0;
    for (const SegmentProfile &profile : profiles) {
        result.wcg.addGraph(profile.wcg, profile.scale);
        result.trg_select.addGraph(profile.trgs.select, profile.scale);
        result.trg_place.addGraph(profile.trgs.place, profile.scale);
        const double seg_steps =
            static_cast<double>(profile.trgs.proc_steps);
        steps += profile.scale * seg_steps;
        queue_sum +=
            profile.scale * profile.trgs.avg_queue_procs * seg_steps;
        proc_evictions +=
            profile.scale *
            static_cast<double>(profile.trgs.proc_evictions);
        chunk_evictions +=
            profile.scale *
            static_cast<double>(profile.trgs.chunk_evictions);
    }
    result.avg_queue_procs = steps > 0.0 ? queue_sum / steps : 0.0;
    result.proc_steps =
        static_cast<std::uint64_t>(std::llround(steps));
    result.proc_evictions =
        static_cast<std::uint64_t>(std::llround(proc_evictions));
    result.chunk_evictions =
        static_cast<std::uint64_t>(std::llround(chunk_evictions));

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("sampling.profiles").add();
    metrics.counter("sampling.profile_segments").add(segments.size());
    return result;
}

} // namespace topo
