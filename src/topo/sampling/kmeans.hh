/**
 * @file
 * Deterministic k-means over window feature vectors — stage 2 of the
 * representative-interval sampler (DESIGN.md §15).
 *
 * Everything is pinned for bit-identical results across --jobs values
 * and reruns (the clustering decides which trace windows get
 * simulated, so any nondeterminism here would violate the pipeline's
 * §9 determinism contract):
 *
 *  - seeded k-means++ initialisation drawn from the library Rng;
 *  - the assignment step parallelises over windows (independent
 *    writes, no accumulation), ties broken towards the lowest center
 *    index by strict comparison;
 *  - centroid recomputation and inertia folds run serially in window
 *    order, so FP summation order never depends on thread count;
 *  - a fixed iteration cap bounds the loop.
 */

#ifndef TOPO_SAMPLING_KMEANS_HH
#define TOPO_SAMPLING_KMEANS_HH

#include <cstdint>
#include <vector>

#include "topo/sampling/window_features.hh"

namespace topo
{

/** K-means knobs. */
struct KMeansOptions
{
    /** Seed of the k-means++ initialisation. */
    std::uint64_t seed = 42;
    /** Lloyd iteration cap (convergence usually takes far fewer). */
    std::size_t max_iterations = 50;
};

/** One clustering of the windows. */
struct KMeansResult
{
    std::size_t k = 0;
    /** Cluster index of each window. */
    std::vector<std::uint32_t> assignment;
    /** Windows per cluster. */
    std::vector<std::uint64_t> cluster_size;
    /** Row-major k x dims centroids. */
    std::vector<double> centroids;
    /** Sum of squared distances to the assigned centroid. */
    double inertia = 0.0;
    /** Lloyd iterations actually run. */
    std::size_t iterations = 0;
};

/**
 * Cluster the feature rows into exactly @p k clusters (1 <= k <=
 * windows). Deterministic for a fixed (features, k, options) triple,
 * independent of the execution layer's jobs count.
 */
KMeansResult kmeansCluster(const WindowFeatureMatrix &features,
                           std::size_t k, const KMeansOptions &options);

/**
 * Choose k automatically with a BIC-style score: sweep k upwards from
 * 1 (capped at @p max_k and the window count), score each clustering
 * by model fit (log mean squared distance) plus a parameter-count
 * penalty, and keep the minimum. The sweep stops early after two
 * consecutive worsening scores — the elbow. Each k clusters with an
 * independent child seed, so the chosen k's result is reproducible in
 * isolation.
 */
KMeansResult kmeansAuto(const WindowFeatureMatrix &features,
                        std::size_t max_k, const KMeansOptions &options);

} // namespace topo

#endif // TOPO_SAMPLING_KMEANS_HH
