/**
 * @file
 * Weighted miss estimation over a SamplePlan (DESIGN.md §15).
 *
 * Each plan segment is simulated twice from a cold cache via the
 * ordinary simulateLayout: once over its warm-up prefix alone and once
 * over warm-up plus measured range. Because the replay is a
 * deterministic function of its input prefix, the difference of the
 * two runs is exactly what the measured range would have contributed
 * had the replay been carried through the warm-up — the "subtract
 * trick" that reuses the production simulator unchanged instead of
 * threading resumable cache state through it. The measured deltas are
 * then scaled by each segment's cluster weight and folded serially in
 * segment order, so estimates are bit-identical for any --jobs value.
 */

#ifndef TOPO_SAMPLING_ESTIMATOR_HH
#define TOPO_SAMPLING_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/program/layout.hh"
#include "topo/sampling/sample_plan.hh"

namespace topo
{

/** Weighted estimate of a full-trace simulation. */
struct SampledSimResult
{
    /** Exact full-trace access count (from the plan, not estimated). */
    std::uint64_t accesses = 0;
    /** Estimated miss count (weighted sum of segment deltas). */
    double est_misses = 0.0;
    /** Per-procedure estimated misses (empty unless requested). */
    std::vector<double> est_misses_by_proc;
    /** Line fetches actually replayed (warm-up + measured). */
    std::uint64_t replayed_blocks = 0;
    /** Segments simulated. */
    std::size_t segments = 0;

    /** Estimated miss rate in [0, 1]. */
    double
    estMissRate() const
    {
        return accesses ? est_misses / static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Estimate the full-trace miss behaviour of @p layout from the plan's
 * representative segments. Segments simulate concurrently on the
 * execution pool; the weighted fold is serial in segment order. The
 * cache-line size of @p cache must equal the line size the plan was
 * built at (the plan's block accounting is reused as the exact access
 * count).
 *
 * @param attribute When true, fill est_misses_by_proc.
 */
SampledSimResult estimateLayout(const Program &program,
                                const Layout &layout, const Trace &trace,
                                const SamplePlan &plan,
                                const CacheConfig &cache, bool attribute);

} // namespace topo

#endif // TOPO_SAMPLING_ESTIMATOR_HH
