/**
 * @file
 * Sampled profile construction over a SamplePlan (DESIGN.md §15).
 *
 * The placement pipeline's profile artifacts — the weighted call graph
 * and both Temporal Relationship Graphs — are linear in the trace:
 * every edge weight is a sum of per-event contributions. They
 * therefore sample exactly like miss counts do. Each plan segment
 * replays its warm-up prefix state-only (TrgStateWalker), seeds a
 * fresh TrgAccumulator with the warmed queue state, accumulates edges
 * over the measured range only, and the per-segment graphs merge with
 * the segment's cluster weight (WeightedGraph::addGraph). The WCG
 * transition walk seeds its last-procedure state from the event just
 * before the measured range, matching the sharded exact builder.
 *
 * Segments run concurrently; all folds are serial in segment order, so
 * the result is bit-identical for any --jobs value. The degenerate
 * single-segment whole-trace plan (scale 1.0, no warm-up) reproduces
 * the exact profile bit-for-bit.
 */

#ifndef TOPO_SAMPLING_SAMPLED_PROFILE_HH
#define TOPO_SAMPLING_SAMPLED_PROFILE_HH

#include <cstdint>

#include "topo/profile/chunk_map.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/profile/weighted_graph.hh"
#include "topo/sampling/sample_plan.hh"

namespace topo
{

/** Weighted-estimate analogue of (buildWcg, buildTrgs) output. */
struct SampledProfileResult
{
    /** Estimated weighted call graph (procedure transitions). */
    WeightedGraph wcg;
    /** Estimated TRG_select (empty graph if not requested). */
    WeightedGraph trg_select;
    /** Estimated TRG_place (empty graph if not requested). */
    WeightedGraph trg_place;
    /** Weighted average procedures resident in Q per step. */
    double avg_queue_procs = 0.0;
    /** Estimated procedure-granularity steps (rounded). */
    std::uint64_t proc_steps = 0;
    /** Estimated Q evictions, procedure granularity (rounded). */
    std::uint64_t proc_evictions = 0;
    /** Estimated Q evictions, chunk granularity (rounded). */
    std::uint64_t chunk_evictions = 0;
};

/**
 * Build the WCG and TRGs from the plan's representative segments only,
 * weighting each segment's edges by its cluster scale. @p options must
 * not carry a per-step observer (observers see every step in order,
 * which sampling by construction does not provide).
 */
SampledProfileResult buildSampledProfile(const Program &program,
                                         const ChunkMap &chunks,
                                         const Trace &trace,
                                         const SamplePlan &plan,
                                         const TrgBuildOptions &options);

} // namespace topo

#endif // TOPO_SAMPLING_SAMPLED_PROFILE_HH
