#include "topo/sampling/window_features.hh"

#include <algorithm>

#include "topo/exec/exec.hh"
#include "topo/obs/epoch_counter.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Line fetches of one run at line size @p line_bytes (FetchStream's
 *  expansion rule: lines floor(off/L) .. floor((off+len-1)/L)). */
inline std::uint64_t
runLines(const TraceEvent &ev, std::uint32_t line_bytes)
{
    const std::uint32_t first = ev.offset / line_bytes;
    const std::uint32_t last = (ev.offset + ev.length - 1) / line_bytes;
    return static_cast<std::uint64_t>(last - first) + 1;
}

} // namespace

std::uint64_t
TraceWindows::totalBlocks() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t b : blocks)
        total += b;
    return total;
}

TraceWindows
sliceTraceWindows(const Program &program, const Trace &trace,
                  std::uint64_t window_runs, std::uint32_t line_bytes)
{
    require(window_runs > 0, "sliceTraceWindows: zero window size");
    require(line_bytes > 0, "sliceTraceWindows: zero line size");
    require(trace.procCount() == program.procCount(),
            "sliceTraceWindows: program/trace mismatch");
    const std::size_t n = trace.size();
    const std::size_t count =
        n == 0 ? 0
               : (n + static_cast<std::size_t>(window_runs) - 1) /
                     static_cast<std::size_t>(window_runs);

    TraceWindows windows;
    windows.window_runs = window_runs;
    windows.event_begin.resize(count + 1);
    windows.blocks.assign(count, 0);
    for (std::size_t w = 0; w <= count; ++w) {
        windows.event_begin[w] =
            std::min(n, w * static_cast<std::size_t>(window_runs));
    }
    windows.event_begin[count] = n;

    const std::vector<TraceEvent> &events = trace.events();
    parallelFor(count, [&](std::size_t w) {
        std::uint64_t blocks = 0;
        for (std::size_t i = windows.event_begin[w];
             i < windows.event_begin[w + 1]; ++i)
            blocks += runLines(events[i], line_bytes);
        windows.blocks[w] = blocks;
    });
    return windows;
}

WindowFeatureMatrix
extractWindowFeatures(const Program &program, const Trace &trace,
                      const TraceWindows &windows,
                      std::uint32_t line_bytes, std::size_t top_procs)
{
    const std::vector<TraceEvent> &events = trace.events();
    const std::size_t proc_count = program.procCount();
    const std::size_t count = windows.count();

    // Global per-procedure line counts select the feature procedures:
    // the hottest ones carry the phase signal, everything else folds
    // into one bucket so the dimensionality stays fixed.
    std::vector<std::uint64_t> global_lines(proc_count, 0);
    for (const TraceEvent &ev : events)
        global_lines[ev.proc] += runLines(ev, line_bytes);
    std::vector<ProcId> hot(proc_count);
    for (std::size_t p = 0; p < proc_count; ++p)
        hot[p] = static_cast<ProcId>(p);
    std::sort(hot.begin(), hot.end(), [&](ProcId a, ProcId b) {
        if (global_lines[a] != global_lines[b])
            return global_lines[a] > global_lines[b];
        return a < b;
    });
    const std::size_t m = std::min(top_procs, proc_count);
    // feature_slot[p] = index into the per-window mix, m = "other".
    std::vector<std::uint32_t> feature_slot(proc_count,
                                            static_cast<std::uint32_t>(m));
    for (std::size_t i = 0; i < m; ++i)
        feature_slot[hot[i]] = static_cast<std::uint32_t>(i);

    WindowFeatureMatrix features;
    features.windows = count;
    features.dims = m + 4; // mix + other + distinct + granularity + repeat
    features.values.assign(count * features.dims, 0.0);

    parallelFor(count, [&](std::size_t w) {
        const std::size_t begin = windows.event_begin[w];
        const std::size_t end = windows.event_begin[w + 1];
        double *row = &features.values[w * features.dims];
        std::vector<std::uint64_t> mix(m + 1, 0);
        EpochCounter distinct(proc_count);
        std::uint64_t repeats = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const TraceEvent &ev = events[i];
            mix[feature_slot[ev.proc]] += runLines(ev, line_bytes);
            distinct.touch(ev.proc);
            if (i > begin && ev.proc == events[i - 1].proc)
                ++repeats;
        }
        const double lines =
            static_cast<double>(std::max<std::uint64_t>(
                windows.blocks[w], 1));
        const double runs =
            static_cast<double>(std::max<std::size_t>(end - begin, 1));
        for (std::size_t i = 0; i <= m; ++i)
            row[i] = static_cast<double>(mix[i]) / lines;
        row[m + 1] = static_cast<double>(distinct.count()) /
                     static_cast<double>(std::max<std::size_t>(
                         proc_count, 1));
        row[m + 2] = runs / lines >= 1.0 ? 1.0 : runs / lines;
        row[m + 3] = static_cast<double>(repeats) / runs;
    });
    return features;
}

} // namespace topo
