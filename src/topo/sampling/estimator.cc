#include "topo/sampling/estimator.hh"

#include "topo/cache/simulate.hh"
#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Copy trace events [begin, end) into a fresh sub-trace. */
Trace
subTrace(const Trace &trace, std::size_t begin, std::size_t end)
{
    const std::vector<TraceEvent> &events = trace.events();
    Trace sub(trace.procCount());
    sub.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i)
        sub.append(events[i].proc, events[i].offset, events[i].length);
    return sub;
}

/** Per-segment simulation deltas (measured range only). */
struct SegmentDelta
{
    double scale = 0.0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::vector<std::uint64_t> misses_by_proc;
    std::uint64_t replayed_blocks = 0;
};

} // namespace

SampledSimResult
estimateLayout(const Program &program, const Layout &layout,
               const Trace &trace, const SamplePlan &plan,
               const CacheConfig &cache, bool attribute)
{
    require(plan.active(), "estimateLayout: inactive sample plan");
    require(plan.total_events == trace.size(),
            "estimateLayout: plan was built for a different trace");
    PhaseTimer timer("sample_estimate");

    const std::vector<SampleSegment> &segments = plan.segments;
    std::vector<SegmentDelta> deltas =
        parallelMap(segments.size(), [&](std::size_t s) {
            const SampleSegment &seg = segments[s];
            SegmentDelta delta;
            delta.scale = seg.scale;
            // Simulate [warm_begin, begin) and [warm_begin, end)
            // both from cold; prefix determinism makes the
            // difference exactly the measured range's contribution
            // under a warmed-up cache.
            const Trace full = subTrace(trace, seg.warm_begin, seg.end);
            const FetchStream full_stream(program, full,
                                          cache.line_bytes);
            const SimResult with_warm = simulateLayout(
                program, layout, full_stream, cache, attribute);
            delta.replayed_blocks = with_warm.accesses;
            if (seg.warm_begin < seg.begin) {
                const Trace warm =
                    subTrace(trace, seg.warm_begin, seg.begin);
                const FetchStream warm_stream(program, warm,
                                              cache.line_bytes);
                const SimResult warm_only = simulateLayout(
                    program, layout, warm_stream, cache, attribute);
                delta.accesses = with_warm.accesses - warm_only.accesses;
                delta.misses = with_warm.misses - warm_only.misses;
                if (attribute) {
                    delta.misses_by_proc = with_warm.misses_by_proc;
                    for (std::size_t p = 0;
                         p < delta.misses_by_proc.size(); ++p)
                        delta.misses_by_proc[p] -=
                            warm_only.misses_by_proc[p];
                }
            } else {
                delta.accesses = with_warm.accesses;
                delta.misses = with_warm.misses;
                delta.misses_by_proc = with_warm.misses_by_proc;
            }
            return delta;
        });

    SampledSimResult result;
    result.accesses = plan.total_blocks;
    result.segments = segments.size();
    if (attribute)
        result.est_misses_by_proc.assign(program.procCount(), 0.0);
    for (const SegmentDelta &delta : deltas) {
        result.est_misses +=
            delta.scale * static_cast<double>(delta.misses);
        result.replayed_blocks += delta.replayed_blocks;
        if (attribute) {
            for (std::size_t p = 0; p < delta.misses_by_proc.size();
                 ++p)
                result.est_misses_by_proc[p] +=
                    delta.scale *
                    static_cast<double>(delta.misses_by_proc[p]);
        }
    }

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("sampling.estimates").add();
    metrics.counter("sampling.replayed_blocks")
        .add(result.replayed_blocks);
    metrics.counter("sampling.estimated_blocks").add(result.accesses);
    return result;
}

} // namespace topo
