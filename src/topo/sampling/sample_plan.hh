/**
 * @file
 * Representative-interval sample plans (DESIGN.md §15).
 *
 * A SamplePlan is the full recipe for simulating (or profiling) a
 * trace at a fraction of its cost: the trace is sliced into windows
 * (window_features), the windows are clustered by behaviour (kmeans),
 * one representative window per cluster is selected, and each
 * representative is assigned the weight of the trace blocks its
 * cluster stands for. Consumers replay only the representatives —
 * preceded by a short state-only warm-up prefix — and scale each
 * one's contribution by its weight.
 *
 * Contiguous representatives with identical weights merge into single
 * segments. This makes the degenerate plan (every window its own
 * cluster, all weights 1.0) collapse to one whole-trace segment with
 * no warm-up, so its replay is bit-identical to the exact path — the
 * anchor for the sampler's correctness tests.
 */

#ifndef TOPO_SAMPLING_SAMPLE_PLAN_HH
#define TOPO_SAMPLING_SAMPLE_PLAN_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

class Options;

/** Sampling regime. */
enum class SampleMode
{
    /** Exact replay of the whole trace (sampling machinery bypassed). */
    kOff,
    /** SimPoint-style cluster-and-weigh representative intervals. */
    kSimpoint,
};

/** Knobs of the representative-interval sampler. */
struct SamplingOptions
{
    SampleMode mode = SampleMode::kOff;
    /** Runs per window; 0 = auto (max(512, ceil(runs / 2048))). */
    std::uint64_t window_runs = 0;
    /** Cluster count; 0 = auto via the BIC elbow (capped at max_k). */
    std::size_t k = 0;
    /** Upper bound of the automatic k sweep. */
    std::size_t max_k = 16;
    /** Warm-up runs replayed state-only before each segment; 0 = one
     *  window. */
    std::uint64_t warmup_runs = 0;
    /** Seed of the k-means++ initialisation. */
    std::uint64_t seed = 12345;
    /** Also run the exact path and report the estimation error. */
    bool verify = false;
    /** With verify: fail when any |est - exact| miss-rate error
     *  exceeds this bound (0 = report only). */
    double max_error = 0.0;

    bool active() const { return mode != SampleMode::kOff; }
};

/** One replayed stretch of the trace. */
struct SampleSegment
{
    /** Warm-up start: events [warm_begin, begin) are replayed
     *  state-only (never counted). */
    std::size_t warm_begin = 0;
    /** Measured event range [begin, end). */
    std::size_t begin = 0;
    std::size_t end = 0;
    /** Weight applied to the segment's measured counts. */
    double scale = 1.0;
};

/** The complete sampling recipe for one trace. */
struct SamplePlan
{
    SampleMode mode = SampleMode::kOff;
    /** Runs per window actually used (after auto-sizing). */
    std::uint64_t window_runs = 0;
    /** Number of windows the trace was sliced into. */
    std::size_t window_count = 0;
    /** Number of behaviour clusters (== representatives). */
    std::size_t cluster_count = 0;
    /** Selected representative window indices, ascending. */
    std::vector<std::size_t> selected;
    /** Replay segments, ascending and non-overlapping. */
    std::vector<SampleSegment> segments;
    /** Trace length in events. */
    std::uint64_t total_events = 0;
    /** Exact full-trace line-fetch count at the plan's line size. */
    std::uint64_t total_blocks = 0;
    /** Events replayed (warm-up + measured) across all segments. */
    std::uint64_t replayed_events = 0;

    bool active() const { return mode != SampleMode::kOff; }

    /** Replayed fraction of the trace, in [0, 1]. */
    double
    replayedFraction() const
    {
        if (total_events == 0)
            return 0.0;
        const double f = static_cast<double>(replayed_events) /
                         static_cast<double>(total_events);
        return f > 1.0 ? 1.0 : f;
    }
};

/**
 * Build a sample plan for @p trace at cache-line size @p line_bytes.
 * Deterministic and jobs-invariant for fixed inputs. Traces of at
 * most one window yield a single exact segment (scale 1.0, no
 * warm-up). Requires options.active().
 */
SamplePlan buildSamplePlan(const Program &program, const Trace &trace,
                           std::uint32_t line_bytes,
                           const SamplingOptions &options);

/**
 * Parse the sampler's CLI surface: --sample=off|simpoint,
 * --sample-window, --sample-k, --sample-max-k, --sample-warmup,
 * --sample-seed, --sample-verify, --sample-max-error. Rejects
 * malformed values with actionable messages.
 */
SamplingOptions samplingFrom(const Options &options);

} // namespace topo

#endif // TOPO_SAMPLING_SAMPLE_PLAN_HH
