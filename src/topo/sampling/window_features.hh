/**
 * @file
 * Trace windowing and per-window behaviour vectors — stage 1 of the
 * representative-interval sampler (DESIGN.md §15).
 *
 * A trace is sliced into fixed-size windows of consecutive runs; each
 * window is summarised as a small feature vector capturing *what* the
 * window fetches (per-procedure line-fetch mix over the globally
 * hottest procedures) and *how* it fetches it (working-set breadth,
 * run granularity, same-procedure locality). Windows with similar
 * vectors exercise the cache similarly — the premise of SimPoint-style
 * sampling (Bueno et al.) — so clustering the vectors and simulating
 * one representative per cluster recovers the full-trace miss rate to
 * within a small, measurable error.
 *
 * Every feature lies in [0, 1] by construction, so plain Euclidean
 * distance weighs the dimensions comparably without normalisation
 * passes that would couple windows to each other.
 */

#ifndef TOPO_SAMPLING_WINDOW_FEATURES_HH
#define TOPO_SAMPLING_WINDOW_FEATURES_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** Fixed-size slicing of a trace into run windows. */
struct TraceWindows
{
    /** Runs per window (last window may be shorter). */
    std::uint64_t window_runs = 0;
    /**
     * Event index of each window's first run, plus one trailing entry
     * equal to the trace length: window w spans events
     * [event_begin[w], event_begin[w + 1]).
     */
    std::vector<std::size_t> event_begin;
    /**
     * Cache-line fetches of each window at the slicing line size —
     * the exact FetchStream length of the window's events, computed
     * arithmetically without expanding the stream.
     */
    std::vector<std::uint64_t> blocks;

    std::size_t count() const { return blocks.size(); }

    /** Total line fetches across all windows (the exact stream size). */
    std::uint64_t totalBlocks() const;
};

/** Row-major windows x dims feature matrix. */
struct WindowFeatureMatrix
{
    std::size_t windows = 0;
    std::size_t dims = 0;
    /** Row w starts at values[w * dims]. */
    std::vector<double> values;

    const double *row(std::size_t w) const { return &values[w * dims]; }
};

/**
 * Slice @p trace into windows of @p window_runs runs and compute each
 * window's exact line-fetch count at @p line_bytes. O(events), no
 * stream expansion. Requires a validated trace and window_runs > 0.
 */
TraceWindows sliceTraceWindows(const Program &program, const Trace &trace,
                               std::uint64_t window_runs,
                               std::uint32_t line_bytes);

/**
 * Per-window behaviour vectors. Dimensions: line-fetch fraction of
 * each of the top @p top_procs procedures by global line count (ties
 * broken by procedure id), one "everything else" fraction, the
 * distinct-procedure fraction of the window, the run/line granularity
 * ratio, and the same-procedure repeat fraction. Deterministic and
 * jobs-invariant: window rows are computed independently (parallelFor
 * over disjoint rows) from per-window data only.
 */
WindowFeatureMatrix extractWindowFeatures(const Program &program,
                                          const Trace &trace,
                                          const TraceWindows &windows,
                                          std::uint32_t line_bytes,
                                          std::size_t top_procs = 32);

} // namespace topo

#endif // TOPO_SAMPLING_WINDOW_FEATURES_HH
