#include "topo/sampling/sample_plan.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/sampling/kmeans.hh"
#include "topo/sampling/window_features.hh"
#include "topo/util/error.hh"
#include "topo/util/options.hh"

namespace topo
{

namespace
{

/** Auto window size: at most ~2048 windows, at least 512 runs each. */
std::uint64_t
autoWindowRuns(std::size_t run_count)
{
    const std::uint64_t ceil_div =
        (static_cast<std::uint64_t>(run_count) + 2047) / 2048;
    return std::max<std::uint64_t>(512, ceil_div);
}

/** Squared distance between a feature row and a centroid row. */
double
rowSqDistance(const double *a, const double *b, std::size_t dims)
{
    double sum = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
        const double diff = a[d] - b[d];
        sum += diff * diff;
    }
    return sum;
}

/** Whole-trace plan used when there is nothing to sample. */
SamplePlan
exactPlan(const Trace &trace, const TraceWindows &windows)
{
    SamplePlan plan;
    plan.mode = SampleMode::kSimpoint;
    plan.window_runs = windows.window_runs;
    plan.window_count = windows.count();
    plan.cluster_count = windows.count();
    plan.total_events = trace.size();
    plan.total_blocks = windows.totalBlocks();
    for (std::size_t w = 0; w < windows.count(); ++w)
        plan.selected.push_back(w);
    if (trace.size() > 0) {
        SampleSegment seg;
        seg.warm_begin = 0;
        seg.begin = 0;
        seg.end = trace.size();
        seg.scale = 1.0;
        plan.segments.push_back(seg);
        plan.replayed_events = trace.size();
    }
    return plan;
}

} // namespace

SamplePlan
buildSamplePlan(const Program &program, const Trace &trace,
                std::uint32_t line_bytes, const SamplingOptions &options)
{
    require(options.active(), "buildSamplePlan: sampling is off");
    PhaseTimer timer("sample_plan");

    const std::uint64_t window_runs =
        options.window_runs > 0 ? options.window_runs
                                : autoWindowRuns(trace.size());
    const TraceWindows windows =
        sliceTraceWindows(program, trace, window_runs, line_bytes);
    const std::size_t count = windows.count();

    SamplePlan plan;
    if (count <= 1) {
        plan = exactPlan(trace, windows);
    } else {
        const WindowFeatureMatrix features =
            extractWindowFeatures(program, trace, windows, line_bytes);

        KMeansOptions kopts;
        kopts.seed = options.seed;
        KMeansResult clusters;
        if (options.k > 0) {
            clusters = kmeansCluster(
                features, std::min(options.k, count), kopts);
        } else {
            clusters = kmeansAuto(
                features, std::max<std::size_t>(options.max_k, 1),
                kopts);
        }

        // Representative of each cluster: the member window closest to
        // the centroid, ties to the lowest window index (serial scan
        // in window order).
        std::vector<std::size_t> rep(clusters.k, count);
        std::vector<double> rep_d2(
            clusters.k, std::numeric_limits<double>::infinity());
        std::vector<std::uint64_t> cluster_blocks(clusters.k, 0);
        for (std::size_t w = 0; w < count; ++w) {
            const std::uint32_t c = clusters.assignment[w];
            cluster_blocks[c] += windows.blocks[w];
            const double d2 = rowSqDistance(
                features.row(w),
                &clusters.centroids[static_cast<std::size_t>(c) *
                                    features.dims],
                features.dims);
            if (d2 < rep_d2[c]) {
                rep_d2[c] = d2;
                rep[c] = w;
            }
        }

        plan.mode = SampleMode::kSimpoint;
        plan.window_runs = window_runs;
        plan.window_count = count;
        plan.cluster_count = clusters.k;
        plan.total_events = trace.size();
        plan.total_blocks = windows.totalBlocks();

        // Per selected window: weight = blocks its cluster stands for
        // over the representative's own blocks.
        std::vector<double> scale_of(count, 0.0);
        for (std::size_t c = 0; c < clusters.k; ++c) {
            if (rep[c] == count)
                continue; // empty cluster — no weight to carry
            plan.selected.push_back(rep[c]);
            const std::uint64_t own = windows.blocks[rep[c]];
            scale_of[rep[c]] =
                own > 0 ? static_cast<double>(cluster_blocks[c]) /
                              static_cast<double>(own)
                        : 0.0;
        }
        std::sort(plan.selected.begin(), plan.selected.end());

        // Merge contiguous identical-weight windows into segments and
        // attach the warm-up prefix. A segment starting at event 0
        // needs no warm-up; the degenerate all-windows plan therefore
        // collapses to one cold-start whole-trace segment.
        const std::uint64_t warmup_runs = options.warmup_runs > 0
                                              ? options.warmup_runs
                                              : window_runs;
        for (const std::size_t w : plan.selected) {
            const std::size_t begin = windows.event_begin[w];
            const std::size_t end = windows.event_begin[w + 1];
            const double scale = scale_of[w];
            if (!plan.segments.empty() &&
                plan.segments.back().end == begin &&
                plan.segments.back().scale == scale) {
                plan.segments.back().end = end;
                continue;
            }
            SampleSegment seg;
            seg.begin = begin;
            seg.end = end;
            seg.scale = scale;
            seg.warm_begin =
                begin > static_cast<std::size_t>(warmup_runs)
                    ? begin - static_cast<std::size_t>(warmup_runs)
                    : 0;
            plan.segments.push_back(seg);
        }
        for (const SampleSegment &seg : plan.segments)
            plan.replayed_events += seg.end - seg.warm_begin;
    }

    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("sampling.plans").add();
    metrics.counter("sampling.windows").add(plan.window_count);
    metrics.counter("sampling.clusters").add(plan.cluster_count);
    metrics.counter("sampling.selected_windows").add(plan.selected.size());
    metrics.counter("sampling.replayed_events").add(plan.replayed_events);
    metrics.counter("sampling.total_events").add(plan.total_events);
    metrics.gauge("sampling.replayed_fraction")
        .set(plan.replayedFraction());

    if (logEnabled(LogLevel::kDebug)) {
        logDebug("sampling", "built sample plan",
                 {{"events", plan.total_events},
                  {"window_runs", plan.window_runs},
                  {"windows", plan.window_count},
                  {"clusters", plan.cluster_count},
                  {"segments", plan.segments.size()},
                  {"replayed_fraction", plan.replayedFraction()},
                  {"ms", timer.elapsedMs()}});
    }
    return plan;
}

SamplingOptions
samplingFrom(const Options &options)
{
    SamplingOptions sampling;
    const std::string mode = options.getString("sample", "off");
    if (mode == "off") {
        sampling.mode = SampleMode::kOff;
    } else if (mode == "simpoint") {
        sampling.mode = SampleMode::kSimpoint;
    } else {
        require(false, "unknown --sample mode '" + mode +
                           "'; did you mean --sample=simpoint?");
    }

    const std::int64_t window = options.getInt("sample-window", 0);
    require(window >= 0, "--sample-window must be >= 0 (0 = auto)");
    sampling.window_runs = static_cast<std::uint64_t>(window);

    const std::int64_t k = options.getInt("sample-k", 0);
    require(k >= 0, "--sample-k must be >= 0 (0 = auto)");
    sampling.k = static_cast<std::size_t>(k);

    const std::int64_t max_k = options.getInt("sample-max-k", 16);
    require(max_k >= 1, "--sample-max-k must be >= 1");
    sampling.max_k = static_cast<std::size_t>(max_k);

    const std::int64_t warmup = options.getInt("sample-warmup", 0);
    require(warmup >= 0, "--sample-warmup must be >= 0 (0 = one window)");
    sampling.warmup_runs = static_cast<std::uint64_t>(warmup);

    sampling.seed = static_cast<std::uint64_t>(
        options.getInt("sample-seed", 12345));

    sampling.verify = options.getBool("sample-verify", false);
    const double max_error = options.getDouble("sample-max-error", 0.0);
    require(std::isfinite(max_error) && max_error >= 0.0,
            "--sample-max-error must be a non-negative, finite number");
    require(max_error == 0.0 || sampling.verify,
            "--sample-max-error requires --sample-verify (the exact "
            "run that measures the error)");
    sampling.max_error = max_error;

    require(sampling.mode != SampleMode::kOff ||
                (!sampling.verify && sampling.window_runs == 0 &&
                 sampling.k == 0 && sampling.warmup_runs == 0),
            "--sample-* options require --sample=simpoint");
    return sampling;
}

} // namespace topo
