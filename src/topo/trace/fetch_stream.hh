/**
 * @file
 * FetchStream: the line-granularity expansion of a trace.
 *
 * The cache simulator consumes (procedure, line-within-procedure)
 * references. Expanding a trace once and reusing the stream for every
 * candidate layout is the key performance lever of the evaluation
 * harness: a layout only changes the *mapping* of each reference, not
 * the reference sequence itself.
 */

#ifndef TOPO_TRACE_FETCH_STREAM_HH
#define TOPO_TRACE_FETCH_STREAM_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** One cache-line fetch: a line index within a procedure. */
struct FetchRef
{
    ProcId proc;
    std::uint32_t line; // line index within the procedure

    bool
    operator==(const FetchRef &other) const
    {
        return proc == other.proc && line == other.line;
    }
};

/**
 * Immutable line-granularity reference stream for one trace.
 */
class FetchStream
{
  public:
    /**
     * Expand a trace into line fetches.
     *
     * Consecutive references to the same line (within one run) are
     * emitted once per line of the run; a run touching bytes
     * [off, off+len) emits lines floor(off/L) .. floor((off+len-1)/L).
     *
     * @param program    Procedure inventory (for bounds checking).
     * @param trace      The run trace.
     * @param line_bytes Cache line size in bytes.
     */
    FetchStream(const Program &program, const Trace &trace,
                std::uint32_t line_bytes);

    /** Line size the stream was expanded at. */
    std::uint32_t lineBytes() const { return line_bytes_; }

    /** All line references in execution order. */
    const std::vector<FetchRef> &refs() const { return refs_; }

    /** Number of line references. */
    std::size_t size() const { return refs_.size(); }

  private:
    std::uint32_t line_bytes_;
    std::vector<FetchRef> refs_;
};

} // namespace topo

#endif // TOPO_TRACE_FETCH_STREAM_HH
