/**
 * @file
 * FetchStream: the line-granularity expansion of a trace.
 *
 * The cache simulator consumes (procedure, line-within-procedure)
 * references. Expanding a trace once and reusing the stream for every
 * candidate layout is the key performance lever of the evaluation
 * harness: a layout only changes the *mapping* of each reference, not
 * the reference sequence itself.
 *
 * Storage is one 4-byte "program line id" per fetch — the index of the
 * line in a source-order concatenation of all procedures — instead of
 * an 8-byte (proc, line) pair. The replay loop then needs a single
 * array lookup per reference (a per-layout table maps program line id
 * to placed line address), and the stream itself moves half the bytes
 * through the memory hierarchy; with tens of millions of fetches the
 * replay is memory-bandwidth-bound, so this is the dominant term.
 */

#ifndef TOPO_TRACE_FETCH_STREAM_HH
#define TOPO_TRACE_FETCH_STREAM_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** One cache-line fetch: a line index within a procedure. */
struct FetchRef
{
    ProcId proc;
    std::uint32_t line; // line index within the procedure

    bool
    operator==(const FetchRef &other) const
    {
        return proc == other.proc && line == other.line;
    }
};

/**
 * One trace run in line-id form, repeated @ref repeats times
 * back-to-back: each repeat is @ref line_count consecutive program
 * line ids starting at @ref first_line. Because a run never crosses a
 * procedure boundary, the ids also map to consecutive placed line
 * addresses under any layout — the property the simulator's batched
 * replay exploits to amortise its per-reference table lookup over a
 * whole run (runs average ~8-13 lines on the paper suite).
 *
 * The repeat count is the decisive compression: loop-heavy traces
 * re-execute the same run back-to-back for 75-85% of all line fetches
 * (paper suite, both inputs), and a repeat of a run short enough to
 * be self-contained in the cache is provably all-hits and leaves the
 * cache state untouched, so the simulator can account for it without
 * replaying it (see DirectMappedCache::accessRunBatch).
 */
struct FetchRun
{
    std::uint32_t first_line;
    std::uint32_t line_count;
    std::uint32_t repeats;
};

/**
 * Immutable line-granularity reference stream for one trace.
 */
class FetchStream
{
  public:
    /**
     * Expand a trace into line fetches.
     *
     * Consecutive references to the same line (within one run) are
     * emitted once per line of the run; a run touching bytes
     * [off, off+len) emits lines floor(off/L) .. floor((off+len-1)/L).
     *
     * @param program    Procedure inventory (for bounds checking).
     * @param trace      The run trace.
     * @param line_bytes Cache line size in bytes.
     */
    FetchStream(const Program &program, const Trace &trace,
                std::uint32_t line_bytes);

    /** Line size the stream was expanded at. */
    std::uint32_t lineBytes() const { return line_bytes_; }

    /** Number of line references. */
    std::size_t size() const { return line_ids_.size(); }

    /**
     * All references as program line ids in execution order — the
     * compact form the replay loop consumes directly.
     */
    const std::vector<std::uint32_t> &lineIds() const { return line_ids_; }

    /**
     * The same reference sequence grouped into repeat-compressed runs
     * of consecutive lines; concatenating the runs' expansions
     * (line_count lines, repeats times each) reproduces lineIds()
     * exactly (both are built in one pass over the trace).
     */
    const std::vector<FetchRun> &runs() const { return runs_; }

    /** Decode reference @p i into its (procedure, line) form. */
    FetchRef
    ref(std::size_t i) const
    {
        const std::uint32_t id = line_ids_[i];
        const ProcId proc = proc_of_line_[id];
        return FetchRef{proc, id - line_base_[proc]};
    }

    /** Total lines across all procedures at this line size. */
    std::uint32_t
    programLineCount() const
    {
        return static_cast<std::uint32_t>(proc_of_line_.size());
    }

    /** First program line id of @p proc. */
    std::uint32_t lineBase(ProcId proc) const { return line_base_[proc]; }

    /** Procedure owning program line @p id. */
    ProcId procOfLine(std::uint32_t id) const { return proc_of_line_[id]; }

  private:
    std::uint32_t line_bytes_;
    std::vector<std::uint32_t> line_ids_;
    std::vector<FetchRun> runs_;
    /** Per procedure: first program line id (size procCount() + 1). */
    std::vector<std::uint32_t> line_base_;
    /** Per program line: the owning procedure. */
    std::vector<ProcId> proc_of_line_;
};

} // namespace topo

#endif // TOPO_TRACE_FETCH_STREAM_HH
