/**
 * @file
 * Summary statistics over a trace: dynamic reference counts per
 * procedure, bytes fetched, distinct procedures touched. Feeds the
 * popularity selection and the Table 1 report.
 */

#ifndef TOPO_TRACE_TRACE_STATS_HH
#define TOPO_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

/** Per-trace summary. */
struct TraceStats
{
    /** Runs per procedure. */
    std::vector<std::uint64_t> run_count;
    /** Bytes fetched per procedure. */
    std::vector<std::uint64_t> bytes_fetched;
    /** Total number of runs. */
    std::uint64_t total_runs = 0;
    /** Total bytes fetched. */
    std::uint64_t total_bytes = 0;
    /** Number of procedures referenced at least once. */
    std::size_t procs_touched = 0;
};

/** Compute summary statistics for a trace. */
TraceStats computeTraceStats(const Program &program, const Trace &trace);

} // namespace topo

#endif // TOPO_TRACE_TRACE_STATS_HH
