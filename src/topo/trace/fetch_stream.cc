#include "topo/trace/fetch_stream.hh"

#include "topo/resilience/fault.hh"
#include "topo/util/error.hh"

namespace topo
{

FetchStream::FetchStream(const Program &program, const Trace &trace,
                         std::uint32_t line_bytes)
    : line_bytes_(line_bytes)
{
    require(line_bytes > 0, "FetchStream: zero line size");

    // Source-order concatenation of every procedure's lines defines
    // the program line id space: proc p's line l is line_base_[p] + l.
    line_base_.assign(program.procCount() + 1, 0);
    std::uint64_t total_lines = 0;
    for (std::size_t p = 0; p < program.procCount(); ++p) {
        line_base_[p] = static_cast<std::uint32_t>(total_lines);
        const std::uint32_t size =
            program.proc(static_cast<ProcId>(p)).size_bytes;
        total_lines += (size + line_bytes - 1) / line_bytes;
        require(total_lines <= ~std::uint32_t{0},
                "FetchStream: program exceeds 2^32 lines");
    }
    line_base_[program.procCount()] =
        static_cast<std::uint32_t>(total_lines);
    proc_of_line_.resize(static_cast<std::size_t>(total_lines));
    for (std::size_t p = 0; p < program.procCount(); ++p) {
        for (std::uint32_t id = line_base_[p]; id < line_base_[p + 1];
             ++id)
            proc_of_line_[id] = static_cast<ProcId>(p);
    }

    // Fault hook armed once outside the loop so the common case stays
    // a pure expansion; the periodic check keeps the injected-error
    // path (mid-expansion failure) exercisable without a per-event
    // cost when armed.
    const bool faulty = faultArmed(FaultKind::kThrowIo);
    // Estimate: most runs span a couple of lines.
    line_ids_.reserve(trace.size() * 2);
    runs_.reserve(trace.size());
    std::size_t processed = 0;
    for (const TraceEvent &ev : trace.events()) {
        if (faulty && (++processed & 0xFF) == 0)
            faultMaybeThrowIo("fetch_stream");
        requireData(ev.proc < program.procCount(),
                    "FetchStream: invalid procedure id in trace");
        const std::uint64_t end =
            static_cast<std::uint64_t>(ev.offset) + ev.length;
        requireData(end <= program.proc(ev.proc).size_bytes,
                    "FetchStream: run exceeds procedure bounds");
        const std::uint32_t base = line_base_[ev.proc];
        const std::uint32_t first = ev.offset / line_bytes;
        const std::uint32_t last =
            static_cast<std::uint32_t>((end - 1) / line_bytes);
        const std::uint32_t first_id = base + first;
        const std::uint32_t count = last - first + 1;
        if (!runs_.empty() && runs_.back().first_line == first_id &&
            runs_.back().line_count == count)
            ++runs_.back().repeats;
        else
            runs_.push_back(FetchRun{first_id, count, 1});
        for (std::uint32_t line = first; line <= last; ++line)
            line_ids_.push_back(base + line);
    }
}

} // namespace topo
