#include "topo/trace/fetch_stream.hh"

#include "topo/resilience/fault.hh"
#include "topo/util/error.hh"

namespace topo
{

FetchStream::FetchStream(const Program &program, const Trace &trace,
                         std::uint32_t line_bytes)
    : line_bytes_(line_bytes)
{
    require(line_bytes > 0, "FetchStream: zero line size");
    // Fault hook armed once outside the loop so the common case stays
    // a pure expansion; the periodic check keeps the injected-error
    // path (mid-expansion failure) exercisable without a per-event
    // cost when armed.
    const bool faulty = faultArmed(FaultKind::kThrowIo);
    // Estimate: most runs span a couple of lines.
    refs_.reserve(trace.size() * 2);
    std::size_t processed = 0;
    for (const TraceEvent &ev : trace.events()) {
        if (faulty && (++processed & 0xFF) == 0)
            faultMaybeThrowIo("fetch_stream");
        requireData(ev.proc < program.procCount(),
                    "FetchStream: invalid procedure id in trace");
        const std::uint64_t end =
            static_cast<std::uint64_t>(ev.offset) + ev.length;
        requireData(end <= program.proc(ev.proc).size_bytes,
                    "FetchStream: run exceeds procedure bounds");
        const std::uint32_t first = ev.offset / line_bytes;
        const std::uint32_t last =
            static_cast<std::uint32_t>((end - 1) / line_bytes);
        for (std::uint32_t line = first; line <= last; ++line)
            refs_.push_back(FetchRef{ev.proc, line});
    }
}

} // namespace topo
