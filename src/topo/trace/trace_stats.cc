#include "topo/trace/trace_stats.hh"

#include "topo/util/error.hh"

namespace topo
{

TraceStats
computeTraceStats(const Program &program, const Trace &trace)
{
    require(program.procCount() == trace.procCount(),
            "computeTraceStats: program/trace mismatch");
    TraceStats stats;
    stats.run_count.assign(program.procCount(), 0);
    stats.bytes_fetched.assign(program.procCount(), 0);
    for (const TraceEvent &ev : trace.events()) {
        stats.run_count[ev.proc] += 1;
        stats.bytes_fetched[ev.proc] += ev.length;
        stats.total_runs += 1;
        stats.total_bytes += ev.length;
    }
    for (std::uint64_t runs : stats.run_count) {
        if (runs > 0)
            ++stats.procs_touched;
    }
    return stats;
}

} // namespace topo
