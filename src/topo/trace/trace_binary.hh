/**
 * @file
 * Compact binary trace format.
 *
 * Real profiling traces are tens of millions of runs (Table 1 inputs
 * are 17M-146M basic blocks); the text format is convenient but
 * bulky. The binary format stores runs as LEB128 varints with
 * delta-coded procedure ids, typically 2-4 bytes per run.
 *
 * Version 2 (written by default) hardens the format against the
 * partial writes and silent corruption that long collection runs hit
 * in practice: records are grouped into chunks, each carrying its own
 * record count and CRC-32, and the header promises the total record
 * count so losses are quantifiable:
 *
 *   magic "TOPB" varint version=2
 *   varint proc_count
 *   varint run_count                 (total records in the file)
 *   chunk*:
 *     varint record_count            (> 0)
 *     varint payload_bytes
 *     u32le  crc32(payload)
 *     payload: record_count runs as varint zigzag(proc - prev_proc),
 *              varint offset, varint length; prev_proc restarts at 0
 *              each chunk, so every chunk decodes independently
 *
 * Version 1 (headerless stream of runs after "TOPB" 1 proc_count
 * run_count) is still readable.
 *
 * Readers run in one of two modes. Strict (default): any truncation,
 * CRC mismatch, or malformed field throws a corrupt-input TopoError
 * (tool exit code 2). Recover (--recover): the valid chunk prefix is
 * salvaged, the loss is reported through the trace.recovered_chunks /
 * trace.dropped_records metrics and a warning log, and the pipeline
 * continues on the salvaged trace.
 */

#ifndef TOPO_TRACE_TRACE_BINARY_HH
#define TOPO_TRACE_TRACE_BINARY_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topo/trace/trace.hh"
#include "topo/trace/trace_io.hh" // TraceWriteOptions/TraceReadOptions

namespace topo
{

/** Write a trace in the binary format (v2). */
void writeBinaryTrace(std::ostream &os, const Trace &trace,
                      const TraceWriteOptions &wopts = {});

/**
 * Read a binary trace (v1 or v2); throws a corrupt-input TopoError on
 * malformed input unless @p ropts.recover is set.
 */
Trace readBinaryTrace(std::istream &is,
                      const TraceReadOptions &ropts = {});

/**
 * Decode a complete in-memory binary trace image (v1 or v2) without
 * copying chunk payloads — records are parsed and CRCs verified
 * directly over [data, data + size). This is the zero-copy core the
 * mmap loader uses; strict/recover semantics, salvage metrics, and
 * error text match readBinaryTrace exactly.
 */
Trace decodeBinaryTrace(const char *data, std::size_t size,
                        const TraceReadOptions &ropts = {});

/** Write a binary trace to a file path. */
void saveBinaryTrace(const std::string &path, const Trace &trace,
                     const TraceWriteOptions &wopts = {});

/** Read a binary trace from a file path. */
Trace loadBinaryTrace(const std::string &path,
                      const TraceReadOptions &ropts = {});

/**
 * Load a trace from a path, auto-detecting text ("topo-trace") vs
 * binary ("TOPB") by the leading magic. Recover mode applies to both
 * (for text, the valid line prefix is salvaged).
 */
Trace loadAnyTrace(const std::string &path,
                   const TraceReadOptions &ropts = {});

/** Structural position of one v2 chunk inside a trace file image. */
struct ChunkExtent
{
    /** Byte offset of the chunk header. */
    std::size_t begin = 0;
    /** Byte offset one past the chunk payload. */
    std::size_t end = 0;
    /** Records the chunk header promises. */
    std::uint64_t records = 0;
};

/**
 * Map the chunk layout of an in-memory v2 trace image without
 * decoding payloads (CRCs are not verified). Used by topo_corrupt to
 * target whole-chunk drops. Throws a corrupt-input TopoError when
 * @p bytes is not a structurally complete v2 trace.
 */
std::vector<ChunkExtent> scanBinaryTraceChunks(const std::string &bytes);

} // namespace topo

#endif // TOPO_TRACE_TRACE_BINARY_HH
