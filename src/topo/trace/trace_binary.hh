/**
 * @file
 * Compact binary trace format.
 *
 * Real profiling traces are tens of millions of runs (Table 1 inputs
 * are 17M-146M basic blocks); the text format is convenient but
 * bulky. The binary format stores runs as LEB128 varints with
 * delta-coded procedure ids, typically 2-4 bytes per run:
 *
 *   magic "TOPB" u32 version=1
 *   varint proc_count
 *   varint run_count
 *   per run: varint zigzag(proc - prev_proc), varint offset,
 *            varint length
 */

#ifndef TOPO_TRACE_TRACE_BINARY_HH
#define TOPO_TRACE_TRACE_BINARY_HH

#include <iosfwd>
#include <string>

#include "topo/trace/trace.hh"

namespace topo
{

/** Write a trace in the binary format. */
void writeBinaryTrace(std::ostream &os, const Trace &trace);

/** Read a binary trace; throws TopoError on malformed input. */
Trace readBinaryTrace(std::istream &is);

/** Write a binary trace to a file path. */
void saveBinaryTrace(const std::string &path, const Trace &trace);

/** Read a binary trace from a file path. */
Trace loadBinaryTrace(const std::string &path);

/**
 * Load a trace from a path, auto-detecting text ("topo-trace") vs
 * binary ("TOPB") by the leading magic.
 */
Trace loadAnyTrace(const std::string &path);

} // namespace topo

#endif // TOPO_TRACE_TRACE_BINARY_HH
