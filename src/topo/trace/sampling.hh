/**
 * @file
 * Trace sampling.
 *
 * Section 4.4 reports a ~25x slowdown for instrumented executables;
 * the standard mitigation is to profile only a fraction of the
 * execution. Because the TRG is built from *interleaving*, per-run
 * (Bernoulli) sampling would destroy exactly the information the
 * placement needs; burst sampling — keeping contiguous windows of
 * runs at a regular period — preserves local interleaving inside each
 * window while skipping the bulk of the execution. The ablation bench
 * quantifies how little profile is actually needed.
 */

#ifndef TOPO_TRACE_SAMPLING_HH
#define TOPO_TRACE_SAMPLING_HH

#include <cstdint>

#include "topo/trace/trace.hh"

namespace topo
{

/** Burst-sampling parameters. */
struct BurstSamplingOptions
{
    /** Runs kept per burst (window length). */
    std::uint64_t burst_runs = 2000;
    /** Distance between burst starts, in runs (>= burst_runs). */
    std::uint64_t period_runs = 20000;
    /** Offset of the first burst within the first period. */
    std::uint64_t phase = 0;

    /** Fraction of the trace retained. */
    double
    fraction() const
    {
        return period_runs
                   ? static_cast<double>(burst_runs) /
                         static_cast<double>(period_runs)
                   : 1.0;
    }
};

/**
 * Keep contiguous bursts of runs at a regular period; everything
 * between bursts is dropped. Deterministic.
 */
Trace burstSample(const Trace &trace, const BurstSamplingOptions &options);

/**
 * Keep every k-th *burst-aligned* window such that roughly
 * @p fraction of the trace survives, with a standard window of 2000
 * runs (convenience wrapper).
 */
Trace burstSampleFraction(const Trace &trace, double fraction);

} // namespace topo

#endif // TOPO_TRACE_SAMPLING_HH
