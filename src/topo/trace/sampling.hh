/**
 * @file
 * Trace sampling.
 *
 * Section 4.4 reports a ~25x slowdown for instrumented executables;
 * the standard mitigation is to profile only a fraction of the
 * execution. Because the TRG is built from *interleaving*, per-run
 * (Bernoulli) sampling would destroy exactly the information the
 * placement needs; burst sampling — keeping contiguous windows of
 * runs at a regular period — preserves local interleaving inside each
 * window while skipping the bulk of the execution. The ablation bench
 * quantifies how little profile is actually needed.
 */

#ifndef TOPO_TRACE_SAMPLING_HH
#define TOPO_TRACE_SAMPLING_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "topo/trace/trace.hh"

namespace topo
{

/** Burst-sampling parameters. */
struct BurstSamplingOptions
{
    /** Runs kept per burst (window length). */
    std::uint64_t burst_runs = 2000;
    /** Distance between burst starts, in runs (>= burst_runs). */
    std::uint64_t period_runs = 20000;
    /** Offset of the first burst within the first period. */
    std::uint64_t phase = 0;

    /** Fraction of the trace retained. */
    double
    fraction() const
    {
        return period_runs
                   ? static_cast<double>(burst_runs) /
                         static_cast<double>(period_runs)
                   : 1.0;
    }
};

/** Half-open run-index range [begin, end) retained by a burst. */
using RunWindow = std::pair<std::uint64_t, std::uint64_t>;

/**
 * The run-index windows burstSample keeps, in trace order: one
 * half-open [begin, end) range per burst, clipped to the trace length.
 * Exposed so callers (the SimPoint-style selector, tests, reports) can
 * recover *which* runs survived instead of only the flattened sample.
 * Validates the options exactly as burstSample does (TopoError on a
 * zero burst, period < burst, or a phase outside the period).
 */
std::vector<RunWindow> burstWindows(std::uint64_t run_count,
                                    const BurstSamplingOptions &options);

/**
 * Keep contiguous bursts of runs at a regular period; everything
 * between bursts is dropped. Deterministic; the retained runs are
 * exactly the concatenation of burstWindows(trace.size(), options).
 */
Trace burstSample(const Trace &trace, const BurstSamplingOptions &options);

/**
 * Keep every k-th *burst-aligned* window such that roughly
 * @p fraction of the trace survives, with a standard window of 2000
 * runs (convenience wrapper).
 */
Trace burstSampleFraction(const Trace &trace, double fraction);

} // namespace topo

#endif // TOPO_TRACE_SAMPLING_HH
