#include "topo/trace/sampling.hh"

#include <algorithm>
#include <cmath>

#include "topo/util/error.hh"

namespace topo
{

std::vector<RunWindow>
burstWindows(std::uint64_t run_count, const BurstSamplingOptions &options)
{
    require(options.burst_runs > 0, "burstSample: zero burst length");
    require(options.period_runs >= options.burst_runs,
            "burstSample: period must be at least the burst length");
    require(options.phase + options.burst_runs <= options.period_runs,
            "burstSample: phase pushes the burst outside the period");
    std::vector<RunWindow> windows;
    for (std::uint64_t start = options.phase; start < run_count;
         start += options.period_runs) {
        windows.emplace_back(
            start, std::min(run_count, start + options.burst_runs));
    }
    return windows;
}

Trace
burstSample(const Trace &trace, const BurstSamplingOptions &options)
{
    const std::vector<RunWindow> windows =
        burstWindows(trace.size(), options);
    Trace sampled(trace.procCount());
    sampled.reserve(static_cast<std::size_t>(
        static_cast<double>(trace.size()) * options.fraction() + 16));
    for (const RunWindow &window : windows) {
        for (std::uint64_t i = window.first; i < window.second; ++i) {
            const TraceEvent &ev =
                trace.events()[static_cast<std::size_t>(i)];
            sampled.append(ev.proc, ev.offset, ev.length);
        }
    }
    return sampled;
}

Trace
burstSampleFraction(const Trace &trace, double fraction)
{
    require(fraction > 0.0 && fraction <= 1.0,
            "burstSampleFraction: fraction must be in (0, 1]");
    if (fraction >= 1.0) {
        BurstSamplingOptions all;
        all.burst_runs = all.period_runs = 1;
        return burstSample(trace, all);
    }
    BurstSamplingOptions options;
    options.burst_runs = 2000;
    options.period_runs = std::max<std::uint64_t>(
        options.burst_runs,
        static_cast<std::uint64_t>(std::llround(
            static_cast<double>(options.burst_runs) / fraction)));
    return burstSample(trace, options);
}

} // namespace topo
