#include "topo/trace/trace.hh"

#include "topo/util/error.hh"

namespace topo
{

Trace::Trace(std::size_t proc_count)
    : proc_count_(proc_count)
{
}

void
Trace::append(ProcId proc, std::uint32_t offset, std::uint32_t length)
{
    require(proc < proc_count_, "Trace::append: invalid procedure id");
    require(length > 0, "Trace::append: zero-length run");
    events_.push_back(TraceEvent{proc, offset, length});
}

void
Trace::validate(const Program &program) const
{
    require(program.procCount() == proc_count_,
            "Trace::validate: program/trace procedure count mismatch");
    for (const TraceEvent &ev : events_) {
        require(ev.proc < program.procCount(),
                "Trace::validate: invalid procedure id");
        const Procedure &p = program.proc(ev.proc);
        require(ev.length > 0, "Trace::validate: zero-length run");
        require(static_cast<std::uint64_t>(ev.offset) + ev.length <=
                    p.size_bytes,
                "Trace::validate: run exceeds bounds of procedure '" +
                    p.name + "'");
    }
}

} // namespace topo
