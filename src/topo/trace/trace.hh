/**
 * @file
 * Execution traces: the profile input of every placement algorithm.
 *
 * A trace is a sequence of *runs*. A run records that execution entered
 * procedure p at byte offset off and fetched len consecutive bytes
 * before control left (a call, return, or taken branch out of the
 * region). This is the same information content as the paper's ATOM
 * basic-block traces at the granularity the algorithms consume: it
 * expands deterministically to a cache-line fetch stream, and its
 * procedure/chunk reference sequence drives WCG/TRG construction.
 */

#ifndef TOPO_TRACE_TRACE_HH
#define TOPO_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"

namespace topo
{

/** One run of straight-line execution inside a procedure. */
struct TraceEvent
{
    ProcId proc = kInvalidProc;
    /** First byte fetched, relative to the procedure start. */
    std::uint32_t offset = 0;
    /** Number of bytes fetched; always > 0. */
    std::uint32_t length = 0;

    bool
    operator==(const TraceEvent &other) const
    {
        return proc == other.proc && offset == other.offset &&
               length == other.length;
    }
};

/**
 * In-memory trace bound to a Program.
 */
class Trace
{
  public:
    /** Construct an empty trace for a program with @p proc_count procs. */
    explicit Trace(std::size_t proc_count = 0);

    /** Append a run; validated against the bound procedure count. */
    void append(ProcId proc, std::uint32_t offset, std::uint32_t length);

    /** Append a whole-procedure touch starting at offset zero. */
    void
    appendWhole(ProcId proc, std::uint32_t size_bytes)
    {
        append(proc, 0, size_bytes);
    }

    /** Number of runs. */
    std::size_t size() const { return events_.size(); }

    /** True when the trace has no runs. */
    bool empty() const { return events_.empty(); }

    /** All runs in order. */
    const std::vector<TraceEvent> &events() const { return events_; }

    /** Procedure count the trace was constructed against. */
    std::size_t procCount() const { return proc_count_; }

    /** Reserve capacity for roughly @p n runs. */
    void reserve(std::size_t n) { events_.reserve(n); }

    /**
     * Check every run against a program: valid procedure ids, runs
     * inside procedure bounds. Throws TopoError on violation.
     */
    void validate(const Program &program) const;

  private:
    std::size_t proc_count_;
    std::vector<TraceEvent> events_;
};

} // namespace topo

#endif // TOPO_TRACE_TRACE_HH
