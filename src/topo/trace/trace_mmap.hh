/**
 * @file
 * Zero-copy mmap-backed trace loading.
 *
 * File-path trace loads (loadBinaryTrace / loadAnyTrace) map the file
 * read-only and decode chunks directly out of the mapping: no read()
 * copies into stream buffers and no per-chunk payload allocation.
 * Chunk CRCs are validated lazily — each chunk's checksum is computed
 * over the mapped bytes as that chunk is first decoded, never as a
 * separate up-front pass over the file.
 *
 * Fallback matrix (decode semantics, salvage behavior, metrics, and
 * error text are identical on both paths; DESIGN.md §10):
 *   - platform without mmap            -> buffered stream reader
 *   - any fault-injection plan armed   -> stream reader (it hosts the
 *     trace_binary.* / read-short / bitflip injection hooks)
 *   - TraceReadOptions::mmap == kOff or TOPO_TRACE_MMAP=0/off  -> stream
 *   - open()/fstat()/mmap() failure    -> stream reader (which then
 *     reports the open error on its own)
 *   - text traces                      -> stream reader (line-oriented
 *     parse; the magic sniff still happens on the mapping)
 */

#ifndef TOPO_TRACE_TRACE_MMAP_HH
#define TOPO_TRACE_TRACE_MMAP_HH

#include <cstddef>
#include <optional>
#include <string>

#include "topo/trace/trace_io.hh"

namespace topo
{

/** True when this platform can map files read-only. */
bool mmapSupported();

/**
 * RAII read-only file mapping. Obtain through tryMap(); an instance
 * always owns a valid (possibly empty) mapping.
 */
class MappedFile
{
  public:
    /** Map @p path read-only; std::nullopt on any failure. */
    static std::optional<MappedFile> tryMap(const std::string &path);

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    ~MappedFile();

    /** First mapped byte (nullptr for an empty file). */
    const char *data() const { return data_; }

    /** Mapped length in bytes. */
    std::size_t size() const { return size_; }

  private:
    MappedFile(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    const char *data_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Should this file-path load take the mapped path? False when the
 * platform lacks mmap, the options or the TOPO_TRACE_MMAP environment
 * kill-switch disable it, or any fault-injection plan is armed (the
 * stream reader hosts the injection hooks, so faults keep their
 * deterministic semantics).
 */
bool traceMmapEligible(const TraceReadOptions &ropts);

} // namespace topo

#endif // TOPO_TRACE_TRACE_MMAP_HH
