#include "topo/trace/trace_binary.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <string_view>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/resilience/crc32.hh"
#include "topo/resilience/fault.hh"
#include "topo/trace/trace_io.hh"
#include "topo/trace/trace_mmap.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

constexpr char kMagic[4] = {'T', 'O', 'P', 'B'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;

/**
 * Validation ceilings for size fields read from untrusted input. A
 * header field is never trusted for an allocation before it clears
 * these bounds (a 12-byte file must not make us reserve 2^60 slots).
 */
constexpr std::uint64_t kMaxProcCount = 1ULL << 31;
constexpr std::uint64_t kMaxChunkRecords = 1ULL << 22;
/** Worst-case encoded record: 10+5+5 varint bytes, rounded up. */
constexpr std::uint64_t kMaxRecordBytes = 30;
/** Cap speculative reserve() for v1 headers (append still grows). */
constexpr std::uint64_t kReserveCap = 1ULL << 20;

void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

void
putVarint(std::ostream &os, std::uint64_t value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

std::uint64_t
getVarint(std::istream &is, const char *what)
{
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
        const int byte = is.get();
        requireData(byte != std::char_traits<char>::eof(),
                    std::string("truncated varint in ") + what);
        requireData(shift < 64,
                    std::string("varint overflow in ") + what);
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
    }
}

std::uint64_t
getVarintBuf(std::string_view buf, std::size_t &pos, const char *what)
{
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
        requireData(pos < buf.size(),
                    std::string("truncated varint in ") + what);
        requireData(shift < 64,
                    std::string("varint overflow in ") + what);
        const int byte = static_cast<unsigned char>(buf[pos++]);
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
    }
}

std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/** Decode one run; shared by the v1 stream and v2 payload decoders. */
TraceEvent
decodeRecord(std::uint64_t zz_delta, std::uint64_t offset,
             std::uint64_t length, std::int64_t &prev_proc,
             std::uint64_t proc_count)
{
    const std::int64_t proc = prev_proc + unzigzag(zz_delta);
    requireData(proc >= 0 &&
                    proc < static_cast<std::int64_t>(proc_count),
                "readBinaryTrace: procedure id out of range");
    requireData(offset <= ~std::uint32_t{0} &&
                    length <= ~std::uint32_t{0},
                "readBinaryTrace: field overflow");
    prev_proc = proc;
    return TraceEvent{static_cast<ProcId>(proc),
                      static_cast<std::uint32_t>(offset),
                      static_cast<std::uint32_t>(length)};
}

/**
 * Shared v1 salvage/report epilogue: identical metrics, logs, and
 * error text whether the records came from a stream or a mapping.
 */
void
reportV1Outcome(std::uint64_t got, std::uint64_t run_count,
                const TraceReadOptions &ropts)
{
    if (got < run_count) {
        if (!ropts.recover) {
            failCorrupt("readBinaryTrace: trace promises " +
                        std::to_string(run_count) + " records, found " +
                        std::to_string(got));
        }
        MetricsRegistry &metrics = MetricsRegistry::current();
        metrics.counter("trace.dropped_records").add(run_count - got);
        logWarn("trace", "salvaged v1 binary trace",
                {{"records_recovered", got},
                 {"records_dropped", run_count - got}});
        if (ropts.report != nullptr) {
            ropts.report->recovered = true;
            ropts.report->records_recovered = got;
            ropts.report->records_dropped = run_count - got;
        }
    } else if (ropts.report != nullptr) {
        ropts.report->records_recovered = got;
    }
}

/** Shared v2 salvage/report epilogue (see reportV1Outcome). */
void
reportV2Outcome(std::uint64_t chunks, std::uint64_t got,
                std::uint64_t run_count, bool bad_chunk,
                const TraceReadOptions &ropts)
{
    if (got != run_count || bad_chunk) {
        if (!ropts.recover) {
            failCorrupt("readBinaryTrace: trace promises " +
                        std::to_string(run_count) + " records, found " +
                        std::to_string(got));
        }
        const std::uint64_t dropped =
            run_count > got ? run_count - got : 0;
        MetricsRegistry &metrics = MetricsRegistry::current();
        metrics.counter("trace.recovered_chunks").add(chunks);
        metrics.counter("trace.dropped_records").add(dropped);
        logWarn("trace", "salvaged corrupt/truncated trace",
                {{"chunks_recovered", chunks},
                 {"records_recovered", got},
                 {"records_dropped", dropped}});
        if (ropts.report != nullptr) {
            ropts.report->recovered = true;
            ropts.report->chunks_recovered = chunks;
            ropts.report->records_recovered = got;
            ropts.report->records_dropped = dropped;
        }
    } else if (ropts.report != nullptr) {
        ropts.report->chunks_recovered = chunks;
        ropts.report->records_recovered = got;
    }
}

/** v1 body: a single undelimited run stream (salvageable per record). */
Trace
readBodyV1(std::istream &is, std::uint64_t proc_count,
           std::uint64_t run_count, const TraceReadOptions &ropts)
{
    Trace trace(proc_count);
    trace.reserve(static_cast<std::size_t>(
        std::min(run_count, kReserveCap)));
    std::int64_t prev_proc = 0;
    std::uint64_t got = 0;
    try {
        for (; got < run_count; ++got) {
            const std::uint64_t zz =
                getVarint(is, "v1 record");
            const std::uint64_t offset = getVarint(is, "v1 record");
            const std::uint64_t length = getVarint(is, "v1 record");
            const TraceEvent ev = decodeRecord(
                zz, offset, length, prev_proc, proc_count);
            trace.append(ev.proc, ev.offset, ev.length);
        }
    } catch (const TopoError &) {
        if (!ropts.recover)
            throw;
    }
    reportV1Outcome(got, run_count, ropts);
    return trace;
}

/**
 * Read and decode one v2 chunk into @p out. Throws a corrupt-input
 * TopoError on truncation, implausible size fields, CRC mismatch, or
 * malformed payload. Returns false on clean end-of-file before the
 * chunk header.
 */
bool
readChunkV2(std::istream &is, std::uint64_t proc_count,
            std::vector<TraceEvent> &out)
{
    if (is.peek() == std::char_traits<char>::eof())
        return false;
    faultMaybeThrowIo("trace_binary.chunk");
    const std::uint64_t record_count =
        getVarint(is, "v2 chunk header");
    requireData(record_count > 0 && record_count <= kMaxChunkRecords,
                "readBinaryTrace: implausible chunk record count " +
                    std::to_string(record_count));
    const std::uint64_t payload_bytes =
        getVarint(is, "v2 chunk header");
    requireData(payload_bytes <= record_count * kMaxRecordBytes,
                "readBinaryTrace: implausible chunk payload size " +
                    std::to_string(payload_bytes));
    char crc_bytes[4] = {};
    is.read(crc_bytes, sizeof(crc_bytes));
    requireData(is.gcount() == 4,
                "readBinaryTrace: truncated chunk checksum");
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
        crc |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(crc_bytes[i]))
               << (8 * i);
    }

    std::string payload(static_cast<std::size_t>(payload_bytes), '\0');
    is.read(payload.data(),
            static_cast<std::streamsize>(payload.size()));
    std::size_t got_bytes = static_cast<std::size_t>(is.gcount());
    got_bytes = faultMaybeShortenRead("trace_binary.payload",
                                      got_bytes);
    requireData(got_bytes == payload.size(),
                "readBinaryTrace: truncated chunk payload");
    faultMaybeCorrupt("trace_binary.payload", payload.data(),
                      payload.size());
    requireData(crc32(payload) == crc,
                "readBinaryTrace: chunk CRC mismatch");

    out.clear();
    out.reserve(static_cast<std::size_t>(record_count));
    std::size_t pos = 0;
    std::int64_t prev_proc = 0;
    for (std::uint64_t i = 0; i < record_count; ++i) {
        const std::uint64_t zz = getVarintBuf(payload, pos, "v2 record");
        const std::uint64_t offset =
            getVarintBuf(payload, pos, "v2 record");
        const std::uint64_t length =
            getVarintBuf(payload, pos, "v2 record");
        out.push_back(decodeRecord(zz, offset, length, prev_proc,
                                   proc_count));
    }
    requireData(pos == payload.size(),
                "readBinaryTrace: trailing bytes in chunk payload");
    return true;
}

/** v2 body: CRC-guarded chunks (salvageable per chunk). */
Trace
readBodyV2(std::istream &is, std::uint64_t proc_count,
           std::uint64_t run_count, const TraceReadOptions &ropts)
{
    Trace trace(proc_count);
    trace.reserve(static_cast<std::size_t>(
        std::min(run_count, kReserveCap)));
    std::uint64_t chunks = 0;
    std::uint64_t got = 0;
    bool bad_chunk = false;
    std::vector<TraceEvent> chunk;
    for (;;) {
        try {
            if (!readChunkV2(is, proc_count, chunk))
                break;
        } catch (const TopoError &) {
            if (!ropts.recover)
                throw;
            bad_chunk = true;
            break;
        }
        for (const TraceEvent &ev : chunk)
            trace.append(ev.proc, ev.offset, ev.length);
        got += chunk.size();
        ++chunks;
    }
    reportV2Outcome(chunks, got, run_count, bad_chunk, ropts);
    return trace;
}

/**
 * Zero-copy v2 chunk decode: header varints, CRC, and records are all
 * parsed in place over the mapped image — the payload is never copied
 * into a scratch buffer (contrast readChunkV2's std::string). The CRC
 * is computed over the mapped payload bytes here, on first decode of
 * the chunk ("lazy" validation: no separate checksum pass). No fault
 * hooks: when a fault plan is armed the loaders take the stream path.
 * @p out is caller-reused scratch (cleared here, capacity retained),
 * so steady-state decode performs no per-chunk heap allocation.
 */
bool
readChunkV2Buf(std::string_view buf, std::size_t &pos,
               std::uint64_t proc_count, std::vector<TraceEvent> &out)
{
    if (pos == buf.size())
        return false;
    const std::uint64_t record_count =
        getVarintBuf(buf, pos, "v2 chunk header");
    requireData(record_count > 0 && record_count <= kMaxChunkRecords,
                "readBinaryTrace: implausible chunk record count " +
                    std::to_string(record_count));
    const std::uint64_t payload_bytes =
        getVarintBuf(buf, pos, "v2 chunk header");
    requireData(payload_bytes <= record_count * kMaxRecordBytes,
                "readBinaryTrace: implausible chunk payload size " +
                    std::to_string(payload_bytes));
    requireData(pos + 4 <= buf.size(),
                "readBinaryTrace: truncated chunk checksum");
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
        crc |= static_cast<std::uint32_t>(
                   static_cast<unsigned char>(buf[pos + i]))
               << (8 * i);
    }
    pos += 4;
    requireData(payload_bytes <= buf.size() - pos,
                "readBinaryTrace: truncated chunk payload");
    const std::string_view payload =
        buf.substr(pos, static_cast<std::size_t>(payload_bytes));
    requireData(crc32(payload.data(), payload.size()) == crc,
                "readBinaryTrace: chunk CRC mismatch");

    out.clear();
    out.reserve(static_cast<std::size_t>(record_count));
    std::size_t at = 0;
    std::int64_t prev_proc = 0;
    for (std::uint64_t i = 0; i < record_count; ++i) {
        const std::uint64_t zz = getVarintBuf(payload, at, "v2 record");
        const std::uint64_t offset =
            getVarintBuf(payload, at, "v2 record");
        const std::uint64_t length =
            getVarintBuf(payload, at, "v2 record");
        out.push_back(decodeRecord(zz, offset, length, prev_proc,
                                   proc_count));
    }
    requireData(at == payload.size(),
                "readBinaryTrace: trailing bytes in chunk payload");
    pos += payload.size();
    return true;
}

/** v1 body over an in-memory image (salvageable per record). */
Trace
readBodyV1Buf(std::string_view buf, std::size_t pos,
              std::uint64_t proc_count, std::uint64_t run_count,
              const TraceReadOptions &ropts)
{
    Trace trace(proc_count);
    trace.reserve(static_cast<std::size_t>(
        std::min(run_count, kReserveCap)));
    std::int64_t prev_proc = 0;
    std::uint64_t got = 0;
    try {
        for (; got < run_count; ++got) {
            const std::uint64_t zz = getVarintBuf(buf, pos, "v1 record");
            const std::uint64_t offset =
                getVarintBuf(buf, pos, "v1 record");
            const std::uint64_t length =
                getVarintBuf(buf, pos, "v1 record");
            const TraceEvent ev = decodeRecord(
                zz, offset, length, prev_proc, proc_count);
            trace.append(ev.proc, ev.offset, ev.length);
        }
    } catch (const TopoError &) {
        if (!ropts.recover)
            throw;
    }
    reportV1Outcome(got, run_count, ropts);
    return trace;
}

/** v2 body over an in-memory image (salvageable per chunk). */
Trace
readBodyV2Buf(std::string_view buf, std::size_t pos,
              std::uint64_t proc_count, std::uint64_t run_count,
              const TraceReadOptions &ropts)
{
    Trace trace(proc_count);
    trace.reserve(static_cast<std::size_t>(
        std::min(run_count, kReserveCap)));
    std::uint64_t chunks = 0;
    std::uint64_t got = 0;
    bool bad_chunk = false;
    std::vector<TraceEvent> chunk;
    for (;;) {
        try {
            if (!readChunkV2Buf(buf, pos, proc_count, chunk))
                break;
        } catch (const TopoError &) {
            if (!ropts.recover)
                throw;
            bad_chunk = true;
            break;
        }
        for (const TraceEvent &ev : chunk)
            trace.append(ev.proc, ev.offset, ev.length);
        got += chunk.size();
        ++chunks;
    }
    reportV2Outcome(chunks, got, run_count, bad_chunk, ropts);
    return trace;
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const Trace &trace,
                 const TraceWriteOptions &wopts)
{
    const std::size_t per_chunk =
        std::max<std::size_t>(1, wopts.records_per_chunk);
    os.write(kMagic, sizeof(kMagic));
    putVarint(os, kVersionV2);
    putVarint(os, trace.procCount());
    putVarint(os, trace.size());
    const std::vector<TraceEvent> &events = trace.events();
    std::string payload;
    for (std::size_t begin = 0; begin < events.size();
         begin += per_chunk) {
        const std::size_t end =
            std::min(events.size(), begin + per_chunk);
        payload.clear();
        std::int64_t prev_proc = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const TraceEvent &ev = events[i];
            putVarint(payload,
                      zigzag(static_cast<std::int64_t>(ev.proc) -
                             prev_proc));
            putVarint(payload, ev.offset);
            putVarint(payload, ev.length);
            prev_proc = static_cast<std::int64_t>(ev.proc);
        }
        putVarint(os, end - begin);
        putVarint(os, payload.size());
        const std::uint32_t crc = crc32(payload);
        for (int i = 0; i < 4; ++i)
            os.put(static_cast<char>((crc >> (8 * i)) & 0xFF));
        os.write(payload.data(),
                 static_cast<std::streamsize>(payload.size()));
    }
    require(os.good(), "writeBinaryTrace: stream failure");
}

Trace
readBinaryTrace(std::istream &is, const TraceReadOptions &ropts)
{
    faultMaybeThrowIo("trace_binary.header");
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    requireData(is.gcount() == 4 &&
                    std::equal(magic, magic + 4, kMagic),
                "readBinaryTrace: bad magic");
    const std::uint64_t version = getVarint(is, "header");
    requireData(version == kVersionV1 || version == kVersionV2,
                "readBinaryTrace: unsupported version " +
                    std::to_string(version));
    const std::uint64_t proc_count = getVarint(is, "header");
    requireData(proc_count <= kMaxProcCount,
                "readBinaryTrace: implausible procedure count " +
                    std::to_string(proc_count));
    const std::uint64_t run_count = getVarint(is, "header");
    if (version == kVersionV1)
        return readBodyV1(is, proc_count, run_count, ropts);
    return readBodyV2(is, proc_count, run_count, ropts);
}

Trace
decodeBinaryTrace(const char *data, std::size_t size,
                  const TraceReadOptions &ropts)
{
    const std::string_view buf(data, size);
    std::size_t pos = 0;
    requireData(buf.size() >= 4 &&
                    std::equal(kMagic, kMagic + 4, buf.begin()),
                "readBinaryTrace: bad magic");
    pos = 4;
    const std::uint64_t version = getVarintBuf(buf, pos, "header");
    requireData(version == kVersionV1 || version == kVersionV2,
                "readBinaryTrace: unsupported version " +
                    std::to_string(version));
    const std::uint64_t proc_count = getVarintBuf(buf, pos, "header");
    requireData(proc_count <= kMaxProcCount,
                "readBinaryTrace: implausible procedure count " +
                    std::to_string(proc_count));
    const std::uint64_t run_count = getVarintBuf(buf, pos, "header");
    if (version == kVersionV1)
        return readBodyV1Buf(buf, pos, proc_count, run_count, ropts);
    return readBodyV2Buf(buf, pos, proc_count, run_count, ropts);
}

void
saveBinaryTrace(const std::string &path, const Trace &trace,
                const TraceWriteOptions &wopts)
{
    std::ofstream os(path, std::ios::binary);
    require(os.good(), "saveBinaryTrace: cannot open '" + path + "'");
    writeBinaryTrace(os, trace, wopts);
    require(os.good(), "saveBinaryTrace: write failed for '" + path +
                           "'");
}

Trace
loadBinaryTrace(const std::string &path, const TraceReadOptions &ropts)
{
    if (traceMmapEligible(ropts)) {
        std::optional<MappedFile> map = MappedFile::tryMap(path);
        if (map.has_value()) {
            MetricsRegistry::current().counter("trace.mmap_loads").add();
            return decodeBinaryTrace(map->data(), map->size(), ropts);
        }
        // Map failure (missing file, pipe, exotic filesystem): the
        // stream path below produces the canonical error or result.
    }
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "loadBinaryTrace: cannot open '" + path + "'");
    return readBinaryTrace(is, ropts);
}

Trace
loadAnyTrace(const std::string &path, const TraceReadOptions &ropts)
{
    if (traceMmapEligible(ropts)) {
        std::optional<MappedFile> map = MappedFile::tryMap(path);
        if (map.has_value()) {
            requireData(map->size() >= 4,
                        "loadAnyTrace: file too short", path);
            if (std::equal(kMagic, kMagic + 4, map->data())) {
                MetricsRegistry::current()
                    .counter("trace.mmap_loads")
                    .add();
                return decodeBinaryTrace(map->data(), map->size(),
                                         ropts);
            }
            // Text traces stay on the line-oriented stream parser.
        }
    }
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "loadAnyTrace: cannot open '" + path + "'");
    char head[4] = {};
    is.read(head, sizeof(head));
    requireData(is.gcount() == 4, "loadAnyTrace: file too short",
                path);
    is.seekg(0);
    if (std::equal(head, head + 4, kMagic))
        return readBinaryTrace(is, ropts);
    return readTrace(is, ropts);
}

std::vector<ChunkExtent>
scanBinaryTraceChunks(const std::string &bytes)
{
    std::size_t pos = 0;
    requireData(bytes.size() >= 4 &&
                    std::equal(kMagic, kMagic + 4, bytes.begin()),
                "scanBinaryTraceChunks: bad magic");
    pos = 4;
    const std::uint64_t version =
        getVarintBuf(bytes, pos, "header");
    requireData(version == kVersionV2,
                "scanBinaryTraceChunks: not a v2 trace");
    getVarintBuf(bytes, pos, "header"); // proc_count
    getVarintBuf(bytes, pos, "header"); // run_count
    std::vector<ChunkExtent> extents;
    while (pos < bytes.size()) {
        ChunkExtent extent;
        extent.begin = pos;
        extent.records = getVarintBuf(bytes, pos, "chunk header");
        const std::uint64_t payload_bytes =
            getVarintBuf(bytes, pos, "chunk header");
        requireData(pos + 4 + payload_bytes <= bytes.size(),
                    "scanBinaryTraceChunks: truncated chunk");
        pos += 4 + static_cast<std::size_t>(payload_bytes);
        extent.end = pos;
        extents.push_back(extent);
    }
    return extents;
}

} // namespace topo
