#include "topo/trace/trace_binary.hh"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "topo/trace/trace_io.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

constexpr char kMagic[4] = {'T', 'O', 'P', 'B'};
constexpr std::uint32_t kVersion = 1;

void
putVarint(std::ostream &os, std::uint64_t value)
{
    while (value >= 0x80) {
        os.put(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    os.put(static_cast<char>(value));
}

std::uint64_t
getVarint(std::istream &is)
{
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
        const int byte = is.get();
        require(byte != std::char_traits<char>::eof(),
                "readBinaryTrace: truncated varint");
        require(shift < 64, "readBinaryTrace: varint overflow");
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
    }
}

std::uint64_t
zigzag(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
unzigzag(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

} // namespace

void
writeBinaryTrace(std::ostream &os, const Trace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    putVarint(os, kVersion);
    putVarint(os, trace.procCount());
    putVarint(os, trace.size());
    std::int64_t prev_proc = 0;
    for (const TraceEvent &ev : trace.events()) {
        putVarint(os, zigzag(static_cast<std::int64_t>(ev.proc) -
                             prev_proc));
        putVarint(os, ev.offset);
        putVarint(os, ev.length);
        prev_proc = static_cast<std::int64_t>(ev.proc);
    }
    require(os.good(), "writeBinaryTrace: stream failure");
}

Trace
readBinaryTrace(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    require(is.good() && std::equal(magic, magic + 4, kMagic),
            "readBinaryTrace: bad magic");
    const std::uint64_t version = getVarint(is);
    require(version == kVersion, "readBinaryTrace: unsupported version");
    const std::uint64_t proc_count = getVarint(is);
    const std::uint64_t run_count = getVarint(is);
    Trace trace(proc_count);
    trace.reserve(run_count);
    std::int64_t prev_proc = 0;
    for (std::uint64_t i = 0; i < run_count; ++i) {
        const std::int64_t proc = prev_proc + unzigzag(getVarint(is));
        require(proc >= 0 &&
                    proc < static_cast<std::int64_t>(proc_count),
                "readBinaryTrace: procedure id out of range");
        const std::uint64_t offset = getVarint(is);
        const std::uint64_t length = getVarint(is);
        require(offset <= ~std::uint32_t{0} &&
                    length <= ~std::uint32_t{0},
                "readBinaryTrace: field overflow");
        trace.append(static_cast<ProcId>(proc),
                     static_cast<std::uint32_t>(offset),
                     static_cast<std::uint32_t>(length));
        prev_proc = proc;
    }
    return trace;
}

void
saveBinaryTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path, std::ios::binary);
    require(os.good(), "saveBinaryTrace: cannot open '" + path + "'");
    writeBinaryTrace(os, trace);
    require(os.good(), "saveBinaryTrace: write failed for '" + path +
                           "'");
}

Trace
loadBinaryTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "loadBinaryTrace: cannot open '" + path + "'");
    return readBinaryTrace(is);
}

Trace
loadAnyTrace(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    require(is.good(), "loadAnyTrace: cannot open '" + path + "'");
    char head[4] = {};
    is.read(head, sizeof(head));
    require(is.gcount() == 4, "loadAnyTrace: file too short");
    is.seekg(0);
    if (std::equal(head, head + 4, kMagic))
        return readBinaryTrace(is);
    return readTrace(is);
}

} // namespace topo
