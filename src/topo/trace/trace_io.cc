#include "topo/trace/trace_io.hh"

#include <fstream>
#include <sstream>

#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "topo-trace v1 " << trace.procCount() << '\n';
    for (const TraceEvent &ev : trace.events())
        os << ev.proc << ' ' << ev.offset << ' ' << ev.length << '\n';
}

Trace
readTrace(std::istream &is)
{
    std::string line;
    require(static_cast<bool>(std::getline(is, line)),
            "readTrace: missing header");
    std::istringstream header(line);
    std::string magic, version;
    std::size_t proc_count = 0;
    header >> magic >> version >> proc_count;
    require(magic == "topo-trace" && version == "v1",
            "readTrace: bad header '" + line + "'");
    Trace trace(proc_count);
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::istringstream fields(body);
        std::uint64_t proc = 0, offset = 0, length = 0;
        fields >> proc >> offset >> length;
        require(!fields.fail(),
                "readTrace: malformed run at line " + std::to_string(line_no));
        require(proc < proc_count,
                "readTrace: procedure id out of range at line " +
                    std::to_string(line_no));
        trace.append(static_cast<ProcId>(proc),
                     static_cast<std::uint32_t>(offset),
                     static_cast<std::uint32_t>(length));
    }
    return trace;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path);
    require(os.good(), "saveTrace: cannot open '" + path + "'");
    writeTrace(os, trace);
    require(os.good(), "saveTrace: write failed for '" + path + "'");
}

Trace
loadTrace(const std::string &path)
{
    std::ifstream is(path);
    require(is.good(), "loadTrace: cannot open '" + path + "'");
    return readTrace(is);
}

} // namespace topo
