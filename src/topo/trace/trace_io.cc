#include "topo/trace/trace_io.hh"

#include <fstream>
#include <sstream>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/resilience/fault.hh"
#include "topo/util/error.hh"
#include "topo/util/string_utils.hh"

namespace topo
{

namespace
{

/** Same untrusted-size ceiling as the binary reader. */
constexpr std::uint64_t kMaxProcCount = 1ULL << 31;

/** Report a text-mode salvage through metrics, log, and the report. */
void
reportTextSalvage(std::istream &is, std::string &line,
                  std::size_t kept, std::size_t bad_line,
                  const TraceReadOptions &ropts)
{
    // The text format carries no total, so count what remains after
    // the first bad line to quantify the loss.
    std::uint64_t dropped = 1;
    while (std::getline(is, line)) {
        const std::string body = trim(line);
        if (!body.empty() && body[0] != '#')
            ++dropped;
    }
    MetricsRegistry::current()
        .counter("trace.dropped_records")
        .add(dropped);
    logWarn("trace", "salvaged text trace",
            {{"first_bad_line", std::uint64_t(bad_line)},
             {"records_recovered", std::uint64_t(kept)},
             {"records_dropped", dropped}});
    if (ropts.report != nullptr) {
        ropts.report->recovered = true;
        ropts.report->records_recovered = kept;
        ropts.report->records_dropped = dropped;
    }
}

} // namespace

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "topo-trace v1 " << trace.procCount() << '\n';
    for (const TraceEvent &ev : trace.events())
        os << ev.proc << ' ' << ev.offset << ' ' << ev.length << '\n';
}

Trace
readTrace(std::istream &is, const TraceReadOptions &ropts)
{
    std::string line;
    requireData(static_cast<bool>(std::getline(is, line)),
                "readTrace: missing header");
    std::istringstream header(line);
    std::string magic, version;
    std::uint64_t proc_count = 0;
    header >> magic >> version >> proc_count;
    requireData(magic == "topo-trace" && version == "v1",
                "readTrace: bad header '" + line + "'");
    requireData(proc_count <= kMaxProcCount,
                "readTrace: implausible procedure count " +
                    std::to_string(proc_count));
    Trace trace(proc_count);
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        faultMaybeThrowIo("trace_io.line");
        if (!line.empty())
            faultMaybeCorrupt("trace_io.line", line.data(),
                              line.size());
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::istringstream fields(body);
        std::uint64_t proc = 0, offset = 0, length = 0;
        fields >> proc >> offset >> length;
        const bool well_formed = !fields.fail() && proc < proc_count;
        if (!well_formed) {
            if (ropts.recover) {
                reportTextSalvage(is, line, trace.size(), line_no,
                                  ropts);
                return trace;
            }
            requireData(!fields.fail(),
                        "readTrace: malformed run at line " +
                            std::to_string(line_no));
            failCorrupt("readTrace: procedure id out of range at "
                        "line " +
                        std::to_string(line_no));
        }
        trace.append(static_cast<ProcId>(proc),
                     static_cast<std::uint32_t>(offset),
                     static_cast<std::uint32_t>(length));
    }
    if (ropts.report != nullptr)
        ropts.report->records_recovered = trace.size();
    return trace;
}

void
saveTrace(const std::string &path, const Trace &trace)
{
    std::ofstream os(path);
    require(os.good(), "saveTrace: cannot open '" + path + "'");
    writeTrace(os, trace);
    require(os.good(), "saveTrace: write failed for '" + path + "'");
}

Trace
loadTrace(const std::string &path, const TraceReadOptions &ropts)
{
    std::ifstream is(path);
    require(is.good(), "loadTrace: cannot open '" + path + "'");
    return readTrace(is, ropts);
}

} // namespace topo
