/**
 * @file
 * Text serialisation of traces.
 *
 * Format: one header line "topo-trace v1 <proc_count>", then one line
 * per run: "<proc> <offset> <length>". Lines beginning with '#' are
 * comments. The format is deliberately simple so externally collected
 * traces (e.g. from a Pin/valgrind tool) can be fed to the library.
 */

#ifndef TOPO_TRACE_TRACE_IO_HH
#define TOPO_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "topo/trace/trace.hh"

namespace topo
{

/** Write a trace in the text format. */
void writeTrace(std::ostream &os, const Trace &trace);

/** Read a trace; throws TopoError on malformed input. */
Trace readTrace(std::istream &is);

/** Write a trace to a file path. */
void saveTrace(const std::string &path, const Trace &trace);

/** Read a trace from a file path. */
Trace loadTrace(const std::string &path);

} // namespace topo

#endif // TOPO_TRACE_TRACE_IO_HH
