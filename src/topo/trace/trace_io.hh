/**
 * @file
 * Text serialisation of traces.
 *
 * Format: one header line "topo-trace v1 <proc_count>", then one line
 * per run: "<proc> <offset> <length>". Lines beginning with '#' are
 * comments. The format is deliberately simple so externally collected
 * traces (e.g. from a Pin/valgrind tool) can be fed to the library.
 *
 * This header also defines the read/write option structs shared with
 * the binary format (trace_binary.hh): both readers support a recover
 * mode that salvages the valid prefix of a damaged file instead of
 * aborting the run.
 */

#ifndef TOPO_TRACE_TRACE_IO_HH
#define TOPO_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "topo/trace/trace.hh"

namespace topo
{

/** Writer knobs (binary format only; text ignores them). */
struct TraceWriteOptions
{
    /** Records per v2 chunk; tests shrink this to force many chunks. */
    std::size_t records_per_chunk = 65536;
};

/** What a recover-mode read salvaged (all zero for a clean read). */
struct TraceRecovery
{
    /** True when anything was dropped (salvage actually engaged). */
    bool recovered = false;
    /** Intact chunks kept in front of the first bad one (v2 only). */
    std::uint64_t chunks_recovered = 0;
    /** Records in the salvaged prefix. */
    std::uint64_t records_recovered = 0;
    /** Records the input promised/held but the read could not keep. */
    std::uint64_t records_dropped = 0;
};

/** How file-path loads pick between the mmap and stream readers. */
enum class TraceMmapMode
{
    /** Map when supported and no fault-injection plan is armed. */
    kAuto = 0,
    /** Always use the buffered stream reader. */
    kOff,
    /** Map whenever the platform supports it (tests pin the path). */
    kOn,
};

/** Reader knobs. */
struct TraceReadOptions
{
    /** Salvage the valid prefix instead of failing on corruption. */
    bool recover = false;
    /** When non-null, filled with what a recover-mode read salvaged. */
    TraceRecovery *report = nullptr;
    /**
     * mmap policy for file-path loads (trace_mmap.hh has the full
     * fallback matrix); stream-based reads are unaffected.
     */
    TraceMmapMode mmap = TraceMmapMode::kAuto;
};

/** Write a trace in the text format. */
void writeTrace(std::ostream &os, const Trace &trace);

/**
 * Read a text trace; throws a corrupt-input TopoError on malformed
 * content unless @p ropts.recover is set, in which case the valid
 * line prefix is salvaged and the loss reported via metrics.
 */
Trace readTrace(std::istream &is, const TraceReadOptions &ropts = {});

/** Write a trace to a file path. */
void saveTrace(const std::string &path, const Trace &trace);

/** Read a trace from a file path. */
Trace loadTrace(const std::string &path,
                const TraceReadOptions &ropts = {});

} // namespace topo

#endif // TOPO_TRACE_TRACE_IO_HH
