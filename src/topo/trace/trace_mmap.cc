#include "topo/trace/trace_mmap.hh"

#include <cstdlib>
#include <cstring>
#include <utility>

#include "topo/resilience/fault.hh"

#if defined(__unix__) || defined(__APPLE__)
#define TOPO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TOPO_HAVE_MMAP 0
#endif

namespace topo
{

bool
mmapSupported()
{
    return TOPO_HAVE_MMAP != 0;
}

std::optional<MappedFile>
MappedFile::tryMap(const std::string &path)
{
#if TOPO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        ::close(fd);
        return std::nullopt;
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap rejects zero-length maps; an empty file is a valid
        // (empty) mapping.
        ::close(fd);
        return MappedFile(nullptr, 0);
    }
    void *mapped =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping holds its own reference; the descriptor can close
    // immediately either way.
    ::close(fd);
    if (mapped == MAP_FAILED)
        return std::nullopt;
    return MappedFile(static_cast<const char *>(mapped), size);
#else
    (void)path;
    return std::nullopt;
#endif
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0))
{
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        this->~MappedFile();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, 0);
    }
    return *this;
}

MappedFile::~MappedFile()
{
#if TOPO_HAVE_MMAP
    if (data_ != nullptr)
        ::munmap(const_cast<char *>(data_), size_);
#endif
    data_ = nullptr;
    size_ = 0;
}

bool
traceMmapEligible(const TraceReadOptions &ropts)
{
    if (!mmapSupported())
        return false;
    if (ropts.mmap == TraceMmapMode::kOff)
        return false;
    if (ropts.mmap == TraceMmapMode::kOn)
        return true;
    // kAuto: any armed fault plan routes through the stream reader,
    // which hosts every trace-level injection hook.
    FaultPlan *plan = activeFaultPlan();
    if (plan != nullptr && plan->any())
        return false;
    const char *env = std::getenv("TOPO_TRACE_MMAP");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0))
        return false;
    return true;
}

} // namespace topo
