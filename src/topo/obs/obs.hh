/**
 * @file
 * Umbrella header and CLI glue for the observability layer.
 *
 * Every tool calls initObservability() right after option parsing and
 * writeMetricsIfRequested() before exiting. The standard knobs (all of
 * them also reachable through the TOPO_* environment, courtesy of
 * Options):
 *
 *   --log-level=LEVEL   trace|debug|info|warn|error|off (default info)
 *   --log-file=FILE     additionally append log lines to FILE
 *   --metrics-out=FILE  write the metrics registry as JSON on exit
 *   --trace-out=FILE    collect Chrome trace events (phase spans,
 *                       simulation timelines) and write them on exit;
 *                       load the file in Perfetto or chrome://tracing
 */

#ifndef TOPO_OBS_OBS_HH
#define TOPO_OBS_OBS_HH

#include "topo/obs/json.hh"
#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/obs/timeline.hh"
#include "topo/obs/trace_events.hh"
#include "topo/util/options.hh"

namespace topo
{

/**
 * Configure the global logger from --log-level / --log-file (and
 * their TOPO_LOG_LEVEL / TOPO_LOG_FILE environment fallbacks), and
 * enable trace-event collection when --trace-out names a file.
 * Throws TopoError on an unknown level name or unwritable log file.
 */
void initObservability(const Options &opts);

/**
 * Write the global metrics registry to the file named by
 * --metrics-out / TOPO_METRICS_OUT.
 *
 * @return True when a snapshot was written, false when the option was
 *         absent.
 */
bool writeMetricsIfRequested(const Options &opts);

/**
 * Write the global trace-event log to the file named by --trace-out /
 * TOPO_TRACE_OUT as Chrome Trace Event Format JSON.
 *
 * @return True when a trace was written, false when the option was
 *         absent.
 */
bool writeTraceIfRequested(const Options &opts);

} // namespace topo

#endif // TOPO_OBS_OBS_HH
