/**
 * @file
 * Process-wide metrics: named counters, gauges, and histograms.
 *
 * Every pipeline phase registers its counters here; the four CLI tools
 * dump the registry as JSON via --metrics-out so runs are comparable
 * and machine-readable (the bench harness emits the same shape). A
 * metric reference obtained from the registry stays valid for the
 * registry's lifetime — hot code fetches the reference once, outside
 * its loop, and bumps it cheaply.
 *
 * Concurrency guarantee: counter/gauge updates are relaxed atomics;
 * Histogram::observe() takes the histogram's mutex around the WHOLE
 * update — running summary, observation counter, and the algorithm-R
 * reservoir slot draw are one atomic step, so concurrent observers
 * never tear the counter/slot pair and the reservoir always holds a
 * valid sample of the observed stream. What the mutex cannot give is
 * cross-run reproducibility under contention: the interleaving of
 * observers (and therefore which samples survive in the reservoir) is
 * scheduler-dependent. Deterministic parallel runs therefore record
 * into a per-task registry (MetricsScope / MetricsRegistry::current())
 * where each histogram has exactly one writer, and merge the task
 * registries into the parent in fixed task order at join — that
 * sequence is independent of thread scheduling, so `--jobs N`
 * snapshots are byte-identical to `--jobs 1`.
 */

#ifndef TOPO_OBS_METRICS_HH
#define TOPO_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topo/obs/json.hh"
#include "topo/util/stats.hh"

namespace topo
{

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins floating-point metric. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution metric backed by RunningStats plus a bounded reservoir
 * for quantile estimates. The reservoir keeps kReservoirSize uniform
 * samples (algorithm R with a deterministic internal generator, so
 * snapshots are reproducible run-to-run); up to that many observations
 * the quantiles are exact.
 */
class Histogram
{
  public:
    /** Reservoir capacity (memory bound per histogram). */
    static constexpr std::size_t kReservoirSize = 1024;

    Histogram();

    /** Record one observation. */
    void observe(double value);

    /** Copy of the accumulated summary. */
    RunningStats stats() const;

    /**
     * Percentile estimate in [0, 100] from the reservoir (linear
     * interpolation between order statistics); 0 when empty.
     */
    double quantile(double pct) const;

    /** Copy of the current reservoir sample (tests). */
    std::vector<double> reservoirSnapshot() const;

    /**
     * Fold another histogram into this one: exact summary combine
     * (RunningStats::merge) plus a deterministic reservoir merge that
     * replays the other reservoir's samples through this histogram's
     * own algorithm-R stream. Quantiles after a merge are an
     * approximation of the combined stream; the result depends only
     * on merge order, never on thread scheduling.
     */
    void mergeFrom(const Histogram &other);

  private:
    mutable std::mutex mutex_;
    RunningStats stats_;
    std::vector<double> reservoir_;
    /** Observations seen (reservoir replacement denominator). */
    std::uint64_t seen_ = 0;
    /** xorshift64 state for reservoir replacement (fixed seed). */
    std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/**
 * Named registry of counters, gauges, and histograms.
 *
 * Metric names are dotted paths ("cache.misses",
 * "phase.placement.gbsc.ms"); a name is bound to one metric kind for
 * the registry's lifetime (re-registering under another kind throws).
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry used by default everywhere. */
    static MetricsRegistry &global();

    /**
     * The calling thread's active registry: the innermost MetricsScope
     * on this thread, or global() when none is active. Pipeline code
     * records through current() so parallel tasks can redirect their
     * metrics into a private registry and merge it deterministically.
     */
    static MetricsRegistry &current();

    /**
     * Fold @p other into this registry in name order: counters add,
     * gauges last-write-wins, histograms Histogram::mergeFrom. Call
     * once per task, in fixed task order, after the parallel join.
     */
    void mergeFrom(const MetricsRegistry &other);

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name);
    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name);
    /** Find-or-create a histogram. */
    Histogram &histogram(const std::string &name);

    /** True when a metric of any kind exists under @p name. */
    bool has(const std::string &name) const;

    /** Drop every metric (tests and tools reuse the global registry). */
    void clear();

    /**
     * Snapshot as JSON:
     * {"topo_metrics": 1, "counters": {...}, "gauges": {...},
     *  "histograms":
     *      {name: {count,sum,mean,min,max,stddev,p50,p90,p99}}}
     */
    JsonValue toJson() const;

    /** Write the snapshot to @p path; throws TopoError on I/O error. */
    void writeJsonFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * RAII redirection of MetricsRegistry::current() for the calling
 * thread. A parallel task constructs a scope around its own private
 * registry; everything the task records (counters, PhaseTimer
 * histograms, ...) lands there instead of the global registry, and
 * the caller merges the private registries in task order at join.
 * Scopes nest; destruction restores the previous registry.
 */
class MetricsScope
{
  public:
    explicit MetricsScope(MetricsRegistry &registry);
    ~MetricsScope();

    MetricsScope(const MetricsScope &) = delete;
    MetricsScope &operator=(const MetricsScope &) = delete;

  private:
    MetricsRegistry *previous_;
};

} // namespace topo

#endif // TOPO_OBS_METRICS_HH
