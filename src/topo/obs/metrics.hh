/**
 * @file
 * Process-wide metrics: named counters, gauges, and histograms.
 *
 * Every pipeline phase registers its counters here; the four CLI tools
 * dump the registry as JSON via --metrics-out so runs are comparable
 * and machine-readable (the bench harness emits the same shape). A
 * metric reference obtained from the registry stays valid for the
 * registry's lifetime — hot code fetches the reference once, outside
 * its loop, and bumps it cheaply.
 *
 * Counter/gauge updates are relaxed atomics; histogram observation
 * takes a mutex (observations are per-phase, not per-access).
 */

#ifndef TOPO_OBS_METRICS_HH
#define TOPO_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topo/obs/json.hh"
#include "topo/util/stats.hh"

namespace topo
{

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins floating-point metric. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Distribution metric backed by RunningStats plus a bounded reservoir
 * for quantile estimates. The reservoir keeps kReservoirSize uniform
 * samples (algorithm R with a deterministic internal generator, so
 * snapshots are reproducible run-to-run); up to that many observations
 * the quantiles are exact.
 */
class Histogram
{
  public:
    /** Reservoir capacity (memory bound per histogram). */
    static constexpr std::size_t kReservoirSize = 1024;

    Histogram();

    /** Record one observation. */
    void observe(double value);

    /** Copy of the accumulated summary. */
    RunningStats stats() const;

    /**
     * Percentile estimate in [0, 100] from the reservoir (linear
     * interpolation between order statistics); 0 when empty.
     */
    double quantile(double pct) const;

    /** Copy of the current reservoir sample (tests). */
    std::vector<double> reservoirSnapshot() const;

  private:
    mutable std::mutex mutex_;
    RunningStats stats_;
    std::vector<double> reservoir_;
    /** Observations seen (reservoir replacement denominator). */
    std::uint64_t seen_ = 0;
    /** xorshift64 state for reservoir replacement (fixed seed). */
    std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
};

/**
 * Named registry of counters, gauges, and histograms.
 *
 * Metric names are dotted paths ("cache.misses",
 * "phase.placement.gbsc.ms"); a name is bound to one metric kind for
 * the registry's lifetime (re-registering under another kind throws).
 */
class MetricsRegistry
{
  public:
    /** The process-wide registry used by default everywhere. */
    static MetricsRegistry &global();

    /** Find-or-create a counter. */
    Counter &counter(const std::string &name);
    /** Find-or-create a gauge. */
    Gauge &gauge(const std::string &name);
    /** Find-or-create a histogram. */
    Histogram &histogram(const std::string &name);

    /** True when a metric of any kind exists under @p name. */
    bool has(const std::string &name) const;

    /** Drop every metric (tests and tools reuse the global registry). */
    void clear();

    /**
     * Snapshot as JSON:
     * {"topo_metrics": 1, "counters": {...}, "gauges": {...},
     *  "histograms":
     *      {name: {count,sum,mean,min,max,stddev,p50,p90,p99}}}
     */
    JsonValue toJson() const;

    /** Write the snapshot to @p path; throws TopoError on I/O error. */
    void writeJsonFile(const std::string &path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace topo

#endif // TOPO_OBS_METRICS_HH
