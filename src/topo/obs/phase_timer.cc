#include "topo/obs/phase_timer.hh"

#include <vector>

#include "topo/obs/log.hh"
#include "topo/obs/trace_events.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Live span paths on this thread, outermost first. */
thread_local std::vector<std::string> t_phase_stack;

} // namespace

PhaseTimer::PhaseTimer(std::string name, MetricsRegistry *registry)
    : registry_(registry ? registry : &MetricsRegistry::current()),
      start_(std::chrono::steady_clock::now())
{
    require(!name.empty(), "PhaseTimer: empty phase name");
    path_ = t_phase_stack.empty() ? std::move(name)
                                  : t_phase_stack.back() + "." + name;
    t_phase_stack.push_back(path_);
    if (logEnabled(LogLevel::kTrace))
        logTrace("phase", "begin", {{"phase", path_}});
}

PhaseTimer::~PhaseTimer()
{
    stop();
}

double
PhaseTimer::elapsedMs() const
{
    if (!running_)
        return final_ms_;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
PhaseTimer::stop()
{
    if (!running_)
        return;
    final_ms_ = elapsedMs();
    running_ = false;
    require(!t_phase_stack.empty() && t_phase_stack.back() == path_,
            "PhaseTimer: spans must stop in LIFO order ('" + path_ +
                "' is not the innermost live span)");
    t_phase_stack.pop_back();
    registry_->histogram("phase." + path_ + ".ms").observe(final_ms_);
    ChromeTraceLog &trace = ChromeTraceLog::global();
    if (trace.enabled())
        trace.addSpan(path_, trace.tsFrom(start_), final_ms_ * 1000.0);
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("phase", "end",
                 {{"phase", path_}, {"ms", final_ms_}});
    }
}

std::string
PhaseTimer::currentPath()
{
    return t_phase_stack.empty() ? std::string() : t_phase_stack.back();
}

} // namespace topo
