/**
 * @file
 * Wall-clock phase spans over std::chrono::steady_clock.
 *
 * A PhaseTimer is an RAII span around one pipeline phase. Nested
 * timers compose a dotted path ("place.gbsc" inside "place" records
 * as "place.gbsc" under the parent), and each completed span records
 * its duration into the histogram "phase.<path>.ms" and emits a debug
 * log line. The per-thread nesting stack makes concurrent pipelines
 * safe.
 */

#ifndef TOPO_OBS_PHASE_TIMER_HH
#define TOPO_OBS_PHASE_TIMER_HH

#include <chrono>
#include <string>

#include "topo/obs/metrics.hh"

namespace topo
{

/** RAII wall-clock span recording into a MetricsRegistry. */
class PhaseTimer
{
  public:
    /**
     * Start a span named @p name. The full dotted path prefixes the
     * names of the enclosing live PhaseTimers on this thread.
     *
     * @param name     Phase name ("trg_build", "placement.gbsc", ...).
     * @param registry Destination registry; the calling thread's
     *                 MetricsRegistry::current() when null, so spans
     *                 inside a MetricsScope land in the task registry.
     */
    explicit PhaseTimer(std::string name,
                        MetricsRegistry *registry = nullptr);

    /** Stops (and records) the span if still running. */
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

    /**
     * Stop the span now: record "phase.<path>.ms" and log at debug.
     * Idempotent; the destructor calls it implicitly.
     */
    void stop();

    /** Milliseconds since the span started (live or final). */
    double elapsedMs() const;

    /** Full dotted path of this span. */
    const std::string &path() const { return path_; }

    /** Dotted path of the innermost live span on this thread ("" when
     *  none) — exposed for tests. */
    static std::string currentPath();

  private:
    std::string path_;
    MetricsRegistry *registry_;
    std::chrono::steady_clock::time_point start_;
    double final_ms_ = 0.0;
    bool running_ = true;
};

} // namespace topo

#endif // TOPO_OBS_PHASE_TIMER_HH
