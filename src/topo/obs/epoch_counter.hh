/**
 * @file
 * EpochCounter: O(1) distinct-id counting over a rolling window.
 *
 * The classic trick behind TimelineRecorder's working-set column:
 * instead of clearing a seen-set at every window boundary (O(ids) per
 * window), stamp each id with the epoch it was last seen in and bump
 * the epoch to reset. touch() is one load + compare on the hot path;
 * reset() is O(1) regardless of how many ids the window touched.
 *
 * Shared by the simulation timeline (distinct procedures per window)
 * and the sampling feature extractor (distinct procedures per trace
 * window), so both consumers count "working set" identically.
 */

#ifndef TOPO_OBS_EPOCH_COUNTER_HH
#define TOPO_OBS_EPOCH_COUNTER_HH

#include <cstdint>
#include <vector>

namespace topo
{

/** Distinct-id counter with O(1) window reset. */
class EpochCounter
{
  public:
    /** @param id_count Size of the id universe. */
    explicit EpochCounter(std::size_t id_count)
        : epoch_of_(id_count, 0)
    {}

    /**
     * Mark @p id as seen in the current window. Returns true exactly
     * when this is the id's first occurrence since the last reset().
     */
    bool
    touch(std::size_t id)
    {
        if (epoch_of_[id] == epoch_)
            return false;
        epoch_of_[id] = epoch_;
        ++count_;
        return true;
    }

    /** Distinct ids seen since the last reset(). */
    std::uint32_t count() const { return count_; }

    /** Start a new window; previously seen ids count again. */
    void
    reset()
    {
        ++epoch_;
        count_ = 0;
    }

  private:
    std::vector<std::uint64_t> epoch_of_;
    std::uint64_t epoch_ = 1;
    std::uint32_t count_ = 0;
};

} // namespace topo

#endif // TOPO_OBS_EPOCH_COUNTER_HH
