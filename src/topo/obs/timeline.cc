#include "topo/obs/timeline.hh"

#include "topo/util/error.hh"

namespace topo
{

TimelineRecorder::TimelineRecorder(std::uint64_t window_blocks,
                                   std::size_t proc_count)
    : window_blocks_(window_blocks), distinct_(proc_count)
{
    require(window_blocks > 0,
            "TimelineRecorder: window size must be positive");
}

void
TimelineRecorder::flushWindow()
{
    current_.start = next_start_;
    next_start_ += current_.accesses;
    samples_.push_back(current_);
    current_ = TimelineSample{};
    distinct_.reset();
}

void
TimelineRecorder::finish()
{
    if (current_.accesses != 0)
        flushWindow();
}

void
TimelineRecorder::exportCounters(ChromeTraceLog &log,
                                 const std::string &track) const
{
    for (const TimelineSample &sample : samples_) {
        const double ts = static_cast<double>(sample.start);
        log.addCounter(track, "miss_rate", ts, sample.missRate());
        log.addCounter(track, "working_set_procs", ts,
                       static_cast<double>(sample.distinct_procs));
        if (!saw_taxonomy_)
            continue;
        log.addCounter(track, "compulsory", ts,
                       static_cast<double>(sample.compulsory));
        log.addCounter(track, "capacity", ts,
                       static_cast<double>(sample.capacity));
        log.addCounter(track, "conflict", ts,
                       static_cast<double>(sample.conflict));
    }
}

JsonValue
TimelineRecorder::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("window_blocks",
             JsonValue::number(static_cast<double>(window_blocks_)));
    JsonValue list = JsonValue::array();
    for (const TimelineSample &sample : samples_) {
        JsonValue row = JsonValue::object();
        row.set("start",
                JsonValue::number(static_cast<double>(sample.start)));
        row.set("accesses",
                JsonValue::number(static_cast<double>(sample.accesses)));
        row.set("misses",
                JsonValue::number(static_cast<double>(sample.misses)));
        row.set("miss_rate", JsonValue::number(sample.missRate()));
        row.set("working_set_procs",
                JsonValue::number(
                    static_cast<double>(sample.distinct_procs)));
        if (saw_taxonomy_) {
            row.set("compulsory",
                    JsonValue::number(
                        static_cast<double>(sample.compulsory)));
            row.set("capacity",
                    JsonValue::number(
                        static_cast<double>(sample.capacity)));
            row.set("conflict",
                    JsonValue::number(
                        static_cast<double>(sample.conflict)));
            JsonValue hist = JsonValue::array();
            for (std::uint32_t count : sample.reuse_hist)
                hist.push(
                    JsonValue::number(static_cast<double>(count)));
            row.set("reuse_hist", std::move(hist));
        }
        list.push(std::move(row));
    }
    root.set("samples", std::move(list));
    return root;
}

} // namespace topo
