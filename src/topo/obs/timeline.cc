#include "topo/obs/timeline.hh"

#include "topo/util/error.hh"

namespace topo
{

TimelineRecorder::TimelineRecorder(std::uint64_t window_blocks,
                                   std::size_t proc_count)
    : window_blocks_(window_blocks)
{
    require(window_blocks > 0,
            "TimelineRecorder: window size must be positive");
    proc_epoch_.assign(proc_count, 0);
}

void
TimelineRecorder::flushWindow()
{
    current_.start = next_start_;
    next_start_ += current_.accesses;
    samples_.push_back(current_);
    current_ = TimelineSample{};
    ++epoch_;
}

void
TimelineRecorder::finish()
{
    if (current_.accesses != 0)
        flushWindow();
}

void
TimelineRecorder::exportCounters(ChromeTraceLog &log,
                                 const std::string &track) const
{
    for (const TimelineSample &sample : samples_) {
        const double ts = static_cast<double>(sample.start);
        log.addCounter(track, "miss_rate", ts, sample.missRate());
        log.addCounter(track, "working_set_procs", ts,
                       static_cast<double>(sample.distinct_procs));
    }
}

JsonValue
TimelineRecorder::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("window_blocks",
             JsonValue::number(static_cast<double>(window_blocks_)));
    JsonValue list = JsonValue::array();
    for (const TimelineSample &sample : samples_) {
        JsonValue row = JsonValue::object();
        row.set("start",
                JsonValue::number(static_cast<double>(sample.start)));
        row.set("accesses",
                JsonValue::number(static_cast<double>(sample.accesses)));
        row.set("misses",
                JsonValue::number(static_cast<double>(sample.misses)));
        row.set("miss_rate", JsonValue::number(sample.missRate()));
        row.set("working_set_procs",
                JsonValue::number(
                    static_cast<double>(sample.distinct_procs)));
        list.push(std::move(row));
    }
    root.set("samples", std::move(list));
    return root;
}

} // namespace topo
