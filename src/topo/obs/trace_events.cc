#include "topo/obs/trace_events.hh"

#include <fstream>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Next Chrome tid to hand out (1 = first-emitting thread). */
std::atomic<int> g_next_tid{1};
/** This thread's Chrome tid; 0 until first use. */
thread_local int t_tid = 0;

} // namespace

int
ChromeTraceLog::currentTid()
{
    if (t_tid == 0)
        t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

ChromeTraceLog::ChromeTraceLog()
    : origin_(std::chrono::steady_clock::now())
{}

ChromeTraceLog &
ChromeTraceLog::global()
{
    static ChromeTraceLog *instance = new ChromeTraceLog;
    return *instance;
}

double
ChromeTraceLog::tsFrom(std::chrono::steady_clock::time_point tp) const
{
    return std::chrono::duration<double, std::micro>(tp - origin_)
        .count();
}

double
ChromeTraceLog::nowUs() const
{
    return tsFrom(std::chrono::steady_clock::now());
}

void
ChromeTraceLog::announceThreadLocked(int tid)
{
    for (const int known : announced_tids_) {
        if (known == tid)
            return;
    }
    announced_tids_.push_back(tid);
    ChromeTraceEvent meta;
    meta.name = "thread_name";
    meta.ph = 'M';
    meta.pid = kWallPid;
    meta.tid = tid;
    meta.arg_name =
        tid == 1 ? "main" : "worker-" + std::to_string(tid - 1);
    events_.push_back(std::move(meta));
}

void
ChromeTraceLog::addSpan(const std::string &name, double ts_us,
                       double dur_us)
{
    const int tid = currentTid();
    const std::lock_guard<std::mutex> lock(mutex_);
    announceThreadLocked(tid);
    ChromeTraceEvent event;
    event.name = name;
    event.ph = 'X';
    event.ts = ts_us;
    event.dur = dur_us;
    event.pid = kWallPid;
    event.tid = tid;
    events_.push_back(std::move(event));
}

void
ChromeTraceLog::addCounter(const std::string &track,
                          const std::string &name, double ts,
                          double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    int pid = 0;
    for (const auto &[known, known_pid] : counter_tracks_) {
        if (known == track) {
            pid = known_pid;
            break;
        }
    }
    if (pid == 0) {
        pid = kFirstCounterPid +
              static_cast<int>(counter_tracks_.size());
        counter_tracks_.emplace_back(track, pid);
        ChromeTraceEvent meta;
        meta.name = "process_name";
        meta.ph = 'M';
        meta.pid = pid;
        meta.arg_name = track;
        events_.push_back(std::move(meta));
    }
    ChromeTraceEvent event;
    event.name = name;
    event.ph = 'C';
    event.ts = ts;
    event.pid = pid;
    event.args.emplace_back(name, value);
    events_.push_back(std::move(event));
}

std::size_t
ChromeTraceLog::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
ChromeTraceLog::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    counter_tracks_.clear();
    announced_tids_.clear();
}

JsonValue
ChromeTraceLog::toJson() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue root = JsonValue::object();
    JsonValue list = JsonValue::array();
    for (const ChromeTraceEvent &event : events_) {
        JsonValue row = JsonValue::object();
        row.set("name", JsonValue::string(event.name));
        row.set("ph", JsonValue::string(std::string(1, event.ph)));
        row.set("pid", JsonValue::number(event.pid));
        row.set("tid", JsonValue::number(event.tid));
        if (event.ph != 'M')
            row.set("ts", JsonValue::number(event.ts));
        if (event.ph == 'X')
            row.set("dur", JsonValue::number(event.dur));
        if (!event.args.empty() || !event.arg_name.empty()) {
            JsonValue args = JsonValue::object();
            if (!event.arg_name.empty())
                args.set("name", JsonValue::string(event.arg_name));
            for (const auto &[key, value] : event.args)
                args.set(key, JsonValue::number(value));
            row.set("args", std::move(args));
        }
        list.push(std::move(row));
    }
    root.set("traceEvents", std::move(list));
    root.set("displayTimeUnit", JsonValue::string("ms"));
    return root;
}

void
ChromeTraceLog::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    require(os.good(),
            "ChromeTraceLog: cannot open trace file '" + path + "'");
    toJson().write(os);
    os << '\n';
    require(os.good(),
            "ChromeTraceLog: failed writing trace file '" + path + "'");
}

} // namespace topo
