#include "topo/obs/provenance.hh"

#include <map>
#include <mutex>

#include "topo/obs/build_info.hh"

namespace topo
{

namespace
{

struct RuntimeFacts
{
    std::mutex mutex;
    std::map<std::string, std::string> entries; // sorted render order
};

RuntimeFacts &
runtimeFacts()
{
    static RuntimeFacts facts;
    return facts;
}

} // namespace

const char *
buildGitSha()
{
    return TOPO_BUILD_GIT_SHA;
}

const char *
buildTypeName()
{
    return TOPO_BUILD_TYPE;
}

const char *
buildCompiler()
{
    return TOPO_BUILD_COMPILER;
}

void
setProvenance(const std::string &key, const std::string &value)
{
    RuntimeFacts &facts = runtimeFacts();
    const std::lock_guard<std::mutex> lock(facts.mutex);
    facts.entries[key] = value;
}

JsonValue
provenanceJson()
{
    JsonValue root = JsonValue::object();
    root.set("git_sha", JsonValue::string(buildGitSha()));
    root.set("build_type", JsonValue::string(buildTypeName()));
    root.set("compiler", JsonValue::string(buildCompiler()));
    RuntimeFacts &facts = runtimeFacts();
    const std::lock_guard<std::mutex> lock(facts.mutex);
    for (const auto &[key, value] : facts.entries)
        root.set(key, JsonValue::string(value));
    return root;
}

} // namespace topo
