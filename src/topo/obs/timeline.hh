/**
 * @file
 * TimelineRecorder: interval-resolved cache behaviour.
 *
 * Aggregate miss counts hide *when* a layout loses; interval samples
 * (every N fetch blocks: miss rate and working-set size) expose the
 * phase structure that temporal-ordering placement exploits. The
 * simulator feeds a recorder one (procedure, miss?) event per line
 * fetch; the recorder buckets them into fixed windows and keeps one
 * sample per window — memory is O(stream / window), independent of
 * the per-window activity.
 *
 * Samples export as Chrome trace counter events (block-index
 * pseudo-time) via exportCounters(), alongside the wall-clock phase
 * spans already in the ChromeTraceLog.
 */

#ifndef TOPO_OBS_TIMELINE_HH
#define TOPO_OBS_TIMELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/obs/json.hh"
#include "topo/obs/trace_events.hh"
#include "topo/program/procedure.hh"

namespace topo
{

/** One fixed-size window of simulation activity. */
struct TimelineSample
{
    /** Block index of the window's first fetch. */
    std::uint64_t start = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Distinct procedures fetched from within the window. */
    std::uint32_t distinct_procs = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Windowed miss-rate / working-set sampler for one simulation. */
class TimelineRecorder
{
  public:
    /**
     * @param window_blocks Fetch blocks per window (non-zero).
     * @param proc_count    Procedure inventory size (working-set
     *                      tracking).
     */
    TimelineRecorder(std::uint64_t window_blocks, std::size_t proc_count);

    /** Record one line fetch (hot path). */
    void
    record(ProcId proc, bool miss)
    {
        if (proc_epoch_[proc] != epoch_) {
            proc_epoch_[proc] = epoch_;
            ++current_.distinct_procs;
        }
        ++current_.accesses;
        current_.misses += miss ? 1 : 0;
        if (current_.accesses == window_blocks_)
            flushWindow();
    }

    /** Close the trailing partial window (idempotent). */
    void finish();

    /** Blocks per window. */
    std::uint64_t windowBlocks() const { return window_blocks_; }

    /** Completed samples, in stream order (call finish() first). */
    const std::vector<TimelineSample> &samples() const
    {
        return samples_;
    }

    /**
     * Export the samples as counter events ("miss_rate",
     * "working_set_procs") on track @p track of @p log; timestamps are
     * block indices.
     */
    void exportCounters(ChromeTraceLog &log,
                        const std::string &track) const;

    /** {"window_blocks": W, "samples": [{start,accesses,misses,...}]}. */
    JsonValue toJson() const;

  private:
    void flushWindow();

    std::uint64_t window_blocks_;
    std::uint64_t next_start_ = 0;
    TimelineSample current_;
    /** Epoch stamp per procedure; matches epoch_ if seen this window. */
    std::vector<std::uint64_t> proc_epoch_;
    std::uint64_t epoch_ = 1;
    std::vector<TimelineSample> samples_;
};

} // namespace topo

#endif // TOPO_OBS_TIMELINE_HH
