/**
 * @file
 * TimelineRecorder: interval-resolved cache behaviour.
 *
 * Aggregate miss counts hide *when* a layout loses; interval samples
 * (every N fetch blocks: miss rate and working-set size) expose the
 * phase structure that temporal-ordering placement exploits. The
 * simulator feeds a recorder one (procedure, miss?) event per line
 * fetch; the recorder buckets them into fixed windows and keeps one
 * sample per window — memory is O(stream / window), independent of
 * the per-window activity.
 *
 * Samples export as Chrome trace counter events (block-index
 * pseudo-time) via exportCounters(), alongside the wall-clock phase
 * spans already in the ChromeTraceLog.
 */

#ifndef TOPO_OBS_TIMELINE_HH
#define TOPO_OBS_TIMELINE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "topo/obs/epoch_counter.hh"
#include "topo/obs/json.hh"
#include "topo/obs/trace_events.hh"
#include "topo/program/procedure.hh"

namespace topo
{

/** 3C classification of one fetch (Hill's taxonomy, per-miss form). */
enum class MissClass : std::uint8_t
{
    kHit = 0,        ///< Real cache hit (not a miss at all).
    kCompulsory = 1, ///< First reference to the line, ever.
    kCapacity = 2,   ///< Missed in the fully-associative shadow too.
    kConflict = 3,   ///< Shadow hit; only the real geometry missed.
};

/**
 * Log2 reuse-distance buckets: bucket b holds stack distances in
 * [2^(b-1), 2^b) with bucket 0 reserved for distance 0, plus one
 * "cold" bucket for first-touch accesses that have no prior reference.
 */
inline constexpr std::size_t kReuseBucketCount = 34;
inline constexpr std::size_t kReuseColdBucket = kReuseBucketCount - 1;

/** One classified fetch, as produced by the taxonomy sink. */
struct TaxonomyEvent
{
    MissClass miss_class = MissClass::kHit;
    /** Reuse-distance bucket index (< kReuseBucketCount). */
    std::uint8_t reuse_bucket = 0;
};

/** One fixed-size window of simulation activity. */
struct TimelineSample
{
    /** Block index of the window's first fetch. */
    std::uint64_t start = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    /** Distinct procedures fetched from within the window. */
    std::uint32_t distinct_procs = 0;
    /** 3C miss breakdown (populated only when a taxonomy sink runs). */
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;
    /** Per-window reuse-distance feature vector (log2 buckets). */
    std::array<std::uint32_t, kReuseBucketCount> reuse_hist{};

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** Windowed miss-rate / working-set sampler for one simulation. */
class TimelineRecorder
{
  public:
    /**
     * @param window_blocks Fetch blocks per window (non-zero).
     * @param proc_count    Procedure inventory size (working-set
     *                      tracking).
     */
    TimelineRecorder(std::uint64_t window_blocks, std::size_t proc_count);

    /**
     * Fold one classified fetch into the current window. Must be
     * called *before* record() for the same fetch: record() may close
     * the window. Arms the taxonomy columns in samples and exports.
     */
    void
    noteTaxonomy(const TaxonomyEvent &event)
    {
        saw_taxonomy_ = true;
        switch (event.miss_class) {
        case MissClass::kHit:
            break;
        case MissClass::kCompulsory:
            ++current_.compulsory;
            break;
        case MissClass::kCapacity:
            ++current_.capacity;
            break;
        case MissClass::kConflict:
            ++current_.conflict;
            break;
        }
        ++current_.reuse_hist[event.reuse_bucket];
    }

    /** True once any taxonomy event has been folded in. */
    bool taxonomyArmed() const { return saw_taxonomy_; }

    /** Record one line fetch (hot path). */
    void
    record(ProcId proc, bool miss)
    {
        if (distinct_.touch(proc))
            ++current_.distinct_procs;
        ++current_.accesses;
        current_.misses += miss ? 1 : 0;
        if (current_.accesses == window_blocks_)
            flushWindow();
    }

    /** Close the trailing partial window (idempotent). */
    void finish();

    /** Blocks per window. */
    std::uint64_t windowBlocks() const { return window_blocks_; }

    /** Completed samples, in stream order (call finish() first). */
    const std::vector<TimelineSample> &samples() const
    {
        return samples_;
    }

    /**
     * Export the samples as counter events ("miss_rate",
     * "working_set_procs") on track @p track of @p log; timestamps are
     * block indices.
     */
    void exportCounters(ChromeTraceLog &log,
                        const std::string &track) const;

    /** {"window_blocks": W, "samples": [{start,accesses,misses,...}]}. */
    JsonValue toJson() const;

  private:
    void flushWindow();

    std::uint64_t window_blocks_;
    std::uint64_t next_start_ = 0;
    TimelineSample current_;
    /** Distinct procedures seen in the current window. */
    EpochCounter distinct_;
    bool saw_taxonomy_ = false;
    std::vector<TimelineSample> samples_;
};

} // namespace topo

#endif // TOPO_OBS_TIMELINE_HH
