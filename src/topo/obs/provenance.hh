/**
 * @file
 * Run-provenance manifest: which build produced which numbers.
 *
 * Bench trajectories are only comparable when each snapshot says what
 * produced it. The build-time facts (git sha, build type, compiler)
 * are baked in by CMake via a configured header; runtime facts (cache
 * geometry, job count, trace scale, ...) are registered by the tool
 * with setProvenance() as soon as they are resolved. provenanceJson()
 * renders the combined manifest, and every --metrics-out and
 * BENCH_*.json snapshot embeds it under "provenance".
 */

#ifndef TOPO_OBS_PROVENANCE_HH
#define TOPO_OBS_PROVENANCE_HH

#include <string>

#include "topo/obs/json.hh"

namespace topo
{

/** Short git sha of the configured source tree ("unknown" outside git). */
const char *buildGitSha();

/** CMAKE_BUILD_TYPE the binaries were configured with. */
const char *buildTypeName();

/** Compiler id and version that built the binaries. */
const char *buildCompiler();

/**
 * Register a runtime provenance fact (e.g. "jobs" -> "4"). Re-setting
 * a key overwrites it; keys render in sorted order for determinism.
 * Thread-safe.
 */
void setProvenance(const std::string &key, const std::string &value);

/**
 * The manifest: {"git_sha": ..., "build_type": ..., "compiler": ...}
 * plus every runtime fact registered so far, all string-valued.
 */
JsonValue provenanceJson();

} // namespace topo

#endif // TOPO_OBS_PROVENANCE_HH
