/**
 * @file
 * Minimal JSON value model used by the observability layer.
 *
 * MetricsRegistry snapshots are serialised through JsonValue, and the
 * parser exists so tests (and tools that consume their own output) can
 * round-trip a snapshot without an external dependency. The model is
 * deliberately small: objects preserve insertion order, numbers are
 * doubles, and parse errors raise TopoError.
 */

#ifndef TOPO_OBS_JSON_HH
#define TOPO_OBS_JSON_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace topo
{

/** Tagged union over the six JSON value kinds. */
class JsonValue
{
  public:
    enum class Kind
    {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    /** Null value. */
    JsonValue() = default;

    /** Construct a boolean value. */
    static JsonValue boolean(bool value);
    /** Construct a numeric value. */
    static JsonValue number(double value);
    /** Construct a string value. */
    static JsonValue string(std::string value);
    /** Construct an empty array. */
    static JsonValue array();
    /** Construct an empty object. */
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isObject() const { return kind_ == Kind::kObject; }
    bool isArray() const { return kind_ == Kind::kArray; }

    /** Boolean payload; throws TopoError on kind mismatch. */
    bool asBool() const;
    /** Numeric payload; throws TopoError on kind mismatch. */
    double asNumber() const;
    /** String payload; throws TopoError on kind mismatch. */
    const std::string &asString() const;

    /** Element/member count of an array or object (0 otherwise). */
    std::size_t size() const;

    /** Append to an array; throws TopoError on kind mismatch. */
    void push(JsonValue value);
    /** Array element; throws TopoError when out of range. */
    const JsonValue &at(std::size_t index) const;

    /** Set (or replace) an object member; returns the stored value. */
    JsonValue &set(const std::string &key, JsonValue value);
    /** Object member lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
    /** Object member; throws TopoError when absent. */
    const JsonValue &at(const std::string &key) const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;
    /** Array elements. */
    const std::vector<JsonValue> &elements() const;

    /**
     * Serialise with two-space indentation. @p depth is the starting
     * indentation level (used internally for nesting).
     */
    void write(std::ostream &os, int depth = 0) const;
    /** Serialised form as a string. */
    std::string toString() const;

    /** Parse a JSON document; throws TopoError on malformed input. */
    static JsonValue parse(const std::string &text);

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Write @p text as a quoted JSON string with escapes. */
void writeJsonString(std::ostream &os, const std::string &text);

} // namespace topo

#endif // TOPO_OBS_JSON_HH
