#include "topo/obs/metrics.hh"

#include <algorithm>
#include <fstream>
#include <utility>

#include "topo/util/error.hh"

namespace topo
{

Histogram::Histogram()
{
    // Pre-size the reservoir so observe() never reallocates: the
    // attribution tests assert the simulator's disabled path performs
    // a constant number of allocations per run.
    reservoir_.reserve(kReservoirSize);
}

void
Histogram::observe(double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.add(value);
    ++seen_;
    if (reservoir_.size() < kReservoirSize) {
        reservoir_.push_back(value);
        return;
    }
    // Algorithm R with a deterministic xorshift64 stream.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const std::uint64_t slot = rng_state_ % seen_;
    if (slot < kReservoirSize)
        reservoir_[static_cast<std::size_t>(slot)] = value;
}

RunningStats
Histogram::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

double
Histogram::quantile(double pct) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (reservoir_.empty())
        return 0.0;
    return percentile(reservoir_, pct);
}

std::vector<double>
Histogram::reservoirSnapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return reservoir_;
}

void
Histogram::mergeFrom(const Histogram &other)
{
    // Copy the other side under its own lock first; taking both locks
    // at once is unnecessary (merges happen at join points where the
    // source is quiescent) and would demand a lock order.
    RunningStats other_stats;
    std::vector<double> other_reservoir;
    std::uint64_t other_seen = 0;
    {
        const std::lock_guard<std::mutex> lock(other.mutex_);
        other_stats = other.stats_;
        other_reservoir = other.reservoir_;
        other_seen = other.seen_;
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.merge(other_stats);
    // Replay the surviving samples through our own deterministic
    // algorithm-R stream. seen_ advances per replayed sample and then
    // jumps to the true combined count, so later observations keep the
    // right replacement probability.
    for (const double value : other_reservoir) {
        ++seen_;
        if (reservoir_.size() < kReservoirSize) {
            reservoir_.push_back(value);
            continue;
        }
        rng_state_ ^= rng_state_ << 13;
        rng_state_ ^= rng_state_ >> 7;
        rng_state_ ^= rng_state_ << 17;
        const std::uint64_t slot = rng_state_ % seen_;
        if (slot < kReservoirSize)
            reservoir_[static_cast<std::size_t>(slot)] = value;
    }
    seen_ += other_seen - std::min<std::uint64_t>(
                              other_seen, other_reservoir.size());
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *instance = new MetricsRegistry;
    return *instance;
}

namespace
{

/** Innermost MetricsScope registry for this thread (null = global). */
thread_local MetricsRegistry *t_current_registry = nullptr;

} // namespace

MetricsRegistry &
MetricsRegistry::current()
{
    return t_current_registry ? *t_current_registry : global();
}

MetricsScope::MetricsScope(MetricsRegistry &registry)
    : previous_(t_current_registry)
{
    t_current_registry = &registry;
}

MetricsScope::~MetricsScope()
{
    t_current_registry = previous_;
}

void
MetricsRegistry::mergeFrom(const MetricsRegistry &other)
{
    require(&other != this, "MetricsRegistry: cannot merge into itself");
    // Snapshot the other side's metric pointers under its lock; the
    // metric objects themselves are stable for the registry lifetime.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const Histogram *>> histograms;
    {
        const std::lock_guard<std::mutex> lock(other.mutex_);
        for (const auto &[name, counter] : other.counters_)
            counters.emplace_back(name, counter.get());
        for (const auto &[name, gauge] : other.gauges_)
            gauges.emplace_back(name, gauge.get());
        for (const auto &[name, histogram] : other.histograms_)
            histograms.emplace_back(name, histogram.get());
    }
    for (const auto &[name, other_counter] : counters)
        counter(name).add(other_counter->value());
    for (const auto &[name, other_gauge] : gauges)
        gauge(name).set(other_gauge->value());
    for (const auto &[name, other_histogram] : histograms)
        histogram(name).mergeFrom(*other_histogram);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!gauges_.count(name) && !histograms_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!counters_.count(name) && !histograms_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!counters_.count(name) && !gauges_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_.count(name) || gauges_.count(name) ||
           histograms_.count(name);
}

void
MetricsRegistry::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

JsonValue
MetricsRegistry::toJson() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue root = JsonValue::object();
    root.set("topo_metrics", JsonValue::number(1));

    JsonValue counters = JsonValue::object();
    for (const auto &[name, counter] : counters_) {
        counters.set(name, JsonValue::number(
                               static_cast<double>(counter->value())));
    }
    root.set("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto &[name, gauge] : gauges_)
        gauges.set(name, JsonValue::number(gauge->value()));
    root.set("gauges", std::move(gauges));

    JsonValue histograms = JsonValue::object();
    for (const auto &[name, histogram] : histograms_) {
        const RunningStats stats = histogram->stats();
        JsonValue entry = JsonValue::object();
        entry.set("count", JsonValue::number(
                               static_cast<double>(stats.count())));
        entry.set("sum", JsonValue::number(stats.sum()));
        entry.set("mean", JsonValue::number(stats.mean()));
        entry.set("min", JsonValue::number(
                             stats.count() ? stats.min() : 0.0));
        entry.set("max", JsonValue::number(
                             stats.count() ? stats.max() : 0.0));
        entry.set("stddev", JsonValue::number(stats.stddev()));
        entry.set("p50", JsonValue::number(histogram->quantile(50.0)));
        entry.set("p90", JsonValue::number(histogram->quantile(90.0)));
        entry.set("p99", JsonValue::number(histogram->quantile(99.0)));
        histograms.set(name, std::move(entry));
    }
    root.set("histograms", std::move(histograms));
    return root;
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    require(os.good(), "MetricsRegistry: cannot open metrics file '" +
                           path + "'");
    toJson().write(os);
    os << '\n';
    require(os.good(), "MetricsRegistry: failed writing metrics file '" +
                           path + "'");
}

} // namespace topo
