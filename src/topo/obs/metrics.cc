#include "topo/obs/metrics.hh"

#include <fstream>

#include "topo/util/error.hh"

namespace topo
{

Histogram::Histogram()
{
    // Pre-size the reservoir so observe() never reallocates: the
    // attribution tests assert the simulator's disabled path performs
    // a constant number of allocations per run.
    reservoir_.reserve(kReservoirSize);
}

void
Histogram::observe(double value)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.add(value);
    ++seen_;
    if (reservoir_.size() < kReservoirSize) {
        reservoir_.push_back(value);
        return;
    }
    // Algorithm R with a deterministic xorshift64 stream.
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    const std::uint64_t slot = rng_state_ % seen_;
    if (slot < kReservoirSize)
        reservoir_[static_cast<std::size_t>(slot)] = value;
}

RunningStats
Histogram::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

double
Histogram::quantile(double pct) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (reservoir_.empty())
        return 0.0;
    return percentile(reservoir_, pct);
}

std::vector<double>
Histogram::reservoirSnapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return reservoir_;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry *instance = new MetricsRegistry;
    return *instance;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!gauges_.count(name) && !histograms_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!counters_.count(name) && !histograms_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    require(!counters_.count(name) && !gauges_.count(name),
            "MetricsRegistry: '" + name +
                "' is already registered as another metric kind");
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

bool
MetricsRegistry::has(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return counters_.count(name) || gauges_.count(name) ||
           histograms_.count(name);
}

void
MetricsRegistry::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

JsonValue
MetricsRegistry::toJson() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue root = JsonValue::object();
    root.set("topo_metrics", JsonValue::number(1));

    JsonValue counters = JsonValue::object();
    for (const auto &[name, counter] : counters_) {
        counters.set(name, JsonValue::number(
                               static_cast<double>(counter->value())));
    }
    root.set("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto &[name, gauge] : gauges_)
        gauges.set(name, JsonValue::number(gauge->value()));
    root.set("gauges", std::move(gauges));

    JsonValue histograms = JsonValue::object();
    for (const auto &[name, histogram] : histograms_) {
        const RunningStats stats = histogram->stats();
        JsonValue entry = JsonValue::object();
        entry.set("count", JsonValue::number(
                               static_cast<double>(stats.count())));
        entry.set("sum", JsonValue::number(stats.sum()));
        entry.set("mean", JsonValue::number(stats.mean()));
        entry.set("min", JsonValue::number(
                             stats.count() ? stats.min() : 0.0));
        entry.set("max", JsonValue::number(
                             stats.count() ? stats.max() : 0.0));
        entry.set("stddev", JsonValue::number(stats.stddev()));
        entry.set("p50", JsonValue::number(histogram->quantile(50.0)));
        entry.set("p90", JsonValue::number(histogram->quantile(90.0)));
        entry.set("p99", JsonValue::number(histogram->quantile(99.0)));
        histograms.set(name, std::move(entry));
    }
    root.set("histograms", std::move(histograms));
    return root;
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    require(os.good(), "MetricsRegistry: cannot open metrics file '" +
                           path + "'");
    toJson().write(os);
    os << '\n';
    require(os.good(), "MetricsRegistry: failed writing metrics file '" +
                           path + "'");
}

} // namespace topo
