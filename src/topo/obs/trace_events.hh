/**
 * @file
 * Chrome trace-event collection: a process-wide buffer of timeline
 * events serialisable as Trace Event Format JSON, loadable in
 * Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Two kinds of tracks coexist:
 *  - wall-clock phase spans ('X' complete events, microseconds since
 *    the log was created) emitted by PhaseTimer when collection is
 *    enabled — pid kWallPid;
 *  - block-time counter series ('C' events whose timestamps are fetch
 *    block indices, a pseudo-time) exported by TimelineRecorder — one
 *    pid per track so Perfetto renders them as separate processes.
 *
 * Collection is off by default; --trace-out=FILE enables it and dumps
 * the buffer on tool exit. When disabled, the only cost at call sites
 * is one relaxed atomic load.
 */

#ifndef TOPO_OBS_TRACE_EVENTS_HH
#define TOPO_OBS_TRACE_EVENTS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "topo/obs/json.hh"

namespace topo
{

/** One trace event (a subset of the Trace Event Format fields). */
struct ChromeTraceEvent
{
    std::string name;
    /** 'X' complete span, 'C' counter sample, 'M' metadata. */
    char ph = 'X';
    /** Microseconds (wall tracks) or block index (counter tracks). */
    double ts = 0.0;
    /** Span duration; meaningful for 'X' only. */
    double dur = 0.0;
    int pid = 1;
    int tid = 1;
    /** Numeric args ('C' series values). */
    std::vector<std::pair<std::string, double>> args;
    /** String arg ("name" of 'M' process_name events); unused if empty. */
    std::string arg_name;
};

/** Process-wide trace-event buffer. */
class ChromeTraceLog
{
  public:
    /** pid of the wall-clock phase-span track. */
    static constexpr int kWallPid = 1;
    /** First pid handed out for block-time counter tracks. */
    static constexpr int kFirstCounterPid = 2;

    /** The process-wide log used by PhaseTimer and the tools. */
    static ChromeTraceLog &global();

    /** Enable/disable collection (cheap enabled() probe for hot sites). */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds from the log's origin to @p tp. */
    double tsFrom(std::chrono::steady_clock::time_point tp) const;

    /** Microseconds from the log's origin to now. */
    double nowUs() const;

    /**
     * Chrome `tid` of the calling thread: 1 for the first thread that
     * emits (the main thread in practice), then sequential in
     * first-emission order. Pool workers therefore render as separate
     * lanes under the wall-clock track in Perfetto.
     */
    static int currentTid();

    /**
     * Append a wall-clock span on the phase track (thread-safe;
     * mutex-guarded emission). The span lands in the calling thread's
     * lane (currentTid()), and the first span from a new thread also
     * emits a thread_name metadata event naming the lane.
     */
    void addSpan(const std::string &name, double ts_us, double dur_us);

    /**
     * Append a counter sample. @p track groups related series under
     * one pseudo-process; the first use of a track names it with a
     * metadata event and allocates its pid.
     *
     * @param track  Track (pseudo-process) name, e.g. "timeline:gbsc".
     * @param name   Counter name, e.g. "miss_rate".
     * @param ts     Timestamp in the track's timebase (block index).
     * @param value  Sample value.
     */
    void addCounter(const std::string &track, const std::string &name,
                    double ts, double value);

    /** Number of buffered events (metadata included). */
    std::size_t size() const;

    /** Drop all events and counter tracks (tests). */
    void clear();

    /** {"traceEvents": [...], "displayTimeUnit": "ms"}. */
    JsonValue toJson() const;

    /** Write toJson() to @p path; throws TopoError on I/O error. */
    void writeFile(const std::string &path) const;

  private:
    ChromeTraceLog();

    /** Emit thread_name metadata for @p tid once (mutex_ held). */
    void announceThreadLocked(int tid);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point origin_;
    mutable std::mutex mutex_;
    std::vector<ChromeTraceEvent> events_;
    /** track name -> pid of already-announced counter tracks. */
    std::vector<std::pair<std::string, int>> counter_tracks_;
    /** tids whose thread_name metadata has been emitted. */
    std::vector<int> announced_tids_;
};

} // namespace topo

#endif // TOPO_OBS_TRACE_EVENTS_HH
