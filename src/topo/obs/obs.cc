#include "topo/obs/obs.hh"

#include <memory>

namespace topo
{

void
initObservability(const Options &opts)
{
    Logger &logger = Logger::global();
    if (opts.has("log-level"))
        logger.setLevel(parseLogLevel(opts.getString("log-level", "")));
    const std::string log_file = opts.getString("log-file", "");
    if (!log_file.empty())
        logger.addSink(std::make_shared<FileSink>(log_file));
}

bool
writeMetricsIfRequested(const Options &opts)
{
    const std::string path = opts.getString("metrics-out", "");
    if (path.empty())
        return false;
    MetricsRegistry::global().writeJsonFile(path);
    logInfo("metrics", "snapshot written", {{"file", path}});
    return true;
}

} // namespace topo
