#include "topo/obs/obs.hh"

#include <fstream>
#include <memory>

#include "topo/obs/provenance.hh"
#include "topo/util/error.hh"

namespace topo
{

void
initObservability(const Options &opts)
{
    Logger &logger = Logger::global();
    if (opts.has("log-level"))
        logger.setLevel(parseLogLevel(opts.getString("log-level", "")));
    const std::string log_file = opts.getString("log-file", "");
    if (!log_file.empty())
        logger.addSink(std::make_shared<FileSink>(log_file));
    if (!opts.getString("trace-out", "").empty())
        ChromeTraceLog::global().setEnabled(true);
}

bool
writeMetricsIfRequested(const Options &opts)
{
    const std::string path = opts.getString("metrics-out", "");
    if (path.empty())
        return false;
    JsonValue snapshot = MetricsRegistry::global().toJson();
    snapshot.set("provenance", provenanceJson());
    std::ofstream os(path);
    require(os.good(),
            "metrics: cannot open metrics file '" + path + "'");
    snapshot.write(os);
    os << '\n';
    require(os.good(),
            "metrics: failed writing metrics file '" + path + "'");
    logInfo("metrics", "snapshot written", {{"file", path}});
    return true;
}

bool
writeTraceIfRequested(const Options &opts)
{
    const std::string path = opts.getString("trace-out", "");
    if (path.empty())
        return false;
    ChromeTraceLog &trace = ChromeTraceLog::global();
    trace.writeFile(path);
    logInfo("trace", "trace events written",
            {{"file", path}, {"events", trace.size()}});
    return true;
}

} // namespace topo
