/**
 * @file
 * Leveled structured logging for the whole pipeline.
 *
 * A log line has a level, a component ("gbsc", "simulate", ...), a
 * message, and optional key=value fields. Records flow to pluggable
 * sinks (stderr by default; a file sink and test capture sinks are
 * available). The global logger's level comes from --log-level /
 * TOPO_LOG_LEVEL and defaults to info.
 *
 * Hot call sites must guard with logEnabled() (or Logger::enabled)
 * before building fields, so disabled levels cost a single predictable
 * branch and no allocation.
 */

#ifndef TOPO_OBS_LOG_HH
#define TOPO_OBS_LOG_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace topo
{

/** Severity levels, ordered; kOff disables everything. */
enum class LogLevel
{
    kTrace = 0,
    kDebug,
    kInfo,
    kWarn,
    kError,
    kOff,
};

/** Parse "trace"/"debug"/"info"/"warn"/"error"/"off"; throws TopoError. */
LogLevel parseLogLevel(const std::string &text);

/** Lower-case level name ("info", ...). */
const char *logLevelName(LogLevel level);

/** One key=value pair attached to a log record. */
struct LogField
{
    std::string key;
    std::string value;

    LogField(std::string k, std::string v)
        : key(std::move(k)), value(std::move(v))
    {}
    LogField(std::string k, const char *v)
        : key(std::move(k)), value(v)
    {}
    LogField(std::string k, std::int64_t v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    LogField(std::string k, std::uint64_t v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    LogField(std::string k, int v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    LogField(std::string k, unsigned v)
        : key(std::move(k)), value(std::to_string(v))
    {}
    LogField(std::string k, double v);
    LogField(std::string k, bool v)
        : key(std::move(k)), value(v ? "true" : "false")
    {}
};

/** A fully-assembled log record handed to every sink. */
struct LogRecord
{
    LogLevel level = LogLevel::kInfo;
    /** Subsystem emitting the record ("gbsc", "trg", ...). */
    std::string_view component;
    std::string_view message;
    std::vector<LogField> fields;
    /** Milliseconds since the logger was created. */
    double elapsed_ms = 0.0;
};

/** Render a record as one text line (shared by the stock sinks). */
std::string formatLogLine(const LogRecord &record);

/** Destination for log records. */
class LogSink
{
  public:
    virtual ~LogSink() = default;
    virtual void write(const LogRecord &record) = 0;
};

/** Sink writing formatted lines to stderr. */
class StderrSink : public LogSink
{
  public:
    void write(const LogRecord &record) override;
};

/** Sink appending formatted lines to a file; throws on open failure. */
class FileSink : public LogSink
{
  public:
    explicit FileSink(const std::string &path);
    ~FileSink() override;
    void write(const LogRecord &record) override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Leveled logger dispatching records to its sinks. */
class Logger
{
  public:
    /** Logger with the given level and no sinks. */
    explicit Logger(LogLevel level = LogLevel::kInfo);

    /**
     * The process-wide logger. Created on first use with a StderrSink
     * and the level named by TOPO_LOG_LEVEL (info when unset/invalid).
     */
    static Logger &global();

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }

    /** True when records at @p level currently reach the sinks. */
    bool
    enabled(LogLevel level) const
    {
        return level >= level_ && level_ != LogLevel::kOff;
    }

    /** Add a sink (records are fanned out to every sink). */
    void addSink(std::shared_ptr<LogSink> sink);

    /** Replace all sinks. */
    void setSinks(std::vector<std::shared_ptr<LogSink>> sinks);

    /**
     * Emit a record if @p level is enabled. Sink fan-out is serialised
     * by an internal mutex, so concurrent emitters (pool workers)
     * never interleave characters within a line or race a sink's
     * stream state; relative line order across threads follows lock
     * acquisition order.
     */
    void log(LogLevel level, std::string_view component,
             std::string_view message, std::vector<LogField> fields = {});

  private:
    LogLevel level_;
    /** Serialises sink mutation and record fan-out. */
    std::mutex sink_mutex_;
    std::vector<std::shared_ptr<LogSink>> sinks_;
    /** steady_clock origin for elapsed_ms, in nanoseconds. */
    std::uint64_t origin_ns_ = 0;
};

/** Shorthand for Logger::global().enabled(level). */
inline bool
logEnabled(LogLevel level)
{
    return Logger::global().enabled(level);
}

/** Emit on the global logger. */
inline void
logAt(LogLevel level, std::string_view component,
      std::string_view message, std::vector<LogField> fields = {})
{
    Logger::global().log(level, component, message, std::move(fields));
}

inline void
logTrace(std::string_view component, std::string_view message,
         std::vector<LogField> fields = {})
{
    logAt(LogLevel::kTrace, component, message, std::move(fields));
}

inline void
logDebug(std::string_view component, std::string_view message,
         std::vector<LogField> fields = {})
{
    logAt(LogLevel::kDebug, component, message, std::move(fields));
}

inline void
logInfo(std::string_view component, std::string_view message,
        std::vector<LogField> fields = {})
{
    logAt(LogLevel::kInfo, component, message, std::move(fields));
}

inline void
logWarn(std::string_view component, std::string_view message,
        std::vector<LogField> fields = {})
{
    logAt(LogLevel::kWarn, component, message, std::move(fields));
}

inline void
logError(std::string_view component, std::string_view message,
         std::vector<LogField> fields = {})
{
    logAt(LogLevel::kError, component, message, std::move(fields));
}

} // namespace topo

#endif // TOPO_OBS_LOG_HH
