#include "topo/obs/log.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** True when a field value needs quoting in the text format. */
bool
needsQuotes(const std::string &value)
{
    if (value.empty())
        return true;
    for (const char c : value) {
        if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
            return true;
    }
    return false;
}

} // namespace

LogField::LogField(std::string k, double v) : key(std::move(k))
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    value = buf;
}

LogLevel
parseLogLevel(const std::string &text)
{
    if (text == "trace")
        return LogLevel::kTrace;
    if (text == "debug")
        return LogLevel::kDebug;
    if (text == "info")
        return LogLevel::kInfo;
    if (text == "warn" || text == "warning")
        return LogLevel::kWarn;
    if (text == "error")
        return LogLevel::kError;
    if (text == "off" || text == "none")
        return LogLevel::kOff;
    fail("parseLogLevel: unknown level '" + text +
         "' (use trace, debug, info, warn, error, or off)");
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
    }
    return "?";
}

std::string
formatLogLine(const LogRecord &record)
{
    std::ostringstream os;
    char stamp[32];
    std::snprintf(stamp, sizeof stamp, "%12.3f", record.elapsed_ms);
    os << stamp << ' ' << logLevelName(record.level) << ' '
       << record.component << ": " << record.message;
    for (const LogField &field : record.fields) {
        os << ' ' << field.key << '=';
        if (needsQuotes(field.value))
            os << '"' << field.value << '"';
        else
            os << field.value;
    }
    return os.str();
}

void
StderrSink::write(const LogRecord &record)
{
    std::cerr << formatLogLine(record) << '\n';
}

struct FileSink::Impl
{
    std::ofstream os;
};

FileSink::FileSink(const std::string &path) : impl_(new Impl)
{
    impl_->os.open(path, std::ios::app);
    require(impl_->os.good(),
            "FileSink: cannot open log file '" + path + "'");
}

FileSink::~FileSink() = default;

void
FileSink::write(const LogRecord &record)
{
    impl_->os << formatLogLine(record) << '\n';
    impl_->os.flush();
}

Logger::Logger(LogLevel level)
    : level_(level), origin_ns_(steadyNowNs())
{
}

Logger &
Logger::global()
{
    static Logger *instance = [] {
        auto *logger = new Logger(LogLevel::kInfo);
        if (const char *env = std::getenv("TOPO_LOG_LEVEL")) {
            try {
                logger->setLevel(parseLogLevel(env));
            } catch (const TopoError &) {
                // An invalid env value must not break startup; keep
                // the default and complain once sinks exist.
            }
        }
        logger->addSink(std::make_shared<StderrSink>());
        return logger;
    }();
    return *instance;
}

void
Logger::addSink(std::shared_ptr<LogSink> sink)
{
    require(sink != nullptr, "Logger::addSink: null sink");
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    sinks_.push_back(std::move(sink));
}

void
Logger::setSinks(std::vector<std::shared_ptr<LogSink>> sinks)
{
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    sinks_ = std::move(sinks);
}

void
Logger::log(LogLevel level, std::string_view component,
            std::string_view message, std::vector<LogField> fields)
{
    if (!enabled(level))
        return;
    LogRecord record;
    record.level = level;
    record.component = component;
    record.message = message;
    record.fields = std::move(fields);
    record.elapsed_ms =
        static_cast<double>(steadyNowNs() - origin_ns_) / 1e6;
    const std::lock_guard<std::mutex> lock(sink_mutex_);
    for (const std::shared_ptr<LogSink> &sink : sinks_)
        sink->write(record);
}

} // namespace topo
