#include "topo/obs/json.hh"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Render a double the way the snapshot files expect: integral values
 *  without a fractional part, everything else with enough digits to
 *  round-trip. */
std::string
formatNumber(double value)
{
    require(std::isfinite(value), "JsonValue: non-finite number");
    if (value == static_cast<double>(static_cast<long long>(value))) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

void
indent(std::ostream &os, int depth)
{
    for (int i = 0; i < depth; ++i)
        os << "  ";
}

/** Recursive-descent parser over a string view with a cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        const JsonValue value = parseValue();
        skipSpace();
        require(pos_ == text_.size(),
                "JsonValue::parse: trailing characters after document");
        return value;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        require(pos_ < text_.size(),
                "JsonValue::parse: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        require(pos_ < text_.size() && text_[pos_] == c,
                std::string("JsonValue::parse: expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipSpace();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return JsonValue::string(parseString());
        if (c == 't' && consumeWord("true"))
            return JsonValue::boolean(true);
        if (c == 'f' && consumeWord("false"))
            return JsonValue::boolean(false);
        if (c == 'n' && consumeWord("null"))
            return JsonValue();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue object = JsonValue::object();
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return object;
        }
        while (true) {
            skipSpace();
            const std::string key = parseString();
            skipSpace();
            expect(':');
            object.set(key, parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return object;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue array = JsonValue::array();
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return array;
        }
        while (true) {
            array.push(parseValue());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return array;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            require(pos_ < text_.size(),
                    "JsonValue::parse: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            require(pos_ < text_.size(),
                    "JsonValue::parse: unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                require(pos_ + 4 <= text_.size(),
                        "JsonValue::parse: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("JsonValue::parse: bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (snapshots only emit
                // ASCII; full surrogate handling is out of scope).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("JsonValue::parse: unknown escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        require(pos_ > start, "JsonValue::parse: expected a value");
        std::size_t used = 0;
        const std::string slice = text_.substr(start, pos_ - start);
        double value = 0.0;
        try {
            value = std::stod(slice, &used);
        } catch (const std::exception &) {
            fail("JsonValue::parse: malformed number '" + slice + "'");
        }
        require(used == slice.size(),
                "JsonValue::parse: malformed number '" + slice + "'");
        return JsonValue::number(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::boolean(bool value)
{
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::number(double value)
{
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::string(std::string value)
{
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
}

bool
JsonValue::asBool() const
{
    require(kind_ == Kind::kBool, "JsonValue: not a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    require(kind_ == Kind::kNumber, "JsonValue: not a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    require(kind_ == Kind::kString, "JsonValue: not a string");
    return string_;
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::kArray)
        return elements_.size();
    if (kind_ == Kind::kObject)
        return members_.size();
    return 0;
}

void
JsonValue::push(JsonValue value)
{
    require(kind_ == Kind::kArray, "JsonValue::push: not an array");
    elements_.push_back(std::move(value));
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    require(kind_ == Kind::kArray, "JsonValue::at: not an array");
    require(index < elements_.size(),
            "JsonValue::at: array index out of range");
    return elements_[index];
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue value)
{
    require(kind_ == Kind::kObject, "JsonValue::set: not an object");
    for (auto &[k, v] : members_) {
        if (k == key) {
            v = std::move(value);
            return v;
        }
    }
    members_.emplace_back(key, std::move(value));
    return members_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::kObject)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *value = find(key);
    require(value != nullptr,
            "JsonValue::at: missing object member '" + key + "'");
    return *value;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    require(kind_ == Kind::kObject,
            "JsonValue::members: not an object");
    return members_;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    require(kind_ == Kind::kArray,
            "JsonValue::elements: not an array");
    return elements_;
}

void
writeJsonString(std::ostream &os, const std::string &text)
{
    os << '"';
    for (const char c : text) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\b': os << "\\b"; break;
        case '\f': os << "\\f"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonValue::write(std::ostream &os, int depth) const
{
    switch (kind_) {
    case Kind::kNull:
        os << "null";
        return;
    case Kind::kBool:
        os << (bool_ ? "true" : "false");
        return;
    case Kind::kNumber:
        os << formatNumber(number_);
        return;
    case Kind::kString:
        writeJsonString(os, string_);
        return;
    case Kind::kArray: {
        if (elements_.empty()) {
            os << "[]";
            return;
        }
        os << "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
            indent(os, depth + 1);
            elements_[i].write(os, depth + 1);
            if (i + 1 < elements_.size())
                os << ',';
            os << '\n';
        }
        indent(os, depth);
        os << ']';
        return;
    }
    case Kind::kObject: {
        if (members_.empty()) {
            os << "{}";
            return;
        }
        os << "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            indent(os, depth + 1);
            writeJsonString(os, members_[i].first);
            os << ": ";
            members_[i].second.write(os, depth + 1);
            if (i + 1 < members_.size())
                os << ',';
            os << '\n';
        }
        indent(os, depth);
        os << '}';
        return;
    }
    }
}

std::string
JsonValue::toString() const
{
    std::ostringstream os;
    write(os);
    return os.str();
}

JsonValue
JsonValue::parse(const std::string &text)
{
    Parser parser(text);
    return parser.document();
}

} // namespace topo
