/**
 * @file
 * The evaluation harness reproducing Section 5's methodology: build
 * profiles from a training trace, place with each algorithm (with and
 * without multiplicative profile noise), and measure instruction-cache
 * miss rates on a testing trace.
 */

#ifndef TOPO_EVAL_EXPERIMENT_HH
#define TOPO_EVAL_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/cache/simulate.hh"
#include "topo/placement/placement.hh"
#include "topo/placement/popularity.hh"
#include "topo/profile/chunk_map.hh"
#include "topo/profile/pair_database.hh"
#include "topo/profile/trg_builder.hh"
#include "topo/sampling/estimator.hh"
#include "topo/sampling/sample_plan.hh"
#include "topo/trace/fetch_stream.hh"
#include "topo/trace/trace_stats.hh"
#include "topo/workload/paper_suite.hh"

namespace topo
{

/** Knobs of the evaluation pipeline (paper defaults). */
struct EvalOptions
{
    CacheConfig cache = CacheConfig::paperDefault();
    /** Chunk size for TRG_place (Section 4.1). */
    std::uint32_t chunk_bytes = ChunkMap::kDefaultChunkBytes;
    /** Q byte budget as a multiple of the cache size (Section 3). */
    double q_budget_factor = 2.0;
    /** Popularity selection. */
    PopularityOptions popularity;
    /** Build the Section 6 pair database too (costly; off by default). */
    bool build_pairs = false;
    /** Pair-window cap for the pair database. */
    std::uint32_t pair_window = 16;
    /** Prune pair-database entries below this weight. */
    double pair_prune = 2.0;
    /**
     * Representative-interval sampling (DESIGN.md §15). When active,
     * profiles and miss rates are weighted estimates over sampled
     * trace segments, the full fetch streams are never expanded, and
     * testMissRate/trainMissRate are replaced by sampledTestResult.
     */
    SamplingOptions sampling;
};

/**
 * Everything derived from one benchmark's traces that the placement
 * algorithms and simulators consume. Owns the data; hand out contexts
 * with makeContext().
 */
class ProfileBundle
{
  public:
    /** Run the full profiling pipeline on a benchmark case. */
    ProfileBundle(const BenchmarkCase &bench, const EvalOptions &options);

    const std::string &name() const { return name_; }
    const Program &program() const { return program_; }
    const EvalOptions &options() const { return options_; }
    const Trace &trainTrace() const { return train_trace_; }
    const Trace &testTrace() const { return test_trace_; }
    const TraceStats &trainStats() const { return train_stats_; }
    const PopularSet &popular() const { return popular_; }
    const ChunkMap &chunks() const { return chunks_; }
    const WeightedGraph &wcg() const { return wcg_; }
    const WeightedGraph &trgSelect() const { return trg_select_; }
    const WeightedGraph &trgPlace() const { return trg_place_; }
    const PairDatabase &pairs() const { return pairs_; }
    const FetchStream &trainStream() const { return train_stream_; }
    const FetchStream &testStream() const { return test_stream_; }
    /** Average procedures resident in Q during TRG build (Table 1). */
    double avgQueueProcs() const { return avg_queue_procs_; }

    /**
     * Assemble a placement context over this bundle's data. Optional
     * overrides replace the stored graphs (used by the perturbation
     * experiments); pointers must outlive the returned context's use.
     */
    PlacementContext makeContext(const WeightedGraph *wcg = nullptr,
                                 const WeightedGraph *trg_select = nullptr,
                                 const WeightedGraph *trg_place = nullptr)
        const;

    /** Miss rate of a layout on the testing trace. */
    double testMissRate(const Layout &layout) const;

    /** Miss rate of a layout on the training trace. */
    double trainMissRate(const Layout &layout) const;

    /** Whether this bundle was built with sampling active. */
    bool sampled() const { return options_.sampling.active(); }

    /** The testing trace's sample plan (sampled bundles only). */
    const SamplePlan &testPlan() const;

    /** The training trace's sample plan (sampled bundles only). */
    const SamplePlan &trainPlan() const;

    /**
     * Weighted miss estimate of a layout on the testing trace
     * (sampled bundles only; the sampled analogue of testMissRate).
     */
    SampledSimResult sampledTestResult(const Layout &layout,
                                       bool attribute = false) const;

    /**
     * Exact replay of a layout on the testing trace, expanding the
     * fetch stream on the fly — the --sample-verify reference path of
     * a sampled bundle (exact bundles already hold the stream; use
     * testMissRate there).
     */
    SimResult exactTestResult(const Layout &layout,
                              bool attribute = false) const;

  private:
    std::string name_;
    EvalOptions options_;
    Program program_;
    Trace train_trace_;
    Trace test_trace_;
    TraceStats train_stats_;
    PopularSet popular_;
    ChunkMap chunks_;
    WeightedGraph wcg_;
    WeightedGraph trg_select_;
    WeightedGraph trg_place_;
    PairDatabase pairs_;
    double avg_queue_procs_ = 0.0;
    FetchStream train_stream_;
    FetchStream test_stream_;
    /** Sample plans (null unless sampling is active). */
    std::unique_ptr<SamplePlan> train_plan_;
    std::unique_ptr<SamplePlan> test_plan_;
};

/** Results of one algorithm in a Figure 5-style comparison. */
struct AlgorithmResult
{
    std::string algorithm;
    /** Miss rate with unperturbed profile data. */
    double unperturbed = 0.0;
    /** Miss rates over the perturbed repetitions (unsorted). */
    std::vector<double> perturbed;
};

/** Options of the perturbation comparison. */
struct ComparisonOptions
{
    /** Number of perturbed repetitions (the paper uses 40). */
    std::size_t repetitions = 40;
    /** Perturbation scale s (the paper uses 0.1). */
    double scale = 0.1;
    /** Base seed; repetition k uses stream (base_seed, k). */
    std::uint64_t seed = 12345;
    /** Measure on the training trace instead of the testing trace. */
    bool measure_on_train = false;
};

/**
 * Run PH/HKC/GBSC (or any algorithm set) with perturbed profiles.
 *
 * Each repetition perturbs every graph an algorithm consumes with an
 * independent noise stream, re-places, and measures the test (or
 * train) miss rate.
 */
std::vector<AlgorithmResult>
runComparison(const ProfileBundle &bundle,
              const std::vector<const PlacementAlgorithm *> &algorithms,
              const ComparisonOptions &options);

/**
 * Cache-relative line offsets of every procedure under a layout
 * (address / line_bytes mod cache lines) — the representation the
 * conflict metrics and the Figure 6 randomisation consume.
 */
std::vector<std::uint32_t> layoutOffsets(const Program &program,
                                         const Layout &layout,
                                         const CacheConfig &cache);

} // namespace topo

#endif // TOPO_EVAL_EXPERIMENT_HH
