/**
 * @file
 * Report helpers shared by the bench binaries: Table 1 rows, Figure 5
 * CDF printing, and standard option handling for the experiment knobs.
 */

#ifndef TOPO_EVAL_REPORTS_HH
#define TOPO_EVAL_REPORTS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "topo/eval/experiment.hh"
#include "topo/util/options.hh"

namespace topo
{

/** One row of the Table 1 reproduction. */
struct Table1Row
{
    std::string name;
    std::uint64_t all_size = 0;
    std::size_t all_count = 0;
    std::uint64_t popular_size = 0;
    std::size_t popular_count = 0;
    std::string train_input;
    std::uint64_t train_runs = 0;
    std::string test_input;
    std::uint64_t test_runs = 0;
    double default_miss_rate = 0.0;
    double avg_queue_size = 0.0;
};

/** Compute a Table 1 row from a benchmark's profile bundle. */
Table1Row computeTable1Row(const BenchmarkCase &bench,
                           const ProfileBundle &bundle);

/** Render a set of Table 1 rows as an aligned text table. */
void printTable1(std::ostream &os, const std::vector<Table1Row> &rows);

/**
 * Print one benchmark's Figure 5 panel: the non-perturbed miss-rate
 * table plus the sorted (miss rate, fraction <=) series per algorithm.
 */
void printFigure5Panel(std::ostream &os, const std::string &benchmark,
                       double default_miss_rate,
                       const std::vector<AlgorithmResult> &results);

/**
 * Standard evaluation options from the common command-line/environment
 * knobs: --cache-kb, --line-bytes, --assoc, --chunk-bytes, --coverage,
 * --q-factor.
 */
EvalOptions evalOptionsFrom(const Options &opts);

/** Trace scale from --trace-scale / TOPO_TRACE_SCALE (default 1.0). */
double traceScaleFrom(const Options &opts);

} // namespace topo

#endif // TOPO_EVAL_REPORTS_HH
