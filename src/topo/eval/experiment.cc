#include "topo/eval/experiment.hh"

#include <cmath>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/profile/perturb.hh"
#include "topo/profile/wcg_builder.hh"
#include "topo/sampling/sampled_profile.hh"
#include "topo/util/error.hh"
#include "topo/util/rng.hh"
#include "topo/workload/trace_synthesizer.hh"

namespace topo
{

namespace
{

TrgBuildOptions
trgOptionsOf(const EvalOptions &options, const std::vector<bool> &popular)
{
    TrgBuildOptions build;
    build.byte_budget = static_cast<std::uint64_t>(
        options.q_budget_factor * options.cache.size_bytes);
    require(build.byte_budget > 0, "ProfileBundle: zero Q budget");
    build.popular = &popular;
    return build;
}

TrgBuildResult
runTrgBuild(const Program &program, const ChunkMap &chunks,
            const Trace &trace, const EvalOptions &options,
            const std::vector<bool> &popular)
{
    return buildTrgs(program, chunks, trace,
                     trgOptionsOf(options, popular));
}

/**
 * Expand the fetch stream only on the exact path. A sampled bundle
 * never replays the whole trace, and at large --trace-scale the full
 * stream is the dominant memory term, so it is simply not built.
 */
FetchStream
makeEvalStream(const Program &program, const Trace &trace,
               std::uint32_t line_bytes, bool sampled)
{
    if (!sampled)
        return FetchStream(program, trace, line_bytes);
    return FetchStream(program, Trace(program.procCount()), line_bytes);
}

} // namespace

ProfileBundle::ProfileBundle(const BenchmarkCase &bench,
                             const EvalOptions &options)
    : name_(bench.name),
      options_(options),
      program_(bench.model.program),
      train_trace_(synthesizeTrace(bench.model, bench.train)),
      test_trace_(synthesizeTrace(bench.model, bench.test)),
      train_stats_(computeTraceStats(program_, train_trace_)),
      popular_(selectPopular(program_, train_stats_, options.popularity)),
      chunks_(program_, options.chunk_bytes),
      train_stream_(makeEvalStream(program_, train_trace_,
                                   options.cache.line_bytes,
                                   options.sampling.active())),
      test_stream_(makeEvalStream(program_, test_trace_,
                                  options.cache.line_bytes,
                                  options.sampling.active()))
{
    options_.cache.validate();
    if (sampled()) {
        require(!options_.build_pairs,
                "ProfileBundle: the pair database has no sampled "
                "build; drop --pairs or --sample");
        train_plan_ = std::make_unique<SamplePlan>(buildSamplePlan(
            program_, train_trace_, options_.cache.line_bytes,
            options_.sampling));
        test_plan_ = std::make_unique<SamplePlan>(buildSamplePlan(
            program_, test_trace_, options_.cache.line_bytes,
            options_.sampling));
        SampledProfileResult profile = buildSampledProfile(
            program_, chunks_, train_trace_, *train_plan_,
            trgOptionsOf(options_, popular_.mask));
        wcg_ = std::move(profile.wcg);
        trg_select_ = std::move(profile.trg_select);
        trg_place_ = std::move(profile.trg_place);
        avg_queue_procs_ = profile.avg_queue_procs;
    } else {
        wcg_ = buildWcg(program_, train_trace_);
        TrgBuildResult trgs = runTrgBuild(program_, chunks_, train_trace_,
                                          options_, popular_.mask);
        trg_select_ = std::move(trgs.select);
        trg_place_ = std::move(trgs.place);
        avg_queue_procs_ = trgs.avg_queue_procs;
    }
    if (options_.build_pairs) {
        PairBuildOptions pair_opts;
        pair_opts.byte_budget = static_cast<std::uint64_t>(
            options_.q_budget_factor * options_.cache.size_bytes);
        pair_opts.pair_window = options_.pair_window;
        pair_opts.popular = &popular_.mask;
        pairs_ = buildPairDatabase(program_, train_trace_, pair_opts);
        if (options_.pair_prune > 0.0)
            pairs_.prune(options_.pair_prune);
    }
    MetricsRegistry::current().counter("eval.bundles").add();
    if (logEnabled(LogLevel::kDebug)) {
        logDebug("eval", "profile bundle ready",
                 {{"benchmark", name_},
                  {"procs", program_.procCount()},
                  {"popular", popular_.count},
                  {"train_events", train_trace_.size()},
                  {"test_events", test_trace_.size()}});
    }
}

PlacementContext
ProfileBundle::makeContext(const WeightedGraph *wcg,
                           const WeightedGraph *trg_select,
                           const WeightedGraph *trg_place) const
{
    PlacementContext ctx;
    ctx.program = &program_;
    ctx.cache = options_.cache;
    ctx.chunks = &chunks_;
    ctx.wcg = wcg ? wcg : &wcg_;
    ctx.trg_select = trg_select ? trg_select : &trg_select_;
    ctx.trg_place = trg_place ? trg_place : &trg_place_;
    ctx.pairs = &pairs_;
    ctx.popular = popular_.mask;
    ctx.heat.assign(program_.procCount(), 0.0);
    for (std::size_t i = 0; i < program_.procCount(); ++i)
        ctx.heat[i] = static_cast<double>(train_stats_.bytes_fetched[i]);
    return ctx;
}

double
ProfileBundle::testMissRate(const Layout &layout) const
{
    require(!sampled(), "ProfileBundle: testMissRate on a sampled "
                        "bundle; use sampledTestResult");
    return layoutMissRate(program_, layout, test_stream_, options_.cache);
}

double
ProfileBundle::trainMissRate(const Layout &layout) const
{
    require(!sampled(), "ProfileBundle: trainMissRate on a sampled "
                        "bundle; use sampledTestResult");
    return layoutMissRate(program_, layout, train_stream_, options_.cache);
}

const SamplePlan &
ProfileBundle::testPlan() const
{
    require(sampled() && test_plan_,
            "ProfileBundle: testPlan on an exact bundle");
    return *test_plan_;
}

const SamplePlan &
ProfileBundle::trainPlan() const
{
    require(sampled() && train_plan_,
            "ProfileBundle: trainPlan on an exact bundle");
    return *train_plan_;
}

SampledSimResult
ProfileBundle::sampledTestResult(const Layout &layout, bool attribute) const
{
    return estimateLayout(program_, layout, test_trace_, testPlan(),
                          options_.cache, attribute);
}

SimResult
ProfileBundle::exactTestResult(const Layout &layout, bool attribute) const
{
    const FetchStream stream(program_, test_trace_,
                             options_.cache.line_bytes);
    return simulateLayout(program_, layout, stream, options_.cache,
                          attribute);
}

std::vector<AlgorithmResult>
runComparison(const ProfileBundle &bundle,
              const std::vector<const PlacementAlgorithm *> &algorithms,
              const ComparisonOptions &options)
{
    require(!algorithms.empty(), "runComparison: no algorithms");
    std::vector<AlgorithmResult> results;
    results.reserve(algorithms.size());
    Rng master(options.seed);

    auto measure = [&](const Layout &layout) {
        return options.measure_on_train ? bundle.trainMissRate(layout)
                                        : bundle.testMissRate(layout);
    };

    for (std::size_t ai = 0; ai < algorithms.size(); ++ai) {
        const PlacementAlgorithm &algo = *algorithms[ai];
        AlgorithmResult result;
        result.algorithm = algo.name();
        {
            const PlacementContext ctx = bundle.makeContext();
            result.unperturbed = measure(algo.place(ctx));
        }
        for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
            // Independent noise streams per (algorithm, repetition,
            // graph) so results do not depend on evaluation order.
            const std::uint64_t base = ai * 1000003ULL + rep;
            Rng rng_wcg = master.split(base * 3 + 0);
            Rng rng_sel = master.split(base * 3 + 1);
            Rng rng_plc = master.split(base * 3 + 2);
            const WeightedGraph wcg_p =
                perturb(bundle.wcg(), options.scale, rng_wcg);
            const WeightedGraph sel_p =
                perturb(bundle.trgSelect(), options.scale, rng_sel);
            const WeightedGraph plc_p =
                perturb(bundle.trgPlace(), options.scale, rng_plc);
            const PlacementContext ctx =
                bundle.makeContext(&wcg_p, &sel_p, &plc_p);
            result.perturbed.push_back(measure(algo.place(ctx)));
        }
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<std::uint32_t>
layoutOffsets(const Program &program, const Layout &layout,
              const CacheConfig &cache)
{
    std::vector<std::uint32_t> offsets(program.procCount(), 0);
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto id = static_cast<ProcId>(i);
        offsets[i] = static_cast<std::uint32_t>(
            layout.startLine(id, cache.line_bytes) % cache.lineCount());
    }
    return offsets;
}

} // namespace topo
