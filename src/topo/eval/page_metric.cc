#include "topo/eval/page_metric.hh"

#include <list>
#include <unordered_map>
#include <unordered_set>

#include "topo/util/error.hh"

namespace topo
{

PageStats
measurePageStats(const Program &program, const Layout &layout,
                 const FetchStream &stream, std::uint32_t page_bytes,
                 std::uint32_t resident_pages)
{
    require(page_bytes > 0 && page_bytes % stream.lineBytes() == 0,
            "measurePageStats: page size must be a positive multiple of "
            "the line size");
    require(resident_pages > 0,
            "measurePageStats: need at least one resident page");

    const std::uint32_t lines_per_page = page_bytes / stream.lineBytes();
    std::vector<std::uint64_t> base_line(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        base_line[i] =
            layout.startLine(static_cast<ProcId>(i), stream.lineBytes());
    }

    PageStats stats;
    stats.accesses = stream.size();
    std::unordered_set<std::uint64_t> touched;
    std::uint64_t last_page = ~std::uint64_t{0};

    // Fully-associative LRU page cache: list MRU->LRU + index map.
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        where;

    for (std::size_t i = 0; i < stream.size(); ++i) {
        const FetchRef ref = stream.ref(i);
        const std::uint64_t page =
            (base_line[ref.proc] + ref.line) / lines_per_page;
        touched.insert(page);
        if (page != last_page) {
            if (last_page != ~std::uint64_t{0})
                ++stats.page_switches;
            last_page = page;

            auto it = where.find(page);
            if (it != where.end()) {
                lru.splice(lru.begin(), lru, it->second);
            } else {
                ++stats.lru_faults;
                lru.push_front(page);
                where[page] = lru.begin();
                if (lru.size() > resident_pages) {
                    where.erase(lru.back());
                    lru.pop_back();
                }
            }
        }
    }
    stats.pages_touched = touched.size();
    return stats;
}

} // namespace topo
