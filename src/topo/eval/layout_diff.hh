/**
 * @file
 * Layout diffing: what changed between two layouts of one program,
 * and exactly which procedures the miss delta is attributable to.
 *
 * Three independent stages build up one LayoutDiff:
 *
 *  1. buildLayoutDiff — purely structural: moved/unmoved procedures,
 *     per-set line-occupancy deltas. No trace needed.
 *  2. attributeMissDelta — replays both layouts over one fetch stream
 *     with an AttributionSink each; the per-procedure miss deltas sum
 *     *exactly* to the total miss delta (every miss is charged to one
 *     fetching procedure), and the conflict matrices yield the pairs
 *     the change created and destroyed.
 *  3. crossReferenceDecisions — joins moved procedures against a
 *     decisions file (DecisionLog JSON) so each move points back at
 *     the decision record(s) that placed the procedure.
 *
 * topo_report --diff runs all three; topo_profile's drift report runs
 * only the structural stage (the store holds no trace).
 */

#ifndef TOPO_EVAL_LAYOUT_DIFF_HH
#define TOPO_EVAL_LAYOUT_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "topo/cache/attribution.hh"
#include "topo/cache/cache_config.hh"
#include "topo/cache/simulate.hh"
#include "topo/obs/json.hh"
#include "topo/placement/decision_log.hh"
#include "topo/program/layout.hh"
#include "topo/program/program.hh"

namespace topo
{

/** Knobs of the diff computation and rendering. */
struct LayoutDiffOptions
{
    /** Moved-procedure rows rendered in Markdown (JSON holds all). */
    std::size_t top_moves = 32;
    /** Created/destroyed conflict pairs listed per direction. */
    std::size_t top_pairs = 16;
    /** Conflict-matrix cell budget per replayed side. */
    std::size_t max_pairs = 4096;
};

/** Difference between two layouts of the same program. */
struct LayoutDiff
{
    /** One side of the comparison. */
    struct Side
    {
        std::string label;
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
    };

    /** A procedure whose address changed. */
    struct Move
    {
        ProcId proc = kInvalidProc;
        std::uint64_t addr_a = 0;
        std::uint64_t addr_b = 0;
        std::uint32_t set_a = 0;
        std::uint32_t set_b = 0;
        /** misses(B) - misses(A) charged to this procedure (stage 2). */
        std::int64_t miss_delta = 0;
        /** Steps of the decision records that placed it (stage 3). */
        std::vector<std::uint64_t> decision_steps;
    };

    /** A conflict-matrix cell present on only one side. */
    struct PairDelta
    {
        ProcId evictor = kInvalidProc;
        ProcId victim = kInvalidProc;
        std::uint64_t count = 0;
    };

    std::string program_name;
    CacheConfig cache;
    Side a, b;

    /** Moved procedures, ordered by |miss_delta| desc once attributed
     *  (proc id asc before attribution / among ties). */
    std::vector<Move> moves;
    std::uint64_t unmoved = 0;
    /** Per-set occupied-line delta (B - A), setCount entries. */
    std::vector<std::int64_t> set_occupancy_delta;

    /** Stage 2 ran. */
    bool attributed = false;
    /** Per-procedure miss delta (B - A), procCount entries.
     *  Invariant: sums exactly to b.misses - a.misses. */
    std::vector<std::int64_t> miss_delta_by_proc;
    /** Per-set miss delta (B - A), setCount entries. */
    std::vector<std::int64_t> set_miss_delta;
    /** Pairs evicting in B but never in A (count = B count). */
    std::vector<PairDelta> pairs_created;
    /** Pairs evicting in A but never in B (count = A count). */
    std::vector<PairDelta> pairs_destroyed;
    std::uint64_t dropped_pairs_a = 0;
    std::uint64_t dropped_pairs_b = 0;

    /** Stage 3 ran. */
    bool has_decisions = false;
    std::string decisions_algorithm;
    /** Moved procedures matched to >= 1 decision record. */
    std::uint64_t moves_explained = 0;

    /** Total miss delta (B - A); 0 until attributed. */
    std::int64_t
    missDelta() const
    {
        return static_cast<std::int64_t>(b.misses) -
               static_cast<std::int64_t>(a.misses);
    }
};

/**
 * Stage 1: structural diff of two complete layouts of @p program.
 * Throws TopoError when either layout is incomplete or invalid.
 */
LayoutDiff buildLayoutDiff(const Program &program,
                           const CacheConfig &cache,
                           const Layout &layout_a,
                           const Layout &layout_b,
                           const std::string &label_a,
                           const std::string &label_b,
                           const LayoutDiffOptions &options = {});

/**
 * Stage 2: replay @p stream against both layouts with attribution and
 * fill the exact per-procedure/per-set miss deltas and the conflict
 * pairs the change created/destroyed. The two replays run as parallel
 * tasks with isolated metrics registries merged in fixed order, so
 * the result is byte-identical for any --jobs value.
 */
void attributeMissDelta(LayoutDiff &diff, const Program &program,
                        const Layout &layout_a, const Layout &layout_b,
                        const FetchStream &stream,
                        const LayoutDiffOptions &options = {});

/**
 * Stage 3: join moved procedures against a loaded decisions file
 * (matching by procedure name), filling Move::decision_steps.
 */
void crossReferenceDecisions(LayoutDiff &diff, const Program &program,
                             const LoadedDecisions &decisions);

/** Human-readable Markdown report (top-N rows; totals exact). */
std::string renderDiffMarkdown(const LayoutDiff &diff,
                               const Program &program,
                               const LayoutDiffOptions &options = {});

/**
 * Machine-readable "topo_diff" artifact. Complete: every move and
 * every nonzero per-procedure/per-set delta is present, so validators
 * can re-check the sum invariant from the file alone.
 */
JsonValue diffToJson(const LayoutDiff &diff, const Program &program);

/** Bump explain.* counters/gauges in the current registry. */
void publishDiffMetrics(const LayoutDiff &diff);

} // namespace topo

#endif // TOPO_EVAL_LAYOUT_DIFF_HH
