#include "topo/eval/reports.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "topo/placement/placement.hh"
#include "topo/util/error.hh"
#include "topo/util/stats.hh"
#include "topo/util/table.hh"

namespace topo
{

Table1Row
computeTable1Row(const BenchmarkCase &bench, const ProfileBundle &bundle)
{
    Table1Row row;
    row.name = bench.name;
    row.all_size = bundle.program().totalSize();
    row.all_count = bundle.program().procCount();
    row.popular_size = bundle.popular().bytes;
    row.popular_count = bundle.popular().count;
    row.train_input = bench.train.name;
    row.train_runs = bundle.trainTrace().size();
    row.test_input = bench.test.name;
    row.test_runs = bundle.testTrace().size();
    const DefaultPlacement default_placement;
    const PlacementContext ctx = bundle.makeContext();
    row.default_miss_rate =
        bundle.testMissRate(default_placement.place(ctx));
    row.avg_queue_size = bundle.avgQueueProcs();
    return row;
}

void
printTable1(std::ostream &os, const std::vector<Table1Row> &rows)
{
    TextTable table({"Program", "All size", "All count", "Popular size",
                     "Popular count", "Train input", "Train len",
                     "Test input", "Test len", "Default MR", "Avg Q"});
    for (const Table1Row &row : rows) {
        table.addRow({row.name, fmtBytes(row.all_size),
                      std::to_string(row.all_count),
                      fmtBytes(row.popular_size),
                      std::to_string(row.popular_count), row.train_input,
                      fmtCount(row.train_runs), row.test_input,
                      fmtCount(row.test_runs),
                      fmtPercent(row.default_miss_rate),
                      fmtDouble(row.avg_queue_size, 1)});
    }
    table.render(os, "Table 1: benchmark details (synthetic models)");
}

void
printFigure5Panel(std::ostream &os, const std::string &benchmark,
                  double default_miss_rate,
                  const std::vector<AlgorithmResult> &results)
{
    os << "== " << benchmark << " ==\n";
    TextTable mr({"Algorithm", "MR (non-perturbed)", "MR min", "MR median",
                  "MR max"});
    for (const AlgorithmResult &res : results) {
        std::vector<double> sorted(res.perturbed);
        std::sort(sorted.begin(), sorted.end());
        const double lo = sorted.empty() ? res.unperturbed : sorted.front();
        const double hi = sorted.empty() ? res.unperturbed : sorted.back();
        const double med =
            sorted.empty() ? res.unperturbed : percentile(sorted, 50.0);
        mr.addRow({res.algorithm, fmtPercent(res.unperturbed),
                   fmtPercent(lo), fmtPercent(med), fmtPercent(hi)});
    }
    mr.addRow({"default", fmtPercent(default_miss_rate), "-", "-", "-"});
    mr.render(os);

    os << "# sorted series (x = miss rate, y = fraction of placements "
          "with an equal or smaller miss rate)\n";
    TextTable series({"Algorithm", "miss_rate", "fraction"});
    for (const AlgorithmResult &res : results) {
        for (const auto &[mr_value, frac] : empiricalCdf(res.perturbed)) {
            series.addRow({res.algorithm, fmtPercent(mr_value),
                           fmtDouble(frac, 3)});
        }
    }
    series.renderCsv(os);
    os << '\n';
}

EvalOptions
evalOptionsFrom(const Options &opts)
{
    EvalOptions eval;
    eval.cache.size_bytes = static_cast<std::uint32_t>(
        opts.getInt("cache-kb", 8) * 1024);
    eval.cache.line_bytes =
        static_cast<std::uint32_t>(opts.getInt("line-bytes", 32));
    eval.cache.associativity =
        static_cast<std::uint32_t>(opts.getInt("assoc", 1));
    eval.cache.policy = parseReplacementPolicy(
        opts.getString("policy", replacementPolicyName(
                                     ReplacementPolicy::kLru)));
    eval.cache.policy_seed = static_cast<std::uint64_t>(opts.getInt(
        "policy-seed", static_cast<std::int64_t>(kDefaultPolicySeed)));
    eval.chunk_bytes =
        static_cast<std::uint32_t>(opts.getInt("chunk-bytes", 256));
    eval.q_budget_factor = opts.getDouble("q-factor", 2.0);
    eval.popularity.coverage = opts.getDouble("coverage", 0.999);
    eval.cache.validate();
    return eval;
}

double
traceScaleFrom(const Options &opts)
{
    const double scale = opts.getDouble("trace-scale", 1.0);
    require(std::isfinite(scale) && scale > 0.0,
            "--trace-scale must be a positive, finite number (got " +
                opts.getString("trace-scale", "1.0") +
                "; did you mean --trace-scale=1.0?)");
    return scale;
}

} // namespace topo
