#include "topo/eval/conflict_metric.hh"

#include "topo/eval/experiment.hh"
#include "topo/placement/gbsc.hh"
#include "topo/util/error.hh"

namespace topo
{

double
trgConflictMetric(const PlacementContext &ctx, const Layout &layout)
{
    ctx.requireBasics("trgConflictMetric");
    const std::vector<std::uint32_t> offsets =
        layoutOffsets(*ctx.program, layout, ctx.cache);
    const std::vector<bool> *include =
        ctx.popular.empty() ? nullptr : &ctx.popular;
    return Gbsc::conflictMetric(ctx, offsets, include);
}

double
wcgConflictMetric(const PlacementContext &ctx, const Layout &layout)
{
    ctx.requireBasics("wcgConflictMetric");
    require(ctx.wcg != nullptr, "wcgConflictMetric: context has no WCG");
    const Program &program = *ctx.program;
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;
    const std::vector<std::uint32_t> offsets =
        layoutOffsets(program, layout, ctx.cache);

    std::vector<std::vector<ProcId>> by_line(cache_lines);
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto proc = static_cast<ProcId>(i);
        if (!ctx.popular.empty() && !ctx.popular[proc])
            continue;
        const std::uint32_t len = program.sizeInLines(proc, line_bytes);
        for (std::uint32_t line = 0; line < len; ++line)
            by_line[(offsets[proc] + line) % cache_lines].push_back(proc);
    }
    double metric = 0.0;
    for (const auto &bucket : by_line) {
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            for (std::size_t j = i + 1; j < bucket.size(); ++j) {
                if (bucket[i] != bucket[j])
                    metric += ctx.wcg->weight(bucket[i], bucket[j]);
            }
        }
    }
    return metric;
}

} // namespace topo
