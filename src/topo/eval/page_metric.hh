/**
 * @file
 * Page-locality metrics of a layout.
 *
 * Section 4.3 notes that the spatial and temporal locality of code
 * pages also matters and that the final-linear-list step could be
 * altered to reduce paging problems. These metrics quantify that
 * dimension so layouts can be compared on it: the static page
 * footprint of the hot code, the dynamic page working set, page
 * switches (TLB pressure proxy), and faults of an LRU page cache.
 */

#ifndef TOPO_EVAL_PAGE_METRIC_HH
#define TOPO_EVAL_PAGE_METRIC_HH

#include <cstdint>

#include "topo/program/layout.hh"
#include "topo/trace/fetch_stream.hh"

namespace topo
{

/** Page-locality measurements of one layout under one trace. */
struct PageStats
{
    /** Pages touched at least once (dynamic code footprint). */
    std::uint64_t pages_touched = 0;
    /** Transitions between different pages (TLB-pressure proxy). */
    std::uint64_t page_switches = 0;
    /** Total line fetches observed. */
    std::uint64_t accesses = 0;
    /** Faults of a fully-associative LRU page cache. */
    std::uint64_t lru_faults = 0;

    /** Page switches per thousand accesses. */
    double
    switchesPerKiloAccess() const
    {
        return accesses ? 1000.0 * static_cast<double>(page_switches) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Measure the page behaviour of a layout.
 *
 * @param program     Procedure inventory.
 * @param layout      Complete layout.
 * @param stream      Line-granularity reference stream.
 * @param page_bytes  Page size (default 4 KiB); must be a multiple of
 *                    the stream's line size.
 * @param resident_pages Size of the LRU page cache used for
 *                    lru_faults (default 16 pages).
 */
PageStats measurePageStats(const Program &program, const Layout &layout,
                           const FetchStream &stream,
                           std::uint32_t page_bytes = 4096,
                           std::uint32_t resident_pages = 16);

} // namespace topo

#endif // TOPO_EVAL_PAGE_METRIC_HH
