#include "topo/eval/report_gen.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <ostream>

#include "topo/cache/attribution.hh"
#include "topo/cache/simulate.hh"
#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"
#include "topo/util/table.hh"

namespace topo
{

namespace
{

/** Down-sample a timeline to at most @p cap points by window merging. */
std::vector<double>
missRateSeries(const std::vector<TimelineSample> &samples,
               std::size_t cap)
{
    std::vector<double> series;
    if (samples.empty())
        return series;
    const std::size_t stride = (samples.size() + cap - 1) / cap;
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        std::uint64_t accesses = 0, misses = 0;
        for (std::size_t j = i;
             j < samples.size() && j < i + stride; ++j) {
            accesses += samples[j].accesses;
            misses += samples[j].misses;
        }
        series.push_back(accesses ? static_cast<double>(misses) /
                                        static_cast<double>(accesses)
                                  : 0.0);
    }
    return series;
}

} // namespace

std::string
sparkline(const std::vector<double> &values, double lo, double hi)
{
    static const char *kBlocks[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    std::string out;
    const double span = hi > lo ? hi - lo : 1.0;
    for (const double value : values) {
        const double unit =
            std::clamp((value - lo) / span, 0.0, 1.0);
        out += kBlocks[static_cast<int>(unit * 7.0 + 0.5)];
    }
    return out;
}

ComparisonReport
buildComparisonReport(const Program &program, const FetchStream &stream,
                      const CacheConfig &cache,
                      const std::vector<LayoutCandidate> &candidates,
                      const ReportOptions &options)
{
    require(!candidates.empty(),
            "buildComparisonReport: no candidate layouts");
    PhaseTimer timer("report");

    ComparisonReport report;
    report.cache = cache.describe();
    report.program = program.name();
    report.stream_blocks = stream.size();
    report.timeline_window =
        options.timeline_window != 0
            ? options.timeline_window
            : std::max<std::uint64_t>(1, stream.size() / 64);

    // Candidates replay the same stream independently, so they fan out
    // on the shared pool. Each candidate records into a private
    // metrics registry; registries merge in candidate order at join,
    // keeping the report and --metrics-out byte-identical for every
    // --jobs value (DESIGN.md §9).
    struct CandidateResult
    {
        LayoutReport entry;
        std::unique_ptr<MetricsRegistry> metrics;
    };
    std::vector<CandidateResult> results = parallelMap(
        candidates.size(), [&](std::size_t c) {
            const LayoutCandidate &candidate = candidates[c];
            CandidateResult out;
            out.metrics = std::make_unique<MetricsRegistry>();
            MetricsScope scope(*out.metrics);
            candidate.layout.validate(program, cache.line_bytes);
            AttributionSink::Options sink_opts;
            sink_opts.max_pairs = options.max_pairs;
            AttributionSink sink(program, candidate.layout, cache,
                                 stream.lineBytes(), sink_opts);
            TimelineRecorder timeline(report.timeline_window,
                                      program.procCount());
            SimObservers observers;
            observers.attribution = &sink;
            observers.timeline = &timeline;
            const SimResult sim =
                simulateLayout(program, candidate.layout, stream,
                               cache, false, nullptr, &observers);

            LayoutReport &entry = out.entry;
            entry.label = candidate.label;
            entry.accesses = sim.accesses;
            entry.misses = sim.misses;
            entry.evictions = sim.evictions;
            entry.miss_rate = sim.missRate();
            for (const ConflictPair &pair :
                 sink.topPairs(options.top_pairs)) {
                entry.top_pairs.push_back(
                    {program.proc(pair.evictor).name,
                     program.proc(pair.victim).name, pair.count});
            }
            entry.tracked_pairs = sink.trackedPairs();
            entry.dropped_pairs = sink.droppedPairs();
            entry.set_misses = sink.missesBySet();
            std::vector<std::uint32_t> by_misses(
                entry.set_misses.size());
            for (std::uint32_t s = 0; s < by_misses.size(); ++s)
                by_misses[s] = s;
            std::stable_sort(by_misses.begin(), by_misses.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return entry.set_misses[a] >
                                        entry.set_misses[b];
                             });
            for (std::size_t i = 0;
                 i < by_misses.size() && i < options.hot_sets; ++i) {
                const std::uint32_t s = by_misses[i];
                if (entry.set_misses[s] == 0)
                    break;
                entry.hot_sets.push_back(
                    {s, sink.accessesBySet()[s], entry.set_misses[s]});
            }
            entry.timeline = timeline.samples();
            return out;
        });
    for (CandidateResult &result : results) {
        MetricsRegistry::current().mergeFrom(*result.metrics);
        report.layouts.push_back(std::move(result.entry));
    }

    // Timeline deltas vs the first (baseline) candidate. Windows are
    // aligned: every layout replays the same stream with the same
    // window size.
    const std::vector<TimelineSample> &base =
        report.layouts.front().timeline;
    for (std::size_t i = 1; i < report.layouts.size(); ++i) {
        LayoutReport &entry = report.layouts[i];
        const std::size_t windows =
            std::min(base.size(), entry.timeline.size());
        for (std::size_t w = 0; w < windows; ++w) {
            const double delta = entry.timeline[w].missRate() -
                                 base[w].missRate();
            if (delta < 0.0)
                ++entry.windows_better;
            else if (delta > 0.0)
                ++entry.windows_worse;
            if (std::abs(delta) > std::abs(entry.max_window_delta))
                entry.max_window_delta = delta;
        }
    }
    return report;
}

void
renderReportMarkdown(const ComparisonReport &report, std::ostream &os)
{
    os << "# Layout comparison report";
    if (!report.title.empty())
        os << " — " << report.title;
    os << "\n\n";
    os << "- program: `" << report.program << "`\n";
    os << "- cache: " << report.cache << "\n";
    os << "- stream: " << report.stream_blocks << " line fetches\n";
    os << "- timeline window: " << report.timeline_window
       << " fetches\n\n";

    os << "## Miss rates\n\n";
    os << "| layout | miss rate | misses | evictions |\n";
    os << "|---|---|---|---|\n";
    for (const LayoutReport &entry : report.layouts) {
        os << "| " << entry.label << " | "
           << fmtPercent(entry.miss_rate) << " | " << entry.misses
           << " | " << entry.evictions << " |\n";
    }
    os << "\n";

    for (const LayoutReport &entry : report.layouts) {
        os << "## " << entry.label << "\n\n";
        os << "### Top conflicting procedure pairs\n\n";
        if (entry.top_pairs.empty()) {
            os << "(no valid-line evictions — the working set fits "
                  "the cache)\n\n";
        } else {
            os << "| evictor | victim | evictions |\n";
            os << "|---|---|---|\n";
            for (const ConflictPairRow &pair : entry.top_pairs) {
                os << "| `" << pair.evictor << "` | `" << pair.victim
                   << "` | " << pair.count << " |\n";
            }
            os << "\n";
            if (entry.dropped_pairs != 0) {
                os << "(" << entry.dropped_pairs
                   << " evictions fell outside the " << entry.tracked_pairs
                   << "-cell pair budget)\n\n";
            }
        }
        os << "### Set pressure (hottest sets)\n\n";
        if (entry.hot_sets.empty()) {
            os << "(no misses)\n\n";
        } else {
            os << "| set | accesses | misses |\n";
            os << "|---|---|---|\n";
            for (const SetPressureRow &row : entry.hot_sets) {
                os << "| " << row.set << " | " << row.accesses << " | "
                   << row.misses << " |\n";
            }
            os << "\n";
        }
    }

    os << "## Timeline (miss rate per window)\n\n";
    double hi = 0.0;
    for (const LayoutReport &entry : report.layouts) {
        for (const TimelineSample &sample : entry.timeline)
            hi = std::max(hi, sample.missRate());
    }
    os << "Scale: 0 .. " << fmtPercent(hi) << " per glyph column.\n\n";
    for (const LayoutReport &entry : report.layouts) {
        os << "- `" << entry.label << "` "
           << sparkline(missRateSeries(entry.timeline, 60), 0.0, hi)
           << "\n";
    }
    os << "\n";
    for (std::size_t i = 1; i < report.layouts.size(); ++i) {
        const LayoutReport &entry = report.layouts[i];
        os << "- `" << entry.label << "` vs `"
           << report.layouts.front().label << "`: better in "
           << entry.windows_better << " windows, worse in "
           << entry.windows_worse << " (largest gap "
           << fmtPercent(entry.max_window_delta) << ")\n";
    }
    if (report.layouts.size() > 1)
        os << "\n";
}

JsonValue
reportToJson(const ComparisonReport &report)
{
    JsonValue root = JsonValue::object();
    root.set("topo_report", JsonValue::number(1));
    root.set("title", JsonValue::string(report.title));
    root.set("program", JsonValue::string(report.program));
    root.set("cache", JsonValue::string(report.cache));
    root.set("stream_blocks",
             JsonValue::number(
                 static_cast<double>(report.stream_blocks)));
    root.set("timeline_window",
             JsonValue::number(
                 static_cast<double>(report.timeline_window)));

    JsonValue layouts = JsonValue::array();
    for (const LayoutReport &entry : report.layouts) {
        JsonValue row = JsonValue::object();
        row.set("label", JsonValue::string(entry.label));
        row.set("accesses", JsonValue::number(
                                static_cast<double>(entry.accesses)));
        row.set("misses", JsonValue::number(
                              static_cast<double>(entry.misses)));
        row.set("evictions",
                JsonValue::number(
                    static_cast<double>(entry.evictions)));
        row.set("miss_rate", JsonValue::number(entry.miss_rate));

        JsonValue pairs = JsonValue::array();
        for (const ConflictPairRow &pair : entry.top_pairs) {
            JsonValue cell = JsonValue::object();
            cell.set("evictor", JsonValue::string(pair.evictor));
            cell.set("victim", JsonValue::string(pair.victim));
            cell.set("count", JsonValue::number(
                                  static_cast<double>(pair.count)));
            pairs.push(std::move(cell));
        }
        row.set("top_pairs", std::move(pairs));
        row.set("tracked_pairs",
                JsonValue::number(
                    static_cast<double>(entry.tracked_pairs)));
        row.set("dropped_pairs",
                JsonValue::number(
                    static_cast<double>(entry.dropped_pairs)));

        JsonValue sets = JsonValue::array();
        for (const std::uint64_t misses : entry.set_misses)
            sets.push(JsonValue::number(static_cast<double>(misses)));
        row.set("set_misses", std::move(sets));

        JsonValue timeline = JsonValue::array();
        for (const TimelineSample &sample : entry.timeline) {
            JsonValue cell = JsonValue::object();
            cell.set("start", JsonValue::number(
                                  static_cast<double>(sample.start)));
            cell.set("accesses",
                     JsonValue::number(
                         static_cast<double>(sample.accesses)));
            cell.set("misses",
                     JsonValue::number(
                         static_cast<double>(sample.misses)));
            cell.set("miss_rate", JsonValue::number(sample.missRate()));
            cell.set("working_set_procs",
                     JsonValue::number(static_cast<double>(
                         sample.distinct_procs)));
            timeline.push(std::move(cell));
        }
        row.set("timeline", std::move(timeline));
        row.set("windows_better",
                JsonValue::number(
                    static_cast<double>(entry.windows_better)));
        row.set("windows_worse",
                JsonValue::number(
                    static_cast<double>(entry.windows_worse)));
        row.set("max_window_delta",
                JsonValue::number(entry.max_window_delta));
        layouts.push(std::move(row));
    }
    root.set("layouts", std::move(layouts));
    return root;
}

} // namespace topo
