#include "topo/eval/report_gen.hh"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <memory>
#include <ostream>

#include "topo/cache/attribution.hh"
#include "topo/cache/simulate.hh"
#include "topo/cache/taxonomy.hh"
#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"
#include "topo/util/table.hh"

namespace topo
{

namespace
{

/** Down-sample a timeline to at most @p cap points by window merging. */
std::vector<double>
missRateSeries(const std::vector<TimelineSample> &samples,
               std::size_t cap)
{
    std::vector<double> series;
    if (samples.empty())
        return series;
    const std::size_t stride = (samples.size() + cap - 1) / cap;
    for (std::size_t i = 0; i < samples.size(); i += stride) {
        std::uint64_t accesses = 0, misses = 0;
        for (std::size_t j = i;
             j < samples.size() && j < i + stride; ++j) {
            accesses += samples[j].accesses;
            misses += samples[j].misses;
        }
        series.push_back(accesses ? static_cast<double>(misses) /
                                        static_cast<double>(accesses)
                                  : 0.0);
    }
    return series;
}

} // namespace

std::string
sparkline(const std::vector<double> &values, double lo, double hi)
{
    static const char *kBlocks[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    std::string out;
    const double span = hi > lo ? hi - lo : 1.0;
    for (const double value : values) {
        const double unit =
            std::clamp((value - lo) / span, 0.0, 1.0);
        out += kBlocks[static_cast<int>(unit * 7.0 + 0.5)];
    }
    return out;
}

ComparisonReport
buildComparisonReport(const Program &program, const FetchStream &stream,
                      const CacheConfig &cache,
                      const std::vector<LayoutCandidate> &candidates,
                      const ReportOptions &options)
{
    require(!candidates.empty(),
            "buildComparisonReport: no candidate layouts");
    PhaseTimer timer("report");

    ComparisonReport report;
    report.cache = cache.describe();
    report.program = program.name();
    report.stream_blocks = stream.size();
    report.timeline_window =
        options.timeline_window != 0
            ? options.timeline_window
            : std::max<std::uint64_t>(1, stream.size() / 64);

    // Candidates replay the same stream independently, so they fan out
    // on the shared pool. Each candidate records into a private
    // metrics registry; registries merge in candidate order at join,
    // keeping the report and --metrics-out byte-identical for every
    // --jobs value (DESIGN.md §9).
    struct CandidateResult
    {
        LayoutReport entry;
        std::unique_ptr<MetricsRegistry> metrics;
    };
    std::vector<CandidateResult> results = parallelMap(
        candidates.size(), [&](std::size_t c) {
            const LayoutCandidate &candidate = candidates[c];
            CandidateResult out;
            out.metrics = std::make_unique<MetricsRegistry>();
            MetricsScope scope(*out.metrics);
            candidate.layout.validate(program, cache.line_bytes);
            AttributionSink::Options sink_opts;
            sink_opts.max_pairs = options.max_pairs;
            AttributionSink sink(program, candidate.layout, cache,
                                 stream.lineBytes(), sink_opts);
            TimelineRecorder timeline(report.timeline_window,
                                      program.procCount());
            TaxonomySink taxonomy(program, stream.programLineCount(),
                                  cache);
            SimObservers observers;
            observers.attribution = &sink;
            observers.taxonomy = &taxonomy;
            observers.timeline = &timeline;
            const SimResult sim =
                simulateLayout(program, candidate.layout, stream,
                               cache, false, nullptr, &observers);

            LayoutReport &entry = out.entry;
            entry.label = candidate.label;
            entry.accesses = sim.accesses;
            entry.misses = sim.misses;
            entry.evictions = sim.evictions;
            entry.miss_rate = sim.missRate();
            for (const ConflictPair &pair :
                 sink.topPairs(options.top_pairs)) {
                entry.top_pairs.push_back(
                    {program.proc(pair.evictor).name,
                     program.proc(pair.victim).name, pair.count});
            }
            entry.tracked_pairs = sink.trackedPairs();
            entry.dropped_pairs = sink.droppedPairs();
            entry.set_misses = sink.missesBySet();
            std::vector<std::uint32_t> by_misses(
                entry.set_misses.size());
            for (std::uint32_t s = 0; s < by_misses.size(); ++s)
                by_misses[s] = s;
            std::stable_sort(by_misses.begin(), by_misses.end(),
                             [&](std::uint32_t a, std::uint32_t b) {
                                 return entry.set_misses[a] >
                                        entry.set_misses[b];
                             });
            for (std::size_t i = 0;
                 i < by_misses.size() && i < options.hot_sets; ++i) {
                const std::uint32_t s = by_misses[i];
                if (entry.set_misses[s] == 0)
                    break;
                entry.hot_sets.push_back(
                    {s, sink.accessesBySet()[s], entry.set_misses[s]});
            }
            entry.timeline = timeline.samples();
            entry.compulsory = taxonomy.compulsory();
            entry.capacity = taxonomy.capacity();
            entry.conflict = taxonomy.conflict();
            entry.reuse_hist.assign(taxonomy.reuseHistogram().begin(),
                                    taxonomy.reuseHistogram().end());
            return out;
        });
    for (CandidateResult &result : results) {
        MetricsRegistry::current().mergeFrom(*result.metrics);
        report.layouts.push_back(std::move(result.entry));
    }

    // Timeline deltas vs the first (baseline) candidate. Windows are
    // aligned: every layout replays the same stream with the same
    // window size.
    const std::vector<TimelineSample> &base =
        report.layouts.front().timeline;
    for (std::size_t i = 1; i < report.layouts.size(); ++i) {
        LayoutReport &entry = report.layouts[i];
        const std::size_t windows =
            std::min(base.size(), entry.timeline.size());
        for (std::size_t w = 0; w < windows; ++w) {
            const double delta = entry.timeline[w].missRate() -
                                 base[w].missRate();
            if (delta < 0.0)
                ++entry.windows_better;
            else if (delta > 0.0)
                ++entry.windows_worse;
            if (std::abs(delta) > std::abs(entry.max_window_delta))
                entry.max_window_delta = delta;
        }
    }
    return report;
}

void
renderReportMarkdown(const ComparisonReport &report, std::ostream &os)
{
    os << "# Layout comparison report";
    if (!report.title.empty())
        os << " — " << report.title;
    os << "\n\n";
    os << "- program: `" << report.program << "`\n";
    os << "- cache: " << report.cache << "\n";
    os << "- stream: " << report.stream_blocks << " line fetches\n";
    os << "- timeline window: " << report.timeline_window
       << " fetches\n\n";

    os << "## Miss rates\n\n";
    os << "| layout | miss rate | misses | evictions |\n";
    os << "|---|---|---|---|\n";
    for (const LayoutReport &entry : report.layouts) {
        os << "| " << entry.label << " | "
           << fmtPercent(entry.miss_rate) << " | " << entry.misses
           << " | " << entry.evictions << " |\n";
    }
    os << "\n";

    os << "## Miss taxonomy (3C)\n\n";
    os << "Compulsory and the reuse-distance profile are properties "
          "of the stream, not the layout; only the capacity/conflict "
          "split moves between candidates.\n\n";
    os << "| layout | misses | compulsory | capacity | conflict | "
          "conflict share |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const LayoutReport &entry : report.layouts) {
        const double share =
            entry.misses ? static_cast<double>(entry.conflict) /
                               static_cast<double>(entry.misses)
                         : 0.0;
        os << "| " << entry.label << " | " << entry.misses << " | "
           << entry.compulsory << " | " << entry.capacity << " | "
           << entry.conflict << " | " << fmtPercent(share) << " |\n";
    }
    os << "\n";

    if (!report.layouts.empty() &&
        !report.layouts.front().reuse_hist.empty()) {
        const std::vector<std::uint64_t> &hist =
            report.layouts.front().reuse_hist;
        os << "### Reuse-distance profile (stream-wide)\n\n";
        os << "| stack distance | fetches |\n";
        os << "|---|---|\n";
        for (std::size_t b = 0; b < hist.size(); ++b) {
            if (hist[b] == 0)
                continue;
            os << "| " << reuseBucketLabel(b) << " | " << hist[b]
               << " |\n";
        }
        os << "\n";
    }

    for (const LayoutReport &entry : report.layouts) {
        os << "## " << entry.label << "\n\n";
        os << "### Top conflicting procedure pairs\n\n";
        if (entry.top_pairs.empty()) {
            os << "(no valid-line evictions — the working set fits "
                  "the cache)\n\n";
        } else {
            os << "| evictor | victim | evictions |\n";
            os << "|---|---|---|\n";
            for (const ConflictPairRow &pair : entry.top_pairs) {
                os << "| `" << pair.evictor << "` | `" << pair.victim
                   << "` | " << pair.count << " |\n";
            }
            os << "\n";
            if (entry.dropped_pairs != 0) {
                os << "(" << entry.dropped_pairs
                   << " evictions fell outside the " << entry.tracked_pairs
                   << "-cell pair budget)\n\n";
            }
        }
        os << "### Set pressure (hottest sets)\n\n";
        if (entry.hot_sets.empty()) {
            os << "(no misses)\n\n";
        } else {
            os << "| set | accesses | misses |\n";
            os << "|---|---|---|\n";
            for (const SetPressureRow &row : entry.hot_sets) {
                os << "| " << row.set << " | " << row.accesses << " | "
                   << row.misses << " |\n";
            }
            os << "\n";
        }
    }

    os << "## Timeline (miss rate per window)\n\n";
    double hi = 0.0;
    for (const LayoutReport &entry : report.layouts) {
        for (const TimelineSample &sample : entry.timeline)
            hi = std::max(hi, sample.missRate());
    }
    os << "Scale: 0 .. " << fmtPercent(hi) << " per glyph column.\n\n";
    for (const LayoutReport &entry : report.layouts) {
        os << "- `" << entry.label << "` "
           << sparkline(missRateSeries(entry.timeline, 60), 0.0, hi)
           << "\n";
    }
    os << "\n";
    for (std::size_t i = 1; i < report.layouts.size(); ++i) {
        const LayoutReport &entry = report.layouts[i];
        os << "- `" << entry.label << "` vs `"
           << report.layouts.front().label << "`: better in "
           << entry.windows_better << " windows, worse in "
           << entry.windows_worse << " (largest gap "
           << fmtPercent(entry.max_window_delta) << ")\n";
    }
    if (report.layouts.size() > 1)
        os << "\n";
}

JsonValue
reportToJson(const ComparisonReport &report)
{
    JsonValue root = JsonValue::object();
    root.set("topo_report", JsonValue::number(1));
    root.set("title", JsonValue::string(report.title));
    root.set("program", JsonValue::string(report.program));
    root.set("cache", JsonValue::string(report.cache));
    root.set("stream_blocks",
             JsonValue::number(
                 static_cast<double>(report.stream_blocks)));
    root.set("timeline_window",
             JsonValue::number(
                 static_cast<double>(report.timeline_window)));

    JsonValue layouts = JsonValue::array();
    for (const LayoutReport &entry : report.layouts) {
        JsonValue row = JsonValue::object();
        row.set("label", JsonValue::string(entry.label));
        row.set("accesses", JsonValue::number(
                                static_cast<double>(entry.accesses)));
        row.set("misses", JsonValue::number(
                              static_cast<double>(entry.misses)));
        row.set("evictions",
                JsonValue::number(
                    static_cast<double>(entry.evictions)));
        row.set("miss_rate", JsonValue::number(entry.miss_rate));

        JsonValue pairs = JsonValue::array();
        for (const ConflictPairRow &pair : entry.top_pairs) {
            JsonValue cell = JsonValue::object();
            cell.set("evictor", JsonValue::string(pair.evictor));
            cell.set("victim", JsonValue::string(pair.victim));
            cell.set("count", JsonValue::number(
                                  static_cast<double>(pair.count)));
            pairs.push(std::move(cell));
        }
        row.set("top_pairs", std::move(pairs));
        row.set("tracked_pairs",
                JsonValue::number(
                    static_cast<double>(entry.tracked_pairs)));
        row.set("dropped_pairs",
                JsonValue::number(
                    static_cast<double>(entry.dropped_pairs)));

        JsonValue sets = JsonValue::array();
        for (const std::uint64_t misses : entry.set_misses)
            sets.push(JsonValue::number(static_cast<double>(misses)));
        row.set("set_misses", std::move(sets));

        const bool has_taxonomy = !entry.reuse_hist.empty();
        if (has_taxonomy) {
            JsonValue taxonomy = JsonValue::object();
            taxonomy.set("compulsory",
                         JsonValue::number(
                             static_cast<double>(entry.compulsory)));
            taxonomy.set("capacity",
                         JsonValue::number(
                             static_cast<double>(entry.capacity)));
            taxonomy.set("conflict",
                         JsonValue::number(
                             static_cast<double>(entry.conflict)));
            JsonValue hist = JsonValue::array();
            for (const std::uint64_t count : entry.reuse_hist)
                hist.push(
                    JsonValue::number(static_cast<double>(count)));
            taxonomy.set("reuse_hist", std::move(hist));
            row.set("taxonomy", std::move(taxonomy));
        }

        JsonValue timeline = JsonValue::array();
        for (const TimelineSample &sample : entry.timeline) {
            JsonValue cell = JsonValue::object();
            cell.set("start", JsonValue::number(
                                  static_cast<double>(sample.start)));
            cell.set("accesses",
                     JsonValue::number(
                         static_cast<double>(sample.accesses)));
            cell.set("misses",
                     JsonValue::number(
                         static_cast<double>(sample.misses)));
            cell.set("miss_rate", JsonValue::number(sample.missRate()));
            cell.set("working_set_procs",
                     JsonValue::number(static_cast<double>(
                         sample.distinct_procs)));
            if (has_taxonomy) {
                cell.set("compulsory",
                         JsonValue::number(static_cast<double>(
                             sample.compulsory)));
                cell.set("capacity",
                         JsonValue::number(
                             static_cast<double>(sample.capacity)));
                cell.set("conflict",
                         JsonValue::number(
                             static_cast<double>(sample.conflict)));
                JsonValue hist = JsonValue::array();
                for (const std::uint32_t count : sample.reuse_hist)
                    hist.push(
                        JsonValue::number(static_cast<double>(count)));
                cell.set("reuse_hist", std::move(hist));
            }
            timeline.push(std::move(cell));
        }
        row.set("timeline", std::move(timeline));
        row.set("windows_better",
                JsonValue::number(
                    static_cast<double>(entry.windows_better)));
        row.set("windows_worse",
                JsonValue::number(
                    static_cast<double>(entry.windows_worse)));
        row.set("max_window_delta",
                JsonValue::number(entry.max_window_delta));
        layouts.push(std::move(row));
    }
    root.set("layouts", std::move(layouts));
    return root;
}

namespace
{

/** Reject members of @p value outside @p allowed. */
void
checkKeys(const JsonValue &value,
          std::initializer_list<const char *> allowed,
          const std::string &where)
{
    requireData(value.isObject(), "expected an object", where);
    for (const auto &[key, member] : value.members()) {
        (void)member;
        bool known = false;
        for (const char *name : allowed)
            known = known || key == name;
        requireData(known, "unknown key '" + key + "'", where);
    }
}

void
checkRequired(const JsonValue &value,
              std::initializer_list<const char *> required,
              const std::string &where)
{
    for (const char *name : required)
        requireData(value.find(name) != nullptr,
                    std::string("missing key '") + name + "'", where);
}

std::uint64_t
asCount(const JsonValue &value, const std::string &where)
{
    requireData(value.kind() == JsonValue::Kind::kNumber,
                "expected a number", where);
    const double number = value.asNumber();
    requireData(number >= 0.0, "expected a non-negative count", where);
    return static_cast<std::uint64_t>(number);
}

/** Histogram must have kReuseBucketCount buckets summing to @p total. */
void
checkReuseHist(const JsonValue &hist, std::uint64_t total,
               const std::string &where)
{
    requireData(hist.isArray(), "reuse_hist must be an array", where);
    requireData(hist.size() == kReuseBucketCount,
                "reuse_hist must have " +
                    std::to_string(kReuseBucketCount) + " buckets",
                where);
    std::uint64_t sum = 0;
    for (const JsonValue &bucket : hist.elements())
        sum += asCount(bucket, where);
    requireData(sum == total,
                "reuse_hist sums to " + std::to_string(sum) +
                    ", expected the access count " +
                    std::to_string(total),
                where);
}

/** 3C members of @p value must sum to exactly @p misses. */
void
checkThreeCSum(const JsonValue &value, std::uint64_t misses,
               const std::string &where)
{
    const std::uint64_t sum =
        asCount(value.at("compulsory"), where) +
        asCount(value.at("capacity"), where) +
        asCount(value.at("conflict"), where);
    requireData(sum == misses,
                "compulsory+capacity+conflict is " +
                    std::to_string(sum) + ", expected misses " +
                    std::to_string(misses),
                where);
}

void
checkProvenance(const JsonValue &value, const std::string &where)
{
    requireData(value.isObject(), "provenance must be an object",
                where);
    checkRequired(value, {"git_sha", "build_type", "compiler"}, where);
    for (const auto &[key, member] : value.members())
        requireData(member.kind() == JsonValue::Kind::kString,
                    "provenance value '" + key + "' must be a string",
                    where);
}

void
checkTimelineRow(const JsonValue &row, const std::string &where)
{
    checkKeys(row,
              {"start", "accesses", "misses", "miss_rate",
               "working_set_procs", "compulsory", "capacity",
               "conflict", "reuse_hist"},
              where);
    checkRequired(row,
                  {"start", "accesses", "misses", "miss_rate",
                   "working_set_procs"},
                  where);
    const bool any_taxonomy = row.find("compulsory") != nullptr ||
                              row.find("capacity") != nullptr ||
                              row.find("conflict") != nullptr ||
                              row.find("reuse_hist") != nullptr;
    if (!any_taxonomy)
        return;
    checkRequired(
        row, {"compulsory", "capacity", "conflict", "reuse_hist"},
        where);
    checkThreeCSum(row, asCount(row.at("misses"), where), where);
    checkReuseHist(row.at("reuse_hist"),
                   asCount(row.at("accesses"), where), where);
}

void
checkLayoutTaxonomy(const JsonValue &taxonomy, std::uint64_t misses,
                    std::uint64_t accesses, const std::string &where)
{
    checkKeys(taxonomy,
              {"compulsory", "capacity", "conflict", "shadow_lines",
               "reuse_hist", "top_procs"},
              where);
    checkRequired(
        taxonomy, {"compulsory", "capacity", "conflict", "reuse_hist"},
        where);
    checkThreeCSum(taxonomy, misses, where);
    checkReuseHist(taxonomy.at("reuse_hist"), accesses, where);
    if (const JsonValue *procs = taxonomy.find("top_procs")) {
        requireData(procs->isArray(), "top_procs must be an array",
                    where);
        for (const JsonValue &row : procs->elements()) {
            checkKeys(row,
                      {"proc", "compulsory", "capacity", "conflict"},
                      where + ".top_procs");
            checkRequired(
                row, {"proc", "compulsory", "capacity", "conflict"},
                where + ".top_procs");
        }
    }
}

void
checkReportDoc(const JsonValue &doc, const std::string &where)
{
    checkKeys(doc,
              {"topo_report", "title", "program", "cache",
               "stream_blocks", "timeline_window", "layouts"},
              where);
    checkRequired(doc,
                  {"topo_report", "program", "cache", "stream_blocks",
                   "timeline_window", "layouts"},
                  where);
    const JsonValue &layouts = doc.at("layouts");
    requireData(layouts.isArray(), "layouts must be an array", where);
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        const JsonValue &row = layouts.at(i);
        const std::string layout_where =
            where + ".layouts[" + std::to_string(i) + "]";
        checkKeys(row,
                  {"label", "accesses", "misses", "evictions",
                   "miss_rate", "top_pairs", "tracked_pairs",
                   "dropped_pairs", "set_misses", "taxonomy",
                   "timeline", "windows_better", "windows_worse",
                   "max_window_delta"},
                  layout_where);
        checkRequired(row,
                      {"label", "accesses", "misses", "evictions",
                       "miss_rate", "top_pairs", "set_misses",
                       "timeline"},
                      layout_where);
        const std::uint64_t misses =
            asCount(row.at("misses"), layout_where);
        const std::uint64_t accesses =
            asCount(row.at("accesses"), layout_where);
        if (const JsonValue *taxonomy = row.find("taxonomy"))
            checkLayoutTaxonomy(*taxonomy, misses, accesses,
                                layout_where + ".taxonomy");
        const JsonValue &timeline = row.at("timeline");
        requireData(timeline.isArray(), "timeline must be an array",
                    layout_where);
        for (std::size_t w = 0; w < timeline.size(); ++w)
            checkTimelineRow(timeline.at(w),
                             layout_where + ".timeline[" +
                                 std::to_string(w) + "]");
    }
}

/** Sampled-run provenance attached to a bench row (DESIGN.md §15). */
void
checkSamplingBlock(const JsonValue &sampling, double row_miss_rate,
                   const std::string &where)
{
    checkKeys(sampling,
              {"mode", "window_runs", "windows", "clusters",
               "selected_windows", "replayed_fraction",
               "est_miss_rate", "exact_miss_rate", "abs_error"},
              where);
    checkRequired(sampling,
                  {"mode", "window_runs", "windows", "clusters",
                   "selected_windows", "replayed_fraction",
                   "est_miss_rate"},
                  where);
    requireData(sampling.at("mode").kind() ==
                        JsonValue::Kind::kString &&
                    sampling.at("mode").asString() == "simpoint",
                "sampling mode must be 'simpoint'", where);
    const std::uint64_t windows =
        asCount(sampling.at("windows"), where);
    const std::uint64_t clusters =
        asCount(sampling.at("clusters"), where);
    const std::uint64_t selected =
        asCount(sampling.at("selected_windows"), where);
    asCount(sampling.at("window_runs"), where);
    requireData(clusters <= windows || windows == 0,
                "more clusters than windows", where);
    requireData(selected <= clusters,
                "more selected windows than clusters", where);
    const double replayed =
        sampling.at("replayed_fraction").asNumber();
    requireData(replayed >= 0.0 && replayed <= 1.0,
                "replayed_fraction must be in [0, 1]", where);
    const double est = sampling.at("est_miss_rate").asNumber();
    requireData(est >= 0.0 && est <= 1.0,
                "est_miss_rate must be in [0, 1]", where);
    requireData(std::fabs(est - row_miss_rate) < 1e-9,
                "est_miss_rate disagrees with the row's miss_rate",
                where);
    const JsonValue *exact = sampling.find("exact_miss_rate");
    const JsonValue *abs_error = sampling.find("abs_error");
    requireData((exact == nullptr) == (abs_error == nullptr),
                "exact_miss_rate and abs_error come together "
                "(--sample-verify writes both)",
                where);
    if (exact != nullptr) {
        const double exact_rate = exact->asNumber();
        requireData(exact_rate >= 0.0 && exact_rate <= 1.0,
                    "exact_miss_rate must be in [0, 1]", where);
        requireData(std::fabs(abs_error->asNumber() -
                              std::fabs(est - exact_rate)) < 1e-9,
                    "abs_error is not |est - exact|", where);
    }
}

void
checkBenchDoc(const JsonValue &doc, const std::string &where)
{
    checkKeys(doc,
              {"topo_bench", "date", "benchmarks", "trace_scale",
               "cache", "policy", "jobs", "threads", "peak_rss_kb",
               "provenance", "runs"},
              where);
    checkRequired(doc,
                  {"topo_bench", "date", "benchmarks", "trace_scale",
                   "cache", "jobs", "runs"},
                  where);
    if (const JsonValue *provenance = doc.find("provenance"))
        checkProvenance(*provenance, where + ".provenance");
    const JsonValue &runs = doc.at("runs");
    requireData(runs.isArray(), "runs must be an array", where);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const JsonValue &row = runs.at(i);
        const std::string run_where =
            where + ".runs[" + std::to_string(i) + "]";
        checkKeys(row,
                  {"benchmark", "algorithm", "accesses", "misses",
                   "miss_rate", "wall_ms", "blocks_per_sec",
                   "taxonomy", "sampling"},
                  run_where);
        checkRequired(row,
                      {"benchmark", "algorithm", "accesses", "misses",
                       "miss_rate", "wall_ms", "blocks_per_sec"},
                      run_where);
        if (const JsonValue *taxonomy = row.find("taxonomy"))
            checkLayoutTaxonomy(*taxonomy,
                                asCount(row.at("misses"), run_where),
                                asCount(row.at("accesses"), run_where),
                                run_where + ".taxonomy");
        if (const JsonValue *sampling = row.find("sampling"))
            checkSamplingBlock(*sampling,
                               row.at("miss_rate").asNumber(),
                               run_where + ".sampling");
    }
}

/** Signed integer reader (deltas may be negative, unlike counts). */
std::int64_t
asDelta(const JsonValue &value, const std::string &where)
{
    requireData(value.kind() == JsonValue::Kind::kNumber,
                "expected a number", where);
    return static_cast<std::int64_t>(value.asNumber());
}

void
checkDecisionsDoc(const JsonValue &doc, const std::string &where)
{
    checkKeys(doc,
              {"topo_decisions", "algorithm", "program", "cache",
               "kept", "dropped", "coverage", "records"},
              where);
    checkRequired(doc,
                  {"topo_decisions", "algorithm", "kept", "dropped",
                   "records"},
                  where);
    const JsonValue &records = doc.at("records");
    requireData(records.isArray(), "records must be an array", where);
    requireData(asCount(doc.at("kept"), where) == records.size(),
                "kept count disagrees with the records array", where);
    asCount(doc.at("dropped"), where);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const JsonValue &row = records.at(i);
        const std::string row_where =
            where + ".records[" + std::to_string(i) + "]";
        checkKeys(row,
                  {"step", "kind", "stage", "proc_a", "proc_b",
                   "weight", "chosen", "chosen_cost", "tie_break",
                   "alternatives"},
                  row_where);
        checkRequired(row,
                      {"step", "kind", "stage", "proc_a", "chosen",
                       "tie_break"},
                      row_where);
        const std::string &kind = row.at("kind").asString();
        requireData(kind == "merge" || kind == "place" ||
                        kind == "color" || kind == "split" ||
                        kind == "reject",
                    "unknown decision kind '" + kind + "'", row_where);
        if (const JsonValue *alts = row.find("alternatives")) {
            requireData(alts->isArray(),
                        "alternatives must be an array", row_where);
            for (const JsonValue &alt : alts->elements())
                checkKeys(alt, {"choice", "cost"},
                          row_where + ".alternatives");
        }
    }
}

void
checkDiffDoc(const JsonValue &doc, const std::string &where)
{
    checkKeys(doc,
              {"topo_diff", "program", "cache", "a", "b", "moved",
               "unmoved", "attributed", "miss_delta", "moves",
               "miss_delta_by_proc", "set_miss_delta", "pairs_created",
               "pairs_destroyed", "dropped_pairs_a", "dropped_pairs_b",
               "set_occupancy_delta", "decisions_algorithm",
               "moves_explained"},
              where);
    checkRequired(doc,
                  {"topo_diff", "program", "cache", "a", "b", "moved",
                   "unmoved", "attributed", "moves",
                   "set_occupancy_delta"},
                  where);
    for (const char *side : {"a", "b"}) {
        const JsonValue &s = doc.at(side);
        checkKeys(s, {"label", "accesses", "misses"},
                  where + "." + side);
        checkRequired(s, {"label", "accesses", "misses"},
                      where + "." + side);
    }
    const JsonValue &moves = doc.at("moves");
    requireData(moves.isArray(), "moves must be an array", where);
    requireData(asCount(doc.at("moved"), where) == moves.size(),
                "moved count disagrees with the moves array", where);
    for (std::size_t i = 0; i < moves.size(); ++i) {
        const JsonValue &row = moves.at(i);
        const std::string row_where =
            where + ".moves[" + std::to_string(i) + "]";
        checkKeys(row,
                  {"proc", "addr_a", "addr_b", "set_a", "set_b",
                   "miss_delta", "decision_steps"},
                  row_where);
        checkRequired(row, {"proc", "addr_a", "addr_b"}, row_where);
    }
    // The set-occupancy deltas of two complete layouts of one program
    // redistribute the same lines, so they must cancel exactly.
    std::int64_t occupancy_sum = 0;
    for (const JsonValue &row :
         doc.at("set_occupancy_delta").elements())
        occupancy_sum += asDelta(row.at("delta"),
                                 where + ".set_occupancy_delta");
    requireData(occupancy_sum == 0,
                "set_occupancy_delta sums to " +
                    std::to_string(occupancy_sum) + ", expected 0",
                where);
    if (!doc.at("attributed").asBool())
        return;
    // Exactness invariant: the per-procedure (and per-set) deltas sum
    // to the total miss delta between the two replays.
    checkRequired(doc,
                  {"miss_delta", "miss_delta_by_proc",
                   "set_miss_delta"},
                  where);
    const std::int64_t miss_delta =
        asDelta(doc.at("miss_delta"), where);
    const std::int64_t expected =
        asDelta(doc.at("b").at("misses"), where + ".b") -
        asDelta(doc.at("a").at("misses"), where + ".a");
    requireData(miss_delta == expected,
                "miss_delta disagrees with per-side miss counts",
                where);
    for (const char *field : {"miss_delta_by_proc", "set_miss_delta"}) {
        std::int64_t sum = 0;
        for (const JsonValue &row : doc.at(field).elements())
            sum += asDelta(row.at("delta"),
                           where + "." + field);
        requireData(sum == miss_delta,
                    std::string(field) + " sums to " +
                        std::to_string(sum) +
                        ", expected the total miss delta " +
                        std::to_string(miss_delta),
                    where);
    }
}

void
checkMetricsDoc(const JsonValue &doc, const std::string &where)
{
    checkKeys(doc,
              {"topo_metrics", "counters", "gauges", "histograms",
               "provenance"},
              where);
    checkRequired(doc,
                  {"topo_metrics", "counters", "gauges", "histograms"},
                  where);
    if (const JsonValue *provenance = doc.find("provenance"))
        checkProvenance(*provenance, where + ".provenance");
    const JsonValue &counters = doc.at("counters");
    requireData(counters.isObject(), "counters must be an object",
                where);
    for (const auto &[name, value] : counters.members())
        asCount(value, where + ".counters." + name);
}

} // namespace

std::string
validateArtifactJson(const JsonValue &doc)
{
    requireData(doc.isObject(),
                "artifact root must be a JSON object",
                "validateArtifactJson");
    if (doc.find("topo_report_suite") != nullptr) {
        checkKeys(doc, {"topo_report_suite", "reports"}, "$");
        checkRequired(doc, {"topo_report_suite", "reports"}, "$");
        const JsonValue &reports = doc.at("reports");
        requireData(reports.isArray(), "reports must be an array",
                    "$");
        for (std::size_t i = 0; i < reports.size(); ++i)
            checkReportDoc(reports.at(i),
                           "$.reports[" + std::to_string(i) + "]");
        return "topo_report_suite";
    }
    if (doc.find("topo_report") != nullptr) {
        checkReportDoc(doc, "$");
        return "topo_report";
    }
    if (doc.find("topo_bench") != nullptr) {
        checkBenchDoc(doc, "$");
        return "topo_bench";
    }
    if (doc.find("topo_metrics") != nullptr) {
        checkMetricsDoc(doc, "$");
        return "topo_metrics";
    }
    if (doc.find("topo_decisions") != nullptr) {
        checkDecisionsDoc(doc, "$");
        return "topo_decisions";
    }
    if (doc.find("topo_diff") != nullptr) {
        checkDiffDoc(doc, "$");
        return "topo_diff";
    }
    failCorrupt("unrecognized artifact document (expected a "
                "topo_report, topo_report_suite, topo_bench, "
                "topo_metrics, topo_decisions, or topo_diff marker)",
                "validateArtifactJson");
}

} // namespace topo
