/**
 * @file
 * Whole-layout conflict metrics (Section 3's requirement; evaluated in
 * Figure 6). Both metrics sum relationship-graph weight over code
 * blocks that share cache lines; the TRG metric uses chunk-granularity
 * temporal weights, the WCG metric call-transition weights.
 */

#ifndef TOPO_EVAL_CONFLICT_METRIC_HH
#define TOPO_EVAL_CONFLICT_METRIC_HH

#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/placement/placement.hh"
#include "topo/program/layout.hh"

namespace topo
{

/**
 * TRG_place conflict metric of a layout: for every cache line, the sum
 * of TRG_place weights over chunk pairs mapped to that line. When the
 * context carries a popularity mask, only popular procedures count
 * (matching what GBSC can influence).
 */
double trgConflictMetric(const PlacementContext &ctx, const Layout &layout);

/**
 * WCG conflict metric of a layout: for every cache line, the sum of
 * WCG weights over procedure pairs occupying that line.
 */
double wcgConflictMetric(const PlacementContext &ctx, const Layout &layout);

} // namespace topo

#endif // TOPO_EVAL_CONFLICT_METRIC_HH
