/**
 * @file
 * Layout diff implementation: structural diff, exact miss-delta
 * attribution by double replay, decision cross-referencing, and the
 * Markdown / JSON renderings.
 */

#include "topo/eval/layout_diff.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "topo/exec/exec.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/** Sort moves by |miss_delta| desc, ties by proc id asc. */
void
orderMoves(std::vector<LayoutDiff::Move> &moves)
{
    std::stable_sort(moves.begin(), moves.end(),
                     [](const LayoutDiff::Move &x,
                        const LayoutDiff::Move &y) {
                         const std::int64_t ax =
                             x.miss_delta < 0 ? -x.miss_delta
                                              : x.miss_delta;
                         const std::int64_t ay =
                             y.miss_delta < 0 ? -y.miss_delta
                                              : y.miss_delta;
                         if (ax != ay)
                             return ax > ay;
                         return x.proc < y.proc;
                     });
}

/** Full conflict matrix of a sink as an ordered (evictor,victim) map. */
std::map<std::pair<ProcId, ProcId>, std::uint64_t>
fullPairs(const AttributionSink &sink)
{
    std::map<std::pair<ProcId, ProcId>, std::uint64_t> out;
    for (const ConflictPair &p : sink.topPairs(sink.trackedPairs()))
        out[{p.evictor, p.victim}] = p.count;
    return out;
}

std::string
signedStr(std::int64_t v)
{
    std::ostringstream os;
    if (v > 0)
        os << '+';
    os << v;
    return os.str();
}

} // namespace

LayoutDiff
buildLayoutDiff(const Program &program, const CacheConfig &cache,
                const Layout &layout_a, const Layout &layout_b,
                const std::string &label_a, const std::string &label_b,
                const LayoutDiffOptions &options)
{
    (void)options;
    PhaseTimer timer("diff.structural");
    layout_a.validate(program, cache.line_bytes);
    layout_b.validate(program, cache.line_bytes);
    const std::uint32_t sets = cache.setCount();
    const std::uint32_t line_bytes = cache.line_bytes;

    LayoutDiff diff;
    diff.program_name = program.name();
    diff.cache = cache;
    diff.a.label = label_a;
    diff.b.label = label_b;
    diff.set_occupancy_delta.assign(sets, 0);

    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto proc = static_cast<ProcId>(i);
        const std::uint64_t addr_a = layout_a.address(proc);
        const std::uint64_t addr_b = layout_b.address(proc);
        const std::uint64_t line_a = layout_a.startLine(proc, line_bytes);
        const std::uint64_t line_b = layout_b.startLine(proc, line_bytes);
        const std::uint32_t len = program.sizeInLines(proc, line_bytes);
        for (std::uint32_t l = 0; l < len; ++l) {
            --diff.set_occupancy_delta[(line_a + l) % sets];
            ++diff.set_occupancy_delta[(line_b + l) % sets];
        }
        if (addr_a == addr_b) {
            ++diff.unmoved;
            continue;
        }
        LayoutDiff::Move move;
        move.proc = proc;
        move.addr_a = addr_a;
        move.addr_b = addr_b;
        move.set_a = static_cast<std::uint32_t>(line_a % sets);
        move.set_b = static_cast<std::uint32_t>(line_b % sets);
        diff.moves.push_back(std::move(move));
    }
    return diff;
}

void
attributeMissDelta(LayoutDiff &diff, const Program &program,
                   const Layout &layout_a, const Layout &layout_b,
                   const FetchStream &stream,
                   const LayoutDiffOptions &options)
{
    PhaseTimer timer("diff.attribute");
    const CacheConfig &cache = diff.cache;

    struct SideResult
    {
        std::uint64_t accesses = 0;
        std::uint64_t misses = 0;
        std::vector<std::uint64_t> misses_by_proc;
        std::vector<std::uint64_t> misses_by_set;
        std::map<std::pair<ProcId, ProcId>, std::uint64_t> pairs;
        std::uint64_t dropped_pairs = 0;
        std::unique_ptr<MetricsRegistry> metrics;
    };
    const Layout *layouts[2] = {&layout_a, &layout_b};
    std::vector<SideResult> sides = parallelMap(2, [&](std::size_t i) {
        SideResult out;
        out.metrics = std::make_unique<MetricsRegistry>();
        MetricsScope scope(*out.metrics);
        AttributionSink::Options sink_opts;
        sink_opts.max_pairs = options.max_pairs;
        AttributionSink sink(program, *layouts[i], cache,
                             stream.lineBytes(), sink_opts);
        SimObservers observers;
        observers.attribution = &sink;
        const SimResult sim = simulateLayout(program, *layouts[i],
                                             stream, cache, false,
                                             nullptr, &observers);
        out.accesses = sim.accesses;
        out.misses = sim.misses;
        out.misses_by_proc = sink.missesByProc();
        out.misses_by_set = sink.missesBySet();
        out.pairs = fullPairs(sink);
        out.dropped_pairs = sink.droppedPairs();
        return out;
    });
    // Merge task registries in fixed (side) order: byte-identical
    // metrics for any --jobs value.
    for (SideResult &side : sides)
        MetricsRegistry::current().mergeFrom(*side.metrics);
    const SideResult &ra = sides[0];
    const SideResult &rb = sides[1];

    diff.a.accesses = ra.accesses;
    diff.a.misses = ra.misses;
    diff.b.accesses = rb.accesses;
    diff.b.misses = rb.misses;
    diff.dropped_pairs_a = ra.dropped_pairs;
    diff.dropped_pairs_b = rb.dropped_pairs;

    diff.miss_delta_by_proc.assign(program.procCount(), 0);
    for (std::size_t p = 0; p < program.procCount(); ++p) {
        diff.miss_delta_by_proc[p] =
            static_cast<std::int64_t>(rb.misses_by_proc[p]) -
            static_cast<std::int64_t>(ra.misses_by_proc[p]);
    }
    diff.set_miss_delta.assign(cache.setCount(), 0);
    for (std::size_t s = 0; s < diff.set_miss_delta.size(); ++s) {
        diff.set_miss_delta[s] =
            static_cast<std::int64_t>(rb.misses_by_set[s]) -
            static_cast<std::int64_t>(ra.misses_by_set[s]);
    }

    diff.pairs_created.clear();
    diff.pairs_destroyed.clear();
    for (const auto &[key, count] : rb.pairs) {
        if (ra.pairs.find(key) == ra.pairs.end())
            diff.pairs_created.push_back(
                {key.first, key.second, count});
    }
    for (const auto &[key, count] : ra.pairs) {
        if (rb.pairs.find(key) == rb.pairs.end())
            diff.pairs_destroyed.push_back(
                {key.first, key.second, count});
    }
    auto by_count = [](const LayoutDiff::PairDelta &x,
                       const LayoutDiff::PairDelta &y) {
        if (x.count != y.count)
            return x.count > y.count;
        if (x.evictor != y.evictor)
            return x.evictor < y.evictor;
        return x.victim < y.victim;
    };
    std::sort(diff.pairs_created.begin(), diff.pairs_created.end(),
              by_count);
    std::sort(diff.pairs_destroyed.begin(), diff.pairs_destroyed.end(),
              by_count);

    for (LayoutDiff::Move &move : diff.moves)
        move.miss_delta = diff.miss_delta_by_proc[move.proc];
    orderMoves(diff.moves);
    diff.attributed = true;
}

void
crossReferenceDecisions(LayoutDiff &diff, const Program &program,
                        const LoadedDecisions &decisions)
{
    diff.has_decisions = true;
    diff.decisions_algorithm = decisions.algorithm;
    diff.moves_explained = 0;
    for (LayoutDiff::Move &move : diff.moves) {
        move.decision_steps.clear();
        const std::string &name = program.proc(move.proc).name;
        for (std::size_t row : decisions.rowsFor(name))
            move.decision_steps.push_back(decisions.rows[row].step);
        if (!move.decision_steps.empty())
            ++diff.moves_explained;
    }
}

std::string
renderDiffMarkdown(const LayoutDiff &diff, const Program &program,
                   const LayoutDiffOptions &options)
{
    std::ostringstream os;
    os << "# Layout diff — " << diff.program_name << "\n\n";
    os << "- cache: " << diff.cache.describe() << "\n";
    os << "- A: " << diff.a.label << "\n";
    os << "- B: " << diff.b.label << "\n";
    os << "- moved: " << diff.moves.size()
       << ", unmoved: " << diff.unmoved << "\n";
    if (diff.attributed) {
        os << "- misses: " << diff.a.misses << " -> " << diff.b.misses
           << " (" << signedStr(diff.missDelta()) << ")\n";
        if (diff.dropped_pairs_a || diff.dropped_pairs_b) {
            os << "- conflict pairs dropped past budget: A="
               << diff.dropped_pairs_a << ", B="
               << diff.dropped_pairs_b << "\n";
        }
    }
    if (diff.has_decisions) {
        os << "- decisions: " << diff.decisions_algorithm << " ("
           << diff.moves_explained << "/" << diff.moves.size()
           << " moves explained)\n";
    }
    os << "\n";

    if (!diff.moves.empty()) {
        os << "## Moved procedures";
        if (diff.moves.size() > options.top_moves)
            os << " (top " << options.top_moves << " of "
               << diff.moves.size() << ")";
        os << "\n\n";
        os << "| proc | addr A | addr B | set A | set B |";
        if (diff.attributed)
            os << " miss delta |";
        if (diff.has_decisions)
            os << " decision steps |";
        os << "\n";
        os << "|---|---|---|---|---|";
        if (diff.attributed)
            os << "---|";
        if (diff.has_decisions)
            os << "---|";
        os << "\n";
        const std::size_t rows =
            std::min(diff.moves.size(), options.top_moves);
        for (std::size_t i = 0; i < rows; ++i) {
            const LayoutDiff::Move &m = diff.moves[i];
            os << "| " << program.proc(m.proc).name << " | "
               << m.addr_a << " | " << m.addr_b << " | " << m.set_a
               << " | " << m.set_b << " |";
            if (diff.attributed)
                os << " " << signedStr(m.miss_delta) << " |";
            if (diff.has_decisions) {
                os << " ";
                for (std::size_t k = 0;
                     k < m.decision_steps.size() && k < 4; ++k) {
                    if (k)
                        os << " ";
                    os << "#" << m.decision_steps[k];
                }
                if (m.decision_steps.size() > 4)
                    os << " …";
                if (m.decision_steps.empty())
                    os << "-";
                os << " |";
            }
            os << "\n";
        }
        os << "\n";
    }

    if (diff.attributed) {
        auto pairTable = [&](const char *title,
                             const std::vector<LayoutDiff::PairDelta>
                                 &pairs) {
            if (pairs.empty())
                return;
            os << "## " << title;
            if (pairs.size() > options.top_pairs)
                os << " (top " << options.top_pairs << " of "
                   << pairs.size() << ")";
            os << "\n\n| evictor | victim | evictions |\n|---|---|---|\n";
            const std::size_t rows =
                std::min(pairs.size(), options.top_pairs);
            for (std::size_t i = 0; i < rows; ++i) {
                const LayoutDiff::PairDelta &p = pairs[i];
                os << "| " << program.proc(p.evictor).name << " | "
                   << program.proc(p.victim).name << " | " << p.count
                   << " |\n";
            }
            os << "\n";
        };
        pairTable("Conflict pairs created", diff.pairs_created);
        pairTable("Conflict pairs destroyed", diff.pairs_destroyed);
    }
    return os.str();
}

JsonValue
diffToJson(const LayoutDiff &diff, const Program &program)
{
    JsonValue doc = JsonValue::object();
    doc.set("topo_diff", JsonValue::number(1));
    doc.set("program", JsonValue::string(diff.program_name));
    doc.set("cache", JsonValue::string(diff.cache.describe()));
    auto side = [&](const LayoutDiff::Side &s) {
        JsonValue v = JsonValue::object();
        v.set("label", JsonValue::string(s.label));
        v.set("accesses",
              JsonValue::number(static_cast<double>(s.accesses)));
        v.set("misses",
              JsonValue::number(static_cast<double>(s.misses)));
        return v;
    };
    doc.set("a", side(diff.a));
    doc.set("b", side(diff.b));
    doc.set("moved",
            JsonValue::number(static_cast<double>(diff.moves.size())));
    doc.set("unmoved",
            JsonValue::number(static_cast<double>(diff.unmoved)));
    doc.set("attributed", JsonValue::boolean(diff.attributed));
    doc.set("miss_delta", JsonValue::number(static_cast<double>(
                              diff.attributed ? diff.missDelta() : 0)));

    JsonValue moves = JsonValue::array();
    for (const LayoutDiff::Move &m : diff.moves) {
        JsonValue row = JsonValue::object();
        row.set("proc", JsonValue::string(program.proc(m.proc).name));
        row.set("addr_a",
                JsonValue::number(static_cast<double>(m.addr_a)));
        row.set("addr_b",
                JsonValue::number(static_cast<double>(m.addr_b)));
        row.set("set_a", JsonValue::number(m.set_a));
        row.set("set_b", JsonValue::number(m.set_b));
        if (diff.attributed)
            row.set("miss_delta",
                    JsonValue::number(
                        static_cast<double>(m.miss_delta)));
        if (diff.has_decisions) {
            JsonValue steps = JsonValue::array();
            for (std::uint64_t s : m.decision_steps)
                steps.push(
                    JsonValue::number(static_cast<double>(s)));
            row.set("decision_steps", std::move(steps));
        }
        moves.push(std::move(row));
    }
    doc.set("moves", std::move(moves));

    // Sparse complete deltas: every nonzero cell, so the sum
    // invariant is checkable from the artifact alone.
    auto sparse = [](const std::vector<std::int64_t> &deltas,
                     const char *key_name, auto key_of) {
        JsonValue arr = JsonValue::array();
        for (std::size_t i = 0; i < deltas.size(); ++i) {
            if (deltas[i] == 0)
                continue;
            JsonValue row = JsonValue::object();
            row.set(key_name, key_of(i));
            row.set("delta", JsonValue::number(
                                 static_cast<double>(deltas[i])));
            arr.push(std::move(row));
        }
        return arr;
    };
    if (diff.attributed) {
        doc.set("miss_delta_by_proc",
                sparse(diff.miss_delta_by_proc, "proc",
                       [&](std::size_t i) {
                           return JsonValue::string(
                               program.proc(static_cast<ProcId>(i))
                                   .name);
                       }));
        doc.set("set_miss_delta",
                sparse(diff.set_miss_delta, "set", [](std::size_t i) {
                    return JsonValue::number(
                        static_cast<double>(i));
                }));
        auto pairArr = [&](const std::vector<LayoutDiff::PairDelta>
                               &pairs) {
            JsonValue arr = JsonValue::array();
            for (const LayoutDiff::PairDelta &p : pairs) {
                JsonValue row = JsonValue::object();
                row.set("evictor", JsonValue::string(
                                       program.proc(p.evictor).name));
                row.set("victim", JsonValue::string(
                                      program.proc(p.victim).name));
                row.set("count", JsonValue::number(
                                     static_cast<double>(p.count)));
                arr.push(std::move(row));
            }
            return arr;
        };
        doc.set("pairs_created", pairArr(diff.pairs_created));
        doc.set("pairs_destroyed", pairArr(diff.pairs_destroyed));
        doc.set("dropped_pairs_a",
                JsonValue::number(
                    static_cast<double>(diff.dropped_pairs_a)));
        doc.set("dropped_pairs_b",
                JsonValue::number(
                    static_cast<double>(diff.dropped_pairs_b)));
    }
    doc.set("set_occupancy_delta",
            sparse(diff.set_occupancy_delta, "set", [](std::size_t i) {
                return JsonValue::number(static_cast<double>(i));
            }));
    if (diff.has_decisions) {
        doc.set("decisions_algorithm",
                JsonValue::string(diff.decisions_algorithm));
        doc.set("moves_explained",
                JsonValue::number(
                    static_cast<double>(diff.moves_explained)));
    }
    return doc;
}

void
publishDiffMetrics(const LayoutDiff &diff)
{
    MetricsRegistry &reg = MetricsRegistry::current();
    reg.counter("explain.diff_moved").add(diff.moves.size());
    reg.counter("explain.diff_pairs")
        .add(diff.pairs_created.size() + diff.pairs_destroyed.size());
    if (diff.has_decisions && !diff.moves.empty()) {
        reg.gauge("explain.diff_coverage")
            .set(static_cast<double>(diff.moves_explained) /
                 static_cast<double>(diff.moves.size()));
    }
}

} // namespace topo
