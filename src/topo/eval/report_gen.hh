/**
 * @file
 * Comparison reports: "why did this layout win" as data.
 *
 * buildComparisonReport() replays one fetch stream against several
 * candidate layouts with attribution and timeline sinks attached, and
 * collects everything a human (or a regression harness) needs to
 * explain the outcome: side-by-side miss rates, the heaviest
 * evictor→victim procedure pairs, per-set pressure, and windowed
 * miss-rate timelines with per-layout deltas against the first
 * (baseline) candidate. Renderers emit self-contained Markdown and a
 * JSON document parsable by the in-tree JsonValue parser.
 */

#ifndef TOPO_EVAL_REPORT_GEN_HH
#define TOPO_EVAL_REPORT_GEN_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "topo/cache/cache_config.hh"
#include "topo/obs/json.hh"
#include "topo/obs/timeline.hh"
#include "topo/program/layout.hh"
#include "topo/program/program.hh"
#include "topo/trace/fetch_stream.hh"

namespace topo
{

/** One labelled layout to include in a comparison. */
struct LayoutCandidate
{
    std::string label;
    Layout layout;
};

/** Report knobs. */
struct ReportOptions
{
    /** Conflict pairs listed per layout. */
    std::size_t top_pairs = 5;
    /** Hottest sets listed per layout. */
    std::size_t hot_sets = 8;
    /**
     * Timeline window in fetch blocks; 0 picks a window giving ~64
     * samples over the stream.
     */
    std::uint64_t timeline_window = 0;
    /** Conflict-matrix cell budget per layout. */
    std::size_t max_pairs = 4096;
};

/** One conflict-matrix row with names resolved. */
struct ConflictPairRow
{
    std::string evictor;
    std::string victim;
    std::uint64_t count = 0;
};

/** One cache set's pressure. */
struct SetPressureRow
{
    std::uint32_t set = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/** Everything measured for one candidate layout. */
struct LayoutReport
{
    std::string label;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double miss_rate = 0.0;
    std::vector<ConflictPairRow> top_pairs;
    std::uint64_t tracked_pairs = 0;
    std::uint64_t dropped_pairs = 0;
    /** Hottest sets by miss count, descending. */
    std::vector<SetPressureRow> hot_sets;
    /** Full per-set miss counts (heatmap data; JSON only). */
    std::vector<std::uint64_t> set_misses;
    std::vector<TimelineSample> timeline;
    /** Windows where this layout beats / loses to the baseline. */
    std::uint64_t windows_better = 0;
    std::uint64_t windows_worse = 0;
    /** Largest per-window miss-rate gap vs the baseline (signed). */
    double max_window_delta = 0.0;
    /** 3C miss taxonomy (always sums to misses, exactly). */
    std::uint64_t compulsory = 0;
    std::uint64_t capacity = 0;
    std::uint64_t conflict = 0;
    /** Full-run reuse-distance histogram (kReuseBucketCount buckets;
     *  layout-invariant: every candidate reports the same vector). */
    std::vector<std::uint64_t> reuse_hist;
};

/** A full multi-layout comparison over one stream. */
struct ComparisonReport
{
    std::string title;
    std::string cache;
    std::string program;
    std::uint64_t stream_blocks = 0;
    std::uint64_t timeline_window = 0;
    std::vector<LayoutReport> layouts;
};

/**
 * Simulate every candidate with attribution + timeline sinks and
 * assemble the comparison. The first candidate is the baseline for
 * timeline deltas. Layouts must be complete and valid for @p program.
 */
ComparisonReport
buildComparisonReport(const Program &program, const FetchStream &stream,
                      const CacheConfig &cache,
                      const std::vector<LayoutCandidate> &candidates,
                      const ReportOptions &options = {});

/** Render as a self-contained Markdown document. */
void renderReportMarkdown(const ComparisonReport &report,
                          std::ostream &os);

/** Serialise as {"topo_report": 1, ...}. */
JsonValue reportToJson(const ComparisonReport &report);

/**
 * Validate a known topo JSON artifact (topo_report, a topo_report
 * suite document, topo_bench, topo_metrics, topo_decisions, or
 * topo_diff): recognised document
 * type, no unknown top-level or per-row keys, required keys present,
 * and the taxonomy invariants where taxonomy data appears —
 * compulsory + capacity + conflict == misses (exactly, per layout,
 * per window, and per bench run) and reuse histograms of
 * kReuseBucketCount buckets summing to the access count. Throws a
 * data-error TopoError on any violation.
 *
 * @return The recognised document type ("topo_report",
 *         "topo_report_suite", "topo_bench", "topo_metrics",
 *         "topo_decisions", or "topo_diff").
 */
std::string validateArtifactJson(const JsonValue &doc);

/**
 * Unicode block sparkline of a series scaled to [lo, hi]; one glyph
 * per point (empty string for an empty series).
 */
std::string sparkline(const std::vector<double> &values, double lo,
                      double hi);

} // namespace topo

#endif // TOPO_EVAL_REPORT_GEN_HH
