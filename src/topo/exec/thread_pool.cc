#include "topo/exec/thread_pool.hh"

#include <limits>

#include "topo/util/error.hh"

namespace topo
{

namespace
{

/**
 * True while this thread executes tasks of a pool batch. Covers both
 * the pool workers and the calling thread (which participates as the
 * final lane) — a nested parallelFor from EITHER must degrade to an
 * inline loop, or it would overwrite the active batch state while
 * other lanes are still claiming tasks from it.
 */
thread_local bool t_in_batch = false;

} // namespace

int
hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

bool
ThreadPool::onWorkerThread()
{
    return t_in_batch;
}

ThreadPool::ThreadPool(int jobs) : jobs_(jobs)
{
    require(jobs >= 1, "ThreadPool: jobs must be >= 1");
    workers_.reserve(static_cast<std::size_t>(jobs - 1));
    for (int i = 0; i < jobs - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] {
            return stopping_ || generation_ != seen_generation;
        });
        if (stopping_)
            return;
        seen_generation = generation_;
        ++workers_active_;
        lock.unlock();

        drainBatch();

        lock.lock();
        if (--workers_active_ == 0)
            batch_done_.notify_all();
    }
}

void
ThreadPool::drainBatch()
{
    t_in_batch = true;
    for (;;) {
        const std::size_t index =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (index >= count_)
            break;
        try {
            (*body_)(index);
        } catch (...) {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (!error_ || index < error_index_) {
                error_index_ = index;
                error_ = std::current_exception();
            }
        }
    }
    t_in_batch = false;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    // Serial pool, a nested call from a worker lane, or a batch too
    // small to split: run inline in strict index order. This is the
    // `--jobs 1` path and must stay identical to a plain loop.
    if (jobs_ == 1 || onWorkerThread() || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        error_index_ = std::numeric_limits<std::size_t>::max();
        ++generation_;
    }
    work_ready_.notify_all();

    // The caller participates as the final lane.
    drainBatch();

    std::unique_lock<std::mutex> lock(mutex_);
    batch_done_.wait(lock, [&] { return workers_active_ == 0; });
    body_ = nullptr;
    count_ = 0;
    if (error_)
        std::rethrow_exception(error_);
}

} // namespace topo
