/**
 * @file
 * Fixed-size thread pool with a deterministic fork/join primitive.
 *
 * The pool owns `jobs - 1` worker threads; the caller of parallelFor
 * participates as the jobs-th lane, so `jobs == 1` spawns no threads
 * at all and runs every task inline on the calling thread — that path
 * is bit-identical to a plain serial loop, which is the foundation of
 * the `--jobs N` ≡ `--jobs 1` determinism contract (DESIGN.md §9).
 *
 * Tasks are claimed from a shared atomic index (queue order, lowest
 * index first), so the pool load-balances uneven task costs without
 * any per-task allocation. Nested parallelFor calls from inside a
 * worker thread degrade to inline execution instead of deadlocking on
 * the single shared batch slot.
 */

#ifndef TOPO_EXEC_THREAD_POOL_HH
#define TOPO_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace topo
{

/** `max(1, std::thread::hardware_concurrency())` — the --jobs default. */
int hardwareJobs();

/**
 * Shared-index fork/join pool. One batch is active at a time; workers
 * sleep between batches. Construction with jobs == 1 is free (no
 * threads, no synchronisation on the fast path).
 */
class ThreadPool
{
  public:
    /** @param jobs Total lanes including the caller; must be >= 1. */
    explicit ThreadPool(int jobs);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (worker threads + the participating caller). */
    int jobs() const { return jobs_; }

    /**
     * Run body(i) for every i in [0, count), blocking until all tasks
     * finish. Tasks are claimed in index order; with jobs == 1 (or
     * when called from inside a pool worker) the loop runs inline in
     * strict index order on the calling thread.
     *
     * If any task throws, the exception thrown by the lowest task
     * index is rethrown after the batch drains (remaining tasks still
     * run; determinism of side effects is the task author's concern).
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * True while the calling thread is executing a task of an active
     * batch — on a pool worker OR on the caller lane (parallelFor's
     * caller drains tasks too). Nested parallelFor calls check this
     * and degrade to an inline loop; a second batch on the pool while
     * one is active would corrupt the shared batch state.
     */
    static bool onWorkerThread();

  private:
    void workerLoop();
    /** Claim-and-run until the shared index exhausts the batch. */
    void drainBatch();

    const int jobs_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable batch_done_;
    bool stopping_ = false;

    /** Batch slot (guarded by mutex_ except the claim index). */
    std::uint64_t generation_ = 0;
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    int workers_active_ = 0;

    /** Lowest-index task failure, rethrown by parallelFor. */
    std::size_t error_index_ = 0;
    std::exception_ptr error_;
};

} // namespace topo

#endif // TOPO_EXEC_THREAD_POOL_HH
