/**
 * @file
 * Process-wide execution configuration: the `--jobs N` / `TOPO_JOBS`
 * knob, the shared ThreadPool, and deterministic parallel helpers.
 *
 * Determinism contract (DESIGN.md §9): every parallel entry point in
 * the pipeline produces byte-identical output for any jobs value.
 * parallelMap guarantees the result vector is ordered by task index
 * (never by completion order); callers are responsible for keeping
 * task bodies independent and for merging side effects (metrics,
 * profile shards) in fixed task order after the join.
 *
 * Until initExec runs, execJobs() is 1 and everything is serial —
 * library users and unit tests stay single-threaded unless they opt
 * in. Tools opt in through toolMain, which defaults --jobs to
 * hardwareJobs().
 */

#ifndef TOPO_EXEC_EXEC_HH
#define TOPO_EXEC_EXEC_HH

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "topo/exec/thread_pool.hh"
#include "topo/util/error.hh"
#include "topo/util/options.hh"

namespace topo
{

/**
 * Configure the execution layer from --jobs / TOPO_JOBS. Values < 1 or
 * non-numeric raise a user-error TopoError (exit code 1 in tools).
 * @param fallback Jobs when the option is absent (tools pass
 *                 hardwareJobs(); 0 means "keep the current setting").
 */
void initExec(const Options &opts, int fallback);

/** Set the jobs count directly (tests; pool is rebuilt lazily). */
void setExecJobs(int jobs);

/** Configured lane count; 1 until initExec/setExecJobs opt in. */
int execJobs();

/** The shared pool, created lazily with execJobs() lanes. */
ThreadPool &execPool();

/**
 * Run body(i) for i in [0, count) on the shared pool. Inline and in
 * strict index order when execJobs() == 1.
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &body);

/**
 * Map [0, count) through fn on the shared pool; results land by task
 * index regardless of completion order, so the returned vector is
 * identical to the serial `for` loop's. T needs to be movable, not
 * default-constructible.
 */
template <typename Fn>
auto
parallelMap(std::size_t count, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using T = decltype(fn(std::size_t{}));
    std::vector<std::optional<T>> slots(count);
    parallelFor(count, [&](std::size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(count);
    for (std::optional<T> &slot : slots)
        out.push_back(std::move(*slot));
    return out;
}

} // namespace topo

#endif // TOPO_EXEC_EXEC_HH
