#include "topo/exec/exec.hh"

#include <memory>
#include <mutex>

namespace topo
{

namespace
{

std::mutex g_exec_mutex;
int g_jobs = 1;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

void
initExec(const Options &opts, int fallback)
{
    if (!opts.has("jobs") && fallback == 0)
        return;
    const std::int64_t jobs = opts.getInt("jobs", fallback);
    require(jobs >= 1 && jobs <= 4096,
            "--jobs must be an integer in [1, 4096], got " +
                std::to_string(jobs));
    setExecJobs(static_cast<int>(jobs));
}

void
setExecJobs(int jobs)
{
    require(jobs >= 1, "setExecJobs: jobs must be >= 1");
    const std::lock_guard<std::mutex> lock(g_exec_mutex);
    if (jobs == g_jobs && g_pool)
        return;
    g_pool.reset();
    g_jobs = jobs;
}

int
execJobs()
{
    const std::lock_guard<std::mutex> lock(g_exec_mutex);
    return g_jobs;
}

ThreadPool &
execPool()
{
    const std::lock_guard<std::mutex> lock(g_exec_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_jobs);
    return *g_pool;
}

void
parallelFor(std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    if (execJobs() == 1 || ThreadPool::onWorkerThread()) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    execPool().parallelFor(count, body);
}

} // namespace topo
