/**
 * @file
 * Procedure splitting (Pettis & Hansen's "fluff" separation).
 *
 * Section 8 of the paper notes that procedure splitting is orthogonal
 * to whole-procedure placement and can be combined with GBSC for
 * further improvement. This module implements it at chunk granularity:
 * chunks of a procedure that the training trace never (or rarely)
 * executes are moved into a separate cold procedure, so the hot part
 * packs densely and the placement algorithms only have to lay out the
 * code that actually runs.
 *
 * The split is a program transformation: it produces a derived Program
 * (hot and cold parts as separate procedures), a mapping from original
 * code positions to derived ones, and a trace transformer so existing
 * traces can be replayed against the derived program.
 */

#ifndef TOPO_PLACEMENT_SPLITTING_HH
#define TOPO_PLACEMENT_SPLITTING_HH

#include <cstdint>
#include <vector>

#include "topo/profile/chunk_map.hh"
#include "topo/program/program.hh"
#include "topo/trace/trace.hh"

namespace topo
{

class DecisionLog;

/** Options of a splitting transformation. */
struct SplitOptions
{
    /** Split granularity in bytes (chunk size). */
    std::uint32_t chunk_bytes = 256;
    /**
     * A chunk is hot when the training trace fetched at least this
     * many bytes from it. 1 keeps everything that ever ran.
     */
    std::uint64_t min_fetched_bytes = 1;
    /** Optional decision-provenance sink; null disables recording. */
    DecisionLog *decisions = nullptr;
};

/**
 * The derived program and the mapping back to the original.
 */
class SplitProgram
{
  public:
    /** Per-original-procedure derived ids. */
    struct ProcSplit
    {
        /** Derived procedure holding the hot chunks (kInvalidProc if
         *  the original had no executed chunk). */
        ProcId hot = kInvalidProc;
        /** Derived procedure holding the cold chunks (kInvalidProc if
         *  every chunk was hot). */
        ProcId cold = kInvalidProc;
        bool wasSplit() const
        {
            return hot != kInvalidProc && cold != kInvalidProc;
        }
    };

    /** The derived program (hot parts first aids nothing; order is
     *  original order with cold parts appended). */
    const Program &program() const { return program_; }

    /** Derived ids of an original procedure. */
    const ProcSplit &splitOf(ProcId original) const;

    /** Number of original procedures that were actually split. */
    std::size_t splitCount() const { return split_count_; }

    /** Total bytes moved into cold procedures. */
    std::uint64_t coldBytes() const { return cold_bytes_; }

    /**
     * Remap a trace recorded against the original program onto the
     * derived program. Runs crossing hot/cold boundaries are divided;
     * contiguous pieces within one derived procedure are coalesced.
     */
    Trace transform(const Trace &original) const;

  private:
    friend SplitProgram splitProcedures(const Program &, const Trace &,
                                        const SplitOptions &);
    friend SplitProgram explodeProcedures(const Program &,
                                          std::uint32_t);

    Program program_{"split"};
    std::vector<ProcSplit> splits_;
    /** First original chunk id of each original procedure. */
    std::vector<ChunkId> first_chunk_;
    /** Per original chunk: derived procedure and byte offset. */
    std::vector<ProcId> chunk_proc_;
    std::vector<std::uint32_t> chunk_offset_;
    std::uint32_t chunk_bytes_ = 0;
    std::size_t original_proc_count_ = 0;
    std::size_t split_count_ = 0;
    std::uint64_t cold_bytes_ = 0;
};

/**
 * Split every procedure of @p program into hot and cold parts based on
 * per-chunk fetch counts from @p training trace.
 */
SplitProgram splitProcedures(const Program &program, const Trace &training,
                             const SplitOptions &options = {});

/**
 * Per-chunk fetched-byte counts of a trace (helper, also useful for
 * diagnostics).
 */
std::vector<std::uint64_t> chunkHeat(const Program &program,
                                     const ChunkMap &chunks,
                                     const Trace &trace);

/**
 * Explode every procedure into one derived procedure *per chunk* —
 * the granularity limit of the paper's Section 1 remark that the
 * techniques apply to code blocks of any size. Placing the exploded
 * program gives an upper bound on what any whole-procedure placement
 * could achieve (each chunk's cache line is chosen freely). splitOf()
 * reports the first chunk's derived procedure as `hot` and leaves
 * `cold` invalid.
 */
SplitProgram explodeProcedures(const Program &program,
                               std::uint32_t chunk_bytes = 256);

} // namespace topo

#endif // TOPO_PLACEMENT_SPLITTING_HH
