/**
 * @file
 * MergeGraph: the mutable "working graph" shared by the greedy merge
 * loops of PH, HKC-style processing, and GBSC (Sections 2 and 4.1).
 *
 * Nodes start as individual code blocks; the algorithm repeatedly
 * extracts the heaviest edge and merges its endpoints, folding
 * parallel edges by weight addition, until no edges remain. Ties are
 * broken deterministically (smallest node pair) so experiments are
 * reproducible; the paper notes ties are otherwise arbitrary.
 */

#ifndef TOPO_PLACEMENT_MERGE_GRAPH_HH
#define TOPO_PLACEMENT_MERGE_GRAPH_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "topo/profile/weighted_graph.hh"
#include "topo/util/rng.hh"

namespace topo
{

/** Mutable working copy of a relationship graph. */
class MergeGraph
{
  public:
    /** A working edge between two node representatives. */
    struct Edge
    {
        BlockId u = 0;
        BlockId v = 0;
        double weight = 0.0;
        bool valid = false;
    };

    /**
     * Build the working graph.
     *
     * @param base Relationship graph to copy.
     * @param mask Optional node filter: when non-null, only nodes with
     *             mask[id] true participate (edges to masked-out nodes
     *             are dropped).
     */
    explicit MergeGraph(const WeightedGraph &base,
                        const std::vector<bool> *mask = nullptr);

    /** Number of remaining edges. */
    std::size_t edgeCount() const { return edge_count_; }

    /** True when no edges remain (the merge loop's exit condition). */
    bool done() const { return edge_count_ == 0; }

    /**
     * Heaviest remaining edge; Edge::valid is false when none remain.
     * Ties: larger weight wins; equal weights pick the smallest
     * (min(u,v), max(u,v)) pair — unless a tie breaker is installed,
     * in which case a uniformly random max-weight edge is returned
     * (the paper's Section 5.1 notes such ties are otherwise decided
     * arbitrarily and can change the whole layout).
     */
    Edge maxEdge() const;

    /**
     * Install a seeded random tie breaker for maxEdge. Used by the
     * tie-sensitivity ablation; the default deterministic rule keeps
     * experiments reproducible.
     */
    void setTieBreaker(std::uint64_t seed);

    /**
     * Merge node @p v into node @p u: v's edges are re-pointed at u
     * (parallel edges folded by weight addition), the u-v edge is
     * removed, and v becomes dead. u remains the representative.
     */
    void mergeInto(BlockId u, BlockId v);

    /** True when the node is still a live representative. */
    bool alive(BlockId id) const { return alive_[id]; }

    /** Current weight between two live nodes (0 when no edge). */
    double weightBetween(BlockId u, BlockId v) const;

  private:
    std::vector<std::unordered_map<BlockId, double>> adjacency_;
    std::vector<bool> alive_;
    std::size_t edge_count_ = 0;
    mutable std::unique_ptr<Rng> tie_rng_;
};

} // namespace topo

#endif // TOPO_PLACEMENT_MERGE_GRAPH_HH
