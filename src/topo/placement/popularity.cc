#include "topo/placement/popularity.hh"

#include <algorithm>
#include <numeric>

#include "topo/util/error.hh"

namespace topo
{

PopularSet
selectPopular(const Program &program, const TraceStats &stats,
              const PopularityOptions &options)
{
    require(stats.bytes_fetched.size() == program.procCount(),
            "selectPopular: stats/program mismatch");
    require(options.coverage > 0.0 && options.coverage <= 1.0,
            "selectPopular: coverage must be in (0, 1]");

    std::vector<ProcId> order(program.procCount());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&stats](ProcId a, ProcId b) {
                         return stats.bytes_fetched[a] >
                                stats.bytes_fetched[b];
                     });

    PopularSet set;
    set.mask.assign(program.procCount(), false);
    const double total = static_cast<double>(stats.total_bytes);
    std::uint64_t covered_bytes = 0;
    for (ProcId id : order) {
        if (stats.bytes_fetched[id] == 0)
            break; // untouched procedures are never popular
        const bool coverage_met =
            total > 0.0 &&
            static_cast<double>(covered_bytes) >= options.coverage * total;
        const bool above_min = set.count >= options.min_procs;
        if (coverage_met && above_min)
            break;
        if (options.max_procs != 0 && set.count >= options.max_procs)
            break;
        set.mask[id] = true;
        ++set.count;
        set.bytes += program.proc(id).size_bytes;
        covered_bytes += stats.bytes_fetched[id];
    }
    set.covered = total > 0.0
                      ? static_cast<double>(covered_bytes) / total
                      : 0.0;
    return set;
}

} // namespace topo
