#include "topo/placement/refine.hh"

#include <algorithm>
#include <map>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gbsc.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/**
 * Cache-line colours currently occupied by each placed chunk. Ordered
 * map so that no future iteration can pick up hash order; today only
 * keyed lookups touch it, but the determinism audit (DESIGN.md §9)
 * keeps every container feeding placement decisions ordered.
 */
using ColorMap = std::map<ChunkId, std::vector<std::uint32_t>>;

/** Add or remove one procedure's chunks from the colour map. */
void
applyProc(ColorMap &colors, const PlacementContext &ctx, ProcId proc,
          std::uint32_t offset, bool add)
{
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;
    const std::uint32_t len = ctx.program->sizeInLines(proc, line_bytes);
    for (std::uint32_t line = 0; line < len; ++line) {
        const ChunkId chunk =
            ctx.chunks->chunkAtLine(proc, line, line_bytes);
        const std::uint32_t color = (offset + line) % cache_lines;
        auto &bucket = colors[chunk];
        if (add) {
            bucket.push_back(color);
        } else {
            auto it = std::find(bucket.begin(), bucket.end(), color);
            require(it != bucket.end(), "refineLayout: internal colour "
                                        "bookkeeping error");
            bucket.erase(it);
            if (bucket.empty())
                colors.erase(chunk);
        }
    }
}

} // namespace

RefineResult
refineLayout(const PlacementContext &ctx, const Layout &base,
             const RefineOptions &options)
{
    ctx.requireBasics("refineLayout");
    require(ctx.chunks != nullptr && ctx.trg_place != nullptr,
            "refineLayout: context needs chunks and TRG_place");
    PhaseTimer timer("placement.refine");
    const Program &program = *ctx.program;
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;
    const WeightedGraph &trg_place = *ctx.trg_place;

    std::vector<std::uint32_t> offsets(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        offsets[i] = static_cast<std::uint32_t>(
            base.startLine(static_cast<ProcId>(i), line_bytes) %
            cache_lines);
    }
    const std::vector<bool> *include =
        ctx.popular.empty() ? nullptr : &ctx.popular;

    RefineResult result;
    result.initial_metric = Gbsc::conflictMetric(ctx, offsets, include);

    // Movable set: popular procedures, hottest first.
    std::vector<ProcId> movable;
    for (ProcId id : procsByHeat(ctx)) {
        if (ctx.isPopular(id))
            movable.push_back(id);
    }

    ColorMap colors;
    for (ProcId id : movable)
        applyProc(colors, ctx, id, offsets[id], true);

    const bool log_passes = logEnabled(LogLevel::kDebug);
    std::vector<double> cost(cache_lines);
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
        bool improved = false;
        ++result.passes;
        const std::uint64_t moves_before = result.moves;
        for (ProcId proc : movable) {
            applyProc(colors, ctx, proc, offsets[proc], false);
            // Sparse cost-per-offset accumulation (merge_nodes style):
            // an edge (chunk-of-proc at line l, other chunk at colour
            // cq) collides when offset == cq - l (mod lines).
            std::fill(cost.begin(), cost.end(), 0.0);
            const std::uint32_t len =
                program.sizeInLines(proc, line_bytes);
            for (std::uint32_t line = 0; line < len; ++line) {
                const ChunkId chunk =
                    ctx.chunks->chunkAtLine(proc, line, line_bytes);
                // Sorted neighbours: deterministic FP accumulation
                // order regardless of hash layout (DESIGN.md §9).
                // The CSR memoizes the sort, so re-querying the same
                // chunk for consecutive lines is an O(1) span lookup.
                for (const auto &[other, weight] :
                     trg_place.sortedNeighbors(chunk)) {
                    auto it = colors.find(other);
                    if (it == colors.end())
                        continue;
                    for (const std::uint32_t cq : it->second) {
                        cost[(cq + cache_lines - line % cache_lines) %
                             cache_lines] += weight;
                    }
                }
            }
            // Best-improvement; ties keep the current offset so the
            // search terminates.
            std::uint32_t best = offsets[proc];
            for (std::uint32_t o = 0; o < cache_lines; ++o) {
                if (cost[o] < cost[best])
                    best = o;
            }
            if (best != offsets[proc] &&
                cost[best] < cost[offsets[proc]]) {
                if (ctx.decisions)
                    ctx.decisions->recordChoice(
                        DecisionKind::kPlace, "refine.move", proc,
                        kInvalidProc, cost[offsets[proc]], best, cost,
                        "keep-current-offset");
                offsets[proc] = best;
                ++result.moves;
                improved = true;
            }
            applyProc(colors, ctx, proc, offsets[proc], true);
        }
        if (log_passes) {
            logDebug("refine", "refine pass",
                     {{"pass", pass + 1},
                      {"moves", result.moves - moves_before},
                      {"total_moves", result.moves},
                      {"improved", improved}});
        }
        if (!improved)
            break;
    }

    result.final_metric = Gbsc::conflictMetric(ctx, offsets, include);
    result.layout = Layout::fromCacheOffsets(
        program, base.orderByAddress(), offsets, line_bytes,
        cache_lines);
    MetricsRegistry &metrics = MetricsRegistry::current();
    metrics.counter("refine.passes").add(result.passes);
    metrics.counter("refine.moves").add(result.moves);
    timer.stop();
    if (log_passes) {
        logDebug("refine", "refinement done",
                 {{"passes", result.passes},
                  {"moves", result.moves},
                  {"initial_metric", result.initial_metric},
                  {"final_metric", result.final_metric},
                  {"ms", timer.elapsedMs()}});
    }
    return result;
}

} // namespace topo
