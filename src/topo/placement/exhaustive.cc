#include "topo/placement/exhaustive.hh"

#include <cmath>
#include <numeric>

#include "topo/placement/gbsc.hh"
#include "topo/util/error.hh"

namespace topo
{

ExhaustivePlacement::ExhaustivePlacement(Objective objective,
                                         const FetchStream *stream,
                                         ExhaustiveOptions options)
    : objective_(objective), stream_(stream), options_(options)
{
    if (objective_ == Objective::SimulatedMisses) {
        require(stream_ != nullptr,
                "ExhaustivePlacement: SimulatedMisses needs a stream");
    }
}

Layout
ExhaustivePlacement::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("ExhaustivePlacement");
    if (objective_ == Objective::TrgMetric) {
        require(ctx.chunks != nullptr && ctx.trg_place != nullptr,
                "ExhaustivePlacement: TrgMetric needs chunks and "
                "TRG_place");
    }
    const Program &program = *ctx.program;
    const std::size_t n = program.procCount();
    require(n >= 1, "ExhaustivePlacement: empty program");
    require(n <= options_.max_procs,
            "ExhaustivePlacement: too many procedures for exhaustive "
            "search");
    const std::uint32_t lines = ctx.cache.lineCount();
    const double width = std::pow(static_cast<double>(lines),
                                  static_cast<double>(n - 1));
    require(width <= static_cast<double>(options_.max_combinations),
            "ExhaustivePlacement: search space exceeds the combination "
            "limit");

    // Emission order: procedures by id; offsets realised via
    // fromCacheOffsets, so candidate layouts are always valid.
    std::vector<ProcId> order(n);
    std::iota(order.begin(), order.end(), 0);

    auto evaluate = [&](const std::vector<std::uint32_t> &offsets,
                        Layout *out_layout) {
        const Layout layout = Layout::fromCacheOffsets(
            program, order, offsets, ctx.cache.line_bytes, lines);
        double value = 0.0;
        if (objective_ == Objective::TrgMetric) {
            value = Gbsc::conflictMetric(ctx, offsets);
        } else {
            value = static_cast<double>(
                simulateLayout(program, layout, *stream_, ctx.cache)
                    .misses);
        }
        if (out_layout)
            *out_layout = layout;
        return value;
    };

    std::vector<std::uint32_t> offsets(n, 0);
    std::vector<std::uint32_t> best_offsets(n, 0);
    double best = evaluate(offsets, nullptr);
    // Odometer over offsets[1..n-1]; offsets[0] stays pinned at 0.
    while (true) {
        std::size_t digit = n - 1;
        for (; digit >= 1; --digit) {
            if (++offsets[digit] < lines)
                break;
            offsets[digit] = 0;
            if (digit == 1) {
                digit = 0;
                break;
            }
        }
        if (digit == 0 || n == 1)
            break;
        const double value = evaluate(offsets, nullptr);
        if (value < best) {
            best = value;
            best_offsets = offsets;
        }
    }
    best_objective_ = best;
    Layout layout(0);
    evaluate(best_offsets, &layout);
    return layout;
}

} // namespace topo
