#include "topo/placement/cache_coloring.hh"

#include <algorithm>
#include <numeric>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gap_fill.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

constexpr std::uint32_t kNoUnit = ~std::uint32_t{0};

/** A compound of placed procedures with unit-relative line offsets. */
struct Unit
{
    std::vector<std::pair<ProcId, std::uint64_t>> procs;
    std::uint64_t len_lines = 0;
    bool alive = false;
};

/** Working state of one HKC run. */
struct Coloring
{
    const Program &program;
    const WeightedGraph &wcg;
    std::uint32_t line_bytes;
    std::uint32_t cache_lines;
    std::vector<Unit> units;
    std::vector<std::uint32_t> unit_of;
    std::vector<std::uint64_t> start_line; // unit-relative, per proc
    std::vector<bool> popular;
    DecisionLog *decisions = nullptr;

    Coloring(const PlacementContext &ctx)
        : program(*ctx.program),
          wcg(*ctx.wcg),
          line_bytes(ctx.cache.line_bytes),
          cache_lines(ctx.cache.lineCount()),
          unit_of(ctx.program->procCount(), kNoUnit),
          start_line(ctx.program->procCount(), 0),
          decisions(ctx.decisions)
    {
        popular.assign(program.procCount(), true);
        if (!ctx.popular.empty())
            popular = ctx.popular;
    }

    std::uint64_t
    lines(ProcId p) const
    {
        return program.sizeInLines(p, line_bytes);
    }

    /**
     * Accumulate, for every candidate start colour s of procedure
     * @p q, the weighted number of colour collisions with procedure
     * @p p (already placed; colours derived from its unit-relative
     * start line). Sparse accumulation: one increment per line pair.
     */
    void
    accumulateConflicts(std::vector<double> &cost, ProcId p, double weight,
                        std::uint64_t q_lines) const
    {
        const std::uint64_t p_start = start_line[p];
        const std::uint64_t p_len = lines(p);
        for (std::uint64_t lp = 0; lp < p_len; ++lp) {
            const std::uint64_t cp = (p_start + lp) % cache_lines;
            for (std::uint64_t lq = 0; lq < q_lines; ++lq) {
                const std::uint64_t s =
                    (cp + cache_lines - lq % cache_lines) % cache_lines;
                cost[s] += weight;
            }
        }
    }

    /** Report a colour choice scanned as gaps past a unit tail. */
    void
    recordGapChoice(const char *stage, ProcId a, ProcId b, double weight,
                    std::uint64_t best_gap, std::uint64_t tail_color,
                    const std::vector<double> &cost) const
    {
        std::vector<double> by_gap(cache_lines);
        for (std::uint64_t g = 0; g < cache_lines; ++g)
            by_gap[g] = cost[(tail_color + g) % cache_lines];
        decisions->recordChoice(DecisionKind::kColor, stage, a, b, weight,
                                best_gap, by_gap,
                                "smallest-gap-past-tail");
    }

    /** Create a fresh unit holding procedures u then v, adjacent. */
    void
    createUnit(ProcId u, ProcId v, double weight)
    {
        if (decisions) {
            DecisionRecord rec;
            rec.kind = DecisionKind::kMerge;
            rec.stage = "hkc.create";
            rec.a = u;
            rec.b = v;
            rec.weight = weight;
            rec.tie_break = "heaviest-edge-first";
            decisions->record(rec);
        }
        Unit unit;
        unit.alive = true;
        unit.procs.emplace_back(u, 0);
        start_line[u] = 0;
        unit.procs.emplace_back(v, lines(u));
        start_line[v] = lines(u);
        unit.len_lines = lines(u) + lines(v);
        units.push_back(std::move(unit));
        unit_of[u] = unit_of[v] =
            static_cast<std::uint32_t>(units.size() - 1);
    }

    /**
     * Attach unplaced procedure @p q to the unit holding @p anchor,
     * at the tail, with the colour-conflict-minimising gap against
     * q's already-placed call-graph neighbours in that unit.
     */
    void
    attach(ProcId q, ProcId anchor, double weight)
    {
        const std::uint32_t ui = unit_of[anchor];
        Unit &unit = units[ui];
        const std::uint64_t q_lines = lines(q);

        std::vector<double> cost(cache_lines, 0.0);
        // Sorted neighbours: the FP accumulation order must not depend
        // on hash layout (DESIGN.md §9).
        for (const auto &[n, w] : wcg.sortedNeighbors(q)) {
            if (unit_of[n] == ui)
                accumulateConflicts(cost, n, w, q_lines);
        }
        // Choose the start colour with the least conflict; among
        // equals, the one needing the smallest gap past the tail.
        const std::uint64_t tail_color = unit.len_lines % cache_lines;
        std::uint64_t best_gap = 0;
        double best_cost = cost[tail_color];
        for (std::uint64_t g = 1; g < cache_lines; ++g) {
            const std::uint64_t s = (tail_color + g) % cache_lines;
            if (cost[s] < best_cost) {
                best_cost = cost[s];
                best_gap = g;
            }
        }
        if (decisions)
            recordGapChoice("hkc.attach", q, anchor, weight, best_gap,
                            tail_color, cost);
        const std::uint64_t start = unit.len_lines + best_gap;
        unit.procs.emplace_back(q, start);
        start_line[q] = start;
        unit.len_lines = start + q_lines;
        unit_of[q] = ui;
    }

    /**
     * Merge the unit of @p v after the unit of @p u, choosing the gap
     * that minimises weighted colour conflicts across all call-graph
     * edges crossing the two units ("already mapped procedures may
     * move as long as they do not conflict with prior decisions").
     */
    void
    mergeUnits(ProcId u, ProcId v, double weight)
    {
        const std::uint32_t ua = unit_of[u];
        const std::uint32_t ub = unit_of[v];
        Unit &a = units[ua];
        Unit &b = units[ub];

        std::vector<double> cost(cache_lines, 0.0);
        // For every cross edge (p in a, q in b, w): a collision occurs
        // when colour(p-line) == colour(q-line) after b is shifted to
        // start at colour s; accumulate w at the offending s.
        for (const auto &[q, q_off] : b.procs) {
            for (const auto &[p, w] : wcg.sortedNeighbors(q)) {
                if (unit_of[p] != ua)
                    continue;
                const std::uint64_t p_start = start_line[p];
                const std::uint64_t p_len = lines(p);
                const std::uint64_t q_len = lines(q);
                for (std::uint64_t lp = 0; lp < p_len; ++lp) {
                    const std::uint64_t cp =
                        (p_start + lp) % cache_lines;
                    for (std::uint64_t lq = 0; lq < q_len; ++lq) {
                        const std::uint64_t qline =
                            (q_off + lq) % cache_lines;
                        const std::uint64_t s =
                            (cp + cache_lines - qline) % cache_lines;
                        cost[s] += w;
                    }
                }
            }
        }
        const std::uint64_t tail_color = a.len_lines % cache_lines;
        std::uint64_t best_gap = 0;
        double best_cost = cost[tail_color];
        for (std::uint64_t g = 1; g < cache_lines; ++g) {
            const std::uint64_t s = (tail_color + g) % cache_lines;
            if (cost[s] < best_cost) {
                best_cost = cost[s];
                best_gap = g;
            }
        }
        if (decisions)
            recordGapChoice("hkc.merge", u, v, weight, best_gap,
                            tail_color, cost);
        const std::uint64_t shift = a.len_lines + best_gap;
        for (const auto &[q, q_off] : b.procs) {
            a.procs.emplace_back(q, q_off + shift);
            start_line[q] = q_off + shift;
            unit_of[q] = ua;
        }
        a.len_lines = shift + b.len_lines;
        b.alive = false;
        b.procs.clear();
        b.len_lines = 0;
    }
};

} // namespace

Layout
CacheColoring::place(const PlacementContext &ctx) const
{
    ctx.requireBasics("CacheColoring");
    require(ctx.wcg != nullptr, "CacheColoring: context has no WCG");
    require(ctx.wcg->nodeCount() == ctx.program->procCount(),
            "CacheColoring: WCG node count mismatch");
    PhaseTimer timer("placement.hkc");

    const Program &program = *ctx.program;
    Coloring state(ctx);

    // Popular-procedure WCG edges, heaviest first (ties: smaller pair).
    std::vector<WeightedGraph::Edge> edges;
    for (const WeightedGraph::Edge &e : ctx.wcg->edges()) {
        if (state.popular[e.u] && state.popular[e.v])
            edges.push_back(e);
    }
    std::sort(edges.begin(), edges.end(),
              [](const WeightedGraph::Edge &x, const WeightedGraph::Edge &y) {
                  if (x.weight != y.weight)
                      return x.weight > y.weight;
                  if (x.u != y.u)
                      return x.u < y.u;
                  return x.v < y.v;
              });

    MetricsRegistry &metrics = MetricsRegistry::current();
    const bool log_passes = logEnabled(LogLevel::kDebug);
    std::uint64_t units_created = 0, attaches = 0, unit_merges = 0;
    for (const WeightedGraph::Edge &e : edges) {
        const bool u_placed = state.unit_of[e.u] != kNoUnit;
        const bool v_placed = state.unit_of[e.v] != kNoUnit;
        const char *action = "skip";
        if (!u_placed && !v_placed) {
            state.createUnit(e.u, e.v, e.weight);
            ++units_created;
            action = "create";
        } else if (u_placed && !v_placed) {
            state.attach(e.v, e.u, e.weight);
            ++attaches;
            action = "attach";
        } else if (!u_placed && v_placed) {
            state.attach(e.u, e.v, e.weight);
            ++attaches;
            action = "attach";
        } else if (state.unit_of[e.u] != state.unit_of[e.v]) {
            state.mergeUnits(e.u, e.v, e.weight);
            ++unit_merges;
            action = "merge";
        } else if (ctx.decisions) {
            // Both in the same unit: alignment already decided; skip.
            DecisionRecord rec;
            rec.kind = DecisionKind::kReject;
            rec.stage = "hkc.skip";
            rec.a = e.u;
            rec.b = e.v;
            rec.weight = e.weight;
            rec.tie_break = "alignment-already-fixed";
            ctx.decisions->record(rec);
        }
        if (log_passes) {
            logDebug("hkc", "edge pass",
                     {{"u", e.u},
                      {"v", e.v},
                      {"weight", e.weight},
                      {"action", action}});
        }
    }
    metrics.counter("hkc.edges_considered").add(edges.size());
    metrics.counter("hkc.units_created").add(units_created);
    metrics.counter("hkc.attaches").add(attaches);
    metrics.counter("hkc.unit_merges").add(unit_merges);

    // Popular procedures with no popular edge each get their own unit.
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        const auto id = static_cast<ProcId>(i);
        if (!state.popular[id] || state.unit_of[id] != kNoUnit)
            continue;
        Unit unit;
        unit.alive = true;
        unit.procs.emplace_back(id, 0);
        unit.len_lines = state.lines(id);
        state.units.push_back(std::move(unit));
        state.unit_of[id] = static_cast<std::uint32_t>(
            state.units.size() - 1);
        state.start_line[id] = 0;
    }

    // --- Emission: units ordered by hottest member; internal gaps are
    // preserved (intra-unit colours shift uniformly with the base, so
    // conflict decisions survive) and filled with unpopular code.
    std::vector<std::uint32_t> unit_order;
    for (std::uint32_t uidx = 0; uidx < state.units.size(); ++uidx) {
        if (state.units[uidx].alive)
            unit_order.push_back(uidx);
    }
    auto unit_heat = [&](std::uint32_t uidx) {
        double h = 0.0;
        for (const auto &[p, off] : state.units[uidx].procs)
            h = std::max(h, ctx.heatOf(p));
        return h;
    };
    std::stable_sort(unit_order.begin(), unit_order.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                         const double hx = unit_heat(x);
                         const double hy = unit_heat(y);
                         if (hx != hy)
                             return hx > hy;
                         return x < y;
                     });

    std::vector<ProcId> fillers;
    for (ProcId id : procsByHeat(ctx)) {
        if (!state.popular.empty() && !state.popular[id])
            fillers.push_back(id);
    }
    GapFiller filler(program, fillers, ctx.cache.line_bytes);

    Layout layout(program.procCount());
    const std::uint32_t line_bytes = ctx.cache.line_bytes;
    std::uint64_t cursor = 0; // in lines
    for (std::uint32_t uidx : unit_order) {
        Unit &unit = state.units[uidx];
        std::sort(unit.procs.begin(), unit.procs.end(),
                  [](const auto &x, const auto &y) {
                      if (x.second != y.second)
                          return x.second < y.second;
                      return x.first < y.first;
                  });
        std::uint64_t local = 0; // next free line within the unit
        for (const auto &[p, off] : unit.procs) {
            if (off > local) {
                // Internal gap: best-fit unpopular fillers.
                for (const auto &[f, rel] : filler.fill(off - local)) {
                    layout.setAddress(f, (cursor + local + rel) *
                                             line_bytes);
                    if (ctx.decisions)
                        ctx.decisions->recordPlace(
                            "hkc.fill", f, layout.address(f),
                            ctx.heatOf(f), "best-fit-filler");
                }
            }
            layout.setAddress(p, (cursor + off) * line_bytes);
            if (ctx.decisions)
                ctx.decisions->recordPlace("hkc.emit", p,
                                           layout.address(p),
                                           ctx.heatOf(p),
                                           "hottest-unit,lower-unit-id");
            local = off + state.lines(p);
        }
        cursor += unit.len_lines;
    }
    // Remaining unpopular procedures, hottest first.
    for (ProcId rest : filler.remaining()) {
        layout.setAddress(rest, cursor * line_bytes);
        if (ctx.decisions)
            ctx.decisions->recordPlace("hkc.fill", rest,
                                       layout.address(rest),
                                       ctx.heatOf(rest),
                                       "best-fit-filler");
        cursor += state.lines(rest);
    }
    layout.validate(program, line_bytes);
    timer.stop();
    if (log_passes) {
        logDebug("hkc", "placement done",
                 {{"units_created", units_created},
                  {"attaches", attaches},
                  {"unit_merges", unit_merges},
                  {"ms", timer.elapsedMs()}});
    }
    return layout;
}

} // namespace topo
