/**
 * @file
 * Popular-procedure selection (Section 4, after Hashemi et al.).
 *
 * GBSC and HKC restrict their relationship graphs to frequently
 * executed procedures. This module selects the smallest set of
 * procedures that covers a given fraction of all dynamically fetched
 * bytes.
 */

#ifndef TOPO_PLACEMENT_POPULARITY_HH
#define TOPO_PLACEMENT_POPULARITY_HH

#include <cstdint>
#include <vector>

#include "topo/program/program.hh"
#include "topo/trace/trace_stats.hh"

namespace topo
{

/** Options for popularity selection. */
struct PopularityOptions
{
    /** Fraction of dynamic bytes the popular set must cover. */
    double coverage = 0.999;
    /** Upper bound on the popular set size; 0 means unbounded. */
    std::size_t max_procs = 0;
    /** Lower bound on the popular set size (when enough are touched). */
    std::size_t min_procs = 1;
};

/** Result of popularity selection. */
struct PopularSet
{
    /** Per-procedure mask. */
    std::vector<bool> mask;
    /** Number of popular procedures. */
    std::size_t count = 0;
    /** Total static size of the popular procedures in bytes. */
    std::uint64_t bytes = 0;
    /** Fraction of dynamic bytes actually covered. */
    double covered = 0.0;
};

/**
 * Select popular procedures by dynamic-byte coverage.
 *
 * Procedures are ranked by bytes fetched; the popular set is the
 * shortest prefix covering @p options.coverage of the total, clamped
 * by min/max bounds. Untouched procedures are never popular.
 */
PopularSet selectPopular(const Program &program, const TraceStats &stats,
                         const PopularityOptions &options = {});

} // namespace topo

#endif // TOPO_PLACEMENT_POPULARITY_HH
