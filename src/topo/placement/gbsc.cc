#include "topo/placement/gbsc.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "topo/obs/log.hh"
#include "topo/obs/metrics.hh"
#include "topo/obs/phase_timer.hh"
#include "topo/placement/decision_log.hh"
#include "topo/placement/gap_fill.hh"
#include "topo/placement/merge_graph.hh"
#include "topo/util/error.hh"

namespace topo
{

namespace
{

/**
 * Chunk occupancy of a node: chunk id -> cache-line colours. Ordered
 * map: alignmentCost iterates this into a floating-point cost
 * accumulation, so the iteration order must be deterministic (hash
 * order would make the best-offset argmin depend on insertion history
 * — the DESIGN.md §9 determinism contract forbids that).
 */
using ChunkColors = std::map<ChunkId, std::vector<std::uint32_t>>;

/** Derive the chunk/colour occupancy of a node's current layout. */
ChunkColors
chunkColors(const PlacementContext &ctx, const GbscNode &node)
{
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;
    ChunkColors colors;
    for (const auto &[proc, offset] : node.procs) {
        const std::uint32_t len =
            ctx.program->sizeInLines(proc, line_bytes);
        for (std::uint32_t line = 0; line < len; ++line) {
            const ChunkId chunk =
                ctx.chunks->chunkAtLine(proc, line, line_bytes);
            const std::uint32_t color = (offset + line) % cache_lines;
            colors[chunk].push_back(color);
        }
    }
    return colors;
}

void
requireGbscInputs(const PlacementContext &ctx, const std::string &who)
{
    ctx.requireBasics(who);
    require(ctx.chunks != nullptr, who + ": context has no chunk map");
    require(ctx.trg_place != nullptr, who + ": context has no TRG_place");
    require(ctx.trg_place->nodeCount() == ctx.chunks->chunkCount(),
            who + ": TRG_place node count does not match the chunk map");
}

} // namespace

std::vector<double>
Gbsc::alignmentCost(const PlacementContext &ctx, const GbscNode &n1,
                    const GbscNode &n2, std::uint32_t modulus)
{
    requireGbscInputs(ctx, "Gbsc::alignmentCost");
    require(modulus > 0, "Gbsc::alignmentCost: zero modulus");
    const WeightedGraph &trg_place = *ctx.trg_place;

    const ChunkColors colors1 = chunkColors(ctx, n1);
    const ChunkColors colors2 = chunkColors(ctx, n2);

    // Sparse Figure 4 cost accumulation: iterate TRG_place edges from
    // the smaller node's chunks; each crossing edge credits its weight
    // to every relative offset placing the two chunks in one frame.
    std::vector<double> cost(modulus, 0.0);
    const bool iterate_first = colors1.size() <= colors2.size();
    const ChunkColors &mine = iterate_first ? colors1 : colors2;
    const ChunkColors &theirs = iterate_first ? colors2 : colors1;
    for (const auto &[chunk, my_colors] : mine) {
        for (const auto &[other, weight] :
             trg_place.sortedNeighbors(chunk)) {
            auto it = theirs.find(other);
            if (it == theirs.end())
                continue;
            for (const std::uint32_t a : my_colors) {
                for (const std::uint32_t b : it->second) {
                    // Offset i shifts n2: a collision needs
                    // (colour_in_n2 + i) == colour_in_n1 (mod modulus).
                    const std::uint32_t in_n1 = iterate_first ? a : b;
                    const std::uint32_t in_n2 = iterate_first ? b : a;
                    const std::uint32_t i =
                        (in_n1 % modulus + modulus - in_n2 % modulus) %
                        modulus;
                    cost[i] += weight;
                }
            }
        }
    }
    return cost;
}

GbscNode
Gbsc::mergeNodes(const PlacementContext &ctx, const GbscNode &n1,
                 const GbscNode &n2, double *out_best_metric)
{
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::vector<double> cost =
        alignmentCost(ctx, n1, n2, cache_lines);

    // Figure 4 tie rule: the first (smallest) offset wins.
    std::uint32_t best_offset = 0;
    double best_metric = cost[0];
    for (std::uint32_t i = 1; i < cache_lines; ++i) {
        if (cost[i] < best_metric) {
            best_metric = cost[i];
            best_offset = i;
        }
    }
    if (out_best_metric)
        *out_best_metric = best_metric;
    if (ctx.decisions) {
        const ProcId rep1 =
            n1.procs.empty() ? kInvalidProc : n1.procs.front().first;
        const ProcId rep2 =
            n2.procs.empty() ? kInvalidProc : n2.procs.front().first;
        ctx.decisions->recordChoice(DecisionKind::kColor, "gbsc.align",
                                    rep1, rep2, 0.0, best_offset, cost,
                                    "first-smallest-offset");
    }

    GbscNode merged;
    merged.procs = n1.procs;
    merged.procs.reserve(n1.procs.size() + n2.procs.size());
    for (const auto &[proc, offset] : n2.procs)
        merged.procs.emplace_back(proc, (offset + best_offset) %
                                            cache_lines);
    return merged;
}

double
Gbsc::conflictMetric(const PlacementContext &ctx,
                     const std::vector<std::uint32_t> &offsets,
                     const std::vector<bool> *include)
{
    requireGbscInputs(ctx, "Gbsc::conflictMetric");
    require(offsets.size() == ctx.program->procCount(),
            "Gbsc::conflictMetric: offsets size mismatch");
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;

    // Bucket chunks by cache line, then sum pairwise TRG_place weights
    // within each line — the whole-placement analogue of Figure 4's
    // per-merge cost.
    std::vector<std::vector<ChunkId>> by_line(cache_lines);
    for (std::size_t i = 0; i < ctx.program->procCount(); ++i) {
        const auto proc = static_cast<ProcId>(i);
        if (include && !(*include)[proc])
            continue;
        const std::uint32_t len = ctx.program->sizeInLines(proc,
                                                           line_bytes);
        for (std::uint32_t line = 0; line < len; ++line) {
            const ChunkId chunk =
                ctx.chunks->chunkAtLine(proc, line, line_bytes);
            by_line[(offsets[proc] + line) % cache_lines].push_back(chunk);
        }
    }
    double metric = 0.0;
    for (const auto &bucket : by_line) {
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            for (std::size_t j = i + 1; j < bucket.size(); ++j)
                metric += ctx.trg_place->weight(bucket[i], bucket[j]);
        }
    }
    return metric;
}

void
Gbsc::validateInputs(const PlacementContext &ctx) const
{
    requireGbscInputs(ctx, name());
}

GbscNode
Gbsc::doMerge(const PlacementContext &ctx, const GbscNode &n1,
              const GbscNode &n2) const
{
    return mergeNodes(ctx, n1, n2);
}

Layout
Gbsc::place(const PlacementContext &ctx) const
{
    ctx.requireBasics(name());
    validateInputs(ctx);
    require(ctx.trg_select != nullptr, "Gbsc: context has no TRG_select");
    require(ctx.trg_select->nodeCount() == ctx.program->procCount(),
            "Gbsc: TRG_select node count mismatch");
    PhaseTimer timer("placement.gbsc");
    const Program &program = *ctx.program;
    const std::uint32_t cache_lines = ctx.cache.lineCount();
    const std::uint32_t line_bytes = ctx.cache.line_bytes;

    // Popular procedures start as singleton nodes at offset zero.
    std::vector<bool> popular_mask;
    if (ctx.popular.empty())
        popular_mask.assign(program.procCount(), true);
    else
        popular_mask = ctx.popular;

    std::vector<GbscNode> nodes(program.procCount());
    for (std::size_t i = 0; i < program.procCount(); ++i) {
        if (popular_mask[i])
            nodes[i].procs.emplace_back(static_cast<ProcId>(i), 0u);
    }

    // Greedy heaviest-edge merging over TRG_select (Section 4.1).
    MergeGraph working(*ctx.trg_select, &popular_mask);
    if (has_tie_seed_)
        working.setTieBreaker(tie_seed_);
    MetricsRegistry &metrics = MetricsRegistry::current();
    const bool log_passes = logEnabled(LogLevel::kDebug);
    std::uint64_t merge_steps = 0;
    while (!working.done()) {
        const MergeGraph::Edge heaviest = working.maxEdge();
        require(heaviest.valid, "Gbsc: inconsistent working graph");
        if (ctx.decisions) {
            DecisionRecord rec;
            rec.kind = DecisionKind::kMerge;
            rec.stage = "gbsc.select";
            rec.a = heaviest.u;
            rec.b = heaviest.v;
            rec.weight = heaviest.weight;
            rec.tie_break = "heaviest-edge-first";
            ctx.decisions->record(rec);
        }
        nodes[heaviest.u] =
            doMerge(ctx, nodes[heaviest.u], nodes[heaviest.v]);
        ++merge_steps;
        if (log_passes) {
            logDebug("gbsc", "merge pass",
                     {{"step", merge_steps},
                      {"u", heaviest.u},
                      {"v", heaviest.v},
                      {"weight", heaviest.weight},
                      {"node_procs", nodes[heaviest.u].procs.size()}});
        }
        nodes[heaviest.v].procs.clear();
        working.mergeInto(heaviest.u, heaviest.v);
    }
    metrics.counter("gbsc.merge_steps").add(merge_steps);
    // One alignmentCost sweep over all cache lines per merge.
    metrics.counter("gbsc.alignment_evals").add(merge_steps);
    metrics.counter("gbsc.offset_candidates")
        .add(merge_steps * ctx.cache.lineCount());

    // --- Section 4.3: produce the final linear list.
    struct Entry
    {
        ProcId proc;
        std::uint32_t start; // cache-relative line offset
        std::uint32_t len;   // lines
    };
    std::vector<Entry> entries;
    for (const GbscNode &node : nodes) {
        for (const auto &[proc, offset] : node.procs) {
            entries.push_back(Entry{
                proc, offset,
                program.sizeInLines(proc, line_bytes)});
        }
    }

    std::vector<ProcId> fillers;
    for (ProcId id : procsByHeat(ctx)) {
        if (!popular_mask[id])
            fillers.push_back(id);
    }
    GapFiller filler(program, fillers, line_bytes);

    Layout layout(program.procCount());
    std::uint64_t cursor = 0; // absolute line of the next free byte
    if (!entries.empty()) {
        // First procedure: prefer offset 0 (the paper notes any
        // starting offset would do); hottest such procedure for
        // determinism.
        auto better_first = [&](const Entry &x, const Entry &y) {
            if (x.start != y.start)
                return x.start < y.start;
            const double hx = ctx.heatOf(x.proc);
            const double hy = ctx.heatOf(y.proc);
            if (hx != hy)
                return hx > hy;
            return x.proc < y.proc;
        };
        std::size_t first = 0;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (better_first(entries[i], entries[first]))
                first = i;
        }
        std::vector<bool> emitted(entries.size(), false);

        cursor = entries[first].start;
        layout.setAddress(entries[first].proc, cursor * line_bytes);
        if (ctx.decisions)
            ctx.decisions->recordPlace(
                "gbsc.emit", entries[first].proc,
                layout.address(entries[first].proc),
                ctx.heatOf(entries[first].proc),
                "lowest-offset,hotter,lower-id");
        cursor += entries[first].len;
        std::uint32_t prev_end =
            (entries[first].start + entries[first].len) % cache_lines;
        emitted[first] = true;

        for (std::size_t placed = 1; placed < entries.size(); ++placed) {
            // Smallest positive gap (the paper's gap formula, i.e.
            // (q_SL - p_EL) mod cache_lines); ties go to the hotter
            // procedure.
            std::size_t best = entries.size();
            std::uint32_t best_gap = 0;
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (emitted[i])
                    continue;
                const std::uint32_t gap =
                    (entries[i].start + cache_lines - prev_end) %
                    cache_lines;
                if (best == entries.size() || gap < best_gap ||
                    (gap == best_gap &&
                     (ctx.heatOf(entries[i].proc) >
                          ctx.heatOf(entries[best].proc) ||
                      (ctx.heatOf(entries[i].proc) ==
                           ctx.heatOf(entries[best].proc) &&
                       entries[i].proc < entries[best].proc)))) {
                    best = i;
                    best_gap = gap;
                }
            }
            // Fill the gap with unpopular procedures (best fit).
            if (best_gap > 0) {
                for (const auto &[f, rel] : filler.fill(best_gap)) {
                    layout.setAddress(f, (cursor + rel) * line_bytes);
                    if (ctx.decisions)
                        ctx.decisions->recordPlace("gbsc.fill", f,
                                                   layout.address(f),
                                                   ctx.heatOf(f),
                                                   "best-fit-filler");
                }
            }
            cursor += best_gap;
            layout.setAddress(entries[best].proc, cursor * line_bytes);
            if (ctx.decisions)
                ctx.decisions->recordPlace(
                    "gbsc.emit", entries[best].proc,
                    layout.address(entries[best].proc),
                    ctx.heatOf(entries[best].proc),
                    "smallest-gap,hotter,lower-id");
            cursor += entries[best].len;
            prev_end = (entries[best].start + entries[best].len) %
                       cache_lines;
            emitted[best] = true;
        }
    }

    // Append every remaining unpopular procedure.
    for (ProcId rest : filler.remaining()) {
        layout.setAddress(rest, cursor * line_bytes);
        if (ctx.decisions)
            ctx.decisions->recordPlace("gbsc.fill", rest,
                                       layout.address(rest),
                                       ctx.heatOf(rest),
                                       "best-fit-filler");
        cursor += program.sizeInLines(rest, line_bytes);
    }
    layout.validate(program, line_bytes);
    timer.stop();
    if (log_passes) {
        logDebug("gbsc", "placement done",
                 {{"merge_steps", merge_steps},
                  {"procs", program.procCount()},
                  {"extent_lines", cursor},
                  {"ms", timer.elapsedMs()}});
    }
    return layout;
}

} // namespace topo
