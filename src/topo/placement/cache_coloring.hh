/**
 * @file
 * HKC: procedure mapping by cache line coloring (Hashemi, Kaeli, and
 * Calder, PLDI'97), as characterised in Section 5 of the paper.
 *
 * Like PH, HKC processes weighted-call-graph edges in decreasing
 * weight order; unlike PH it knows the cache geometry. Every placed
 * procedure owns a set of cache lines ("colours"); when a procedure is
 * added next to its call-graph neighbours, the alignment chosen is the
 * one that minimises weighted colour conflicts with those neighbours,
 * and previously placed compounds may shift relative to each other as
 * long as the shift does not introduce conflicts with heavier, earlier
 * decisions. Only popular procedures are coloured; unpopular ones fill
 * the remaining space.
 */

#ifndef TOPO_PLACEMENT_CACHE_COLORING_HH
#define TOPO_PLACEMENT_CACHE_COLORING_HH

#include "topo/placement/placement.hh"

namespace topo
{

/** HKC cache-line-coloring placement driven by the context's WCG. */
class CacheColoring : public PlacementAlgorithm
{
  public:
    std::string name() const override { return "HKC"; }

    /**
     * Place using ctx.wcg, ctx.cache and ctx.popular. Requires program
     * and wcg; when no popularity mask is present every procedure is
     * treated as popular.
     */
    Layout place(const PlacementContext &ctx) const override;
};

} // namespace topo

#endif // TOPO_PLACEMENT_CACHE_COLORING_HH
