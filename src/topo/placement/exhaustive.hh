/**
 * @file
 * Exhaustive (optimal) placement for tiny procedure sets.
 *
 * Enumerates every joint assignment of cache-relative offsets and
 * keeps the best under either the TRG_place conflict metric or real
 * simulated misses. Exponential in the procedure count — this is a
 * test oracle and a quality upper bound for the greedy algorithms
 * (used on the Figure 1 example and small synthetic cases), not a
 * production placer.
 */

#ifndef TOPO_PLACEMENT_EXHAUSTIVE_HH
#define TOPO_PLACEMENT_EXHAUSTIVE_HH

#include "topo/cache/simulate.hh"
#include "topo/placement/placement.hh"
#include "topo/trace/fetch_stream.hh"

namespace topo
{

/** Limits guarding the exponential search. */
struct ExhaustiveOptions
{
    /** Refuse programs with more procedures than this. */
    std::size_t max_procs = 8;
    /** Refuse searches wider than this many offset combinations. */
    std::uint64_t max_combinations = 2000000;
};

/**
 * Brute-force offset search. The first procedure is pinned at offset
 * zero (offsets only matter relative to each other).
 */
class ExhaustivePlacement : public PlacementAlgorithm
{
  public:
    /** What the search minimises. */
    enum class Objective
    {
        /** Sum of TRG_place weights over same-line chunk pairs. */
        TrgMetric,
        /** Real misses of a fetch stream replayed on each layout. */
        SimulatedMisses,
    };

    /**
     * @param objective Minimisation target.
     * @param stream    Fetch stream for SimulatedMisses (must outlive
     *                  the placer; ignored for TrgMetric).
     * @param options   Search limits.
     */
    explicit ExhaustivePlacement(Objective objective,
                                 const FetchStream *stream = nullptr,
                                 ExhaustiveOptions options = {});

    std::string name() const override { return "optimal"; }

    /** Search; throws TopoError when the limits are exceeded. */
    Layout place(const PlacementContext &ctx) const override;

    /** Objective value of the best layout found by the last place(). */
    double bestObjective() const { return best_objective_; }

  private:
    Objective objective_;
    const FetchStream *stream_;
    ExhaustiveOptions options_;
    mutable double best_objective_ = 0.0;
};

} // namespace topo

#endif // TOPO_PLACEMENT_EXHAUSTIVE_HH
