/**
 * @file
 * DecisionLog implementation: bounded recording, JSON round-trip,
 * and the explain.* metrics surface.
 */

#include "topo/placement/decision_log.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "topo/obs/metrics.hh"
#include "topo/util/error.hh"

namespace topo
{

const char *
decisionKindName(DecisionKind kind)
{
    switch (kind)
    {
    case DecisionKind::kMerge:
        return "merge";
    case DecisionKind::kPlace:
        return "place";
    case DecisionKind::kColor:
        return "color";
    case DecisionKind::kSplit:
        return "split";
    case DecisionKind::kReject:
        return "reject";
    }
    return "merge";
}

DecisionKind
decisionKindFromName(const std::string &name)
{
    if (name == "merge")
        return DecisionKind::kMerge;
    if (name == "place")
        return DecisionKind::kPlace;
    if (name == "color")
        return DecisionKind::kColor;
    if (name == "split")
        return DecisionKind::kSplit;
    if (name == "reject")
        return DecisionKind::kReject;
    failCorrupt("unknown decision kind \"" + name + "\"");
}

DecisionLog::DecisionLog() : DecisionLog(Options{}) {}

DecisionLog::DecisionLog(Options options) : options_(options)
{
    if (options_.top_k > DecisionRecord::kMaxAlternatives)
        options_.top_k = DecisionRecord::kMaxAlternatives;
    records_.reserve(options_.max_records);
}

void
DecisionLog::record(DecisionRecord rec)
{
    if (records_.size() >= options_.max_records)
    {
        ++dropped_;
        return;
    }
    rec.step = records_.size() + dropped_;
    records_.push_back(rec);
}

void
DecisionLog::recordChoice(DecisionKind kind,
                          const char *stage,
                          ProcId a,
                          ProcId b,
                          double weight,
                          std::uint64_t chosen,
                          const std::vector<double> &cost_by_choice,
                          const char *tie_break)
{
    DecisionRecord rec;
    rec.kind = kind;
    rec.stage = stage;
    rec.a = a;
    rec.b = b;
    rec.weight = weight;
    rec.chosen = chosen;
    rec.chosen_cost =
        chosen < cost_by_choice.size() ? cost_by_choice[chosen] : 0.0;
    rec.tie_break = tie_break;
    // Top-k runner-ups: k passes of a min-scan (ascending cost, ties
    // by smaller choice — the same order every algorithm scans in).
    // k is tiny, so k*n beats sorting a copy of the cost array.
    std::uint64_t taken[DecisionRecord::kMaxAlternatives];
    for (std::uint32_t k = 0; k < options_.top_k; ++k)
    {
        std::uint64_t best = cost_by_choice.size();
        for (std::uint64_t c = 0; c < cost_by_choice.size(); ++c)
        {
            if (c == chosen)
                continue;
            bool seen = false;
            for (std::uint32_t j = 0; j < k; ++j)
                seen = seen || taken[j] == c;
            if (seen)
                continue;
            if (best == cost_by_choice.size() ||
                cost_by_choice[c] < cost_by_choice[best])
                best = c;
        }
        if (best == cost_by_choice.size())
            break;
        taken[k] = best;
        rec.alternatives[k] =
            DecisionRecord::Alternative{best, cost_by_choice[best]};
        rec.alternative_count = k + 1;
    }
    record(rec);
}

void
DecisionLog::recordPlace(const char *stage,
                         ProcId proc,
                         std::uint64_t address,
                         double heat,
                         const char *tie_break)
{
    DecisionRecord rec;
    rec.kind = DecisionKind::kPlace;
    rec.stage = stage;
    rec.a = proc;
    rec.weight = heat;
    rec.chosen = address;
    rec.tie_break = tie_break;
    record(rec);
}

void
DecisionLog::clear()
{
    records_.clear();
    dropped_ = 0;
}

double
DecisionLog::coverage(const Program &program) const
{
    if (program.procCount() == 0)
        return 1.0;
    std::vector<bool> seen(program.procCount(), false);
    for (const DecisionRecord &rec : records_)
    {
        if (rec.a < seen.size())
            seen[rec.a] = true;
        if (rec.b < seen.size())
            seen[rec.b] = true;
    }
    std::size_t covered = 0;
    for (bool s : seen)
        covered += s ? 1 : 0;
    return static_cast<double>(covered) /
           static_cast<double>(program.procCount());
}

JsonValue
DecisionLog::toJson(const Program &program) const
{
    auto procName = [&](ProcId id) -> JsonValue {
        if (id == kInvalidProc || id >= program.procCount())
            return JsonValue::string("");
        return JsonValue::string(program.proc(id).name);
    };

    JsonValue doc = JsonValue::object();
    doc.set("topo_decisions", JsonValue::number(1));
    doc.set("algorithm", JsonValue::string(algorithm_));
    doc.set("program", JsonValue::string(program.name()));
    doc.set("cache", JsonValue::string(cache_.describe()));
    doc.set("kept", JsonValue::number(static_cast<double>(kept())));
    doc.set("dropped", JsonValue::number(static_cast<double>(dropped_)));
    doc.set("coverage", JsonValue::number(coverage(program)));

    JsonValue rows = JsonValue::array();
    for (const DecisionRecord &rec : records_)
    {
        JsonValue row = JsonValue::object();
        row.set("step", JsonValue::number(static_cast<double>(rec.step)));
        row.set("kind", JsonValue::string(decisionKindName(rec.kind)));
        row.set("stage", JsonValue::string(rec.stage));
        row.set("proc_a", procName(rec.a));
        row.set("proc_b", procName(rec.b));
        row.set("weight", JsonValue::number(rec.weight));
        row.set("chosen", JsonValue::number(static_cast<double>(rec.chosen)));
        row.set("chosen_cost", JsonValue::number(rec.chosen_cost));
        row.set("tie_break", JsonValue::string(rec.tie_break));
        JsonValue alts = JsonValue::array();
        for (std::uint32_t k = 0; k < rec.alternative_count; ++k)
        {
            JsonValue alt = JsonValue::object();
            alt.set("choice",
                    JsonValue::number(
                        static_cast<double>(rec.alternatives[k].choice)));
            alt.set("cost", JsonValue::number(rec.alternatives[k].cost));
            alts.push(std::move(alt));
        }
        row.set("alternatives", std::move(alts));
        rows.push(std::move(row));
    }
    doc.set("records", std::move(rows));
    return doc;
}

void
DecisionLog::publishMetrics(const Program &program) const
{
    MetricsRegistry &reg = MetricsRegistry::current();
    reg.counter("explain.records_kept").add(kept());
    reg.counter("explain.records_dropped").add(dropped_);
    reg.gauge("explain.coverage").set(coverage(program));
}

LoadedDecisions
snapshotDecisions(const DecisionLog &log, const Program &program)
{
    auto procName = [&](ProcId id) -> std::string {
        if (id == kInvalidProc || id >= program.procCount())
            return "";
        return program.proc(id).name;
    };
    LoadedDecisions out;
    out.algorithm = log.algorithm();
    out.kept = log.kept();
    out.dropped = log.dropped();
    out.rows.reserve(log.records().size());
    for (const DecisionRecord &rec : log.records())
    {
        LoadedDecisions::Row row;
        row.step = rec.step;
        row.kind = decisionKindName(rec.kind);
        row.stage = rec.stage;
        row.proc_a = procName(rec.a);
        row.proc_b = procName(rec.b);
        row.weight = rec.weight;
        row.chosen = rec.chosen;
        row.tie_break = rec.tie_break;
        out.rows.push_back(std::move(row));
    }
    return out;
}

std::vector<std::size_t>
LoadedDecisions::rowsFor(const std::string &proc_name) const
{
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < rows.size(); ++i)
        if (rows[i].proc_a == proc_name || rows[i].proc_b == proc_name)
            hits.push_back(i);
    return hits;
}

LoadedDecisions
readDecisionFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    require(static_cast<bool>(in), "cannot open decisions file: " + path);
    std::ostringstream text;
    text << in.rdbuf();

    LoadedDecisions out;
    try
    {
        JsonValue doc = JsonValue::parse(text.str());
        requireData(doc.isObject(), "decisions file is not a JSON object",
                    path);
        const JsonValue *marker = doc.find("topo_decisions");
        requireData(marker != nullptr, "missing topo_decisions marker", path);
        out.algorithm = doc.at("algorithm").asString();
        out.kept = static_cast<std::uint64_t>(doc.at("kept").asNumber());
        out.dropped = static_cast<std::uint64_t>(doc.at("dropped").asNumber());
        const JsonValue &rows = doc.at("records");
        requireData(rows.isArray(), "records is not an array", path);
        requireData(rows.size() == out.kept,
                    "kept count disagrees with records array", path);
        for (const JsonValue &row : rows.elements())
        {
            LoadedDecisions::Row r;
            r.step = static_cast<std::uint64_t>(row.at("step").asNumber());
            r.kind = row.at("kind").asString();
            decisionKindFromName(r.kind);
            r.stage = row.at("stage").asString();
            r.proc_a = row.at("proc_a").asString();
            r.proc_b = row.at("proc_b").asString();
            r.weight = row.at("weight").asNumber();
            r.chosen =
                static_cast<std::uint64_t>(row.at("chosen").asNumber());
            r.tie_break = row.at("tie_break").asString();
            out.rows.push_back(std::move(r));
        }
    }
    catch (const TopoError &err)
    {
        // Parse failures surface as generic user errors; anything that
        // goes wrong past the successful open is corrupt input.
        if (err.code() == ErrCode::kCorrupt)
            throw;
        failCorrupt(err.what(), path);
    }
    return out;
}

} // namespace topo
