/**
 * @file
 * Metric-driven layout refinement.
 *
 * Figure 6 establishes that the TRG_place conflict metric is close to
 * linear in real cache misses; that licenses *optimising the metric
 * directly*. This module implements a best-improvement local search
 * over cache-relative offsets on top of any initial placement: each
 * pass revisits every popular procedure and moves it to the offset
 * with the lowest metric cost against all currently-placed chunks
 * (exactly the merge_nodes cost, evaluated globally instead of
 * pairwise). Greedy merging never revisits a decision (Section 4.2
 * "we do not backtrack"); refinement is the backtracking the paper
 * deliberately left out, at the price the paper predicted — extra
 * placement time.
 */

#ifndef TOPO_PLACEMENT_REFINE_HH
#define TOPO_PLACEMENT_REFINE_HH

#include "topo/placement/placement.hh"

namespace topo
{

/** Options of a refinement run. */
struct RefineOptions
{
    /** Maximum full sweeps over the popular procedures. */
    std::size_t max_passes = 4;
};

/** Outcome of a refinement run. */
struct RefineResult
{
    Layout layout;
    /** TRG metric of the input layout (popular procedures). */
    double initial_metric = 0.0;
    /** TRG metric after refinement. */
    double final_metric = 0.0;
    /** Number of procedure moves applied. */
    std::size_t moves = 0;
    /** Number of sweeps actually executed. */
    std::size_t passes = 0;
};

/**
 * Refine @p base by per-procedure offset moves minimising the
 * TRG_place metric. Requires ctx.chunks and ctx.trg_place. Unpopular
 * procedures keep their cache-relative offsets. The result realises
 * the final offsets in the address order of @p base.
 */
RefineResult refineLayout(const PlacementContext &ctx, const Layout &base,
                          const RefineOptions &options = {});

} // namespace topo

#endif // TOPO_PLACEMENT_REFINE_HH
